// Cost of the preceding-probability engine (§3.2/§3.3): the Gaussian
// closed form versus the numeric convolution path, and the effect of the
// per-client-pair Δθ density cache.
#include <benchmark/benchmark.h>

#include "core/preceding.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace {

using tommy::ClientId;
using tommy::MessageId;
using tommy::TimePoint;
using tommy::core::ClientRegistry;
using tommy::core::Message;
using tommy::core::PrecedingConfig;
using tommy::core::PrecedingEngine;

ClientRegistry gaussian_registry(std::size_t clients) {
  ClientRegistry registry;
  for (std::size_t c = 0; c < clients; ++c) {
    registry.announce(
        ClientId(static_cast<std::uint32_t>(c)),
        std::make_unique<tommy::stats::Gaussian>(
            1e-6 * static_cast<double>(c % 7), 10e-6 + 1e-6 * static_cast<double>(c % 5)));
  }
  return registry;
}

ClientRegistry uniform_registry(std::size_t clients) {
  ClientRegistry registry;
  for (std::size_t c = 0; c < clients; ++c) {
    registry.announce(ClientId(static_cast<std::uint32_t>(c)),
                      std::make_unique<tommy::stats::Uniform>(
                          -20e-6 - 1e-6 * static_cast<double>(c % 3), 20e-6));
  }
  return registry;
}

Message msg(std::uint64_t id, std::uint32_t client, double stamp) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp)};
}

void BM_GaussianClosedForm(benchmark::State& state) {
  const ClientRegistry registry = gaussian_registry(16);
  const PrecedingEngine engine(registry);
  const Message a = msg(0, 1, 0.0);
  const Message b = msg(1, 2, 3e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.preceding_probability(a, b));
  }
}
BENCHMARK(BM_GaussianClosedForm);

void BM_NumericCachedQuery(benchmark::State& state) {
  // After the first query the Δθ density is cached: steady-state cost is
  // one interpolated CDF lookup.
  const ClientRegistry registry = uniform_registry(16);
  PrecedingConfig config;
  config.grid_points = static_cast<std::size_t>(state.range(0));
  const PrecedingEngine engine(registry, config);
  const Message a = msg(0, 1, 0.0);
  const Message b = msg(1, 2, 3e-6);
  (void)engine.preceding_probability(a, b);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.preceding_probability(a, b));
  }
}
BENCHMARK(BM_NumericCachedQuery)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NumericUncachedQuery(benchmark::State& state) {
  // Cache disabled: every query pays the full convolution. This is the
  // §3.3 "communication and computation intensive" path the paper's
  // client-learned-distribution design avoids.
  const ClientRegistry registry = uniform_registry(16);
  PrecedingConfig config;
  config.grid_points = static_cast<std::size_t>(state.range(0));
  config.cache_difference_densities = false;
  const PrecedingEngine engine(registry, config);
  const Message a = msg(0, 1, 0.0);
  const Message b = msg(1, 2, 3e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.preceding_probability(a, b));
  }
}
BENCHMARK(BM_NumericUncachedQuery)->Arg(256)->Arg(1024);

void BM_PairwiseMatrixGaussian(benchmark::State& state) {
  // Full O(n²) tournament probability fill, the general-path setup cost.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ClientRegistry registry = gaussian_registry(32);
  const PrecedingEngine engine(registry);
  std::vector<Message> messages;
  for (std::size_t k = 0; k < n; ++k) {
    messages.push_back(
        msg(k, static_cast<std::uint32_t>(k % 32), 1e-6 * static_cast<double>(k)));
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        acc += engine.preceding_probability(messages[i], messages[j]);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseMatrixGaussian)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity(benchmark::oNSquared);

void BM_SafeEmissionTime(benchmark::State& state) {
  const ClientRegistry registry = gaussian_registry(16);
  const PrecedingEngine engine(registry);
  const Message a = msg(0, 1, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.safe_emission_time(a, 0.999));
  }
}
BENCHMARK(BM_SafeEmissionTime);

void BM_SafeEmissionTimeNumericQuantile(benchmark::State& state) {
  // Non-Gaussian distribution: the quantile is the bisection search the
  // paper describes ("binary search on the future timestamps").
  const ClientRegistry registry = uniform_registry(16);
  const PrecedingEngine engine(registry);
  const Message a = msg(0, 1, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.safe_emission_time(a, 0.999));
  }
}
BENCHMARK(BM_SafeEmissionTimeNumericQuantile);

}  // namespace

BENCHMARK_MAIN();
