// §3.3's optimization claim: FFT convolution is log-linear versus the
// quadratic direct method. One google-benchmark counter pair per grid
// size; the crossover and the asymptotic gap should be visible directly
// in the reported times.
#include <benchmark/benchmark.h>

#include "stats/convolution.hpp"
#include "stats/fft.hpp"
#include "stats/gaussian.hpp"

namespace {

using tommy::stats::ConvolutionMethod;
using tommy::stats::Gaussian;
using tommy::stats::GridDensity;

GridDensity grid_of_size(std::size_t points) {
  const Gaussian g(0.0, 1.0);
  return GridDensity::from_distribution(g, points);
}

void BM_ConvolveDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridDensity a = grid_of_size(n);
  const GridDensity b = grid_of_size(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tommy::stats::convolve(a, b, ConvolutionMethod::kDirect));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvolveDirect)->RangeMultiplier(2)->Range(64, 8192)
    ->Complexity(benchmark::oNSquared);

void BM_ConvolveFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridDensity a = grid_of_size(n);
  const GridDensity b = grid_of_size(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tommy::stats::convolve(a, b, ConvolutionMethod::kFft));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvolveFft)->RangeMultiplier(2)->Range(64, 8192)
    ->Complexity(benchmark::oNLogN);

void BM_RawFftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n, {1.0, 0.0});
  for (auto _ : state) {
    auto copy = data;
    tommy::stats::fft_forward(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RawFftForward)->RangeMultiplier(4)->Range(64, 16384);

void BM_DifferenceDensityEndToEnd(benchmark::State& state) {
  // The full per-client-pair setup cost the sequencer pays once per pair.
  const auto points = static_cast<std::size_t>(state.range(0));
  const Gaussian theta_i(5e-6, 20e-6);
  const Gaussian theta_j(-3e-6, 35e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tommy::stats::difference_density(
        theta_j, theta_i, points, ConvolutionMethod::kFft));
  }
}
BENCHMARK(BM_DifferenceDensityEndToEnd)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
