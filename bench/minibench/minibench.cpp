// minibench implementation: registration expansion, the min_time-driven
// iteration scaler, console + google-benchmark-shaped JSON reporting,
// and the complexity fit. See include/benchmark/benchmark.h for scope.
#include "benchmark/benchmark.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <thread>

namespace benchmark {
namespace {

double cpu_now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Flags {
  std::string filter;
  std::string out_path;
  std::string out_format{"json"};
  double min_time{0.5};
  bool list_tests{false};
  std::string executable;
};
Flags g_flags;

std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> ctx;
  return ctx;
}

std::vector<std::unique_ptr<internal::Benchmark>>& registry() {
  static std::vector<std::unique_ptr<internal::Benchmark>> benches;
  return benches;
}

}  // namespace

// ── State timing ────────────────────────────────────────────────────────

void State::start_keep_running() {
  completed_ = 0;
  real_seconds_ = 0.0;
  cpu_seconds_ = 0.0;
  ResumeTiming();
}

void State::finish_keep_running() {
  if (timing_) PauseTiming();
}

void State::PauseTiming() {
  real_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    real_start_)
          .count();
  cpu_seconds_ += cpu_now_seconds() - cpu_start_;
  timing_ = false;
}

void State::ResumeTiming() {
  timing_ = true;
  real_start_ = std::chrono::steady_clock::now();
  cpu_start_ = cpu_now_seconds();
}

// ── Registration ────────────────────────────────────────────────────────

namespace internal {

Benchmark::Benchmark(std::string name, Function* fn)
    : name_(std::move(name)), fn_(fn) {}

Benchmark* Benchmark::Arg(std::int64_t x) {
  arg_tuples_.push_back({x});
  return this;
}

Benchmark* Benchmark::Args(const std::vector<std::int64_t>& args) {
  arg_tuples_.push_back(args);
  return this;
}

Benchmark* Benchmark::ArgsProduct(
    const std::vector<std::vector<std::int64_t>>& lists) {
  std::vector<std::vector<std::int64_t>> tuples{{}};
  for (const auto& axis : lists) {
    std::vector<std::vector<std::int64_t>> next;
    for (const auto& prefix : tuples) {
      for (const std::int64_t v : axis) {
        auto tuple = prefix;
        tuple.push_back(v);
        next.push_back(std::move(tuple));
      }
    }
    tuples = std::move(next);
  }
  for (auto& tuple : tuples) arg_tuples_.push_back(std::move(tuple));
  return this;
}

Benchmark* Benchmark::Range(std::int64_t lo, std::int64_t hi) {
  // Upstream semantics: powers of the multiplier from lo, hi always
  // included.
  for (std::int64_t v = lo; v < hi; v *= range_multiplier_) {
    arg_tuples_.push_back({v});
    if (v > hi / range_multiplier_) break;  // overflow guard
  }
  arg_tuples_.push_back({hi});
  return this;
}

Benchmark* Benchmark::RangeMultiplier(int multiplier) {
  range_multiplier_ = multiplier;
  return this;
}

Benchmark* Benchmark::UseRealTime() {
  use_real_time_ = true;
  return this;
}

Benchmark* Benchmark::Iterations(IterationCount n) {
  fixed_iterations_ = n;
  return this;
}

Benchmark* Benchmark::Complexity(BigO family) {
  complexity_ = family;
  return this;
}

Benchmark* RegisterBenchmarkInternal(Benchmark* bench) {
  registry().emplace_back(bench);
  return bench;
}

// ── Running ─────────────────────────────────────────────────────────────

struct RunResult {
  std::string name;
  std::size_t family_index{0};
  std::size_t instance_index{0};
  IterationCount iterations{0};
  double real_ns_per_iter{0.0};
  double cpu_ns_per_iter{0.0};
  double items_per_second{-1.0};
  double bytes_per_second{-1.0};
  std::int64_t complexity_n{0};
  std::vector<std::pair<std::string, double>> counters;
};

struct Runner {
  static std::string instance_name(const Benchmark& bench,
                                   const std::vector<std::int64_t>& args) {
    std::string name = bench.name_;
    for (const std::int64_t a : args) name += "/" + std::to_string(a);
    if (bench.fixed_iterations_ > 0) {
      name += "/iterations:" + std::to_string(bench.fixed_iterations_);
    }
    if (bench.use_real_time_) name += "/real_time";
    return name;
  }

  static std::vector<std::vector<std::int64_t>> instances(
      const Benchmark& bench) {
    if (bench.arg_tuples_.empty()) return {{}};
    return bench.arg_tuples_;
  }

  static RunResult run_instance(const Benchmark& bench,
                                const std::vector<std::int64_t>& args) {
    IterationCount iters =
        bench.fixed_iterations_ > 0 ? bench.fixed_iterations_ : 1;
    for (;;) {
      State state(args, iters);
      bench.fn_(state);

      const double real = state.real_seconds();
      const bool done = bench.fixed_iterations_ > 0 ||
                        real >= g_flags.min_time ||
                        iters >= (IterationCount{1} << 40);
      if (done) {
        RunResult r;
        r.name = instance_name(bench, args);
        r.iterations = iters;
        r.real_ns_per_iter = real * 1e9 / static_cast<double>(iters);
        r.cpu_ns_per_iter =
            state.cpu_seconds() * 1e9 / static_cast<double>(iters);
        // Rates follow the benchmark's clock choice, like upstream.
        const double basis =
            bench.use_real_time_ ? real : state.cpu_seconds();
        const double safe_basis = basis > 0.0 ? basis : 1e-12;
        if (state.items_processed() > 0) {
          r.items_per_second =
              static_cast<double>(state.items_processed()) / safe_basis;
        }
        if (state.bytes_processed() > 0) {
          r.bytes_per_second =
              static_cast<double>(state.bytes_processed()) / safe_basis;
        }
        r.complexity_n = state.complexity_n();
        for (const auto& [key, counter] : state.counters) {
          double value = counter.value;
          if (counter.flags & Counter::kIsRate) value /= safe_basis;
          r.counters.emplace_back(key, value);
        }
        return r;
      }
      const double grow = std::clamp(
          g_flags.min_time * 1.4 / std::max(real, 1e-9), 2.0, 10.0);
      iters = std::max<IterationCount>(
          iters + 1, static_cast<IterationCount>(
                         static_cast<double>(iters) * grow));
    }
  }
};

}  // namespace internal

// ── Reporting ───────────────────────────────────────────────────────────

namespace {

std::string humanize(double value) {
  char buf[64];
  const char* suffix = "";
  double v = value;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::snprintf(buf, sizeof(buf), "%.6g%s", v, suffix);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

int read_mhz() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        return static_cast<int>(std::strtod(line.c_str() + colon + 1, nullptr));
      }
    }
  }
  return 0;
}

std::string iso_now() {
  char buf[64];
  std::time_t t = std::time(nullptr);
  std::tm tm{};
  localtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%FT%T%z", &tm);
  // %z gives +0000; splice the colon for ISO-8601 parity with upstream.
  std::string s(buf);
  if (s.size() >= 5) s.insert(s.size() - 2, ":");
  return s;
}

const char* library_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

void print_context() {
  std::printf("%s\n", iso_now().c_str());
  std::printf("Running %s\n", g_flags.executable.c_str());
  std::printf("Run on (%u X %d MHz CPU s)\n",
              std::thread::hardware_concurrency(), read_mhz());
  double loads[3] = {0, 0, 0};
  getloadavg(loads, 3);
  std::printf("Load Average: %.2f, %.2f, %.2f\n", loads[0], loads[1],
              loads[2]);
  for (const auto& [key, value] : custom_context()) {
    std::printf("%s: %s\n", key.c_str(), value.c_str());
  }
#ifndef NDEBUG
  std::printf("***WARNING*** Library was built as DEBUG. "
              "Timings may be affected.\n");
#endif
}

void print_result(const internal::RunResult& r, std::size_t name_width) {
  std::string extras;
  for (const auto& [key, value] : r.counters) {
    extras += " " + key + "=" + humanize(value);
  }
  if (r.items_per_second >= 0.0) {
    extras += " items_per_second=" + humanize(r.items_per_second) + "/s";
  }
  if (r.bytes_per_second >= 0.0) {
    extras += " bytes_per_second=" + humanize(r.bytes_per_second) + "/s";
  }
  std::printf("%-*s %12.0f ns %12.0f ns %12lld%s\n",
              static_cast<int>(name_width), r.name.c_str(),
              r.real_ns_per_iter, r.cpu_ns_per_iter,
              static_cast<long long>(r.iterations), extras.c_str());
}

const char* big_o_name(BigO family) {
  switch (family) {
    case o1:
      return "(1)";
    case oN:
      return "N";
    case oLogN:
      return "lgN";
    case oNLogN:
      return "NlgN";
    case oNSquared:
      return "N^2";
    case oNCubed:
      return "N^3";
    default:
      return "?";
  }
}

double big_o_eval(BigO family, double n) {
  switch (family) {
    case o1:
      return 1.0;
    case oN:
      return n;
    case oLogN:
      return std::log2(std::max(n, 2.0));
    case oNLogN:
      return n * std::log2(std::max(n, 2.0));
    case oNSquared:
      return n * n;
    case oNCubed:
      return n * n * n;
    default:
      return 1.0;
  }
}

struct Fit {
  BigO family{oNone};
  double coef_real{0.0};
  double coef_cpu{0.0};
  double rms{0.0};  // relative, of the cpu fit
};

/// Least-squares fit of t = c * f(n) for one family; oAuto tries each
/// and keeps the lowest relative RMS — the upstream approach.
Fit fit_complexity(const std::vector<internal::RunResult>& rows, BigO family) {
  std::vector<BigO> candidates;
  if (family == oAuto) {
    candidates = {o1, oN, oLogN, oNLogN, oNSquared, oNCubed};
  } else {
    candidates = {family};
  }
  Fit best;
  bool have_best = false;
  for (const BigO candidate : candidates) {
    double sff = 0.0;
    double sfr = 0.0;
    double sfc = 0.0;
    for (const auto& r : rows) {
      const double f = big_o_eval(candidate, static_cast<double>(r.complexity_n));
      sff += f * f;
      sfr += f * r.real_ns_per_iter;
      sfc += f * r.cpu_ns_per_iter;
    }
    Fit fit;
    fit.family = candidate;
    fit.coef_real = sff > 0.0 ? sfr / sff : 0.0;
    fit.coef_cpu = sff > 0.0 ? sfc / sff : 0.0;
    double err = 0.0;
    double mean = 0.0;
    for (const auto& r : rows) {
      const double f = big_o_eval(candidate, static_cast<double>(r.complexity_n));
      const double d = r.cpu_ns_per_iter - fit.coef_cpu * f;
      err += d * d;
      mean += r.cpu_ns_per_iter;
    }
    mean /= static_cast<double>(rows.size());
    fit.rms = mean > 0.0
                  ? std::sqrt(err / static_cast<double>(rows.size())) / mean
                  : 0.0;
    if (!have_best || fit.rms < best.rms) {
      best = fit;
      have_best = true;
    }
  }
  return best;
}

void write_json(const std::string& path,
                const std::vector<internal::RunResult>& rows,
                const std::vector<std::pair<std::string, Fit>>& fits) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "minibench: cannot open %s for writing\n",
                 path.c_str());
    std::exit(1);
  }
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
  double loads[3] = {0, 0, 0};
  getloadavg(loads, 3);

  out << "{\n  \"context\": {\n";
  out << "    \"date\": \"" << iso_now() << "\",\n";
  out << "    \"host_name\": \"" << json_escape(host) << "\",\n";
  out << "    \"executable\": \"" << json_escape(g_flags.executable)
      << "\",\n";
  out << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "    \"mhz_per_cpu\": " << read_mhz() << ",\n";
  out << "    \"cpu_scaling_enabled\": false,\n";
  out << "    \"caches\": [\n    ],\n";
  out << "    \"load_avg\": [" << json_double(loads[0]) << ","
      << json_double(loads[1]) << "," << json_double(loads[2]) << "],\n";
  out << "    \"library_build_type\": \"" << library_build_type() << "\"";
  for (const auto& [key, value] : custom_context()) {
    out << ",\n    \"" << json_escape(key) << "\": \"" << json_escape(value)
        << "\"";
  }
  out << "\n  },\n  \"benchmarks\": [\n";

  bool first = true;
  auto row_prefix = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };
  for (const auto& r : rows) {
    row_prefix() << "    {\n";
    out << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"family_index\": " << r.family_index << ",\n";
    out << "      \"per_family_instance_index\": " << r.instance_index
        << ",\n";
    out << "      \"run_name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"run_type\": \"iteration\",\n";
    out << "      \"repetitions\": 1,\n";
    out << "      \"repetition_index\": 0,\n";
    out << "      \"threads\": 1,\n";
    out << "      \"iterations\": " << r.iterations << ",\n";
    out << "      \"real_time\": " << json_double(r.real_ns_per_iter)
        << ",\n";
    out << "      \"cpu_time\": " << json_double(r.cpu_ns_per_iter) << ",\n";
    out << "      \"time_unit\": \"ns\"";
    for (const auto& [key, value] : r.counters) {
      out << ",\n      \"" << json_escape(key)
          << "\": " << json_double(value);
    }
    if (r.items_per_second >= 0.0) {
      out << ",\n      \"items_per_second\": "
          << json_double(r.items_per_second);
    }
    if (r.bytes_per_second >= 0.0) {
      out << ",\n      \"bytes_per_second\": "
          << json_double(r.bytes_per_second);
    }
    out << "\n    }";
  }
  for (const auto& [family_name, fit] : fits) {
    row_prefix() << "    {\n";
    out << "      \"name\": \"" << json_escape(family_name) << "_BigO\",\n";
    out << "      \"run_name\": \"" << json_escape(family_name) << "\",\n";
    out << "      \"run_type\": \"aggregate\",\n";
    out << "      \"aggregate_name\": \"BigO\",\n";
    out << "      \"cpu_coefficient\": " << json_double(fit.coef_cpu)
        << ",\n";
    out << "      \"real_coefficient\": " << json_double(fit.coef_real)
        << ",\n";
    out << "      \"big_o\": \"" << big_o_name(fit.family) << "\",\n";
    out << "      \"time_unit\": \"ns\"\n    }";
    row_prefix() << "    {\n";
    out << "      \"name\": \"" << json_escape(family_name) << "_RMS\",\n";
    out << "      \"run_name\": \"" << json_escape(family_name) << "\",\n";
    out << "      \"run_type\": \"aggregate\",\n";
    out << "      \"aggregate_name\": \"RMS\",\n";
    out << "      \"rms\": " << json_double(fit.rms) << "\n    }";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

// ── Public entry points ─────────────────────────────────────────────────

void AddCustomContext(const std::string& key, const std::string& value) {
  custom_context().emplace_back(key, value);
}

void Initialize(int* argc, char** argv) {
  if (*argc > 0) {
    char resolved[4096];
    if (realpath(argv[0], resolved) != nullptr) {
      g_flags.executable = resolved;
    } else {
      g_flags.executable = argv[0];
    }
  }
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
          arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--benchmark_filter")) {
      g_flags.filter = v;
    } else if (const char* v = value_of("--benchmark_out")) {
      g_flags.out_path = v;
    } else if (const char* v = value_of("--benchmark_out_format")) {
      g_flags.out_format = v;
    } else if (value_of("--benchmark_format") != nullptr) {
      // Console is the only supported live format; accepted and ignored.
    } else if (const char* v = value_of("--benchmark_min_time")) {
      // Plain seconds; a trailing "s" (upstream >= 1.8 syntax) is fine.
      g_flags.min_time = std::strtod(v, nullptr);
      if (g_flags.min_time <= 0.0) g_flags.min_time = 0.5;
    } else if (arg == "--benchmark_list_tests" ||
               arg == "--benchmark_list_tests=true") {
      g_flags.list_tests = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 argv[0], argv[i]);
  }
  return argc > 1;
}

std::size_t RunSpecifiedBenchmarks() {
  std::regex filter;
  const bool has_filter = !g_flags.filter.empty();
  if (has_filter) filter = std::regex(g_flags.filter);

  struct Planned {
    const internal::Benchmark* bench;
    std::vector<std::int64_t> args;
    std::string name;
    std::size_t family_index;
    std::size_t instance_index;
  };
  std::vector<Planned> plan;
  for (std::size_t family = 0; family < registry().size(); ++family) {
    const auto& bench = *registry()[family];
    std::size_t instance = 0;
    for (const auto& args : internal::Runner::instances(bench)) {
      const std::string name = internal::Runner::instance_name(bench, args);
      if (!has_filter || std::regex_search(name, filter)) {
        plan.push_back(Planned{&bench, args, name, family, instance});
      }
      ++instance;
    }
  }

  if (g_flags.list_tests) {
    for (const auto& p : plan) std::printf("%s\n", p.name.c_str());
    return plan.size();
  }

  print_context();
  std::size_t name_width = 10;
  for (const auto& p : plan) name_width = std::max(name_width, p.name.size());
  const std::string rule(name_width + 44, '-');
  std::printf("%s\n%-*s %15s %15s %12s UserCounters...\n%s\n", rule.c_str(),
              static_cast<int>(name_width), "Benchmark", "Time", "CPU",
              "Iterations", rule.c_str());

  std::vector<internal::RunResult> results;
  // family name -> rows with complexity data, in registration order.
  std::vector<std::pair<std::string, Fit>> fits;
  std::map<const internal::Benchmark*, std::vector<internal::RunResult>>
      complexity_rows;
  for (const auto& p : plan) {
    internal::RunResult r = internal::Runner::run_instance(*p.bench, p.args);
    r.family_index = p.family_index;
    r.instance_index = p.instance_index;
    print_result(r, name_width);
    if (p.bench->complexity() != oNone && r.complexity_n > 0) {
      complexity_rows[p.bench].push_back(r);
    }
    results.push_back(std::move(r));
  }
  for (const auto& entry : registry()) {
    const auto it = complexity_rows.find(entry.get());
    if (it == complexity_rows.end() || it->second.size() < 2) continue;
    const Fit fit = fit_complexity(it->second, entry->complexity());
    fits.emplace_back(entry->name(), fit);
    std::printf("%s_BigO %15.2f %s %15.2f %s\n", entry->name().c_str(),
                fit.coef_real, big_o_name(fit.family), fit.coef_cpu,
                big_o_name(fit.family));
    std::printf("%s_RMS %17.0f %% %15.0f %%\n", entry->name().c_str(),
                fit.rms * 100.0, fit.rms * 100.0);
  }

  if (!g_flags.out_path.empty()) {
    if (g_flags.out_format != "json") {
      std::fprintf(stderr,
                   "minibench: unsupported --benchmark_out_format=%s "
                   "(only json)\n",
                   g_flags.out_format.c_str());
      std::exit(1);
    }
    write_json(g_flags.out_path, results, fits);
  }
  return plan.size();
}

void Shutdown() {}

}  // namespace benchmark
