#pragma once
// minibench: a self-contained, API-compatible subset of google-benchmark
// large enough for every binary in bench/. It exists so the tracked
// BENCH_throughput.json can come from a Release-built harness even on
// hosts whose system libbenchmark is a Debug build (the library's own
// assertions and unoptimized timing loops distort measurements; the
// stock JSON context records that as `"library_build_type": "debug"`
// and bench_throughput_json.sh refuses such artifacts).
//
// Implemented surface (what bench/*.cpp actually uses):
//   * BENCHMARK(fn) / BENCHMARK_MAIN() registration, with
//     Arg/Args/ArgsProduct/Range/RangeMultiplier, UseRealTime,
//     Iterations, Complexity(oNSquared/oNLogN/...)
//   * State: range(i), iterations(), Pause/ResumeTiming,
//     SetItemsProcessed/SetBytesProcessed/SetComplexityN, counters
//     (Counter::kIsRate), `for (auto _ : state)` iteration
//   * DoNotOptimize / ClobberMemory
//   * Initialize / ReportUnrecognizedArguments / RunSpecifiedBenchmarks /
//     Shutdown / AddCustomContext
//   * CLI: --benchmark_filter, --benchmark_out,
//     --benchmark_out_format=json, --benchmark_format=console,
//     --benchmark_min_time (plain seconds), --benchmark_list_tests
//   * JSON output shaped like google-benchmark's (context + benchmarks
//     rows, counters inlined as row fields) so scripts/bench_*.sh and
//     the CI guards keep working unchanged.
//
// Timing model: each instance reruns its function with a growing
// iteration count until wall time reaches min_time (default 0.5 s),
// exactly like the upstream library's single-repetition mode.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

using IterationCount = std::int64_t;

// Complexity families accepted by Benchmark::Complexity. Only the fit
// coefficient is reported; oAuto picks the family with the lowest RMS.
enum BigO { oNone, o1, oN, oNSquared, oNCubed, oLogN, oNLogN, oAuto };

struct Counter {
  enum Flags {
    kDefaults = 0,
    kIsRate = 1 << 0,  // reported as value / measured seconds
  };
  double value{0.0};
  Flags flags{kDefaults};
  Counter() = default;
  Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}
  operator double() const { return value; }
};
using UserCounters = std::map<std::string, Counter>;

class State {
 public:
  struct Value {};
  struct StateIterator {
    State* parent{nullptr};
    IterationCount cached{0};
    Value operator*() const { return Value{}; }
    StateIterator& operator++() {
      --cached;
      ++parent->completed_;
      return *this;
    }
    bool operator!=(const StateIterator&) {
      if (cached != 0) return true;
      parent->finish_keep_running();
      return false;
    }
  };

  State(std::vector<std::int64_t> args, IterationCount max_iterations)
      : args_(std::move(args)), max_iterations_(max_iterations) {}

  StateIterator begin() {
    start_keep_running();
    return StateIterator{this, max_iterations_};
  }
  StateIterator end() { return StateIterator{this, 0}; }

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  IterationCount iterations() const { return completed_; }
  IterationCount max_iterations() const { return max_iterations_; }

  void PauseTiming();
  void ResumeTiming();

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }
  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  std::int64_t bytes_processed() const { return bytes_processed_; }
  void SetComplexityN(std::int64_t n) { complexity_n_ = n; }
  std::int64_t complexity_n() const { return complexity_n_; }

  UserCounters counters;

  // Accumulated measurements, valid once the range-for loop finished.
  double real_seconds() const { return real_seconds_; }
  double cpu_seconds() const { return cpu_seconds_; }

 private:
  void start_keep_running();
  void finish_keep_running();

  std::vector<std::int64_t> args_;
  IterationCount max_iterations_{0};
  IterationCount completed_{0};
  std::int64_t items_processed_{0};
  std::int64_t bytes_processed_{0};
  std::int64_t complexity_n_{0};
  double real_seconds_{0.0};
  double cpu_seconds_{0.0};
  bool timing_{false};
  std::chrono::steady_clock::time_point real_start_{};
  double cpu_start_{0.0};
};

namespace internal {

using Function = void(State&);

/// One BENCHMARK(fn) registration: a name, a function, and the arg /
/// mode decorations chained onto it. Expanded into per-arg-tuple
/// instances at run time.
class Benchmark {
 public:
  Benchmark(std::string name, Function* fn);

  Benchmark* Arg(std::int64_t x);
  Benchmark* Args(const std::vector<std::int64_t>& args);
  Benchmark* ArgsProduct(const std::vector<std::vector<std::int64_t>>& lists);
  Benchmark* Range(std::int64_t lo, std::int64_t hi);
  Benchmark* RangeMultiplier(int multiplier);
  Benchmark* UseRealTime();
  Benchmark* Iterations(IterationCount n);
  Benchmark* Complexity(BigO family = oAuto);

  const std::string& name() const { return name_; }
  BigO complexity() const { return complexity_; }

 private:
  friend struct Runner;
  std::string name_;
  Function* fn_;
  std::vector<std::vector<std::int64_t>> arg_tuples_;
  int range_multiplier_{8};
  bool use_real_time_{false};
  IterationCount fixed_iterations_{0};  // 0 = scale until min_time
  BigO complexity_{oNone};
};

Benchmark* RegisterBenchmarkInternal(Benchmark* bench);

}  // namespace internal

// Optimizer barriers, same contract as the upstream library.
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp&& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
inline __attribute__((always_inline)) void ClobberMemory() {
  asm volatile("" : : : "memory");
}

void Initialize(int* argc, char** argv);
bool ReportUnrecognizedArguments(int argc, char** argv);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();
void AddCustomContext(const std::string& key, const std::string& value);

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                              \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT(       \
      minibench_reg_, __LINE__) [[maybe_unused]] =                 \
      ::benchmark::internal::RegisterBenchmarkInternal(            \
          new ::benchmark::internal::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                                             \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    return 0;                                                        \
  }                                                                  \
  int main(int, char**)
