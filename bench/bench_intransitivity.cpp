// §3.4 intransitivity policies: when clock-offset distributions make the
// likely-happened-before relation cyclic (non-transitive-dice mixtures),
// compare the cycle-handling policies on ordering quality, granularity,
// and long-run client fairness (how often each client's message lands
// first across repeated rounds — the stochastic policy should equalize,
// deterministic FAS should not).
#include <cstdio>

#include "core/tommy_sequencer.hpp"
#include "metrics/batch_stats.hpp"
#include "metrics/ras.hpp"
#include "sim/offline_runner.hpp"
#include "stats/mixture.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace {

using namespace tommy;

stats::DistributionPtr dice_mixture(std::initializer_list<double> faces,
                                    double unit) {
  std::vector<stats::Mixture::Component> parts;
  for (double f : faces) {
    parts.push_back({1.0, std::make_unique<stats::Uniform>(
                              (f - 0.05) * unit, (f + 0.05) * unit)});
  }
  return std::make_unique<stats::Mixture>(std::move(parts));
}

const char* policy_name(core::CyclePolicy policy) {
  switch (policy) {
    case core::CyclePolicy::kCondense:
      return "condense";
    case core::CyclePolicy::kGreedyFas:
      return "greedy_fas";
    case core::CyclePolicy::kStochasticFas:
      return "stochastic_fas";
    case core::CyclePolicy::kExactFas:
      return "exact_fas";
  }
  return "?";
}

}  // namespace

int main() {
  constexpr double kUnit = 1e-5;  // dice face -> tens of microseconds
  constexpr int kRounds = 300;

  // Three dice clients (cyclic among near-simultaneous messages) plus one
  // ordinary Gaussian client as control.
  core::ClientRegistry registry;
  registry.announce(ClientId(0), dice_mixture({2, 4, 9}, kUnit));
  registry.announce(ClientId(1), dice_mixture({1, 6, 8}, kUnit));
  registry.announce(ClientId(2), dice_mixture({3, 5, 7}, kUnit));
  registry.announce(ClientId(3),
                    std::make_unique<stats::Gaussian>(5e-5, 1e-5));

  std::printf("# Intransitivity policies — dice-offset clients, %d rounds\n",
              kRounds);
  std::printf(
      "policy,mean_ras,mean_batches,transitive_rounds,first_rate_c0,"
      "first_rate_c1,first_rate_c2,first_disparity\n");

  for (const auto policy :
       {core::CyclePolicy::kCondense, core::CyclePolicy::kGreedyFas,
        core::CyclePolicy::kStochasticFas, core::CyclePolicy::kExactFas}) {
    core::TommyConfig config;
    config.cycle_policy = policy;
    config.threshold = 0.52;  // dice edges are weak (~0.56)
    config.preceding.grid_points = 256;
    core::TommySequencer seq(registry, config);

    Rng rng(23);
    double ras_sum = 0.0;
    double batch_sum = 0.0;
    int transitive_rounds = 0;
    metrics::ClientWinLedger first_ledger;

    for (int round = 0; round < kRounds; ++round) {
      // One message per dice client, all carrying the SAME local stamp so
      // the pairwise probabilities are exactly the dice-cycle 4/9 — this
      // isolates the cyclic core every round (random draws would only
      // occasionally align into a cycle). Ground truth is a random
      // ordering of the three, so mean RAS isolates what each policy
      // salvages from an unorderable set.
      std::vector<sim::ObservedMessage> observed;
      std::vector<double> true_times = {1.0, 1.0 + 1e-7, 1.0 + 2e-7};
      rng.shuffle(true_times);
      for (std::uint32_t c = 0; c < 3; ++c) {
        sim::ObservedMessage om;
        om.true_time = TimePoint(true_times[c]);
        om.theta = true_times[c] - 1.0;  // implied by the equal stamps
        om.message = core::Message{
            MessageId(static_cast<std::uint64_t>(round) * 4 + c), ClientId(c),
            TimePoint(1.0)};
        observed.push_back(om);
      }
      {
        sim::ObservedMessage om;
        om.true_time = TimePoint(1.1);
        om.theta = 0.0;
        om.message =
            core::Message{MessageId(static_cast<std::uint64_t>(round) * 4 + 3),
                          ClientId(3), TimePoint(1.1 - 5e-5)};
        observed.push_back(om);
      }

      std::vector<core::Message> input;
      for (const auto& om : observed) input.push_back(om.message);
      const auto result = seq.sequence(std::move(input));
      if (seq.last_diagnostics().tournament_transitive) ++transitive_rounds;

      const auto ranked = sim::rank_against_truth(result, observed);
      ras_sum += metrics::rank_agreement(ranked).normalized();
      batch_sum += static_cast<double>(result.batches.size());

      // Which dice client landed first this round?
      const core::Message& first = result.batches.front().messages.front();
      if (first.client.value() < 3) {
        const std::vector<ClientId> dice{ClientId(0), ClientId(1),
                                         ClientId(2)};
        first_ledger.record(first.client, dice);
      }
    }

    std::printf("%s,%.4f,%.2f,%d,%.3f,%.3f,%.3f,%.3f\n", policy_name(policy),
                ras_sum / kRounds, batch_sum / kRounds, transitive_rounds,
                first_ledger.win_rate(ClientId(0)),
                first_ledger.win_rate(ClientId(1)),
                first_ledger.win_rate(ClientId(2)),
                first_ledger.disparity());
    std::fflush(stdout);
  }
  return 0;
}
