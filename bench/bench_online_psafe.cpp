// §3.5 p_safe ablation: "The parameter p_safe presents a trade-off between
// latency of emitting a batch and certainty of fairness." Runs the full
// online pipeline (clients, FIFO channels, heartbeats, safe emission,
// completeness) at several p_safe values and reports emission latency
// percentiles against fairness violations.
#include <cstdio>

#include "sim/online_runner.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  // Parameters chosen so the safe-emission gate is the binding constraint
  // (tight heartbeats, noisy clocks, dense messages): at low p_safe the
  // sequencer emits before stamp inversions settle and late confident
  // messages appear; at high p_safe violations vanish but latency grows.
  std::printf(
      "# p_safe trade-off — 20 clients, sigma 300us, poisson gap 50us\n");
  std::printf(
      "p_safe,emitted,unemitted,violations,ras,latency_p50_ms,"
      "latency_p99_ms,latency_max_ms\n");

  for (double p_safe : {0.6, 0.9, 0.99, 0.999, 0.9999}) {
    Rng rng(11);  // identical workload per sweep point
    const sim::Population pop = sim::gaussian_population(20, 300e-6, rng);
    const auto events = sim::poisson_workload(pop.ids(), 1500, 50_us, rng);

    sim::OnlineRunConfig config;
    config.sequencer.threshold = 0.75;
    config.sequencer.p_safe = p_safe;
    config.heartbeat_interval = 100_us;
    config.poll_interval = 20_us;
    config.net_base_delay = Duration::from_micros(20);
    config.net_jitter_mean = Duration::from_micros(10);
    config.drain = 200_ms;

    const sim::OnlineRunResult result =
        sim::run_online(pop, events, config, rng);

    std::printf("%.4f,%zu,%zu,%zu,%.4f,%.4f,%.4f,%.4f\n", p_safe,
                result.emitted_messages, result.unemitted_messages,
                result.fairness_violations, result.ras.normalized(),
                result.emission_latency.p50 * 1e3,
                result.emission_latency.p99 * 1e3,
                result.emission_latency.max * 1e3);
    std::fflush(stdout);
  }
  return 0;
}
