// Figures 2-4 context: the regimes of the three classical designs.
//   WFO  (Fig. 2) — fair iff clock error ≪ inter-message gap;
//   FIFO (Fig. 4) — fair iff network delay spread ≪ gap (equal wires);
//   Tommy (Fig. 3) — fair probabilistically, no infrastructure assumption.
// Sweeps the error/gap ratio for the clocks and the delay-jitter/gap ratio
// for the network, reporting normalized RAS for all four sequencers.
#include <cstdio>

#include "core/baselines.hpp"
#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  std::printf("# Baseline regimes — 100 clients, 1000 msgs, gap 10us\n");
  std::printf(
      "sigma_over_gap,jitter_over_gap,tommy_ras,truetime_ras,wfo_ras,"
      "fifo_ras\n");

  const double gap_us = 10.0;
  for (double sigma_ratio : {0.01, 0.1, 0.5, 1.0, 4.0, 16.0}) {
    for (double jitter_ratio : {0.01, 1.0, 16.0}) {
      Rng rng(77);
      const sim::Population pop =
          sim::gaussian_population(100, sigma_ratio * gap_us * 1e-6, rng);
      const auto events = sim::poisson_workload(
          pop.ids(), 1000, Duration::from_micros(gap_us), rng);
      sim::MaterializeConfig mat;
      mat.mean_net_delay = Duration::from_micros(jitter_ratio * gap_us);
      const auto observed = sim::materialize_messages(pop, events, mat, rng);

      core::ClientRegistry registry;
      pop.seed_registry(registry);
      core::TommySequencer tommy(registry);
      core::TrueTimeSequencer truetime(registry);
      core::WfoSequencer wfo;
      core::FifoSequencer fifo;

      std::printf("%.2f,%.2f,%.4f,%.4f,%.4f,%.4f\n", sigma_ratio,
                  jitter_ratio,
                  sim::score_sequencer(tommy, observed).ras.normalized(),
                  sim::score_sequencer(truetime, observed).ras.normalized(),
                  sim::score_sequencer(wfo, observed).ras.normalized(),
                  sim::score_sequencer(fifo, observed).ras.normalized());
      std::fflush(stdout);
    }
  }
  return 0;
}
