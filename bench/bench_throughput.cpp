// Sequencer throughput: offline sequencing cost on the Gaussian fast path
// versus the general tournament path, the baselines, and the online
// ingest cost across its surfaces — the legacy on_message entry point
// (one hash per message), the Session handle (hash-free), batched
// session submits, and the sharded FairOrderingService (sessions + sink
// emission, 1/2/4 shards) in both execution modes: inline (third arg 0)
// and per-shard worker threads fed by SPSC rings (third arg 1, where
// shard count buys real parallel ingest+closure on a multi-core host).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.hpp"
#include "core/baselines.hpp"
#include "core/online_sequencer.hpp"
#include "core/service.hpp"
#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"
#include "stats/gaussian.hpp"

namespace {

using namespace tommy;
using namespace tommy::literals;

struct Workbench {
  sim::Population population;
  std::vector<core::Message> messages;
  core::ClientRegistry registry;

  Workbench(std::size_t clients, std::size_t count, Rng rng)
      : population(sim::gaussian_population(clients, 20e-6, rng)) {
    const auto events =
        sim::poisson_workload(population.ids(), count, 10_us, rng);
    const auto observed = sim::materialize_messages(
        population, events, sim::MaterializeConfig{}, rng);
    for (const auto& om : observed) messages.push_back(om.message);
    population.seed_registry(registry);
  }
};

void BM_TommyFastPath(benchmark::State& state) {
  Workbench bench(100, static_cast<std::size_t>(state.range(0)), Rng(3));
  core::TommySequencer seq(bench.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.sequence(bench.messages));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TommyFastPath)->RangeMultiplier(4)->Range(256, 65536);

void BM_TommyTournamentPath(benchmark::State& state) {
  Workbench bench(100, static_cast<std::size_t>(state.range(0)), Rng(3));
  core::TommyConfig config;
  config.gaussian_fast_path = false;
  core::TommySequencer seq(bench.registry, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.sequence(bench.messages));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TommyTournamentPath)->RangeMultiplier(4)->Range(64, 1024);

void BM_TrueTime(benchmark::State& state) {
  Workbench bench(100, static_cast<std::size_t>(state.range(0)), Rng(3));
  core::TrueTimeSequencer seq(bench.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.sequence(bench.messages));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrueTime)->RangeMultiplier(4)->Range(256, 65536);

void BM_Wfo(benchmark::State& state) {
  Workbench bench(100, static_cast<std::size_t>(state.range(0)), Rng(3));
  core::WfoSequencer seq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.sequence(bench.messages));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Wfo)->RangeMultiplier(4)->Range(256, 65536);

void BM_OnlineIngestAndPoll(benchmark::State& state) {
  // Per-message online cost: ingest a burst then drain it.
  const auto count = static_cast<std::size_t>(state.range(0));
  Workbench bench(50, count, Rng(5));
  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineConfig config;
    config.p_safe = 0.999;
    core::OnlineSequencer seq(bench.registry, bench.population.ids(), config);
    state.ResumeTiming();

    TimePoint now(0.0);
    for (const core::Message& m : bench.messages) {
      core::Message copy = m;
      now = std::max(now, m.arrival);
      copy.arrival = now;
      seq.on_message(copy);
    }
    for (ClientId c : bench.population.ids()) {
      seq.on_heartbeat(c, now + 10_s, now + 1_ms);
    }
    benchmark::DoNotOptimize(seq.poll(now + 1_s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineIngestAndPoll)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void BM_OnlineSteadyStateDrain(benchmark::State& state) {
  // Production shape: ingest interleaved with heartbeats and frequent
  // polls, so batches emit continuously and the buffer stays at its
  // steady-state depth (the emission lag) instead of growing to the full
  // burst. This is the regime the incremental closure targets.
  const auto count = static_cast<std::size_t>(state.range(0));
  Workbench bench(50, count, Rng(7));
  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineConfig config;
    config.p_safe = 0.999;
    core::OnlineSequencer seq(bench.registry, bench.population.ids(), config);
    state.ResumeTiming();

    TimePoint now(0.0);
    std::size_t k = 0;
    for (const core::Message& m : bench.messages) {
      core::Message copy = m;
      now = std::max(now, m.arrival);
      copy.arrival = now;
      seq.on_message(copy);
      ++k;
      if (k % 256 == 0) {
        for (ClientId c : bench.population.ids()) {
          seq.on_heartbeat(c, now, now);
        }
      }
      if (k % 64 == 0) benchmark::DoNotOptimize(seq.poll(now));
    }
    for (ClientId c : bench.population.ids()) {
      seq.on_heartbeat(c, now + 10_s, now + 1_ms);
    }
    benchmark::DoNotOptimize(seq.poll(now + 1_s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineSteadyStateDrain)->RangeMultiplier(4)->Range(1024, 65536);

void BM_SessionIngestAndPoll(benchmark::State& state) {
  // BM_OnlineIngestAndPoll through per-connection Session handles: the
  // ingest hot path runs with zero hash lookups (the dense index and
  // per-client offsets are cached in the handle at open).
  const auto count = static_cast<std::size_t>(state.range(0));
  Workbench bench(50, count, Rng(5));
  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineConfig config;
    config.p_safe = 0.999;
    core::OnlineSequencer seq(bench.registry, bench.population.ids(), config);
    std::vector<core::OnlineSequencer::Session> sessions;
    sessions.reserve(bench.population.size());
    for (ClientId c : bench.population.ids()) {
      sessions.push_back(seq.open_session(c));
    }
    state.ResumeTiming();

    TimePoint now(0.0);
    for (const core::Message& m : bench.messages) {
      now = std::max(now, m.arrival);
      sessions[m.client.value()].submit(m.stamp, m.id, now);
    }
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    benchmark::DoNotOptimize(seq.poll(now + 1_s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionIngestAndPoll)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void BM_SessionChunkedReplay(benchmark::State& state) {
  // The queue-drain ingest shape (what the service's shard workers do
  // with their SPSC rings): messages regrouped into per-session runs of
  // up to 64, applied run by run. range(1) selects the application
  // surface over the IDENTICAL run sequence — 0: a submit_relaxed call
  // per message; 1: one submit_batch_relaxed per run, which hoists the
  // re-prime check, the generation compare and the completeness-gate
  // maintenance out of the per-message loop. The delta between the two
  // is the pure per-call overhead the batched surface amortizes.
  const auto count = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Workbench bench(50, count, Rng(5));

  // Pre-chunk the arrival-ordered stream into per-client runs.
  std::vector<std::pair<std::size_t, std::vector<core::Submission>>> runs;
  {
    TimePoint now(0.0);
    std::vector<std::vector<core::Submission>> pending(
        bench.population.size());
    std::size_t buffered = 0;
    auto cut = [&] {
      for (std::size_t c = 0; c < pending.size(); ++c) {
        if (pending[c].empty()) continue;
        runs.emplace_back(c, std::move(pending[c]));
        pending[c] = {};
      }
      buffered = 0;
    };
    for (const core::Message& m : bench.messages) {
      now = std::max(now, m.arrival);
      pending[m.client.value()].push_back(
          core::Submission{m.stamp, m.id, now});
      if (++buffered == 64) cut();
    }
    cut();
  }

  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineConfig config;
    config.p_safe = 0.999;
    core::OnlineSequencer seq(bench.registry, bench.population.ids(), config);
    std::vector<core::OnlineSequencer::Session> sessions;
    sessions.reserve(bench.population.size());
    for (ClientId c : bench.population.ids()) {
      sessions.push_back(seq.open_session(c));
    }
    state.ResumeTiming();

    TimePoint now(0.0);
    for (const auto& [c, items] : runs) {
      if (batched) {
        sessions[c].submit_batch_relaxed(items);
      } else {
        for (const core::Submission& item : items) {
          sessions[c].submit_relaxed(item.stamp, item.id, item.arrival);
        }
      }
      now = std::max(now, items.back().arrival);
    }
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    benchmark::DoNotOptimize(seq.poll(now + 1_s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionChunkedReplay)
    ->ArgsProduct({{4096, 16384, 65536}, {0, 1}});

void BM_ServiceIngestAndPoll(benchmark::State& state) {
  // The full service surface: burst ingest through sessions into a
  // range-sharded FairOrderingService, drained through the emission sink
  // (no intermediate vectors). range(0) = messages, range(1) = shards,
  // range(2) = 1 for the threaded execution engine (per-shard workers +
  // SPSC ingest rings; the producer enqueues while the workers run the
  // buffer insert and incremental closure in parallel — the poll at the
  // end synchronizes, so the timed region covers full completion).
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  const bool threaded = state.range(2) != 0;
  Workbench bench(50, count, Rng(5));
  for (auto _ : state) {
    state.PauseTiming();
    core::ServiceConfig config;
    config.with_p_safe(0.999).with_shards(shards).with_worker_threads(
        threaded);
    std::optional<core::FairOrderingService> service;
    service.emplace(bench.registry, bench.population.ids(), config);
    std::vector<core::FairOrderingService::Session> sessions;
    sessions.reserve(bench.population.size());
    for (ClientId c : bench.population.ids()) {
      sessions.push_back(service->open_session(c));
    }
    state.ResumeTiming();

    TimePoint now(0.0);
    for (const core::Message& m : bench.messages) {
      now = std::max(now, m.arrival);
      sessions[m.client.value()].submit(m.stamp, m.id, now);
    }
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    std::size_t emitted = 0;
    service->poll(now + 1_s, [&](core::EmissionRecord&& record,
                                 std::uint32_t) { emitted += record.batch.messages.size(); });
    benchmark::DoNotOptimize(emitted);

    // Teardown (worker stop + joins in threaded mode) outside the timed
    // region, or shard scaling would be biased by per-iteration joins.
    state.PauseTiming();
    service.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// Real time, not producer CPU time: with worker threads the producer's
// CPU column only covers the enqueue side, while the poll barrier makes
// wall clock cover full completion — the honest scaling metric.
BENCHMARK(BM_ServiceIngestAndPoll)
    ->ArgsProduct({{4096, 16384, 65536}, {1, 2, 4}, {0, 1}})
    ->UseRealTime();

void BM_ServiceSteadyStateDrain(benchmark::State& state) {
  // Steady-state service shape: interleaved sessions ingest, heartbeats,
  // frequent sink polls; multi-shard buffers stay at emission-lag depth.
  // range(0) = messages, range(1) = shards, range(2) = threaded engine.
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  const bool threaded = state.range(2) != 0;
  Workbench bench(50, count, Rng(7));
  for (auto _ : state) {
    state.PauseTiming();
    core::ServiceConfig config;
    config.with_p_safe(0.999).with_shards(shards).with_worker_threads(
        threaded);
    std::optional<core::FairOrderingService> service;
    service.emplace(bench.registry, bench.population.ids(), config);
    std::vector<core::FairOrderingService::Session> sessions;
    sessions.reserve(bench.population.size());
    for (ClientId c : bench.population.ids()) {
      sessions.push_back(service->open_session(c));
    }
    state.ResumeTiming();

    std::size_t emitted = 0;
    auto sink = [&](core::EmissionRecord&& record, std::uint32_t) {
      emitted += record.batch.messages.size();
    };
    TimePoint now(0.0);
    std::size_t k = 0;
    for (const core::Message& m : bench.messages) {
      now = std::max(now, m.arrival);
      sessions[m.client.value()].submit(m.stamp, m.id, now);
      ++k;
      if (k % 256 == 0) {
        for (auto& session : sessions) session.heartbeat(now, now);
      }
      if (k % 64 == 0) service->poll(now, sink);
    }
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    service->poll(now + 1_s, sink);
    benchmark::DoNotOptimize(emitted);

    state.PauseTiming();  // teardown (worker joins) outside the clock
    service.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServiceSteadyStateDrain)
    ->ArgsProduct({{4096, 65536}, {1, 2, 4}, {0, 1}})
    ->UseRealTime();

void BM_BackloggedInsertRelease(benchmark::State& state) {
  // The quadratic-collapse regression gate. One expected client never
  // speaks, so the completeness gate stays shut while range(0) messages
  // pile into the pending buffer — every insert lands in a buffer of
  // depth ~i. The old flat sorted buffer paid an O(i) shift per insert
  // (an O(N²) ramp that only the tail of the latency distribution saw
  // early); the chunked HoldbackBuffer pays O(B + log i). Each insert is
  // clocked individually into an HDR-style histogram and the tracked
  // fields are its tail: insert_p50/p99/p999_ns. Sub-linear growth of
  // ns-per-item from 10k to 200k held messages is the acceptance bar.
  const auto count = static_cast<std::size_t>(state.range(0));
  Workbench bench(50, count, Rng(9));
  // An announced 51st client that stays silent holds the gate shut no
  // matter what the speakers do.
  const ClientId mute(static_cast<std::uint32_t>(bench.population.size()));
  bench.registry.announce(mute, std::make_unique<stats::Gaussian>(0.0, 20e-6));
  std::vector<ClientId> expected = bench.population.ids();
  expected.push_back(mute);

  tommy::LatencyHistogram inserts;
  double release_seconds = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineConfig config;
    config.p_safe = 0.999;
    core::OnlineSequencer seq(bench.registry, expected, config);
    std::vector<core::OnlineSequencer::Session> sessions;
    sessions.reserve(bench.population.size());
    for (ClientId c : bench.population.ids()) {
      sessions.push_back(seq.open_session(c));
    }
    state.ResumeTiming();

    TimePoint now(0.0);
    for (const core::Message& m : bench.messages) {
      now = std::max(now, m.arrival);
      const auto t0 = std::chrono::steady_clock::now();
      sessions[m.client.value()].submit(m.stamp, m.id, now);
      const auto t1 = std::chrono::steady_clock::now();
      inserts.record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    // Everything is still held: the gate never opened.
    benchmark::DoNotOptimize(seq.pending_count());

    // Open the gate (the mute client finally heartbeats) and release the
    // whole backlog in one drain.
    const auto r0 = std::chrono::steady_clock::now();
    for (auto& session : sessions) {
      session.heartbeat(now + 10_s, now + 1_ms);
    }
    seq.on_heartbeat(mute, now + 10_s, now + 1_ms);
    benchmark::DoNotOptimize(seq.poll(now + 1_s));
    const auto r1 = std::chrono::steady_clock::now();
    release_seconds += std::chrono::duration<double>(r1 - r0).count();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["insert_p50_ns"] =
      benchmark::Counter(static_cast<double>(inserts.percentile_ns(0.50)));
  state.counters["insert_p99_ns"] =
      benchmark::Counter(static_cast<double>(inserts.percentile_ns(0.99)));
  state.counters["insert_p999_ns"] =
      benchmark::Counter(static_cast<double>(inserts.percentile_ns(0.999)));
  state.counters["release_ms_per_iter"] = benchmark::Counter(
      1e3 * release_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BackloggedInsertRelease)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->UseRealTime();

void BM_ServiceReconfigSwap(benchmark::State& state) {
  // Live-reconfiguration cost: one mutating re-announce followed by the
  // full RCU epoch swap (off-thread prime to the new generation, per-
  // shard quiesce, install). range(0) = clients; range(1): 0 = idle
  // service (pure swap latency), 1 = swap while a producer thread keeps
  // the ingest rings hot — the quiesce drains real traffic and the
  // producer_submits_per_s counter shows the ingest rate sustained
  // across swaps (the throughput dip). Threaded engine, 2 shards.
  const auto clients = static_cast<std::size_t>(state.range(0));
  const bool under_load = state.range(1) != 0;
  Workbench bench(clients, 8192, Rng(11));
  core::ServiceConfig config;
  config.with_p_safe(0.999).with_shards(2).with_worker_threads();
  core::FairOrderingService service(bench.registry, bench.population.ids(),
                                    config);
  std::vector<core::FairOrderingService::Session> sessions;
  sessions.reserve(bench.population.size());
  for (ClientId c : bench.population.ids()) {
    sessions.push_back(service.open_session(c));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0};
  std::thread producer;
  if (under_load) {
    producer = std::thread([&] {
      double now = 1.0;
      std::size_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const core::Message& m = bench.messages[k % bench.messages.size()];
        now += 2e-7;
        sessions[m.client.value()].submit(TimePoint(now - 1e-4),
                                          MessageId(k), TimePoint(now));
        produced.fetch_add(1, std::memory_order_relaxed);
        ++k;
        if (k % 256 == 0) {
          // Heartbeat + poll keep the shard buffers at steady-state
          // depth: an unpolled backlog degrades per-op ingest cost
          // (sorted-vector insert) and the swap would measure the
          // degradation, not the protocol.
          for (auto& session : sessions) {
            session.heartbeat(TimePoint(now), TimePoint(now));
          }
          std::size_t drained = 0;
          service.poll(TimePoint(now),
                       [&drained](core::EmissionRecord&& record,
                                  std::uint32_t) {
                         drained += record.batch.messages.size();
                       });
          benchmark::DoNotOptimize(drained);
        }
        if (k % 32 == 0) {
          // Pace the producer: a saturating spin-loop starves the shard
          // workers of CPU on small hosts and measures scheduler
          // contention, not swap latency — and an ingest rate near the
          // drain rate lets one stalled swap tip the buffers into the
          // quadratic-backlog regime.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }

  double sigma = 20e-6;
  for (auto _ : state) {
    sigma = sigma == 20e-6 ? 25e-6 : 20e-6;  // a real change every swap
    bench.registry.announce(ClientId(0),
                            std::make_unique<stats::Gaussian>(0.0, sigma));
    service.reconfigure();
  }
  stop.store(true, std::memory_order_relaxed);
  if (producer.joinable()) producer.join();

  state.SetItemsProcessed(state.iterations());
  if (under_load) {
    state.counters["producer_submits_per_s"] = benchmark::Counter(
        static_cast<double>(produced.load()), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_ServiceReconfigSwap)->Args({64, 0})->UseRealTime();
// Fixed iteration count: the under-load variant's wall time is swap
// latency × iterations, and letting min_time scale the count turns a
// single scheduler stall into a minutes-long run on small hosts.
BENCHMARK(BM_ServiceReconfigSwap)
    ->Args({64, 1})
    ->UseRealTime()
    ->Iterations(20);

}  // namespace

#ifndef TOMMY_BUILD_TYPE
#define TOMMY_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  // Provenance for the tracked BENCH_throughput.json: the library's build
  // type (the stock "library_build_type" context reflects how
  // libbenchmark itself was compiled, not this code) and the thread/shard
  // grid the service benchmarks sweep.
  benchmark::AddCustomContext("tommy_build_type", TOMMY_BUILD_TYPE);
  benchmark::AddCustomContext(
      "hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("service_shard_configs", "1,2,4");
  benchmark::AddCustomContext("service_worker_modes",
                              "0=inline,1=per-shard worker threads");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
