// §4's caveat quantified: the paper seeds clients with their true offset
// distributions, "so the following results are an upper-bound ... as the
// errors in estimating such distributions are not captured." This bench
// closes that gap: clients learn their distributions from N sync probes
// (through the simulated network), and we report how fairness converges
// to the seeded upper bound as N grows.
#include <cstdio>
#include <numbers>

#include "clock/learner.hpp"
#include "clock/local_clock.hpp"
#include "clock/sync.hpp"
#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"
#include "stats/analytic.hpp"
#include "stats/estimators.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  constexpr std::size_t kClients = 40;
  constexpr double kSigma = 50e-6;

  // NOTE a structural bias this bench surfaces: an NTP-style probe
  // estimate averages TWO independent clock reads (t0 and t3), so under
  // the iid per-read offset model the raw learned sigma converges to
  // σ/√2, not σ. The `corrected` column rescales the learned sigma by √2
  // (valid exactly under the iid model); the raw column is what a client
  // that ignores this would announce.
  std::printf("# Learned vs seeded offset distributions — %zu clients,"
              " sigma %.0fus\n", kClients, kSigma * 1e6);
  std::printf(
      "probes,mean_l1_raw,mean_l1_corrected,ras_raw,ras_corrected,"
      "ras_seeded\n");

  for (std::size_t probes : {8u, 32u, 128u, 512u, 2048u}) {
    Rng rng(61);
    const sim::Population pop =
        sim::gaussian_population(kClients, kSigma, rng);

    // Each client estimates its offset distribution from `probes`
    // NTP-style exchanges over a jittery path.
    net::Simulation sim;
    core::ClientRegistry learned;
    core::ClientRegistry learned_corrected;
    double l1_raw_sum = 0.0;
    double l1_corrected_sum = 0.0;
    for (const sim::ClientSpec& spec : pop.clients()) {
      clock::LocalClock clk(
          sim, std::make_unique<clock::IidOffset>(spec.offset->clone(),
                                                  rng.split()));
      clock::SyncSession session(
          sim, clk,
          net::DelayModel(50_us,
                          std::make_unique<stats::ShiftedExponential>(
                              0.0, 5e-6),
                          rng.split()),
          net::DelayModel(50_us,
                          std::make_unique<stats::ShiftedExponential>(
                              0.0, 5e-6),
                          rng.split()));
      session.schedule_probes(sim.now(), 100_us, probes);
      sim.run();

      clock::GaussianLearner learner;
      learner.add_samples(session.offset_estimates());
      const stats::DistributionSummary raw = learner.summarize();
      learned.announce(spec.id, raw);
      const auto* params = raw.gaussian();
      learned_corrected.announce(
          spec.id, stats::DistributionSummary(stats::GaussianParams{
                       params->mu, params->sigma * std::numbers::sqrt2}));

      l1_raw_sum += stats::density_l1_error(
          learned.offset_distribution(spec.id), *spec.offset);
      l1_corrected_sum += stats::density_l1_error(
          learned_corrected.offset_distribution(spec.id), *spec.offset);
    }

    // Same workload scored against both registries.
    const auto events = sim::poisson_workload(pop.ids(), 1200, 20_us, rng);
    const auto observed = sim::materialize_messages(
        pop, events, sim::MaterializeConfig{}, rng);

    core::ClientRegistry seeded;
    pop.seed_registry(seeded);

    core::TommySequencer tommy_raw(learned);
    core::TommySequencer tommy_corrected(learned_corrected);
    core::TommySequencer tommy_seeded(seeded);
    const double ras_raw =
        sim::score_sequencer(tommy_raw, observed).ras.normalized();
    const double ras_corrected =
        sim::score_sequencer(tommy_corrected, observed).ras.normalized();
    const double ras_seeded =
        sim::score_sequencer(tommy_seeded, observed).ras.normalized();

    std::printf("%zu,%.4f,%.4f,%.4f,%.4f,%.4f\n", probes,
                l1_raw_sum / static_cast<double>(kClients),
                l1_corrected_sum / static_cast<double>(kClients), ras_raw,
                ras_corrected, ras_seeded);
    std::fflush(stdout);
  }
  return 0;
}
