// Regenerates Figure 5: normalized Rank Agreement Score vs clock deviation
// scale, for Tommy and the TrueTime baseline (plus WFO and FIFO for the
// Fig. 2/Fig. 4 context), across several inter-message gaps (the marker
// size in the paper's plot). Each row is one sweep point; plot RAS against
// deviation_us, one series per (sequencer, gap_us).
#include <cstdio>

#include "sim/fig5.hpp"

int main() {
  using tommy::sim::Fig5Config;
  using tommy::sim::Fig5Point;

  std::printf("# Figure 5 — Fairness (normalized RAS) vs clock deviation\n");
  std::printf("# 500 clients, Gaussian offset distributions seeded at the\n");
  std::printf("# sequencer (the paper's upper-bound setup), threshold 0.75.\n");
  std::printf("%s\n", tommy::sim::fig5_csv_header().c_str());

  // Gap values straddle the deviation range so both crossovers are
  // visible: TrueTime's RAS collapses once 6σ exceeds the gap, Tommy's
  // once ~σ does (threshold 0.75 cuts at ≈0.95σ). Smaller gaps therefore
  // widen Tommy's advantage — the marker-size trend in the paper's plot.
  const double deviations_us[] = {0.0, 2.0, 5.0, 10.0, 20.0, 40.0,
                                  60.0, 80.0, 100.0, 120.0};
  const double gaps_us[] = {2.0, 5.0, 10.0, 20.0, 50.0};

  for (double gap : gaps_us) {
    for (double deviation : deviations_us) {
      Fig5Config config;
      config.clients = 500;
      config.messages = 2000;
      config.deviation_scale_us = deviation;
      config.gap_us = gap;
      config.threshold = 0.75;
      // Seed derived from the sweep point for reproducibility.
      config.seed = 1000 + static_cast<std::uint64_t>(deviation * 10.0) * 131 +
                    static_cast<std::uint64_t>(gap * 10.0);
      const Fig5Point point = run_fig5_point(config);
      std::printf("%s\n", tommy::sim::fig5_csv_row(point).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
