// §3.4 Threshold ablation: "A Threshold closer to 1 creates fewer and
// bigger batches, while a Threshold closer to 0.5 creates smaller and more
// batches." Sweeps the threshold and both batch rules, reporting batch
// granularity, normalized RAS, and the minimum cross-batch confidence
// (which only the closure rule keeps above the threshold).
#include <cstdio>

#include "core/tommy_sequencer.hpp"
#include "metrics/batch_stats.hpp"
#include "sim/offline_runner.hpp"

int main() {
  using namespace tommy;
  using namespace tommy::literals;

  Rng rng(7);
  const sim::Population pop = sim::gaussian_population(200, 20e-6, rng);
  const auto events = sim::poisson_workload(pop.ids(), 1500, 10_us, rng);
  const auto observed =
      sim::materialize_messages(pop, events, sim::MaterializeConfig{}, rng);

  core::ClientRegistry registry;
  pop.seed_registry(registry);

  std::printf(
      "# Threshold ablation — 200 clients, sigma 20us, gap 10us, 1500 msgs\n");
  std::printf(
      "rule,threshold,batches,mean_batch,largest_batch,singleton_frac,"
      "ras,min_cross_batch_p\n");

  for (const auto rule : {core::BatchRule::kAdjacent,
                          core::BatchRule::kClosure}) {
    for (double threshold :
         {0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99}) {
      core::TommyConfig config;
      config.threshold = threshold;
      config.batch_rule = rule;
      core::TommySequencer seq(registry, config);

      const sim::SequencerScore score = sim::score_sequencer(seq, observed);

      // Re-run to get the raw batches for the cross-batch confidence audit.
      std::vector<core::Message> input;
      for (const auto& om : observed) input.push_back(om.message);
      const auto result = seq.sequence(std::move(input));
      const double min_cross = core::min_cross_batch_probability(
          result.batches, [&seq](const core::Message& a,
                                 const core::Message& b) {
            return seq.engine().preceding_probability(a, b);
          });

      std::printf("%s,%.2f,%zu,%.2f,%zu,%.3f,%.4f,%.4f\n",
                  rule == core::BatchRule::kAdjacent ? "adjacent" : "closure",
                  threshold, score.batches.batch_count,
                  score.batches.mean_batch_size, score.batches.largest_batch,
                  score.batches.singleton_fraction, score.ras.normalized(),
                  min_cross);
      std::fflush(stdout);
    }
  }
  return 0;
}
