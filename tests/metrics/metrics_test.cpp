#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "metrics/batch_stats.hpp"
#include "metrics/ras.hpp"
#include "metrics/summary_stats.hpp"

namespace tommy::metrics {
namespace {

std::vector<RankedMessage> make_messages(
    const std::vector<std::pair<double, Rank>>& rows) {
  std::vector<RankedMessage> out;
  std::uint64_t id = 0;
  for (const auto& [true_time, rank] : rows) {
    out.push_back(RankedMessage{MessageId(id), ClientId(0),
                                TimePoint(true_time), rank});
    ++id;
  }
  return out;
}

/// O(n²) reference implementation of §4's metric.
RasBreakdown naive_ras(const std::vector<RankedMessage>& ms) {
  RasBreakdown out;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    for (std::size_t j = i + 1; j < ms.size(); ++j) {
      const auto& earlier = ms[i].true_time < ms[j].true_time ? ms[i] : ms[j];
      const auto& later = ms[i].true_time < ms[j].true_time ? ms[j] : ms[i];
      ++out.pairs;
      if (earlier.rank < later.rank) {
        ++out.correct;
      } else if (earlier.rank > later.rank) {
        ++out.incorrect;
      } else {
        ++out.indifferent;
      }
    }
  }
  out.score = static_cast<std::int64_t>(out.correct) -
              static_cast<std::int64_t>(out.incorrect);
  return out;
}

TEST(Ras, PerfectOrderScoresOne) {
  const auto ms = make_messages({{1.0, 0}, {2.0, 1}, {3.0, 2}, {4.0, 3}});
  const RasBreakdown ras = rank_agreement(ms);
  EXPECT_EQ(ras.correct, 6u);
  EXPECT_EQ(ras.incorrect, 0u);
  EXPECT_EQ(ras.indifferent, 0u);
  EXPECT_DOUBLE_EQ(ras.normalized(), 1.0);
  EXPECT_DOUBLE_EQ(ras.kendall_tau_b(), 1.0);
}

TEST(Ras, ReversedOrderScoresMinusOne) {
  const auto ms = make_messages({{1.0, 3}, {2.0, 2}, {3.0, 1}, {4.0, 0}});
  const RasBreakdown ras = rank_agreement(ms);
  EXPECT_EQ(ras.incorrect, 6u);
  EXPECT_DOUBLE_EQ(ras.normalized(), -1.0);
}

TEST(Ras, SingleBatchIsAllIndifference) {
  // TrueTime's conservative degenerate case: everything shares a rank.
  const auto ms = make_messages({{1.0, 0}, {2.0, 0}, {3.0, 0}});
  const RasBreakdown ras = rank_agreement(ms);
  EXPECT_EQ(ras.indifferent, 3u);
  EXPECT_DOUBLE_EQ(ras.normalized(), 0.0);
}

TEST(Ras, MixedHandComputedCase) {
  // true times 1,2,3,4 with ranks 0,0,1,0:
  //   (1,2) same rank -> 0; (1,3) 0<1 -> +1; (1,4) same -> 0
  //   (2,3) +1; (2,4) same -> 0; (3,4) rank 1>0 -> −1
  const auto ms = make_messages({{1.0, 0}, {2.0, 0}, {3.0, 1}, {4.0, 0}});
  const RasBreakdown ras = rank_agreement(ms);
  EXPECT_EQ(ras.correct, 2u);
  EXPECT_EQ(ras.incorrect, 1u);
  EXPECT_EQ(ras.indifferent, 3u);
  EXPECT_EQ(ras.score, 1);
  EXPECT_NEAR(ras.normalized(), 1.0 / 6.0, 1e-12);
}

TEST(Ras, InputOrderIsIrrelevant) {
  auto ms = make_messages({{3.0, 1}, {1.0, 0}, {4.0, 2}, {2.0, 0}});
  const RasBreakdown a = rank_agreement(ms);
  std::reverse(ms.begin(), ms.end());
  const RasBreakdown b = rank_agreement(ms);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.correct, b.correct);
}

TEST(Ras, FenwickMatchesNaiveOnRandomData) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 200));
    std::vector<RankedMessage> ms;
    for (std::size_t k = 0; k < n; ++k) {
      ms.push_back(RankedMessage{
          MessageId(k), ClientId(0),
          TimePoint(static_cast<double>(k) + rng.uniform(0.0, 0.5)),
          static_cast<Rank>(rng.uniform_int(0, 20))});
    }
    const RasBreakdown fast = rank_agreement(ms);
    const RasBreakdown slow = naive_ras(ms);
    EXPECT_EQ(fast.score, slow.score) << "trial " << trial;
    EXPECT_EQ(fast.correct, slow.correct);
    EXPECT_EQ(fast.incorrect, slow.incorrect);
    EXPECT_EQ(fast.indifferent, slow.indifferent);
    EXPECT_EQ(fast.pairs, slow.pairs);
  }
}

TEST(Ras, FewerThanTwoMessages) {
  EXPECT_DOUBLE_EQ(rank_agreement({}).normalized(), 0.0);
  const auto one = make_messages({{1.0, 0}});
  EXPECT_EQ(rank_agreement(one).pairs, 0u);
}

TEST(BatchGranularity, ComputesAggregates) {
  const std::vector<std::size_t> sizes{1, 1, 4, 2};
  const BatchGranularity g = BatchGranularity::from_batch_sizes(sizes);
  EXPECT_EQ(g.batch_count, 4u);
  EXPECT_EQ(g.message_count, 8u);
  EXPECT_EQ(g.largest_batch, 4u);
  EXPECT_DOUBLE_EQ(g.mean_batch_size, 2.0);
  EXPECT_DOUBLE_EQ(g.singleton_fraction, 0.25);
}

TEST(BatchGranularity, EmptyInput) {
  const BatchGranularity g = BatchGranularity::from_batch_sizes({});
  EXPECT_EQ(g.batch_count, 0u);
  EXPECT_DOUBLE_EQ(g.mean_batch_size, 0.0);
}

TEST(ClientWinLedger, TracksWinsAndRates) {
  ClientWinLedger ledger;
  const std::vector<ClientId> both{ClientId(1), ClientId(2)};
  ledger.record(ClientId(1), both);
  ledger.record(ClientId(1), both);
  ledger.record(ClientId(2), both);
  EXPECT_EQ(ledger.wins(ClientId(1)), 2u);
  EXPECT_EQ(ledger.wins(ClientId(2)), 1u);
  EXPECT_EQ(ledger.participations(ClientId(1)), 3u);
  EXPECT_NEAR(ledger.win_rate(ClientId(1)), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ledger.disparity(), 2.0, 1e-12);
}

TEST(ClientWinLedger, UnknownClientIsZero) {
  ClientWinLedger ledger;
  EXPECT_EQ(ledger.wins(ClientId(9)), 0u);
  EXPECT_DOUBLE_EQ(ledger.win_rate(ClientId(9)), 0.0);
}

TEST(SummaryStats, ComputesOrderStatistics) {
  std::vector<double> xs;
  for (int k = 1; k <= 100; ++k) xs.push_back(static_cast<double>(k));
  const SummaryStats s = SummaryStats::from_samples(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(SummaryStats, EmptyIsAllZero) {
  const SummaryStats s = SummaryStats::from_samples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace tommy::metrics
