// Chaos proof of merge replication: N shard nodes behind a router, a
// PRIMARY and a STANDBY MergeNode over the same uplinks (each publishing
// its released stream on a downlink), and one MergeSubscriber consuming
// the primary. The primary is killed mid-run; the subscriber cuts over
// to the standby and resumes from its watermark — and the spliced stream
// it ends up with must be BIT-IDENTICAL to the single-process
// kGlobalMerge oracle: no gap, no duplicate, no typed error, exactly as
// if the merge had never died.
//
// Variants: announce-only cutover (the primary dies before releasing
// anything, so the splice happens at a pure SafeTimeAnnounce barrier
// with an empty watermark), double failover (primary → standby → a
// merge restarted on the primary's endpoint), and a shard killed during
// the cutover (the standby loses an uplink mid-splice, its gate reverts
// to −infinity, and the epoch+1 restart's replay un-wedges it).
//
// SOAK_ITERS (env) repeats each scenario; CI runs 3.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/merge_node.hpp"
#include "dist/merge_subscriber.hpp"
#include "dist/shard_node.hpp"
#include "dist/topology.hpp"
#include "../net/wire_test_util.hpp"

namespace tommy::dist {
namespace {

using namespace tommy::net::testing;
using net::ByteStream;
using net::DistributionAnnouncement;
using net::FrontendTotals;
using net::HandshakeResult;
using net::perform_handshake;

int soak_iterations() {
  const char* env = std::getenv("SOAK_ITERS");
  if (env == nullptr) return 1;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 1;
}

/// Released OrderedBatches in the oracle's currency (epoch is
/// incarnation metadata, deliberately outside the comparison).
std::vector<CapturedBatch> captured_of(
    const std::vector<net::OrderedBatch>& released) {
  std::vector<CapturedBatch> out;
  out.reserve(released.size());
  for (const net::OrderedBatch& batch : released) {
    CapturedBatch captured;
    captured.shard = batch.node;
    captured.rank = batch.rank;
    captured.emitted_at = batch.emitted_at.seconds();
    captured.safe_time = batch.safe_time.seconds();
    for (const net::OrderedBatch::Entry& entry : batch.messages) {
      captured.messages.push_back(
          CapturedMessage{entry.id.value(), entry.client.value(),
                          entry.stamp.seconds(), entry.arrival.seconds()});
    }
    out.push_back(std::move(captured));
  }
  return out;
}

[[nodiscard]] std::shared_ptr<ByteStream> stream_client(
    const std::string& router_path, std::uint32_t client,
    const std::vector<Event>& events) {
  auto stream = net::connect_unix(router_path, net::RetryPolicy{});
  if (stream == nullptr) return nullptr;
  if (perform_handshake(*stream, DistributionAnnouncement{
                                     ClientId(client), summary_for(client)})
      != HandshakeResult::kAccepted) {
    return nullptr;
  }
  std::vector<std::uint8_t> bytes;
  for (const Event& e : events) {
    const auto frame = event_frame(client, e);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  if (!stream->write_all(bytes)) return nullptr;
  stream->close_write();
  return stream;
}

enum class Fault {
  /// Kill the primary merge between pump rounds (records in flight).
  kKillPrimaryMidRun,
  /// Kill the primary before ANY release: the cutover happens at a pure
  /// announce barrier, the subscriber's watermark still empty.
  kAnnounceOnlyCutover,
  /// Kill the primary, then the standby; a fresh merge restarted on the
  /// primary's downlink endpoint catches the second cutover.
  kDoubleFailover,
  /// Kill shard 0 together with the primary: the subscriber splices onto
  /// a standby whose gate is wedged at −infinity by the dead uplink,
  /// until the shard's epoch+1 restart replays and un-wedges it.
  kShardKilledDuringCutover,
};

/// The full replicated-merge scenario against the oracle.
void run_failover(std::uint32_t node_count, Fault fault, std::uint64_t seed) {
  const std::uint32_t kClients = 6;
  const int kPerClient = 12;
  const auto workload = make_workload(kClients, kPerClient, seed);

  const std::vector<CapturedBatch> oracle = run_direct(
      workload, core::ServiceConfig{}
                    .with_shards(node_count)
                    .with_drain_policy(core::DrainPolicy::kGlobalMerge));
  ASSERT_FALSE(oracle.empty());

  // ── Shard tier + router (as in multinode_soak) ───────────────────────
  std::vector<NodeEndpoints> endpoints(node_count);
  for (auto& e : endpoints) {
    e.ingest.unix_path = fresh_unix_path();
    e.uplink.unix_path = fresh_unix_path();
  }
  Topology topology(endpoints, ids(kClients));

  std::deque<core::ClientRegistry> registries;
  std::vector<std::unique_ptr<ShardNode>> nodes(node_count);
  auto start_node = [&](std::uint32_t node, std::uint64_t epoch,
                        core::ClientRegistry& registry) {
    ShardNodeConfig config;
    config.node = node;
    config.epoch = epoch;
    config.frontend = test_frontend_config();
    auto shard = std::make_unique<ShardNode>(registry,
                                             topology.partition(node), config);
    ASSERT_TRUE(shard->listen_ingest_unix(endpoints[node].ingest.unix_path));
    ASSERT_TRUE(shard->listen_uplink_unix(endpoints[node].uplink.unix_path));
    nodes[node] = std::move(shard);
  };
  for (std::uint32_t n = 0; n < node_count; ++n) {
    registries.push_back(make_registry(kClients));
    start_node(n, /*epoch=*/0, registries[n]);
  }

  RouterNode router(topology);
  const std::string router_path = fresh_unix_path();
  ASSERT_TRUE(router.listen_unix(router_path));

  // ── The replicated merge tier: primary + hot standby ─────────────────
  const std::string primary_downlink = fresh_unix_path();
  const std::string standby_downlink = fresh_unix_path();
  auto start_merge = [&](const std::string& downlink_path)
      -> std::unique_ptr<MergeNode> {
    auto merge = std::make_unique<MergeNode>(node_count);
    EXPECT_TRUE(merge->listen_downlink_unix(downlink_path));
    for (std::uint32_t n = 0; n < node_count; ++n) {
      EXPECT_TRUE(merge->connect_unix(n, endpoints[n].uplink.unix_path));
    }
    return merge;
  };
  auto primary = start_merge(primary_downlink);
  auto standby = start_merge(standby_downlink);

  MergeSubscriberConfig subscriber_config;
  subscriber_config.endpoints = {NodeAddress{primary_downlink, 0},
                                 NodeAddress{standby_downlink, 0}};
  // A dead endpoint mid-cycle should be skipped quickly, not outwaited.
  subscriber_config.retry.attempts = 3;
  subscriber_config.retry.base_delay = std::chrono::microseconds(500);
  MergeSubscriber subscriber(subscriber_config);
  subscriber.start();
  // The attach barrier proves the subscriber is wired to the primary
  // before any fault fires.
  ASSERT_TRUE(subscriber.wait_for_watermarks(1, 10000));

  // ── Clients stream their workloads through the router ────────────────
  std::vector<std::shared_ptr<ByteStream>> held_open(kClients);
  auto run_clients = [&](const std::vector<ClientId>& clients) {
    std::vector<std::thread> writers;
    for (ClientId c : clients) {
      writers.emplace_back([&, c] {
        std::shared_ptr<ByteStream> stream;
        while (stream == nullptr) {
          stream = stream_client(router_path, c.value(), workload[c.value()]);
        }
        held_open[c.value()] = std::move(stream);
      });
    }
    for (std::thread& writer : writers) writer.join();
  };
  auto await_ingest = [&](std::uint32_t node) {
    std::uint64_t submits = 0;
    std::uint64_t heartbeats = 0;
    for (ClientId c : topology.partition(node)) {
      for (const Event& e : workload[c.value()]) {
        e.is_heartbeat ? ++heartbeats : ++submits;
      }
    }
    ASSERT_TRUE(eventually([&] {
      const FrontendTotals t = nodes[node]->server().frontend().totals();
      return t.submits_in == submits && t.heartbeats_in == heartbeats;
    })) << "node " << node << " ingest incomplete";
  };
  run_clients(ids(kClients));
  for (std::uint32_t n = 0; n < node_count; ++n) await_ingest(n);

  // ── Pump rounds: both replicas consume, both release ─────────────────
  // Each live replica must stay a prefix of the oracle independently.
  std::vector<std::uint64_t> announce_target(node_count, 0);
  auto pump_round = [&](TimePoint now, bool flush_all,
                        std::vector<MergeNode*> merges) {
    for (std::uint32_t n = 0; n < node_count; ++n) {
      if (flush_all) {
        nodes[n]->pump_flush(now);
      } else {
        nodes[n]->pump(now);
      }
      ++announce_target[n];
    }
    for (MergeNode* merge : merges) {
      for (std::uint32_t n = 0; n < node_count; ++n) {
        ASSERT_TRUE(merge->wait_for_announces(n, announce_target[n], 10000))
            << "node " << n << " announce missing";
      }
      merge->release();
      const auto released = captured_of(merge->released());
      ASSERT_LE(released.size(), oracle.size());
      for (std::size_t i = 0; i < released.size(); ++i) {
        ASSERT_EQ(released[i], oracle[i]) << "replica diverged at " << i;
      }
    }
  };

  const auto schedule = poll_schedule();
  std::uint64_t expected_cutovers = 1;

  if (fault == Fault::kAnnounceOnlyCutover) {
    // The primary consumes the announces but is killed before its first
    // release: the subscriber has seen only the empty attach watermark
    // when the stream dies.
    pump_round(schedule[0], false, {standby.get()});
    for (std::uint32_t n = 0; n < node_count; ++n) {
      ASSERT_TRUE(primary->wait_for_announces(n, announce_target[n], 10000));
    }
    EXPECT_EQ(subscriber.released_count(), 0u);
    primary.reset();
    pump_round(schedule[1], false, {standby.get()});
  } else {
    pump_round(schedule[0], false, {primary.get(), standby.get()});
    pump_round(schedule[1], false, {primary.get(), standby.get()});
    // The subscriber has consumed some of the primary's stream (how much
    // is timing-dependent); the kill lands with records in flight.
    primary.reset();
  }

  if (fault == Fault::kShardKilledDuringCutover) {
    // The uplink cut lands while the subscriber is splicing onto the
    // standby: shard 0 dies with the primary, the standby's gate reverts
    // to −infinity for that slot, and nothing can release until the
    // epoch+1 incarnation replays its schedule.
    const std::uint64_t accepted_before = standby->peer(0).accepted;
    nodes[0].reset();
    ASSERT_TRUE(eventually([&] { return !standby->peer(0).connected; }));

    start_node(0, /*epoch=*/1, registries[0]);
    ASSERT_TRUE(standby->connect_unix(0, endpoints[0].uplink.unix_path));
    // The partition's clients lost their relays; they reconnect through
    // the router (connect_retry absorbs the restart window) and resend.
    run_clients(topology.partition(0));
    await_ingest(0);
    // Replay the schedule so far: rank collisions with the accepted
    // prefix are dropped, and the announces re-open the gate.
    nodes[0]->pump(schedule[0]);
    nodes[0]->pump(schedule[1]);
    announce_target[0] += 2;
    ASSERT_TRUE(standby->wait_for_announces(0, announce_target[0], 10000));
    const MergePeerStats stats = standby->peer(0);
    EXPECT_EQ(stats.error, MergeError::kNone);
    EXPECT_EQ(stats.epoch, 1u);
    EXPECT_EQ(stats.duplicates, accepted_before)
        << "replayed prefix must be dropped rank for rank";
  }

  pump_round(schedule[2], false, {standby.get()});

  std::unique_ptr<MergeNode> revived;
  if (fault == Fault::kDoubleFailover) {
    // The subscriber must have finished cutover #1 before the standby
    // dies, or it would see two dead endpoints and just cycle (which
    // works, but then cutovers is timing-dependent).
    ASSERT_TRUE(eventually(
        [&] { return subscriber.stats().cutovers >= 1; }, 10000));
    // Restart a merge on the PRIMARY's downlink endpoint (the address is
    // what the subscriber's cycle knows). Full uplink replay rebuilds
    // the identical released stream.
    revived = start_merge(primary_downlink);
    for (std::uint32_t n = 0; n < node_count; ++n) {
      ASSERT_TRUE(revived->wait_for_announces(n, announce_target[n], 10000));
    }
    revived->release();
    standby.reset();
    expected_cutovers = 2;
  }

  std::vector<MergeNode*> live;
  if (standby) live.push_back(standby.get());
  if (revived) live.push_back(revived.get());
  pump_round(schedule[3], false, live);
  pump_round(TimePoint(3.0), true, live);
  for (MergeNode* merge : live) merge->flush();

  // ── The verdict ──────────────────────────────────────────────────────
  ASSERT_TRUE(subscriber.wait_for_released(oracle.size(), 20000))
      << "subscriber stalled at " << subscriber.released_count() << "/"
      << oracle.size();
  const auto spliced = captured_of(subscriber.released());
  expect_equivalent(oracle, spliced);

  const MergeSubscriberStats stats = subscriber.stats();
  EXPECT_EQ(stats.error, SubscriberError::kNone);
  EXPECT_EQ(stats.cutovers, expected_cutovers);
  if (fault == Fault::kAnnounceOnlyCutover) {
    EXPECT_EQ(stats.duplicates, 0u)
        << "nothing was released before the splice, so nothing can replay";
  }
  for (MergeNode* merge : live) {
    for (std::uint32_t n = 0; n < node_count; ++n) {
      EXPECT_EQ(merge->peer(n).error, MergeError::kNone) << "node " << n;
    }
  }

  subscriber.stop();
  if (standby) standby->stop();
  if (revived) revived->stop();
  router.stop();
  for (auto& node : nodes) node->stop();
}

TEST(MergeFailoverSoak, PrimaryKilledMidRunTwoShards) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_failover(2, Fault::kKillPrimaryMidRun, 611 + iter);
  }
}

TEST(MergeFailoverSoak, PrimaryKilledMidRunFourShards) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_failover(4, Fault::kKillPrimaryMidRun, 722 + iter);
  }
}

TEST(MergeFailoverSoak, AnnounceOnlyCutoverSplicesAtEmptyWatermark) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_failover(2, Fault::kAnnounceOnlyCutover, 833 + iter);
  }
}

TEST(MergeFailoverSoak, DoubleFailoverPrimaryStandbyRevivedPrimary) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_failover(2, Fault::kDoubleFailover, 944 + iter);
  }
}

TEST(MergeFailoverSoak, ShardKilledDuringCutoverWedgesThenRecovers) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_failover(2, Fault::kShardKilledDuringCutover, 1055 + iter);
  }
}

}  // namespace
}  // namespace tommy::dist
