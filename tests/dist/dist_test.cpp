// Unit coverage for the dist tier's moving parts in isolation — the
// topology partition identity, the merge node's per-peer protocol state
// machine (duplicates, gaps, epochs, the frontier gate), and the relay
// splice — over in-process pipes; the end-to-end topology proof lives in
// multinode_soak_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "dist/merge_node.hpp"
#include "dist/merge_subscriber.hpp"
#include "dist/shard_node.hpp"
#include "dist/topology.hpp"
#include "net/framing.hpp"
#include "../net/wire_test_util.hpp"

namespace tommy::dist {
namespace {

using namespace tommy::net::testing;
using net::ByteStream;
using net::DistributionAnnouncement;
using net::OrderedBatch;
using net::SafeTimeAnnounce;
using net::WireMessage;
using net::encode_frame;
using net::make_pipe_pair;

// ── Topology ────────────────────────────────────────────────────────────

TEST(Topology, DefaultPartitionMatchesOracleService) {
  // The whole equivalence story rests on this identity: Topology's
  // default client→node map must equal the shard map a shard_count = N
  // service builds over the same clients.
  for (std::uint32_t nodes : {1u, 2u, 3u, 4u}) {
    const std::uint32_t clients = 7;
    core::ClientRegistry registry = make_registry(clients);
    core::FairOrderingService service(
        registry, ids(clients), core::ServiceConfig{}.with_shards(nodes));
    Topology topology(std::vector<NodeEndpoints>(nodes), ids(clients));
    for (std::uint32_t c = 0; c < clients; ++c) {
      EXPECT_EQ(topology.node_for(ClientId(c)), service.shard_of(ClientId(c)))
          << "client " << c << " with " << nodes << " nodes";
    }
  }
}

TEST(Topology, PartitionsPreserveClientOrderAndCoverEveryClient) {
  const std::uint32_t clients = 9;
  Topology topology(std::vector<NodeEndpoints>(3), ids(clients));
  std::size_t covered = 0;
  const auto parts = topology.partitions();
  ASSERT_EQ(parts.size(), 3u);
  for (std::uint32_t node = 0; node < 3; ++node) {
    EXPECT_EQ(parts[node], topology.partition(node));
    for (std::size_t i = 1; i < parts[node].size(); ++i) {
      EXPECT_LT(parts[node][i - 1].value(), parts[node][i].value());
    }
    for (ClientId c : parts[node]) {
      EXPECT_EQ(topology.node_for(c), node);
    }
    covered += parts[node].size();
  }
  EXPECT_EQ(covered, clients);
}

// ── MergeNode protocol state machine ────────────────────────────────────

OrderedBatch make_batch(std::uint32_t node, std::uint64_t epoch, Rank rank,
                        double safe_time) {
  OrderedBatch batch;
  batch.node = node;
  batch.epoch = epoch;
  batch.rank = rank;
  batch.safe_time = TimePoint(safe_time);
  batch.emitted_at = TimePoint(safe_time + 0.25);
  batch.messages = {OrderedBatch::Entry{
      ClientId(node), MessageId(rank), TimePoint(safe_time - 0.5),
      TimePoint(safe_time - 0.25)}};
  return batch;
}

std::vector<std::uint8_t> announce_of(std::uint32_t node, std::uint64_t epoch,
                                      double next_safe) {
  return encode_frame(
      WireMessage(SafeTimeAnnounce{node, epoch, TimePoint(next_safe)}));
}

struct MergeHarness {
  MergeNode merge;
  std::vector<std::shared_ptr<ByteStream>> uplinks;

  explicit MergeHarness(std::uint32_t nodes) : merge(nodes) {
    for (std::uint32_t n = 0; n < nodes; ++n) {
      auto [node_end, merge_end] = make_pipe_pair();
      merge.attach(n, merge_end);
      uplinks.push_back(node_end);
    }
  }

  void send(std::uint32_t node, const std::vector<std::uint8_t>& frame) {
    ASSERT_TRUE(uplinks[node]->write_all(frame));
  }

  void sync(std::uint32_t node, std::uint64_t epoch) {
    // A trailing announce with an unmistakable frontier doubles as a
    // FIFO barrier: once applied, everything sent before it has been
    // handled too.
    const std::uint64_t target = merge.peer(node).announces + 1;
    send(node, announce_of(node, epoch, 1e9));
    ASSERT_TRUE(merge.wait_for_announces(node, target, 5000));
  }
};

TEST(MergeNode, AcceptsDenseRanksAndDropsReplayedPrefix) {
  MergeHarness h(1);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 1, 2.0))));
  // A restarted incarnation replays rank 0 and 1, then continues with 2.
  h.send(0, encode_frame(WireMessage(make_batch(0, 1, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 1, 1, 2.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 1, 2, 3.0))));
  h.sync(0, 1);

  const MergePeerStats stats = h.merge.peer(0);
  EXPECT_EQ(stats.error, MergeError::kNone);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(h.merge.held_count(), 3u);
}

TEST(MergeNode, RankGapIsATypedProtocolError) {
  MergeHarness h(1);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 2, 3.0))));
  ASSERT_TRUE(eventually(
      [&] { return h.merge.peer(0).error == MergeError::kRankGap; }));
  const MergePeerStats stats = h.merge.peer(0);
  EXPECT_FALSE(stats.connected);
  EXPECT_EQ(stats.accepted, 1u);
  // A failed peer pins the gate: nothing releases past a broken stream.
  EXPECT_EQ(h.merge.release(), 0u);
}

TEST(MergeNode, StaleEpochFramesAreDropped) {
  MergeHarness h(1);
  h.send(0, announce_of(0, 2, 5.0));
  h.send(0, encode_frame(WireMessage(make_batch(0, 1, 0, 1.0))));
  h.send(0, announce_of(0, 1, 9.0));
  h.sync(0, 2);
  const MergePeerStats stats = h.merge.peer(0);
  EXPECT_EQ(stats.error, MergeError::kNone);
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.stale, 2u);
  // The stale announce must not have moved the frontier.
  EXPECT_EQ(stats.next_safe, TimePoint(1e9));
}

TEST(MergeNode, UnexpectedFrameKindIsATypedError) {
  MergeHarness h(1);
  h.send(0, encode_frame(WireMessage(net::Heartbeat{ClientId(1),
                                                    TimePoint(1.0)})));
  ASSERT_TRUE(eventually(
      [&] { return h.merge.peer(0).error == MergeError::kUnexpectedFrame; }));
}

TEST(MergeNode, SilentPeerPinsTheGate) {
  MergeHarness h(2);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.sync(0, 0);
  // Peer 1 has never announced: the gate is −infinity, nothing moves.
  EXPECT_EQ(h.merge.gate(),
            TimePoint(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(h.merge.release(), 0u);
  // Peer 1 speaks: the gate jumps to min(1e9, 3.0) and the held record
  // (safe_time 1.0 < 3.0) releases.
  h.send(1, announce_of(1, 0, 3.0));
  ASSERT_TRUE(h.merge.wait_for_announces(1, 1, 5000));
  EXPECT_EQ(h.merge.gate(), TimePoint(3.0));
  EXPECT_EQ(h.merge.release(), 1u);
  EXPECT_EQ(h.merge.released_count(), 1u);
}

TEST(MergeNode, DisconnectedPeerRevertsToBlocking) {
  MergeHarness h(2);
  h.sync(0, 0);
  h.send(1, announce_of(1, 0, 3.0));
  ASSERT_TRUE(h.merge.wait_for_announces(1, 1, 5000));
  EXPECT_EQ(h.merge.gate(), TimePoint(3.0));
  // Peer 1 goes away: its frontier promise dies with the connection.
  h.uplinks[1]->close_write();
  ASSERT_TRUE(eventually([&] { return !h.merge.peer(1).connected; }));
  EXPECT_EQ(h.merge.gate(),
            TimePoint(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(h.merge.release(), 0u);
}

TEST(MergeNode, ReleasesInSafeTimeNodeRankOrder) {
  MergeHarness h(2);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 2.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 1, 4.0))));
  h.send(1, encode_frame(WireMessage(make_batch(1, 0, 0, 1.0))));
  h.send(1, encode_frame(WireMessage(make_batch(1, 0, 1, 2.0))));
  h.sync(0, 0);
  h.sync(1, 0);
  // Gate is far out: everything releases, in (safe_time, node, rank)
  // order — the tie at safe_time 2.0 breaks on node index.
  EXPECT_EQ(h.merge.release(), 4u);
  const auto released = h.merge.released();
  ASSERT_EQ(released.size(), 4u);
  EXPECT_EQ(released[0].node, 1u);
  EXPECT_EQ(released[0].rank, 0u);
  EXPECT_EQ(released[1].node, 0u);  // safe_time 2.0 tie: node 0 first
  EXPECT_EQ(released[1].rank, 0u);
  EXPECT_EQ(released[2].node, 1u);
  EXPECT_EQ(released[2].rank, 1u);
  EXPECT_EQ(released[3].node, 0u);
  EXPECT_EQ(released[3].rank, 1u);
}

TEST(MergeNode, LargeHoldbackReleasesInExactSortedOrderAcrossRounds) {
  // The holdback is a binary min-heap on (safe_time, node, rank), not a
  // sorted sequence: each release round must still drain in the exact
  // order the old full stable_sort produced, including across rounds
  // that each take only a slice of a deep pre-seeded holdback.
  constexpr std::uint32_t kNodes = 3;
  constexpr std::size_t kPerNode = 700;
  MergeHarness h(kNodes);

  struct Key {
    double safe;
    std::uint32_t node;
    Rank rank;
  };
  std::vector<Key> oracle;
  std::mt19937_64 rng(41);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    double safe = 1.0;
    for (Rank rank = 0; rank < kPerNode; ++rank) {
      // Frequent zero increments manufacture safe-time ties within a
      // node (rank breaks them) and across nodes (node index breaks
      // them) — the cases where heap order could diverge from the
      // stable sort if keys were not unique.
      safe += 0.25 * static_cast<double>(rng() % 4);
      h.send(node, encode_frame(WireMessage(make_batch(node, 0, rank, safe))));
      oracle.push_back(Key{safe, node, rank});
    }
  }
  auto announce_and_wait = [&](std::uint32_t node, double frontier) {
    const std::uint64_t target = h.merge.peer(node).announces + 1;
    h.send(node, announce_of(node, 0, frontier));
    ASSERT_TRUE(h.merge.wait_for_announces(node, target, 5000));
  };
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    announce_and_wait(node, 0.5);  // barrier: all sends applied, gate shut
  }
  ASSERT_EQ(h.merge.held_count(), oracle.size());

  // Partial rounds against an advancing gate, then a flush of the rest.
  // Gates at quarters of the realized safe-time span keep every round a
  // strict slice regardless of what the rng produced.
  double max_safe = 0.0;
  for (const Key& k : oracle) max_safe = std::max(max_safe, k.safe);
  std::size_t released_total = 0;
  for (const double gate :
       {0.25 * max_safe, 0.5 * max_safe, 0.75 * max_safe}) {
    for (std::uint32_t node = 0; node < kNodes; ++node) {
      announce_and_wait(node, gate);
    }
    const std::size_t round = h.merge.release();
    EXPECT_GT(round, 0u);
    released_total += round;
  }
  EXPECT_LT(released_total, oracle.size());  // rounds were genuinely partial
  released_total += h.merge.flush();
  ASSERT_EQ(released_total, oracle.size());

  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const Key& lhs, const Key& rhs) {
                     if (lhs.safe != rhs.safe) return lhs.safe < rhs.safe;
                     if (lhs.node != rhs.node) return lhs.node < rhs.node;
                     return lhs.rank < rhs.rank;
                   });
  const auto released = h.merge.released();
  ASSERT_EQ(released.size(), oracle.size());
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_EQ(released[i].safe_time.seconds(), oracle[i].safe) << "row " << i;
    EXPECT_EQ(released[i].node, oracle[i].node) << "row " << i;
    EXPECT_EQ(released[i].rank, oracle[i].rank) << "row " << i;
  }
}

TEST(MergeNode, StrictGateHoldsRecordAtExactFrontier) {
  MergeHarness h(1);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 2.0))));
  h.send(0, announce_of(0, 0, 2.0));
  ASSERT_TRUE(h.merge.wait_for_announces(0, 1, 5000));
  // release_merged's gate is strict: safe_time < frontier, not <=.
  EXPECT_EQ(h.merge.release(), 0u);
  EXPECT_EQ(h.merge.held_count(), 1u);
  // flush ignores the gate.
  EXPECT_EQ(h.merge.flush(), 1u);
  EXPECT_EQ(h.merge.held_count(), 0u);
}

// ── RelaySet (over in-process pipes) ────────────────────────────────────

TEST(RelaySet, SplicesHandshakeAndTrafficBothWays) {
  auto [relay_up_end, upstream_end] = make_pipe_pair();
  net::RelaySet relays(
      [&, up = relay_up_end](const DistributionAnnouncement& announcement)
          -> std::shared_ptr<ByteStream> {
        EXPECT_EQ(announcement.client, ClientId(2));
        return up;
      });
  auto [client_end, relay_down_end] = make_pipe_pair();
  relays.adopt(relay_down_end);

  // Client writes its announce plus a coalesced message frame.
  auto bytes = announce_frame(2);
  const auto extra = message_frame(2, 7, 1.0);
  bytes.insert(bytes.end(), extra.begin(), extra.end());
  ASSERT_TRUE(client_end->write_all(bytes));

  // The upstream must observe the exact byte stream the client wrote.
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> chunk(4096);
  while (got.size() < bytes.size()) {
    const auto n = upstream_end->read_some(chunk);
    ASSERT_TRUE(n.has_value());
    ASSERT_GT(*n, 0u);
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(*n));
  }
  EXPECT_EQ(got, bytes);

  // Backward direction: upstream frames reach the client.
  const auto ack = encode_frame(WireMessage(net::HandshakeAck{1}));
  ASSERT_TRUE(upstream_end->write_all(ack));
  std::vector<std::uint8_t> back(ack.size());
  std::size_t read = 0;
  while (read < back.size()) {
    const auto n = client_end->read_some(
        std::span<std::uint8_t>(back.data() + read, back.size() - read));
    ASSERT_TRUE(n.has_value());
    ASSERT_GT(*n, 0u);
    read += *n;
  }
  EXPECT_EQ(back, ack);

  EXPECT_EQ(relays.adopted_total(), 1u);
  EXPECT_EQ(relays.handshake_failures(), 0u);
  relays.stop();
}

TEST(RelaySet, DropsDownstreamWhoseFirstFrameIsNotAnAnnouncement) {
  net::RelaySet relays([](const DistributionAnnouncement&)
                           -> std::shared_ptr<ByteStream> {
    ADD_FAILURE() << "dial must not run without a handshake";
    return nullptr;
  });
  auto [client_end, relay_down_end] = make_pipe_pair();
  relays.adopt(relay_down_end);
  ASSERT_TRUE(client_end->write_all(message_frame(1, 1, 1.0)));
  ASSERT_TRUE(eventually([&] { return relays.handshake_failures() == 1; }));
  // The downstream is torn down: reads drain to EOF.
  std::vector<std::uint8_t> chunk(16);
  const auto n = client_end->read_some(chunk);
  EXPECT_TRUE(!n.has_value() || *n == 0);
  relays.stop();
}

TEST(RelaySet, CountsDialFailuresAndDropsTheDownstream) {
  net::RelaySet relays([](const DistributionAnnouncement&)
                           -> std::shared_ptr<ByteStream> { return nullptr; });
  auto [client_end, relay_down_end] = make_pipe_pair();
  relays.adopt(relay_down_end);
  ASSERT_TRUE(client_end->write_all(announce_frame(1)));
  ASSERT_TRUE(eventually([&] { return relays.dial_failures() == 1; }));
  EXPECT_EQ(relays.handshake_failures(), 0u);
  relays.stop();
}

TEST(RelaySet, UpstreamDeathTearsTheDownstreamDown) {
  auto [relay_up_end, upstream_end] = make_pipe_pair();
  net::RelaySet relays(
      [up = relay_up_end](const DistributionAnnouncement&) { return up; });
  auto [client_end, relay_down_end] = make_pipe_pair();
  relays.adopt(relay_down_end);
  ASSERT_TRUE(client_end->write_all(announce_frame(1)));
  // Wait until the splice is up (upstream saw the handshake), then kill
  // the upstream: the client's connection must die too, so it
  // reconnects instead of writing into a void.
  std::vector<std::uint8_t> chunk(4096);
  ASSERT_TRUE(upstream_end->read_some(chunk).has_value());
  upstream_end->shutdown();
  ASSERT_TRUE(eventually([&] {
    const auto n = client_end->read_some(chunk);
    return !n.has_value() || *n == 0;
  }));
  relays.stop();
}

// ── ShardNode uplink basics ─────────────────────────────────────────────

TEST(ShardNode, LateSubscriberReplaysTheFullRetainedStream) {
  const std::uint32_t clients = 2;
  core::ClientRegistry registry = make_registry(clients);
  ShardNodeConfig config;
  config.node = 0;
  config.frontend = test_frontend_config();
  ShardNode node(registry, ids(clients), config);
  const std::string uplink_path = fresh_unix_path();
  ASSERT_TRUE(node.listen_uplink_unix(uplink_path));

  // Drive ingest directly through the service (in-process), then pump.
  {
    auto session = node.service().open_session(ClientId(0));
    session.submit(TimePoint(1.0), MessageId(1), TimePoint(1.0005));
    session.heartbeat(TimePoint(1.2), TimePoint(1.2005));
    auto other = node.service().open_session(ClientId(1));
    other.heartbeat(TimePoint(1.2), TimePoint(1.2005));
  }
  node.pump(TimePoint(2.0));
  EXPECT_EQ(node.announces_published(), 1u);
  const std::size_t retained = node.frames_retained();
  EXPECT_GE(retained, 2u);  // ≥1 batch + 1 announce

  // A merge connecting AFTER the pump must still see everything.
  MergeNode merge(1);
  ASSERT_TRUE(merge.connect_unix(0, uplink_path));
  ASSERT_TRUE(merge.wait_for_announces(0, 1, 5000));
  EXPECT_EQ(merge.peer(0).accepted, retained - 1);
  EXPECT_EQ(merge.flush(), retained - 1);
  merge.stop();
  node.stop();
}

// ── Merge replication: watermark, downlink, stall watchdog ──────────────

TEST(MergeNode, WatermarkTracksTheLastReleasedCursor) {
  MergeHarness h(1);
  // Nothing released: the empty watermark.
  EXPECT_EQ(h.merge.watermark(), net::MergeWatermark{});
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 1, 2.0))));
  h.sync(0, 0);
  EXPECT_EQ(h.merge.release(), 2u);
  const net::MergeWatermark watermark = h.merge.watermark();
  EXPECT_EQ(watermark.released, 2u);
  EXPECT_EQ(watermark.node, 0u);
  EXPECT_EQ(watermark.rank, 1u);
  EXPECT_EQ(watermark.safe_time, TimePoint(2.0));
}

TEST(MergeNode, DownlinkReplaysBacklogThenAttachBarrierThenLive) {
  MergeHarness h(1);
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 1, 2.0))));
  h.sync(0, 0);
  EXPECT_EQ(h.merge.release(), 2u);

  const std::string downlink_path = fresh_unix_path();
  ASSERT_TRUE(h.merge.listen_downlink_unix(downlink_path));
  auto stream = net::connect_unix(downlink_path, net::RetryPolicy{});
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(eventually(
      [&] { return h.merge.downlink_subscriber_count() == 1; }));

  // One more release lands live after the attach.
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 2, 3.0))));
  h.sync(0, 0);
  EXPECT_EQ(h.merge.release(), 1u);

  // Expected frame sequence: replayed backlog (batch 0, batch 1,
  // watermark@2), the fresh attach barrier (watermark@2 again), then the
  // live tail (batch 2, watermark@3).
  std::vector<WireMessage> got;
  net::FrameDecoder decoder;
  std::vector<std::uint8_t> chunk(4096);
  while (got.size() < 6) {
    const auto n = stream->read_some(chunk);
    ASSERT_TRUE(n.has_value());
    ASSERT_GT(*n, 0u);
    decoder.append(std::span<const std::uint8_t>(chunk.data(), *n));
    while (auto payload = decoder.next()) {
      auto message = net::decode(*payload);
      ASSERT_TRUE(message.has_value());
      got.push_back(std::move(*message));
    }
  }
  ASSERT_EQ(got.size(), 6u);
  for (std::size_t i : {0u, 1u, 4u}) {
    ASSERT_TRUE(std::holds_alternative<net::OrderedBatch>(got[i]))
        << "frame " << i;
  }
  EXPECT_EQ(std::get<net::OrderedBatch>(got[0]).rank, 0u);
  EXPECT_EQ(std::get<net::OrderedBatch>(got[1]).rank, 1u);
  EXPECT_EQ(std::get<net::OrderedBatch>(got[4]).rank, 2u);
  for (std::size_t i : {2u, 3u, 5u}) {
    ASSERT_TRUE(std::holds_alternative<net::MergeWatermark>(got[i]))
        << "frame " << i;
  }
  EXPECT_EQ(std::get<net::MergeWatermark>(got[2]).released, 2u);
  EXPECT_EQ(std::get<net::MergeWatermark>(got[3]).released, 2u);
  const auto& live = std::get<net::MergeWatermark>(got[5]);
  EXPECT_EQ(live.released, 3u);
  EXPECT_EQ(live.rank, 2u);
  EXPECT_EQ(live.safe_time, TimePoint(3.0));
  h.merge.stop();
}

TEST(MergeNode, WatchdogFlagsStalledPeerAndTrafficClearsIt) {
  MergeConfig config;
  config.staleness_budget = std::chrono::milliseconds(25);
  config.watchdog_interval = std::chrono::milliseconds(2);
  MergeNode merge(1, config);
  auto [node_end, merge_end] = net::make_pipe_pair();
  merge.attach(0, merge_end);

  // A connected-but-never-heard peer is not "stalled" — it has no
  // last-heard to be stale relative to (its frontier already pins the
  // gate at −infinity).
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(merge.peer(0).stalled);
  EXPECT_EQ(merge.peer(0).state, MergePeerState::kNeverHeard);
  EXPECT_TRUE(std::isinf(merge.peer(0).since_heard_seconds));

  ASSERT_TRUE(node_end->write_all(announce_of(0, 0, 3.0)));
  ASSERT_TRUE(merge.wait_for_announces(0, 1, 5000));
  EXPECT_LT(merge.peer(0).since_heard_seconds, 1.0);
  // Silence past the budget: the watchdog surfaces the stall…
  ASSERT_TRUE(eventually([&] { return merge.peer(0).stalled; }));
  const MergePeerStats stalled = merge.peer(0);
  EXPECT_TRUE(stalled.connected);
  EXPECT_EQ(stalled.state, MergePeerState::kPeerStalled);
  EXPECT_EQ(stalled.error, MergeError::kNone);
  // …but never speculates: the last announced frontier still gates.
  EXPECT_EQ(merge.gate(), TimePoint(3.0));

  // Any frame clears the verdict.
  ASSERT_TRUE(node_end->write_all(announce_of(0, 0, 4.0)));
  ASSERT_TRUE(eventually([&] { return !merge.peer(0).stalled; }));
  EXPECT_EQ(merge.peer(0).state, MergePeerState::kLive);
  EXPECT_EQ(merge.gate(), TimePoint(4.0));

  // Tearing the peer's stream down demotes the verdict to disconnected
  // (the gate reverts to −infinity blocking, not to speculation).
  node_end->close_write();
  node_end->shutdown();
  ASSERT_TRUE(eventually([&] { return !merge.peer(0).connected; }));
  EXPECT_EQ(merge.peer(0).state, MergePeerState::kDisconnected);
  merge.stop();
}

// ── ShardNode retention cap and self-clocking pump ──────────────────────

TEST(ShardNode, RetentionCapBoundsBacklogAndRefusesLateSubscribers) {
  core::ClientRegistry registry = make_registry(1);
  ShardNodeConfig config;
  config.frontend = test_frontend_config();
  config.replay_retention_cap = 4;
  ShardNode node(registry, ids(1), config);
  const std::string uplink_path = fresh_unix_path();
  ASSERT_TRUE(node.listen_uplink_unix(uplink_path));

  // Eight empty pumps publish eight announce frames: four past the cap.
  for (int k = 0; k < 8; ++k) node.pump(TimePoint(1.0));
  EXPECT_EQ(node.frames_retained(), 4u);
  EXPECT_EQ(node.frames_truncated(), 4u);

  // A merge attaching now cannot be replayed from frame zero: typed
  // refusal, not a silent gap.
  MergeNode merge(1);
  ASSERT_TRUE(merge.connect_unix(0, uplink_path));
  ASSERT_TRUE(eventually(
      [&] { return merge.peer(0).error == MergeError::kReplayTruncated; }));
  EXPECT_FALSE(merge.peer(0).connected);
  merge.stop();
  node.stop();
}

TEST(ShardNode, SubscriberAttachedBeforeTruncationKeepsItsLiveStream) {
  core::ClientRegistry registry = make_registry(1);
  ShardNodeConfig config;
  config.frontend = test_frontend_config();
  config.replay_retention_cap = 2;
  ShardNode node(registry, ids(1), config);
  const std::string uplink_path = fresh_unix_path();
  ASSERT_TRUE(node.listen_uplink_unix(uplink_path));

  MergeNode merge(1);
  ASSERT_TRUE(merge.connect_unix(0, uplink_path));
  ASSERT_TRUE(eventually([&] { return node.subscriber_count() == 1; }));
  // Truncation happens under the attached subscriber: it already
  // consumed those frames live, so its stream stays healthy.
  for (int k = 0; k < 6; ++k) node.pump(TimePoint(1.0));
  ASSERT_TRUE(merge.wait_for_announces(0, 6, 5000));
  EXPECT_GT(node.frames_truncated(), 0u);
  EXPECT_EQ(merge.peer(0).error, MergeError::kNone);
  EXPECT_EQ(merge.peer(0).announces, 6u);
  merge.stop();
  node.stop();
}

TEST(ShardNode, SelfClockingPumpAnnouncesAndFlushesOnStop) {
  core::ClientRegistry registry = make_registry(1);
  ShardNodeConfig config;
  config.frontend = test_frontend_config();
  config.pump_interval = std::chrono::microseconds(500);
  // Manual clock pinned before the message's stamp: the held message
  // cannot emit until the shutdown flush.
  std::atomic<double> now{1.0};
  config.pump_clock = [&now] { return TimePoint(now.load()); };
  ShardNode node(registry, ids(1), config);

  {
    auto session = node.service().open_session(ClientId(0));
    session.submit(TimePoint(5.0), MessageId(1), TimePoint(5.0005));
  }

  EXPECT_FALSE(node.pump_running());
  node.start_pump();
  EXPECT_TRUE(node.pump_running());
  ASSERT_TRUE(eventually([&] { return node.announces_published() >= 3; }));
  // Gate pinned at 1.0: every pump so far was announce-only.
  EXPECT_EQ(node.frames_retained(), node.announces_published());

  node.stop_pump();
  EXPECT_FALSE(node.pump_running());
  // stop_pump's trailing flush drained the held message: exactly one
  // batch frame beyond the announces.
  EXPECT_EQ(node.frames_retained(), node.announces_published() + 1);

  // The pump can restart after a clean stop.
  node.start_pump();
  EXPECT_TRUE(node.pump_running());
  node.stop();
  EXPECT_FALSE(node.pump_running());
}

// ── MergeSubscriber protocol errors (hand-fed downlink) ─────────────────

/// A bare downlink endpoint whose test owns the server side of the
/// first accepted connection.
struct DownlinkStub {
  std::mutex mutex;
  std::condition_variable cv;
  std::shared_ptr<ByteStream> server;
  net::StreamAcceptor acceptor;
  std::string path = fresh_unix_path();

  DownlinkStub()
      : acceptor([this](std::shared_ptr<ByteStream> stream) {
          std::lock_guard<std::mutex> lock(mutex);
          server = std::move(stream);
          cv.notify_all();
        }) {
    EXPECT_TRUE(acceptor.listen_unix(path));
  }

  [[nodiscard]] std::shared_ptr<ByteStream> accept() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(5),
                [this] { return server != nullptr; });
    return server;
  }
};

TEST(MergeSubscriber, OrderViolationIsTerminalNotACutover) {
  DownlinkStub stub;
  MergeSubscriberConfig config;
  config.endpoints = {NodeAddress{stub.path, 0}};
  MergeSubscriber subscriber(config);
  subscriber.start();
  auto server = stub.accept();
  ASSERT_NE(server, nullptr);

  // A record at safe_time 2.0, then one at 1.0 — released order must be
  // ascending, so the replica is lying. No attach watermark excuses it
  // (this subscriber never consumed anything before this connection).
  ASSERT_TRUE(server->write_all(
      encode_frame(WireMessage(make_batch(0, 0, 0, 2.0)))));
  ASSERT_TRUE(subscriber.wait_for_released(1, 5000));
  ASSERT_TRUE(server->write_all(
      encode_frame(WireMessage(make_batch(0, 0, 1, 1.0)))));
  ASSERT_TRUE(eventually([&] {
    return subscriber.stats().error == SubscriberError::kOrderViolation;
  }));
  const MergeSubscriberStats stats = subscriber.stats();
  EXPECT_FALSE(stats.connected);
  EXPECT_EQ(stats.cutovers, 0u);
  EXPECT_EQ(subscriber.released_count(), 1u);
  subscriber.stop();
}

TEST(MergeSubscriber, UnexpectedFrameKindIsATypedError) {
  DownlinkStub stub;
  MergeSubscriberConfig config;
  config.endpoints = {NodeAddress{stub.path, 0}};
  MergeSubscriber subscriber(config);
  subscriber.start();
  auto server = stub.accept();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->write_all(encode_frame(
      WireMessage(net::Heartbeat{ClientId(1), TimePoint(1.0)}))));
  ASSERT_TRUE(eventually([&] {
    return subscriber.stats().error == SubscriberError::kUnexpectedFrame;
  }));
  subscriber.stop();
}

TEST(MergeSubscriber, WatermarkAheadOfTheDeliveredStreamIsAViolation) {
  DownlinkStub stub;
  MergeSubscriberConfig config;
  config.endpoints = {NodeAddress{stub.path, 0}};
  MergeSubscriber subscriber(config);
  subscriber.start();
  auto server = stub.accept();
  ASSERT_NE(server, nullptr);
  // A barrier claiming 3 releases on a stream that delivered none:
  // records were lost ahead of their watermark.
  net::MergeWatermark watermark;
  watermark.released = 3;
  ASSERT_TRUE(server->write_all(encode_frame(WireMessage(watermark))));
  ASSERT_TRUE(eventually([&] {
    return subscriber.stats().error == SubscriberError::kOrderViolation;
  }));
  subscriber.stop();
}

TEST(MergeSubscriber, ConsumesLiveDownlinkWithWatermarks) {
  MergeHarness h(1);
  const std::string downlink_path = fresh_unix_path();
  ASSERT_TRUE(h.merge.listen_downlink_unix(downlink_path));

  MergeSubscriberConfig config;
  config.endpoints = {NodeAddress{downlink_path, 0}};
  MergeSubscriber subscriber(config);
  subscriber.start();
  // The attach barrier: an empty watermark before anything releases.
  ASSERT_TRUE(subscriber.wait_for_watermarks(1, 5000));
  EXPECT_EQ(subscriber.watermark(), net::MergeWatermark{});

  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 0, 1.0))));
  h.send(0, encode_frame(WireMessage(make_batch(0, 0, 1, 2.0))));
  h.sync(0, 0);
  EXPECT_EQ(h.merge.release(), 2u);
  ASSERT_TRUE(subscriber.wait_for_released(2, 5000));
  EXPECT_EQ(subscriber.watermark(), h.merge.watermark());
  const MergeSubscriberStats stats = subscriber.stats();
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.error, SubscriberError::kNone);
  EXPECT_EQ(stats.duplicates, 0u);
  subscriber.stop();
  h.merge.stop();
}

}  // namespace
}  // namespace tommy::dist
