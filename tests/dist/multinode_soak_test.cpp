// End-to-end proof of the distributed topology: N shard nodes behind a
// router, one merge node over the uplinks, driven by real client
// connections over real Unix sockets — and the released global stream
// must be BIT-IDENTICAL to the single-process kGlobalMerge oracle over
// the same workload. The kill/restart scenario additionally proves the
// resume protocol: a shard node dying mid-run and coming back as a new
// incarnation (epoch + 1) replays its ingest, the merge drops the
// replayed prefix as duplicates, and the final stream is unchanged.
//
// SOAK_ITERS (env) repeats each scenario; CI runs 3.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "dist/merge_node.hpp"
#include "dist/shard_node.hpp"
#include "dist/topology.hpp"
#include "../net/wire_test_util.hpp"

namespace tommy::dist {
namespace {

using namespace tommy::net::testing;
using net::ByteStream;
using net::DistributionAnnouncement;
using net::FrontendTotals;
using net::HandshakeResult;
using net::perform_handshake;

int soak_iterations() {
  const char* env = std::getenv("SOAK_ITERS");
  if (env == nullptr) return 1;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 1;
}

/// Released OrderedBatches in the oracle's currency (epoch is
/// incarnation metadata, deliberately outside the comparison).
std::vector<CapturedBatch> captured_of(
    const std::vector<net::OrderedBatch>& released) {
  std::vector<CapturedBatch> out;
  out.reserve(released.size());
  for (const net::OrderedBatch& batch : released) {
    CapturedBatch captured;
    captured.shard = batch.node;
    captured.rank = batch.rank;
    captured.emitted_at = batch.emitted_at.seconds();
    captured.safe_time = batch.safe_time.seconds();
    for (const net::OrderedBatch::Entry& entry : batch.messages) {
      captured.messages.push_back(
          CapturedMessage{entry.id.value(), entry.client.value(),
                          entry.stamp.seconds(), entry.arrival.seconds()});
    }
    out.push_back(std::move(captured));
  }
  return out;
}

struct PartitionTotals {
  std::uint64_t submits{0};
  std::uint64_t heartbeats{0};
};

PartitionTotals count_partition(
    const std::vector<std::vector<Event>>& workload,
    const std::vector<ClientId>& partition) {
  PartitionTotals totals;
  for (ClientId c : partition) {
    for (const Event& e : workload[c.value()]) {
      if (e.is_heartbeat) {
        ++totals.heartbeats;
      } else {
        ++totals.submits;
      }
    }
  }
  return totals;
}

/// One client incarnation: connect through the router, join-handshake,
/// stream every event, half-close. The returned stream is kept alive by
/// the caller so the server side sees a quiet-but-open peer (the oracle
/// never retires clients either). False on any transport hiccup — the
/// caller retries the whole incarnation, which is exactly the resend
/// protocol a real client follows after a relay teardown.
[[nodiscard]] std::shared_ptr<ByteStream> stream_client(
    const std::string& router_path, std::uint32_t client,
    const std::vector<Event>& events) {
  auto stream = net::connect_unix(router_path, net::RetryPolicy{});
  if (stream == nullptr) return nullptr;
  if (perform_handshake(*stream, DistributionAnnouncement{
                                     ClientId(client), summary_for(client)})
      != HandshakeResult::kAccepted) {
    return nullptr;
  }
  std::vector<std::uint8_t> bytes;
  for (const Event& e : events) {
    const auto frame = event_frame(client, e);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  if (!stream->write_all(bytes)) return nullptr;
  stream->close_write();
  return stream;
}

/// The full scenario. `kill_node` < node_count kills that shard node
/// after the second pump round and restarts it as epoch 1 on the same
/// endpoints; node_count == kill_node disables the fault.
void run_scenario(std::uint32_t node_count, std::uint32_t kill_node,
                  std::uint64_t seed) {
  const std::uint32_t kClients = 6;
  const int kPerClient = 12;
  const auto workload = make_workload(kClients, kPerClient, seed);

  // The oracle: same clients, same events, one process, N shards, global
  // merge. Everything below must reproduce this byte for byte.
  const std::vector<CapturedBatch> oracle = run_direct(
      workload, core::ServiceConfig{}
                    .with_shards(node_count)
                    .with_drain_policy(core::DrainPolicy::kGlobalMerge));
  ASSERT_FALSE(oracle.empty());

  // ── Deployment ────────────────────────────────────────────────────────
  std::vector<NodeEndpoints> endpoints(node_count);
  for (auto& e : endpoints) {
    e.ingest.unix_path = fresh_unix_path();
    e.uplink.unix_path = fresh_unix_path();
  }
  Topology topology(endpoints, ids(kClients));

  // One registry per node, as in a real deployment: every node primes
  // over the full client set from its own copy of the shared config.
  std::deque<core::ClientRegistry> registries;
  std::vector<std::unique_ptr<ShardNode>> nodes;
  auto start_node = [&](std::uint32_t node, std::uint64_t epoch,
                        core::ClientRegistry& registry) {
    ShardNodeConfig config;
    config.node = node;
    config.epoch = epoch;
    config.frontend = test_frontend_config();
    auto shard = std::make_unique<ShardNode>(
        registry, topology.partition(node), config);
    ASSERT_TRUE(shard->listen_ingest_unix(endpoints[node].ingest.unix_path));
    ASSERT_TRUE(shard->listen_uplink_unix(endpoints[node].uplink.unix_path));
    nodes[node] = std::move(shard);
  };
  nodes.resize(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    registries.push_back(make_registry(kClients));
    start_node(n, /*epoch=*/0, registries[n]);
  }

  RouterNode router(topology);
  const std::string router_path = fresh_unix_path();
  ASSERT_TRUE(router.listen_unix(router_path));

  MergeNode merge(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    ASSERT_TRUE(merge.connect_unix(n, endpoints[n].uplink.unix_path));
  }

  // ── Clients stream their full workloads through the router ───────────
  std::vector<std::shared_ptr<ByteStream>> held_open(kClients);
  auto run_clients = [&](const std::vector<ClientId>& clients) {
    std::vector<std::thread> writers;
    for (ClientId c : clients) {
      writers.emplace_back([&, c] {
        std::shared_ptr<ByteStream> stream;
        while (stream == nullptr) {
          stream = stream_client(router_path, c.value(),
                                 workload[c.value()]);
        }
        held_open[c.value()] = std::move(stream);
      });
    }
    for (std::thread& writer : writers) writer.join();
  };
  run_clients(ids(kClients));

  // Barrier: every node has decoded and dispatched its whole partition
  // (the oracle ingests everything before its first poll, so must we).
  auto await_ingest = [&](std::uint32_t node) {
    const PartitionTotals expected =
        count_partition(workload, topology.partition(node));
    ASSERT_TRUE(eventually([&] {
      const FrontendTotals t = nodes[node]->server().frontend().totals();
      return t.submits_in == expected.submits
             && t.heartbeats_in == expected.heartbeats;
    })) << "node " << node << " ingest incomplete";
  };
  for (std::uint32_t n = 0; n < node_count; ++n) await_ingest(n);

  // ── Pump rounds on the shared schedule ────────────────────────────────
  // After each round the released stream must be a PREFIX of the oracle:
  // the merge may (legitimately) still be holding what the oracle's gate
  // released, but may never release anything else or reorder.
  std::vector<std::uint64_t> announce_target(node_count, 0);
  auto pump_round = [&](TimePoint now, bool flush_all) {
    for (std::uint32_t n = 0; n < node_count; ++n) {
      if (flush_all) {
        nodes[n]->pump_flush(now);
      } else {
        nodes[n]->pump(now);
      }
      ++announce_target[n];
    }
    for (std::uint32_t n = 0; n < node_count; ++n) {
      // FIFO uplink: the announce landing implies every batch the pump
      // emitted before it landed too.
      ASSERT_TRUE(merge.wait_for_announces(n, announce_target[n], 10000))
          << "node " << n << " announce missing";
    }
    merge.release();
    const auto released = captured_of(merge.released());
    ASSERT_LE(released.size(), oracle.size());
    for (std::size_t i = 0; i < released.size(); ++i) {
      ASSERT_EQ(released[i], oracle[i])
          << "divergence from oracle at released batch " << i;
    }
  };

  const auto schedule = poll_schedule();
  pump_round(schedule[0], false);
  pump_round(schedule[1], false);

  // ── Fault: kill one shard node mid-run, restart as epoch 1 ────────────
  if (kill_node < node_count) {
    const std::uint64_t accepted_before = merge.peer(kill_node).accepted;
    nodes[kill_node].reset();  // uplink + ingest die hard
    ASSERT_TRUE(
        eventually([&] { return !merge.peer(kill_node).connected; }));

    start_node(kill_node, /*epoch=*/1, registries[kill_node]);
    ASSERT_TRUE(merge.connect_unix(kill_node,
                                   endpoints[kill_node].uplink.unix_path));
    // The partition's clients lost their relays; they reconnect through
    // the router and resend from scratch (the client resend protocol).
    run_clients(topology.partition(kill_node));
    await_ingest(kill_node);
    // The new incarnation replays the whole schedule so far; its ranks
    // collide with the accepted prefix and the merge drops them.
    nodes[kill_node]->pump(schedule[0]);
    ++announce_target[kill_node];
    nodes[kill_node]->pump(schedule[1]);
    ++announce_target[kill_node];
    ASSERT_TRUE(merge.wait_for_announces(kill_node,
                                         announce_target[kill_node], 10000));
    const MergePeerStats stats = merge.peer(kill_node);
    EXPECT_EQ(stats.error, MergeError::kNone);
    EXPECT_EQ(stats.epoch, 1u);
    EXPECT_EQ(stats.duplicates, accepted_before)
        << "replayed prefix must be dropped rank for rank";
  }

  pump_round(schedule[2], false);
  pump_round(schedule[3], false);
  // Shutdown drain: the trailing announce carries an infinite frontier,
  // so the gate opens fully; flush() backstops records whose safe_time
  // is itself infinite (strict < can never pass those).
  pump_round(TimePoint(3.0), true);
  merge.flush();

  // ── The verdict: bit-identical to the oracle, no protocol errors ──────
  const auto released = captured_of(merge.released());
  expect_equivalent(oracle, released);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const MergePeerStats stats = merge.peer(n);
    EXPECT_EQ(stats.error, MergeError::kNone) << "node " << n;
    EXPECT_EQ(stats.stale, 0u) << "node " << n;
    if (n != kill_node) {
      EXPECT_EQ(stats.duplicates, 0u) << "node " << n;
    }
  }

  merge.stop();
  router.stop();
  for (auto& node : nodes) {
    if (node) node->stop();
  }
}

TEST(MultinodeSoak, SingleNodeMatchesOracle) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_scenario(/*node_count=*/1, /*kill_node=*/1, /*seed=*/101 + iter);
  }
}

TEST(MultinodeSoak, TwoNodesMatchOracle) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_scenario(/*node_count=*/2, /*kill_node=*/2, /*seed=*/202 + iter);
  }
}

TEST(MultinodeSoak, FourNodesMatchOracle) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_scenario(/*node_count=*/4, /*kill_node=*/4, /*seed=*/303 + iter);
  }
}

TEST(MultinodeSoak, ShardNodeKillRestartIsInvisibleInTheMergedStream) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_scenario(/*node_count=*/2, /*kill_node=*/0, /*seed=*/404 + iter);
  }
}

TEST(MultinodeSoak, KillRestartUnderFourNodes) {
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    run_scenario(/*node_count=*/4, /*kill_node=*/2, /*seed=*/505 + iter);
  }
}

}  // namespace
}  // namespace tommy::dist
