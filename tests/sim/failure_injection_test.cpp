// Failure injection on the full online pipeline (§3.5's liveness
// trade-off, end to end): a client that stops sending messages AND
// heartbeats mid-run. Without a silence timeout the sequencer must stall
// (strict fairness); with one, it must recover and drain the stream.
#include <gtest/gtest.h>

#include <set>

#include "sim/online_runner.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"

namespace tommy::sim {
namespace {

using namespace tommy::literals;

/// Workload where client 0 goes silent after `fail_at`: its later events
/// are dropped (the process crashed).
std::vector<GenEvent> workload_with_failure(const Population& pop,
                                            TimePoint fail_at, Rng& rng) {
  const auto all = poisson_workload(pop.ids(), 600, 100_us, rng);
  std::vector<GenEvent> events;
  for (const GenEvent& e : all) {
    if (e.client == ClientId(0) && e.true_time > fail_at) continue;
    events.push_back(e);
  }
  return events;
}

TEST(FailureInjection, SilentClientStallsStrictSequencer) {
  Rng rng(3);
  const Population pop = gaussian_population(8, 30e-6, rng);
  const auto events = workload_with_failure(pop, TimePoint(0.01), rng);

  // Strict config: no silence timeout. Heartbeats are only generated
  // while a client is alive, which run_online models for messages but
  // not heartbeats — so emulate the crash by a finite horizon and verify
  // the tail stays buffered… the cleanest check: the OnlineSequencer
  // cannot emit anything once client 0's frontier stops advancing.
  //
  // Here we use the runner with heartbeats enabled for all clients; to
  // model the crash at the heartbeat level we set the timeout to infinity
  // and expect full emission (control), then repeat with client 0 truly
  // silent at the sequencer level (unit-style) in the next test.
  OnlineRunConfig config;
  config.sequencer.client_silence_timeout = Duration::infinity();
  config.drain = 100_ms;
  Rng run_rng(4);
  const OnlineRunResult control = run_online(pop, events, config, run_rng);
  EXPECT_EQ(control.unemitted_messages, 0u);  // heartbeats keep it live
}

TEST(FailureInjection, TimeoutRestoresLivenessAndDrainsBacklog) {
  // Crash modeled directly against the sequencer: client 0 never speaks
  // at all, every other client streams messages + heartbeats.
  Rng rng(5);
  const Population pop = gaussian_population(6, 30e-6, rng);

  core::ClientRegistry registry;
  pop.seed_registry(registry);

  core::OnlineConfig strict;
  strict.p_safe = 0.99;
  strict.client_silence_timeout = Duration::infinity();
  core::OnlineSequencer stalled(registry, pop.ids(), strict);

  core::OnlineConfig lenient = strict;
  lenient.client_silence_timeout = 5_ms;
  core::OnlineSequencer recovering(registry, pop.ids(), lenient);

  std::uint64_t next_id = 0;
  TimePoint now = TimePoint::epoch();
  for (int round = 0; round < 50; ++round) {
    now += 200_us;
    for (std::uint32_t c = 1; c < 6; ++c) {  // client 0 is dead
      const core::Message m{MessageId(next_id++), ClientId(c),
                            now - Duration(20e-6), now};
      stalled.on_message(m);
      recovering.on_message(m);
      stalled.on_heartbeat(ClientId(c), now, now);
      recovering.on_heartbeat(ClientId(c), now, now);
    }
  }

  // Strict: nothing can be emitted — client 0's completeness frontier
  // never advances.
  EXPECT_TRUE(stalled.poll(now + 1_s).empty());
  EXPECT_EQ(stalled.pending_count(), next_id);

  // One final far-stamped heartbeat round so the live clients' frontiers
  // clear every T_b, then poll before THEIR timeout but after client 0's
  // (never heard => excluded as soon as a finite timeout is configured).
  now += 1_ms;
  for (std::uint32_t c = 1; c < 6; ++c) {
    recovering.on_heartbeat(ClientId(c), now + 1_s, now);
  }
  const TimePoint poll_at = now + 3_ms;  // < 5 ms silence timeout
  const auto emissions = recovering.poll(poll_at);
  EXPECT_FALSE(emissions.empty());
  std::size_t emitted = 0;
  for (const auto& e : emissions) emitted += e.batch.messages.size();
  EXPECT_EQ(emitted, next_id);
  EXPECT_EQ(recovering.pending_count(), 0u);
  EXPECT_EQ(recovering.timed_out_clients(poll_at).size(), 1u);
}

TEST(FailureInjection, RecoveredClientRejoinsTheGate) {
  Rng rng(7);
  const Population pop = gaussian_population(3, 10e-6, rng);
  core::ClientRegistry registry;
  pop.seed_registry(registry);

  core::OnlineConfig config;
  config.p_safe = 0.99;
  config.client_silence_timeout = 50_ms;
  core::OnlineSequencer seq(registry, pop.ids(), config);

  // Client 2 silent; others speak. After the timeout the gate ignores it.
  seq.on_message({MessageId(1), ClientId(0), TimePoint(1.0),
                  TimePoint(1.0001)});
  seq.on_heartbeat(ClientId(0), TimePoint(1.01), TimePoint(1.01));
  seq.on_heartbeat(ClientId(1), TimePoint(1.01), TimePoint(1.01));
  ASSERT_EQ(seq.poll(TimePoint(1.01)).size(), 1u);
  EXPECT_EQ(seq.timed_out_clients(TimePoint(1.01)).size(), 1u);

  // Client 2 comes back: it immediately re-gates emission.
  seq.on_heartbeat(ClientId(2), TimePoint(1.02), TimePoint(1.02));
  EXPECT_TRUE(seq.timed_out_clients(TimePoint(1.02)).empty());

  seq.on_message({MessageId(2), ClientId(0), TimePoint(1.05),
                  TimePoint(1.0501)});
  // Client 2's high-water (1.02) is far behind the new message's T_b, so
  // emission must wait for its next heartbeat.
  seq.on_heartbeat(ClientId(0), TimePoint(1.06), TimePoint(1.051));
  seq.on_heartbeat(ClientId(1), TimePoint(1.06), TimePoint(1.051));
  EXPECT_TRUE(seq.poll(TimePoint(1.0511)).empty());
  seq.on_heartbeat(ClientId(2), TimePoint(1.06), TimePoint(1.0512));
  EXPECT_EQ(seq.poll(TimePoint(1.0512)).size(), 1u);
}

TEST(FailureInjection, OnlineRunnerEndToEndWithDrop) {
  // Full-stack version: client 0's generation events stop at 10 ms; its
  // heartbeats keep flowing (process alive, application quiet), so the
  // run must still drain completely with zero unemitted messages.
  Rng rng(9);
  const Population pop = gaussian_population(10, 40e-6, rng);
  const auto events = workload_with_failure(pop, TimePoint(0.01), rng);

  OnlineRunConfig config;
  config.sequencer.p_safe = 0.999;
  config.heartbeat_interval = 300_us;
  config.poll_interval = 100_us;
  config.drain = 100_ms;
  Rng run_rng(10);
  const OnlineRunResult result = run_online(pop, events, config, run_rng);
  EXPECT_EQ(result.emitted_messages, events.size());
  EXPECT_EQ(result.unemitted_messages, 0u);
  EXPECT_GT(result.ras.normalized(), 0.5);
}

}  // namespace
}  // namespace tommy::sim
