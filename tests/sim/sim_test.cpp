#include <gtest/gtest.h>

#include <set>

#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"
#include "sim/online_runner.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"

namespace tommy::sim {
namespace {

using namespace tommy::literals;

TEST(Population, GaussianPopulationParametersInRange) {
  Rng rng(1);
  const Population pop = gaussian_population(50, 10e-6, rng);
  EXPECT_EQ(pop.size(), 50u);
  for (const ClientSpec& c : pop.clients()) {
    ASSERT_TRUE(c.offset->is_gaussian());
    EXPECT_GE(c.offset->mean(), -10e-6);
    EXPECT_LE(c.offset->mean(), 10e-6);
    EXPECT_GE(c.offset->stddev(), 5e-6);
    EXPECT_LE(c.offset->stddev(), 15e-6);
  }
}

TEST(Population, ZeroScaleMeansNearPerfectClocks) {
  Rng rng(2);
  const Population pop = gaussian_population(5, 0.0, rng);
  for (const ClientSpec& c : pop.clients()) {
    EXPECT_LT(c.offset->stddev(), 1e-11);
  }
}

TEST(Population, SeedRegistryCopiesEveryClient) {
  Rng rng(3);
  const Population pop = gaussian_population(10, 1e-6, rng);
  core::ClientRegistry registry;
  pop.seed_registry(registry);
  EXPECT_EQ(registry.size(), 10u);
  for (ClientId id : pop.ids()) {
    ASSERT_TRUE(registry.contains(id));
    EXPECT_DOUBLE_EQ(registry.offset_distribution(id).mean(),
                     pop.offset_of(id).mean());
  }
}

TEST(Population, GumbelAndBimodalAreNonGaussian) {
  Rng rng(4);
  const Population gumbel = gumbel_population(5, 1e-6, rng);
  const Population bimodal = bimodal_population(5, 1e-6, rng);
  for (const ClientSpec& c : gumbel.clients()) {
    EXPECT_FALSE(c.offset->is_gaussian());
  }
  for (const ClientSpec& c : bimodal.clients()) {
    EXPECT_FALSE(c.offset->is_gaussian());
  }
}

TEST(Workload, PoissonHasRequestedCountAndMeanGap) {
  Rng rng(5);
  const std::vector<ClientId> clients{ClientId(0), ClientId(1), ClientId(2)};
  const auto events = poisson_workload(clients, 20000, 10_us, rng);
  ASSERT_EQ(events.size(), 20000u);
  // Sorted by construction; average gap ≈ 10 µs.
  double total_gap = 0.0;
  for (std::size_t k = 1; k < events.size(); ++k) {
    EXPECT_GE(events[k].true_time, events[k - 1].true_time);
    total_gap += (events[k].true_time - events[k - 1].true_time).seconds();
  }
  EXPECT_NEAR(total_gap / static_cast<double>(events.size() - 1), 10e-6,
              0.5e-6);
}

TEST(Workload, UniformRoundRobinsClients) {
  const std::vector<ClientId> clients{ClientId(0), ClientId(1)};
  const auto events = uniform_workload(clients, 6, 1_ms);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].client, clients[k % 2]);
    EXPECT_NEAR(events[k].true_time.seconds(),
                1e-3 * static_cast<double>(k + 1), 1e-12);
  }
}

TEST(Workload, BurstGeneratesOneResponsePerClientPerBurst) {
  Rng rng(6);
  const std::vector<ClientId> clients{ClientId(0), ClientId(1), ClientId(2)};
  const auto events = burst_workload(clients, 4, 1_s, 10_us, 100_us, rng);
  ASSERT_EQ(events.size(), 12u);

  // Each burst window contains exactly one event per client.
  for (int b = 0; b < 4; ++b) {
    const double burst_at = static_cast<double>(b + 1);
    std::set<std::uint32_t> responders;
    for (const GenEvent& e : events) {
      const double dt = e.true_time.seconds() - burst_at;
      if (dt >= 10e-6 && dt <= 100e-6) responders.insert(e.client.value());
    }
    EXPECT_EQ(responders.size(), 3u) << "burst " << b;
  }
}

TEST(Materialize, StampPlusThetaRecoversTruth) {
  Rng rng(7);
  const Population pop = gaussian_population(5, 100e-6, rng);
  const auto events = uniform_workload(pop.ids(), 50, 1_ms);
  const auto observed =
      materialize_messages(pop, events, MaterializeConfig{}, rng);
  ASSERT_EQ(observed.size(), 50u);
  for (const ObservedMessage& om : observed) {
    // The paper's model identity: T* = T + θ = true time.
    EXPECT_NEAR(om.message.stamp.seconds() + om.theta,
                om.true_time.seconds(), 1e-12);
    EXPECT_EQ(om.message.arrival, om.true_time);  // no net delay configured
  }
}

TEST(Materialize, NetworkDelayMakesArrivalLater) {
  Rng rng(8);
  const Population pop = gaussian_population(3, 1e-6, rng);
  const auto events = uniform_workload(pop.ids(), 30, 1_ms);
  MaterializeConfig config;
  config.mean_net_delay = 100_us;
  const auto observed = materialize_messages(pop, events, config, rng);
  for (const ObservedMessage& om : observed) {
    EXPECT_GT(om.message.arrival, om.true_time);
  }
}

TEST(Materialize, MessageIdsAreUnique) {
  Rng rng(9);
  const Population pop = gaussian_population(3, 1e-6, rng);
  const auto events = uniform_workload(pop.ids(), 100, 1_us);
  const auto observed =
      materialize_messages(pop, events, MaterializeConfig{}, rng);
  std::set<std::uint64_t> ids;
  for (const ObservedMessage& om : observed) ids.insert(om.message.id.value());
  EXPECT_EQ(ids.size(), 100u);
}

TEST(RankAgainstTruth, JoinsRanksWithGroundTruth) {
  Rng rng(10);
  const Population pop = gaussian_population(2, 1e-6, rng);
  const auto events = uniform_workload(pop.ids(), 4, 1_ms);
  const auto observed =
      materialize_messages(pop, events, MaterializeConfig{}, rng);

  core::SequencerResult result;
  core::Batch b0;
  b0.rank = 0;
  b0.messages = {observed[0].message, observed[1].message};
  core::Batch b1;
  b1.rank = 1;
  b1.messages = {observed[2].message, observed[3].message};
  result.batches = {b0, b1};

  const auto ranked = rank_against_truth(result, observed);
  ASSERT_EQ(ranked.size(), 4u);
  for (const auto& rm : ranked) {
    bool found = false;
    for (const auto& om : observed) {
      if (om.message.id == rm.id) {
        EXPECT_EQ(rm.true_time, om.true_time);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ScoreSequencer, PerfectClocksWideGapsScoreOne) {
  Rng rng(11);
  const Population pop = gaussian_population(10, 1e-12, rng);
  const auto events = uniform_workload(pop.ids(), 100, 1_ms);
  const auto observed =
      materialize_messages(pop, events, MaterializeConfig{}, rng);

  core::ClientRegistry registry;
  pop.seed_registry(registry);
  core::TommySequencer tommy(registry);
  const SequencerScore score = score_sequencer(tommy, observed);
  EXPECT_DOUBLE_EQ(score.ras.normalized(), 1.0);
  EXPECT_EQ(score.batches.batch_count, 100u);
  EXPECT_EQ(score.sequencer, "tommy");
}

TEST(OnlineRunner, WorkerThreadsMatchSequentialRun) {
  // The discrete-event loop is a single producer, so the threaded
  // service's synchronous polls make the whole run deterministic: same
  // emissions, same scores, same violation counts as the sequential
  // engine.
  Rng pop_rng(21);
  const Population pop = gaussian_population(8, 40e-6, pop_rng);
  const auto events = poisson_workload(pop.ids(), 400, 20_us, pop_rng);

  auto run = [&](bool worker_threads) {
    OnlineRunConfig config;
    config.sequencer.p_safe = 0.995;
    config.shard_count = 2;
    config.worker_threads = worker_threads;
    Rng run_rng(77);  // same network/clock randomness for both runs
    return run_online(pop, events, config, run_rng);
  };
  const OnlineRunResult sequential = run(false);
  const OnlineRunResult threaded = run(true);

  EXPECT_GT(sequential.emitted_messages, 0u);
  ASSERT_EQ(threaded.emissions.size(), sequential.emissions.size());
  for (std::size_t r = 0; r < threaded.emissions.size(); ++r) {
    EXPECT_EQ(threaded.emission_shards[r], sequential.emission_shards[r]);
    EXPECT_EQ(threaded.emissions[r].batch.rank,
              sequential.emissions[r].batch.rank);
    ASSERT_EQ(threaded.emissions[r].batch.messages.size(),
              sequential.emissions[r].batch.messages.size());
    for (std::size_t m = 0; m < threaded.emissions[r].batch.messages.size();
         ++m) {
      EXPECT_EQ(threaded.emissions[r].batch.messages[m],
                sequential.emissions[r].batch.messages[m]);
    }
  }
  EXPECT_EQ(threaded.fairness_violations, sequential.fairness_violations);
  EXPECT_EQ(threaded.emitted_messages, sequential.emitted_messages);
  EXPECT_EQ(threaded.unemitted_messages, sequential.unemitted_messages);
}

}  // namespace
}  // namespace tommy::sim
