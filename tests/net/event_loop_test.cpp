// Unit proof of the event-driven transport core in isolation: the epoll
// Poller's edge semantics (one registration, readable+writable edges,
// hangup mapped to readability), the EventLoop's per-key serialization,
// the request_tick retry channel, and remove_sync's completion barrier —
// everything the poller front-end builds on.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using tommy::net::testing::eventually;

/// A socketpair whose fds close on destruction.
struct Pair {
  int fds[2]{-1, -1};
  Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~Pair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(EpollPoller, ReadableEdgeCarriesTheTag) {
  auto poller = make_epoll_poller();
  Pair pair;
  ASSERT_TRUE(poller->add(pair.fds[0], 42));

  const char byte = 'x';
  ASSERT_EQ(::write(pair.fds[1], &byte, 1), 1);

  std::vector<PollEvent> events(8);
  // A fresh edge-triggered registration on an already-empty socket also
  // reports writability; loop until the readable edge shows up.
  bool saw_readable = false;
  for (int round = 0; round < 10 && !saw_readable; ++round) {
    const std::size_t n = poller->wait(events, 1000);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(events[i].tag, 42u);
      if (events[i].readable) saw_readable = true;
    }
  }
  EXPECT_TRUE(saw_readable);
}

TEST(EpollPoller, WakeUnblocksAnIdleWait) {
  auto poller = make_epoll_poller();
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::vector<PollEvent> events(4);
    // No fds registered: only wake() can end this wait early.
    (void)poller->wait(events, 5000);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  poller->wake();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(EpollPoller, HangupSurfacesAsReadable) {
  auto poller = make_epoll_poller();
  Pair pair;
  ASSERT_TRUE(poller->add(pair.fds[0], 7));
  ::close(pair.fds[1]);
  pair.fds[1] = -1;

  bool saw_hangup = false;
  std::vector<PollEvent> events(8);
  for (int round = 0; round < 10 && !saw_hangup; ++round) {
    const std::size_t n = poller->wait(events, 1000);
    for (std::size_t i = 0; i < n; ++i) {
      if (events[i].hangup) {
        // The read path must be able to discover the EOF itself.
        EXPECT_TRUE(events[i].readable);
        saw_hangup = true;
      }
    }
  }
  EXPECT_TRUE(saw_hangup);
}

TEST(EventLoop, EchoAcrossManyConnectionsAndThreads) {
  constexpr int kConns = 16;
  constexpr int kBytesEach = 64;
  EventLoop loop(3);
  EXPECT_EQ(loop.thread_count(), 3u);

  std::vector<std::unique_ptr<Pair>> pairs;
  std::vector<std::unique_ptr<std::atomic<int>>> received;
  for (int c = 0; c < kConns; ++c) {
    pairs.push_back(std::make_unique<Pair>());
    received.push_back(std::make_unique<std::atomic<int>>(0));
  }

  std::vector<std::uint64_t> keys;
  for (int c = 0; c < kConns; ++c) {
    const int fd = pairs[static_cast<std::size_t>(c)]->fds[0];
    std::atomic<int>& count = *received[static_cast<std::size_t>(c)];
    EventLoop::Handler handler;
    handler.on_event = [fd, &count](bool readable, bool, bool) {
      if (!readable) return;
      char buffer[256];
      // Edge-triggered: drain to EAGAIN (blocking fds here, so rely on
      // one read per burst being enough for this test's small writes).
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n > 0) count.fetch_add(static_cast<int>(n));
    };
    keys.push_back(loop.add(fd, std::move(handler)));
  }

  for (int round = 0; round < kBytesEach; ++round) {
    for (int c = 0; c < kConns; ++c) {
      const char byte = static_cast<char>(round);
      ASSERT_EQ(
          ::write(pairs[static_cast<std::size_t>(c)]->fds[1], &byte, 1), 1);
    }
    // Small pacing so bursts coalesce differently across rounds.
    if (round % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  for (int c = 0; c < kConns; ++c) {
    std::atomic<int>& count = *received[static_cast<std::size_t>(c)];
    EXPECT_TRUE(eventually([&count] { return count.load() >= kBytesEach; }))
        << "connection " << c << " got " << count.load();
  }
  for (const std::uint64_t key : keys) loop.remove_sync(key);
}

TEST(EventLoop, RequestTickFiresAndCoalesces) {
  EventLoop loop(1);
  Pair pair;
  std::atomic<int> ticks{0};
  EventLoop::Handler handler;
  handler.on_event = [](bool, bool, bool) {};
  handler.on_tick = [&ticks] { ticks.fetch_add(1); };
  const std::uint64_t key = loop.add(pair.fds[0], std::move(handler));

  loop.request_tick(key);
  EXPECT_TRUE(eventually([&ticks] { return ticks.load() >= 1; }));

  // A burst of requests before the tick fires coalesces to O(1) calls,
  // not one per request.
  const int before = ticks.load();
  for (int i = 0; i < 100; ++i) loop.request_tick(key);
  EXPECT_TRUE(
      eventually([&ticks, before] { return ticks.load() > before; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(ticks.load() - before, 100);
  loop.remove_sync(key);

  // Ticks for an unregistered key are dropped, not crashed on.
  loop.request_tick(key);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(EventLoop, RemoveSyncIsACompletionBarrier) {
  EventLoop loop(2);
  Pair pair;
  std::atomic<bool> in_callback{false};
  std::atomic<bool> removed{false};
  std::atomic<int> calls_after_remove{0};

  EventLoop::Handler handler;
  handler.on_event = [&](bool readable, bool, bool) {
    if (!readable) return;
    char buffer[64];
    (void)!::read(pair.fds[0], buffer, sizeof(buffer));
    in_callback.store(true);
    // Hold the callback long enough for remove_sync to be mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (removed.load()) calls_after_remove.fetch_add(1);
  };
  const std::uint64_t key = loop.add(pair.fds[0], std::move(handler));

  const char byte = 'x';
  ASSERT_EQ(::write(pair.fds[1], &byte, 1), 1);
  ASSERT_TRUE(eventually([&] { return in_callback.load(); }));

  // remove_sync must block until the in-flight callback batch finishes;
  // after it returns, no callback for the key runs.
  loop.remove_sync(key);
  removed.store(true);
  ASSERT_EQ(::write(pair.fds[1], &byte, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(calls_after_remove.load(), 0);
}

TEST(EventLoop, DestructorStopsWithLiveRegistrations) {
  Pair pair;
  std::atomic<int> events{0};
  {
    EventLoop loop(2);
    EventLoop::Handler handler;
    handler.on_event = [&](bool, bool, bool) { events.fetch_add(1); };
    (void)loop.add(pair.fds[0], std::move(handler));
    const char byte = 'x';
    ASSERT_EQ(::write(pair.fds[1], &byte, 1), 1);
    EXPECT_TRUE(eventually([&] { return events.load() >= 1; }));
    // Destructor joins every poller thread with the handler still
    // registered.
  }
  SUCCEED();
}

}  // namespace
}  // namespace tommy::net
