// End-to-end backpressure through the event-driven front-end, both
// directions:
//
//  * Ingest: a client outruns a stalled service — the connection's
//    drive() stalls, the poller stops reading the socket, the kernel
//    buffers fill, and TCP flow control blocks the client's writer.
//    Releasing the stall drains everything with zero frame loss; a
//    FaultyByteStream cut landing mid-backpressure loses exactly the
//    undelivered tail and nothing else.
//
//  * Egress: a subscriber that stops reading fills its socket and then
//    its bounded egress queue; the configured EgressPolicy fires (drop
//    frames + count, or tear the subscriber down). A FaultyByteStream
//    write cut mid-backpressure surfaces as a failed flush and the
//    subscriber is reaped.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "net/faulty_stream.hpp"
#include "net/frontend.hpp"
#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using namespace tommy::net::testing;
using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;

/// A socketpair with deliberately tiny kernel buffers, so backpressure
/// engages after a few tens of KB instead of a few hundred.
struct TinyPair {
  int fds[2]{-1, -1};
  TinyPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int small = 8 * 1024;
    for (int fd : {fds[0], fds[1]}) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
    }
  }
  // make_fd_stream takes ownership of the fds; nothing to close here.
};

FrontendConfig event_config() {
  FrontendConfig config = test_frontend_config();
  config.transport = TransportMode::kEventLoop;
  config.poller_threads = 1;
  return config;
}

/// The ingest-stall fixture shared by the zero-loss and cut tests.
/// `cut_after_flood_frames < 0` means no cut (the client delivers the
/// whole flood and closes cleanly); otherwise the client's
/// FaultyByteStream cuts the wire at exactly that flood-frame boundary —
/// while its writer is blocked in TCP flow control.
void run_ingest_stall(int flood_frames, int cut_after_flood_frames) {
  ClientRegistry registry = make_registry(1);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(1), service_config);
  FrontendConfig config = event_config();
  config.submit_batch_limit = 16;
  FrameFrontend frontend(registry, service, config);

  TinyPair pair;
  const std::uint64_t id =
      frontend.add_connection(make_fd_stream(pair.fds[0]));

  // Pre-feed: handshake + 3 messages + a heartbeat, so the first pump
  // has something to emit (the emission is what parks the blocking sink
  // inside the ingest lock).
  constexpr int kPrefeed = 3;
  std::vector<std::uint8_t> prefeed = announce_frame(0);
  for (int k = 0; k < kPrefeed; ++k) {
    const auto frame =
        message_frame(0, static_cast<std::uint64_t>(k), 1.0 + 1e-3 * k);
    prefeed.insert(prefeed.end(), frame.begin(), frame.end());
  }
  const auto beat = heartbeat_frame(0, 1.05);
  prefeed.insert(prefeed.end(), beat.begin(), beat.end());

  // The flood, built up front so the cut offset can name an exact frame
  // boundary within it.
  std::vector<std::uint8_t> flood;
  std::size_t cut_offset = FaultPlan::kNever;
  for (int k = 0; k < flood_frames; ++k) {
    const auto frame = message_frame(0, 1000 + static_cast<std::uint64_t>(k),
                                     5.0 + 1e-6 * k);
    flood.insert(flood.end(), frame.begin(), frame.end());
    if (k + 1 == cut_after_flood_frames) {
      cut_offset = prefeed.size() + flood.size();
    }
  }

  FaultPlan plan;
  plan.write_chunks = {97, 13, 53};
  plan.write_chunks_cycle = true;
  plan.cut_write_after = cut_offset;
  FaultyByteStream wire(make_fd_stream(pair.fds[1]), plan);

  ASSERT_TRUE(wire.write_all(std::span<const std::uint8_t>(prefeed)));
  ASSERT_TRUE(eventually([&frontend, id] {
    return frontend.connection_stats(id).submits_in == kPrefeed
           && frontend.connection_stats(id).heartbeats_in == 1;
  }));

  // Park a pump inside the ingest lock: the sink blocks on a gate while
  // drain_locked still holds the sequential-mode ingest mutex, so every
  // connection drive() from here on stalls (try_lock fails).
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool sink_blocked = false;
  bool released = false;
  std::size_t sunk_messages = 0;
  auto blocking = [&](core::EmissionRecord&& record, std::uint32_t) {
    std::unique_lock<std::mutex> lock(gate_mutex);
    sunk_messages += record.batch.messages.size();
    if (!released) {
      sink_blocked = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return released; });
    }
  };
  std::thread pump([&] {
    core::CallbackSink<decltype(blocking)> sink(blocking);
    PumpOptions options;
    options.sink = &sink;
    options.flush = true;
    (void)frontend.pump(TimePoint(2.0), options);
  });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return sink_blocked; });
  }

  // Flood from a writer thread. The server decodes until its pending
  // buffer hits submit_batch_limit, stalls, and stops reading; the tiny
  // kernel buffers fill; write_all blocks — the backpressure reached the
  // client.
  std::atomic<bool> writer_done{false};
  std::atomic<bool> writer_ok{false};
  std::thread writer([&] {
    writer_ok.store(wire.write_all(std::span<const std::uint8_t>(flood)));
    writer_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(writer_done.load());
  const std::uint64_t stalled_submits =
      frontend.connection_stats(id).submits_in;
  // Decoded-but-unapplied frames are bounded by the batch limit; nothing
  // more is read off the socket while stalled.
  EXPECT_LE(stalled_submits, kPrefeed + config.submit_batch_limit);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(frontend.connection_stats(id).submits_in, stalled_submits);

  // Release the sink: the pump finishes, the stall tick re-acquires the
  // lock, reading resumes, and the writer unblocks.
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  pump.join();
  writer.join();

  const bool expect_cut = cut_after_flood_frames >= 0;
  const int delivered_flood =
      expect_cut ? cut_after_flood_frames : flood_frames;
  if (expect_cut) {
    EXPECT_FALSE(writer_ok.load());
    EXPECT_TRUE(wire.stats().write_cut);
  } else {
    EXPECT_TRUE(writer_ok.load());
    // Trailing heartbeat pushes the frontier past the flood, then a
    // clean half-close.
    ASSERT_TRUE(wire.write_all(heartbeat_frame(0, 100.0)));
    wire.close_write();
  }

  // Zero loss up to the delivery boundary: every frame that crossed the
  // wire reaches the service, none twice, none torn.
  ASSERT_TRUE(eventually([&frontend, id, delivered_flood] {
    return frontend.connection_stats(id).submits_in
           == static_cast<std::uint64_t>(kPrefeed + delivered_flood);
  }));
  ASSERT_TRUE(eventually(
      [&frontend, id] { return frontend.connection_stats(id).done; }));

  std::size_t drained_messages = 0;
  auto count = [&](core::EmissionRecord&& record, std::uint32_t) {
    drained_messages += record.batch.messages.size();
  };
  core::CallbackSink<decltype(count)> sink(count);
  PumpOptions options;
  options.sink = &sink;
  options.flush = true;
  (void)frontend.pump(TimePoint(200.0), options);
  EXPECT_EQ(sunk_messages + drained_messages,
            static_cast<std::size_t>(kPrefeed + delivered_flood));
}

TEST(IngestBackpressure, StalledServiceStopsTheSocketAndLosesNothing) {
  run_ingest_stall(/*flood_frames=*/3000, /*cut_after_flood_frames=*/-1);
}

TEST(IngestBackpressure, CutMidBackpressureLosesOnlyTheUndeliveredTail) {
  // The cut lands at a frame boundary the writer only reaches AFTER
  // being blocked by flow control (the boundary is far past what the
  // tiny buffers absorb), i.e. mid-backpressure.
  run_ingest_stall(/*flood_frames=*/4000, /*cut_after_flood_frames=*/3000);
}

/// The egress fixture: a handshaken subscriber that never reads, plus a
/// direct ingest session the test pumps through the front-end so
/// broadcast frames pile into the subscriber's bounded egress queue.
struct EgressRig {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service;
  FrameFrontend frontend;
  TinyPair pair;
  std::shared_ptr<ByteStream> subscriber;
  std::uint64_t id{0};
  FairOrderingService::Session session;
  double base{1.0};

  /// `wrap`, when set, decorates the server-side stream (the cut test
  /// interposes a FaultyByteStream) before the front-end adopts it.
  explicit EgressRig(
      FrontendConfig config,
      const std::function<std::shared_ptr<ByteStream>(
          std::shared_ptr<ByteStream>)>& wrap = {})
      : service(registry, ids(2),
                [] {
                  ServiceConfig c;
                  c.with_p_safe(0.99);
                  return c;
                }()),
        frontend(registry, service, std::move(config)) {
    std::shared_ptr<ByteStream> server_stream = make_fd_stream(pair.fds[0]);
    if (wrap) server_stream = wrap(std::move(server_stream));
    id = frontend.add_connection(std::move(server_stream));
    subscriber = make_fd_stream(pair.fds[1]);
    // Handshake as client 1 (and nothing else — this peer only
    // receives). Waiting for it keeps the poller thread quiescent
    // before the direct-session ingest below starts.
    EXPECT_TRUE(subscriber->write_all(announce_frame(1)));
    EXPECT_TRUE(eventually([this] {
      return frontend.connection_stats(id).frames_in == 1;
    }));
    session = service.open_session(ClientId(0));
  }

  /// One ingest+broadcast round: a 50-message batch flushed through the
  /// front-end, so one BatchEmission frame heads for the subscriber.
  void round() {
    std::vector<core::Submission> batch;
    for (int k = 0; k < 50; ++k) {
      const TimePoint stamp(base + 1e-4 * k);
      batch.push_back(core::Submission{
          stamp, MessageId(static_cast<std::uint64_t>(base * 1e6) + k),
          stamp + kWireDelay});
    }
    session.submit_batch(std::span<const core::Submission>(batch));
    session.heartbeat(TimePoint(base + 0.009),
                      TimePoint(base + 0.009) + kWireDelay);
    (void)frontend.pump_flush(TimePoint(base + 1.0));
    base += 0.01;
  }
};

TEST(EgressBackpressure, SlowSubscriberOverflowDropsFramesUnderDropPolicy) {
  FrontendConfig config = event_config();
  config.egress_buffer_bytes = 4096;
  config.egress_policy = EgressPolicy::kDrop;
  EgressRig rig(config);

  for (int r = 0; r < 200; ++r) {
    rig.round();
    if (rig.frontend.connection_stats(rig.id).frames_dropped > 0) break;
  }
  EXPECT_GT(rig.frontend.connection_stats(rig.id).frames_dropped, 0u);
  // Dropping keeps the subscriber: still registered, still counted live.
  EXPECT_TRUE(rig.frontend.has_connection(rig.id));
  EXPECT_EQ(rig.frontend.connection_count(), 1u);
  (void)rig.frontend.reap();
  EXPECT_EQ(rig.frontend.tracked_connection_count(), 1u);
}

TEST(EgressBackpressure, SlowSubscriberOverflowDisconnectsUnderDefaultPolicy) {
  FrontendConfig config = event_config();
  config.egress_buffer_bytes = 4096;
  ASSERT_EQ(config.egress_policy, EgressPolicy::kDisconnect);
  EgressRig rig(config);

  for (int r = 0; r < 200; ++r) {
    rig.round();  // pump reaps, so the torn-down subscriber vanishes here
    if (!rig.frontend.has_connection(rig.id)) break;
  }
  // The teardown is asynchronous: the policy drops write_ok and shuts the
  // stream down on the pump thread, but reap() can only take the
  // connection once the poller observes the shutdown (EOF → done).
  EXPECT_TRUE(eventually([&rig] {
    (void)rig.frontend.reap();
    return !rig.frontend.has_connection(rig.id);
  }));
  EXPECT_EQ(rig.frontend.connection_count(), 0u);
  EXPECT_EQ(rig.frontend.totals().removed, 1u);
}

TEST(EgressBackpressure, WriteCutMidBackpressureTearsTheSubscriberDown) {
  // A subscriber that reads, but far too slowly: the egress queue stays
  // engaged (socket full, frames queued/dropped) while bytes trickle
  // out — until the FaultyByteStream cut fires mid-flush and the failed
  // write tears the connection down. kDrop policy, so the teardown is
  // attributable to the cut alone.
  FrontendConfig config = event_config();
  config.egress_buffer_bytes = 4096;
  config.egress_policy = EgressPolicy::kDrop;

  FaultPlan plan;
  plan.write_chunks = {7, 23};
  plan.write_chunks_cycle = true;
  plan.cut_write_after = 40 * 1024;  // beyond the kernel buffers: the
                                     // cut needs writability edges (the
                                     // slow reader) to ever be reached
  std::shared_ptr<FaultyByteStream> faulty;
  EgressRig rig(config, [&faulty, &plan](std::shared_ptr<ByteStream> inner) {
    faulty = std::make_shared<FaultyByteStream>(std::move(inner), plan);
    return faulty;
  });

  std::atomic<bool> stop_reader{false};
  std::thread reader([&rig, &stop_reader] {
    std::vector<std::uint8_t> buffer(512);
    while (!stop_reader.load()) {
      const auto r = rig.subscriber->read_some(buffer);
      if (!r.has_value() || *r == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  bool removed = false;
  for (int r = 0; r < 2000 && !removed; ++r) {
    rig.round();
    removed = !rig.frontend.has_connection(rig.id);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Same asynchrony as the policy teardown: the cut shuts the inner
  // stream down, and removal follows once the poller sees the EOF.
  EXPECT_TRUE(eventually([&rig] {
    (void)rig.frontend.reap();
    return !rig.frontend.has_connection(rig.id);
  }));
  EXPECT_TRUE(faulty->stats().write_cut);
  EXPECT_EQ(rig.frontend.connection_count(), 0u);
  EXPECT_EQ(rig.frontend.totals().removed, 1u);

  stop_reader.store(true);
  rig.subscriber->shutdown();
  reader.join();
}

}  // namespace
}  // namespace tommy::net
