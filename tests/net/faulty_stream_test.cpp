// The fault injector must be trustworthy before the soak tests lean on
// it: every plan is proven to deliver exactly the bytes it promises —
// short reads honour the chunk schedule, write splitting never changes
// content, cuts land at the exact byte offset in both directions (every
// split point of a 3-frame stream), and injected retries are
// content-neutral.
#include "net/faulty_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/framing.hpp"

namespace tommy::net {
namespace {

std::vector<std::uint8_t> bytes_iota(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

/// Reads until EOF/error through `stream`, recording each read's size.
std::pair<std::vector<std::uint8_t>, std::vector<std::size_t>> drain(
    ByteStream& stream, std::size_t request = 4096) {
  std::vector<std::uint8_t> got;
  std::vector<std::size_t> sizes;
  std::vector<std::uint8_t> buf(request);
  while (true) {
    const auto n = stream.read_some(buf);
    if (!n || *n == 0) break;
    sizes.push_back(*n);
    got.insert(got.end(), buf.begin(), buf.begin() + static_cast<long>(*n));
  }
  return {got, sizes};
}

/// Three distinct frames and their concatenated wire image.
struct ThreeFrames {
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint8_t> wire;
  /// Byte offset where frame k ends (exclusive) on the wire.
  std::vector<std::size_t> ends;
};

ThreeFrames three_frames() {
  ThreeFrames f;
  f.payloads = {{0xAA}, {1, 2, 3, 4, 5, 6, 7}, {0x10, 0x20, 0x30}};
  for (const auto& payload : f.payloads) {
    const auto frame =
        encode_frame(std::span<const std::uint8_t>(payload));
    f.wire.insert(f.wire.end(), frame.begin(), frame.end());
    f.ends.push_back(f.wire.size());
  }
  return f;
}

TEST(FaultyByteStream, DefaultPlanIsTransparent) {
  auto [a, b] = make_pipe_pair();
  FaultyByteStream faulty(b, FaultPlan{});
  const auto payload = bytes_iota(100);
  ASSERT_TRUE(a->write_all(payload));
  a->close_write();
  const auto [got, sizes] = drain(faulty);
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(faulty.stats().read_cut);
}

TEST(FaultyByteStream, ReadChunkScheduleIsHonouredExactly) {
  auto [a, b] = make_pipe_pair();
  FaultPlan plan;
  plan.read_chunks = {1, 2, 3};
  plan.read_chunks_cycle = true;
  FaultyByteStream faulty(b, plan);
  const auto payload = bytes_iota(12);
  ASSERT_TRUE(a->write_all(payload));
  a->close_write();
  const auto [got, sizes] = drain(faulty);
  EXPECT_EQ(got, payload);
  // The pipe has all 12 bytes buffered, so each read returns its full
  // cap: 1,2,3 cycling.
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3, 1, 2, 3}));
}

TEST(FaultyByteStream, ExhaustedNonCyclingScheduleUncaps) {
  auto [a, b] = make_pipe_pair();
  FaultPlan plan;
  plan.read_chunks = {2};
  FaultyByteStream faulty(b, plan);
  const auto payload = bytes_iota(10);
  ASSERT_TRUE(a->write_all(payload));
  a->close_write();
  const auto [got, sizes] = drain(faulty);
  EXPECT_EQ(got, payload);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 8u);
}

TEST(FaultyByteStream, ZeroChunkIsTreatedAsOne) {
  auto [a, b] = make_pipe_pair();
  FaultPlan plan;
  plan.read_chunks = {0};
  plan.read_chunks_cycle = true;
  FaultyByteStream faulty(b, plan);
  ASSERT_TRUE(a->write_all(bytes_iota(3)));
  a->close_write();
  const auto [got, sizes] = drain(faulty);
  EXPECT_EQ(got, bytes_iota(3));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(FaultyByteStream, EverySplitPointOnAThreeFrameStreamDecodes) {
  const ThreeFrames f = three_frames();
  for (std::size_t split = 0; split <= f.wire.size(); ++split) {
    auto [a, b] = make_pipe_pair();
    FaultPlan plan;
    if (split > 0) plan.read_chunks = {split};  // then uncapped
    FaultyByteStream faulty(b, plan);
    ASSERT_TRUE(a->write_all(f.wire));
    a->close_write();

    FrameDecoder decoder;
    std::vector<std::vector<std::uint8_t>> decoded;
    std::vector<std::uint8_t> buf(f.wire.size());
    while (true) {
      const auto n = faulty.read_some(buf);
      ASSERT_TRUE(n.has_value());
      if (*n == 0) break;
      decoder.append(std::span<const std::uint8_t>(buf.data(), *n));
      while (auto payload = decoder.next()) decoded.push_back(*payload);
    }
    ASSERT_EQ(decoded.size(), 3u) << "split " << split;
    EXPECT_EQ(decoded, f.payloads) << "split " << split;
  }
}

TEST(FaultyByteStream, WriteSplitAtEverySplitPointIsContentNeutral) {
  const ThreeFrames f = three_frames();
  for (std::size_t split = 1; split <= f.wire.size(); ++split) {
    auto [a, b] = make_pipe_pair();
    FaultPlan plan;
    plan.write_chunks = {split};  // first inner write `split` bytes, rest
    FaultyByteStream faulty(a, plan);
    ASSERT_TRUE(faulty.write_all(f.wire));
    faulty.close_write();
    const auto [got, sizes] = drain(*b);
    EXPECT_EQ(got, f.wire) << "split " << split;
    const auto stats = faulty.stats();
    EXPECT_EQ(stats.bytes_written, f.wire.size());
    EXPECT_EQ(stats.inner_writes, split < f.wire.size() ? 2u : 1u);
  }
}

TEST(FaultyByteStream, ReadCutAtEveryOffsetDeliversExactlyThePrefix) {
  const ThreeFrames f = three_frames();
  for (std::size_t cut = 0; cut <= f.wire.size(); ++cut) {
    auto [a, b] = make_pipe_pair();
    FaultPlan plan;
    plan.cut_read_after = cut;
    plan.shutdown_inner_on_cut = false;  // pipe teardown not under test
    FaultyByteStream faulty(b, plan);
    ASSERT_TRUE(a->write_all(f.wire));
    a->close_write();

    std::vector<std::uint8_t> got;
    std::vector<std::uint8_t> buf(f.wire.size());
    while (true) {
      const auto n = faulty.read_some(buf);
      if (!n) break;  // the cut error
      if (*n == 0) break;
      got.insert(got.end(), buf.begin(),
                 buf.begin() + static_cast<long>(*n));
    }
    EXPECT_EQ(got.size(), cut) << "cut " << cut;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), f.wire.begin()));
    // The number of COMPLETE frames in the prefix is what a server
    // applies from a torn stream.
    std::size_t complete = 0;
    while (complete < f.ends.size() && f.ends[complete] <= cut) ++complete;
    FrameDecoder decoder;
    decoder.append(std::span<const std::uint8_t>(got));
    std::size_t decoded = 0;
    while (decoder.next()) ++decoded;
    EXPECT_EQ(decoded, complete) << "cut " << cut;
    if (cut < f.wire.size()) {
      EXPECT_TRUE(faulty.stats().read_cut);
    }
  }
}

TEST(FaultyByteStream, ReadCutAsCleanEofSignalsZero) {
  auto [a, b] = make_pipe_pair();
  FaultPlan plan;
  plan.cut_read_after = 4;
  plan.cut_is_error = false;
  plan.shutdown_inner_on_cut = false;
  FaultyByteStream faulty(b, plan);
  ASSERT_TRUE(a->write_all(bytes_iota(10)));
  std::vector<std::uint8_t> buf(10);
  auto n = faulty.read_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 4u);
  n = faulty.read_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 0u);  // clean EOF, repeatable
  n = faulty.read_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 0u);
}

TEST(FaultyByteStream, WriteCutAtEveryOffsetTearsTheFrameExactlyThere) {
  const ThreeFrames f = three_frames();
  for (std::size_t cut = 0; cut <= f.wire.size(); ++cut) {
    auto [a, b] = make_pipe_pair();
    FaultPlan plan;
    plan.cut_write_after = cut;
    plan.shutdown_inner_on_cut = false;
    FaultyByteStream faulty(a, plan);
    const bool ok = faulty.write_all(f.wire);
    EXPECT_EQ(ok, cut > f.wire.size());  // cut == size still reports the cut
    faulty.close_write();
    const auto [got, sizes] = drain(*b);
    EXPECT_EQ(got.size(), std::min(cut, f.wire.size())) << "cut " << cut;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), f.wire.begin()));
    if (cut <= f.wire.size()) {
      EXPECT_TRUE(faulty.stats().write_cut);
      EXPECT_FALSE(faulty.write_all(bytes_iota(1)));  // stays cut
    }
  }
}

TEST(FaultyByteStream, InjectedRetriesAreContentNeutralAndCounted) {
  auto [a, b] = make_pipe_pair();
  FaultPlan plan;
  plan.retry_every_reads = 2;
  plan.read_chunks = {3};
  plan.read_chunks_cycle = true;
  FaultyByteStream faulty(b, plan);
  const auto payload = bytes_iota(30);
  ASSERT_TRUE(a->write_all(payload));
  a->close_write();
  const auto [got, sizes] = drain(faulty);
  EXPECT_EQ(got, payload);
  EXPECT_GE(faulty.stats().injected_retries, 5u);
}

TEST(FaultyByteStream, ChunkedHelperCapsEveryRead) {
  auto [a, b] = make_pipe_pair();
  auto chunked = make_chunked_stream(b, 2);
  ASSERT_TRUE(a->write_all(bytes_iota(9)));
  a->close_write();
  const auto [got, sizes] = drain(*chunked);
  EXPECT_EQ(got, bytes_iota(9));
  for (std::size_t n : sizes) EXPECT_LE(n, 2u);
}

}  // namespace
}  // namespace tommy::net
