#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/simulation.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace tommy::net {
namespace {

using namespace tommy::literals;

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> log;
  sim.schedule_at(TimePoint(3.0), [&] { log.push_back(3); });
  sim.schedule_at(TimePoint(1.0), [&] { log.push_back(1); });
  sim.schedule_at(TimePoint(2.0), [&] { log.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimesRunFifo) {
  Simulation sim;
  std::vector<int> log;
  for (int k = 0; k < 5; ++k) {
    sim.schedule_at(TimePoint(1.0), [&log, k] { log.push_back(k); });
  }
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NowAdvancesWithEvents) {
  Simulation sim;
  TimePoint seen;
  sim.schedule_at(TimePoint(2.5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint(2.5));
  EXPECT_EQ(sim.now(), TimePoint(2.5));
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) sim.schedule_after(1_ms, chain);
  };
  sim.schedule_at(TimePoint::epoch(), chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_NEAR(sim.now().seconds(), 9e-3, 1e-12);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(TimePoint(t), [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(TimePoint(2.5));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), TimePoint(2.5));
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(TimePoint(1.0), [&] { ++count; });
  sim.schedule_at(TimePoint(2.0), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulationDeathTest, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_at(TimePoint(5.0), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(TimePoint(1.0), [] {}), "precondition");
}

TEST(DelayModel, FixedIsDeterministic) {
  DelayModel d = DelayModel::fixed(3_ms);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(d.sample(), 3_ms);
}

TEST(DelayModel, JitterNeverUndercutsBase) {
  DelayModel d(1_ms, std::make_unique<stats::Gaussian>(0.0, 1e-3), Rng(3));
  for (int k = 0; k < 1000; ++k) {
    EXPECT_GE(d.sample(), 1_ms);
  }
}

TEST(Link, DeliversAfterDelay) {
  Simulation sim;
  Link link(sim, DelayModel::fixed(2_ms));
  TimePoint delivered_at;
  sim.schedule_at(TimePoint(1.0), [&] {
    link.send([&] { delivered_at = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(delivered_at.seconds(), 1.002, 1e-12);
  EXPECT_EQ(link.sent_count(), 1u);
}

TEST(Link, RandomDelaysCanReorder) {
  // An unordered link with huge jitter should deliver some pair out of
  // send order.
  Simulation sim;
  Link link(sim, DelayModel(0_ms,
                            std::make_unique<stats::Uniform>(0.0, 10e-3),
                            Rng(7)));
  std::vector<int> arrivals;
  for (int k = 0; k < 50; ++k) {
    sim.schedule_at(TimePoint(static_cast<double>(k) * 1e-4),
                    [&, k] { link.send([&, k] { arrivals.push_back(k); }); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 50u);
  EXPECT_FALSE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

TEST(OrderedChannel, NeverReordersDespiteJitter) {
  Simulation sim;
  OrderedChannel channel(
      sim, DelayModel(0_ms, std::make_unique<stats::Uniform>(0.0, 10e-3),
                      Rng(7)));
  std::vector<int> arrivals;
  for (int k = 0; k < 200; ++k) {
    sim.schedule_at(TimePoint(static_cast<double>(k) * 1e-4), [&, k] {
      channel.send([&, k] { arrivals.push_back(k); });
    });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 200u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

TEST(OrderedChannel, DelaysAtLeastBase) {
  Simulation sim;
  OrderedChannel channel(sim, DelayModel::fixed(5_ms));
  TimePoint delivered;
  sim.schedule_at(TimePoint(0.0),
                  [&] { channel.send([&] { delivered = sim.now(); }); });
  sim.run();
  EXPECT_EQ(delivered, TimePoint(5e-3));
  EXPECT_EQ(channel.last_delivery_time(), TimePoint(5e-3));
}

}  // namespace
}  // namespace tommy::net
