// The event-driven front-end's acceptance proof: the SAME messy-network
// soak the thread-per-connection transport passes (fault-injected client
// streams, torn handshakes, mid-frame cuts, reconnect-and-resume), but
// served by TransportMode::kEventLoop — M poller threads multiplexing
// every connection — and the emission stream must stay bit-identical to
// the direct-session oracle in every engine configuration (sequential,
// sharded, threaded, global-merge) over Unix and TCP transports.
// soak_test.cpp already proves threaded-reader == direct, so direct
// equivalence here IS epoll == threaded-reader, transitively.
#include <gtest/gtest.h>

#include <thread>

#include "net/acceptor.hpp"
#include "net/faulty_stream.hpp"
#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using namespace tommy::net::testing;
using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;

struct EpollSoakOptions {
  int segments{4};
  bool use_tcp{false};
  std::uint64_t seed{1};
  std::size_t poller_threads{2};
  /// Small limits force the submit-batch stall paths (kConsumedStall /
  /// pending flush) to actually run during the soak.
  std::size_t submit_batch_limit{0};  // 0 = frontend default
};

struct EpollSoakOutcome {
  std::vector<CapturedBatch> emissions;
  std::uint64_t episodes{0};
  std::uint64_t cuts{0};
};

/// One client's wire life, mirroring soak_test.cpp: submit the event
/// sequence across several connections, each episode ending in a
/// deliberate cut (mid-handshake, at a frame boundary, or mid-frame) or
/// a clean close; resume from the first undelivered frame.
template <typename ConnectFn>
void run_epoll_soak_client(const ConnectFn& connect, std::uint32_t client,
                           const std::vector<Event>& events, Rng rng,
                           int segments,
                           std::atomic<std::uint64_t>& episodes,
                           std::atomic<std::uint64_t>& cuts) {
  const auto handshake = announce_frame(client);
  std::size_t next = 0;
  const std::size_t per_segment =
      (events.size() + static_cast<std::size_t>(segments) - 1)
      / static_cast<std::size_t>(segments);
  for (int segment = 0; next < events.size(); ++segment) {
    const bool final_segment = segment >= segments - 1;
    const std::size_t target =
        final_segment ? events.size()
                      : std::min(events.size(), next + per_segment);

    std::vector<std::uint8_t> bytes = handshake;
    std::vector<std::size_t> ends;
    for (std::size_t e = next; e < target; ++e) {
      const auto frame = event_frame(client, events[e]);
      bytes.insert(bytes.end(), frame.begin(), frame.end());
      ends.push_back(bytes.size());
    }

    FaultPlan plan;
    plan.write_chunks = {
        static_cast<std::size_t>(rng.uniform_int(1, 97)),
        static_cast<std::size_t>(rng.uniform_int(1, 13)),
        static_cast<std::size_t>(rng.uniform_int(1, 53))};
    plan.write_chunks_cycle = true;

    std::size_t delivered_events = target - next;
    if (!final_segment) {
      const double what = rng.next_double();
      if (what < 0.2 || ends.empty()) {
        plan.cut_write_after = static_cast<std::size_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(handshake.size()) - 1));
        delivered_events = 0;
      } else {
        const auto torn = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ends.size()) - 1));
        const std::size_t start =
            torn == 0 ? handshake.size() : ends[torn - 1];
        const auto offset = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ends[torn] - start) - 1));
        plan.cut_write_after = start + offset;
        delivered_events = torn;
      }
      cuts.fetch_add(1, std::memory_order_relaxed);
    }

    auto inner = connect();
    ASSERT_NE(inner, nullptr) << "client " << client << " episode "
                              << segment;
    FaultyByteStream wire(inner, plan);
    const bool ok = wire.write_all(std::span<const std::uint8_t>(bytes));
    if (final_segment) {
      ASSERT_TRUE(ok);
      wire.close_write();
    } else {
      ASSERT_FALSE(ok);
      ASSERT_TRUE(wire.stats().write_cut);
    }
    episodes.fetch_add(1, std::memory_order_relaxed);
    next += delivered_events;
  }
}

EpollSoakOutcome run_epoll_soaked(
    const std::vector<std::vector<Event>>& workload, ServiceConfig config,
    EpollSoakOptions options) {
  ClientRegistry registry =
      make_registry(static_cast<std::uint32_t>(workload.size()));
  FairOrderingService service(
      registry, ids(static_cast<std::uint32_t>(workload.size())), config);
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.transport = TransportMode::kEventLoop;
  server_config.frontend.poller_threads = options.poller_threads;
  if (options.submit_batch_limit != 0) {
    server_config.frontend.submit_batch_limit = options.submit_batch_limit;
  }
  FrameServer server(registry, service, server_config);

  std::string path;
  if (options.use_tcp) {
    EXPECT_TRUE(server.listen_tcp(0));
  } else {
    path = fresh_unix_path();
    EXPECT_TRUE(server.listen_unix(path));
  }
  auto connect = [&server, &path]() -> std::shared_ptr<ByteStream> {
    return connect_retry(path, server.port());
  };

  std::atomic<std::uint64_t> episodes{0};
  std::atomic<std::uint64_t> cuts{0};
  Rng rng(options.seed);
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    Rng client_rng = rng.split();
    clients.emplace_back([&, c, client_rng] {
      run_epoll_soak_client(connect, c, workload[c], client_rng,
                            options.segments, episodes, cuts);
    });
  }
  for (std::thread& client : clients) client.join();

  EpollSoakOutcome outcome;
  outcome.episodes = episodes.load();
  outcome.cuts = cuts.load();
  EXPECT_TRUE(server.wait_for_accepted(outcome.episodes, 10000));
  // Event mode's join_readers: waits until every poller-registered
  // connection has applied all its retained frames (done flag).
  server.frontend().join_readers();
  outcome.emissions = drain_captured(service);
  server.stop();
  return outcome;
}

void epoll_soak_equivalence(ServiceConfig soak_config,
                            ServiceConfig direct_config,
                            EpollSoakOptions options,
                            std::uint32_t clients = 4, int per_client = 30) {
  const auto workload =
      make_workload(clients, per_client, /*seed=*/options.seed + 1000);
  const auto direct = run_direct(workload, direct_config);
  ASSERT_FALSE(direct.empty());
  const EpollSoakOutcome outcome =
      run_epoll_soaked(workload, soak_config, options);
  EXPECT_GT(outcome.episodes, static_cast<std::uint64_t>(clients));
  EXPECT_GT(outcome.cuts, 0u);
  expect_equivalent(direct, outcome.emissions);
}

TEST(EpollSoakOverUnixSockets, SequentialEmissionsSurviveBitForBit) {
  ServiceConfig config;
  config.with_p_safe(0.99);
  for (std::uint64_t seed : {21ULL, 22ULL}) {
    EpollSoakOptions options;
    options.seed = seed;
    epoll_soak_equivalence(config, config, options);
  }
}

TEST(EpollSoakOverUnixSockets, SequentialShardedEmissionsSurvive) {
  ServiceConfig config;
  config.with_shards(3).with_p_safe(0.99);
  EpollSoakOptions options;
  options.seed = 25;
  options.poller_threads = 3;
  epoll_soak_equivalence(config, config, options, /*clients=*/6);
}

TEST(EpollSoakOverUnixSockets, ThreadedEmissionsSurviveBitForBit) {
  ServiceConfig threaded;
  threaded.with_shards(2).with_p_safe(0.99).with_worker_threads();
  ServiceConfig sequential;
  sequential.with_shards(2).with_p_safe(0.99);
  EpollSoakOptions options;
  options.seed = 27;
  epoll_soak_equivalence(threaded, sequential, options);
}

TEST(EpollSoakOverUnixSockets, GlobalMergeEmissionsSurviveBitForBit) {
  ServiceConfig threaded;
  threaded.with_shards(2).with_p_safe(0.99).with_worker_threads()
      .with_drain_policy(core::DrainPolicy::kGlobalMerge);
  ServiceConfig sequential;
  sequential.with_shards(2).with_p_safe(0.99).with_drain_policy(
      core::DrainPolicy::kGlobalMerge);
  EpollSoakOptions options;
  options.seed = 31;
  epoll_soak_equivalence(threaded, sequential, options);
}

TEST(EpollSoakOverUnixSockets, TinySubmitBatchLimitStillBitIdentical) {
  // submit_batch_limit=2 forces the pending-flush / kConsumedStall paths
  // to run constantly; the emissions must not notice.
  ServiceConfig config;
  config.with_p_safe(0.99);
  EpollSoakOptions options;
  options.seed = 33;
  options.submit_batch_limit = 2;
  epoll_soak_equivalence(config, config, options);
}

TEST(EpollSoakOverTcp, SequentialEmissionsSurviveBitForBit) {
  ServiceConfig config;
  config.with_p_safe(0.99);
  EpollSoakOptions options;
  options.seed = 37;
  options.use_tcp = true;
  epoll_soak_equivalence(config, config, options);
}

TEST(EpollSoakOverTcp, ThreadedEmissionsSurviveBitForBit) {
  ServiceConfig threaded;
  threaded.with_shards(2).with_p_safe(0.99).with_worker_threads();
  ServiceConfig sequential;
  sequential.with_shards(2).with_p_safe(0.99);
  EpollSoakOptions options;
  options.seed = 41;
  options.use_tcp = true;
  epoll_soak_equivalence(threaded, sequential, options);
}

/// Event-mode churn: 60 connect/submit/disconnect cycles through the
/// poller transport keep the connection table bounded (retire unhooks
/// each connection from the loop via remove_sync).
TEST(EpollSoakOverUnixSockets, ChurnKeepsTheTableBounded) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.transport = TransportMode::kEventLoop;
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));

  for (int cycle = 0; cycle < 60; ++cycle) {
    auto wire = connect_unix(path);
    ASSERT_NE(wire, nullptr);
    std::vector<std::uint8_t> bytes = announce_frame(0);
    const auto frame = message_frame(
        0, static_cast<std::uint64_t>(cycle), 1.0 + 1e-3 * cycle);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    ASSERT_TRUE(wire->write_all(bytes));
    wire->close_write();
    ASSERT_TRUE(eventually([&server] {
      return server.frontend().connection_count() == 0;
    }));
  }
  ASSERT_TRUE(server.wait_for_accepted(60, 10000));
  server.frontend().join_readers();
  server.frontend().reap();
  EXPECT_EQ(server.frontend().tracked_connection_count(), 0u);
  EXPECT_EQ(server.frontend().totals().accepted, 60u);
  EXPECT_EQ(server.frontend().totals().removed, 60u);
  EXPECT_TRUE(
      eventually([&service] { return service.pending_count() == 60; }));
  server.stop();
}

}  // namespace
}  // namespace tommy::net
