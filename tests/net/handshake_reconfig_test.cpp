// Satellite coverage for the wire-level reconfiguration paths: the
// RetryPolicy backoff schedule, byte-identical re-announces staying
// idempotent over a real server, mutated re-announces starting (and
// completing) a live reconfig instead of freezing the connection, the
// join flow's ReconfigPending → re-announce → HandshakeAck handshake,
// and mid-handshake cuts via FaultyByteStream leaving the service
// untouched.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/acceptor.hpp"
#include "net/faulty_stream.hpp"
#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using namespace tommy::net::testing;
using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;

ServiceConfig sequential_config() {
  ServiceConfig config;
  config.with_p_safe(0.99);
  return config;
}

ServiceConfig threaded_config() {
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99).with_worker_threads();
  return config;
}

// ── RetryPolicy schedule ────────────────────────────────────────────────

TEST(RetryPolicy, BackoffScheduleIsDeterministic) {
  using std::chrono::microseconds;
  RetryPolicy policy;
  policy.base_delay = microseconds(1000);
  policy.multiplier = 2.0;
  policy.max_delay = microseconds(8000);
  EXPECT_EQ(policy.delay_for(0), microseconds(1000));
  EXPECT_EQ(policy.delay_for(1), microseconds(2000));
  EXPECT_EQ(policy.delay_for(2), microseconds(4000));
  EXPECT_EQ(policy.delay_for(3), microseconds(8000));
  EXPECT_EQ(policy.delay_for(30), microseconds(8000));  // capped, no overflow

  // The injectable sleep sees exactly the schedule.
  std::vector<microseconds> recorded;
  policy.sleep = [&recorded](microseconds d) { recorded.push_back(d); };
  policy.wait(0);
  policy.wait(3);
  EXPECT_EQ(recorded,
            (std::vector<microseconds>{microseconds(1000), microseconds(8000)}));
}

TEST(RetryPolicy, FlatScheduleIsTheDefault) {
  const RetryPolicy policy;  // multiplier 1.0
  EXPECT_EQ(policy.delay_for(0), policy.base_delay);
  EXPECT_EQ(policy.delay_for(17), policy.base_delay);
}

// ── perform_handshake against a scripted peer ───────────────────────────

std::vector<std::uint8_t> read_one_frame(ByteStream& stream,
                                         FrameDecoder& decoder) {
  std::vector<std::uint8_t> buffer(512);
  for (;;) {
    if (auto payload = decoder.next()) return *payload;
    const auto n = stream.read_some(buffer);
    if (!n || *n == 0) return {};
    decoder.append({buffer.data(), *n});
  }
}

TEST(PerformHandshake, BudgetExhaustionReportsPending) {
  auto [server_end, client_end] = make_socketpair_streams();
  std::thread scripted([stream = server_end] {
    FrameDecoder decoder;
    for (int k = 0; k < 3; ++k) {  // one per announce attempt
      if (read_one_frame(*stream, decoder).empty()) return;
      if (!stream->write_all(
              encode_frame(WireMessage(ReconfigPending{5})))) {
        return;
      }
    }
  });
  RetryPolicy policy;
  policy.attempts = 3;
  std::vector<std::chrono::microseconds> waits;
  policy.sleep = [&waits](std::chrono::microseconds d) {
    waits.push_back(d);
  };
  const auto result = perform_handshake(
      *client_end, DistributionAnnouncement{ClientId(9), summary_for(9)},
      policy);
  EXPECT_EQ(result, HandshakeResult::kPending);
  EXPECT_EQ(waits.size(), 2u);  // attempts-1 backoffs before giving up
  scripted.join();
}

TEST(PerformHandshake, BroadcastsAreSkippedUntilTheAck) {
  auto [server_end, client_end] = make_socketpair_streams();
  std::thread scripted([stream = server_end] {
    FrameDecoder decoder;
    if (read_one_frame(*stream, decoder).empty()) return;
    // Interleaved broadcast traffic must not confuse the handshake.
    (void)stream->write_all(
        encode_frame(WireMessage(BatchEmission{3, {MessageId(1)}})));
    (void)stream->write_all(
        encode_frame(WireMessage(BatchEmission{4, {}})));
    (void)stream->write_all(encode_frame(WireMessage(HandshakeAck{7})));
  });
  const auto result = perform_handshake(
      *client_end, DistributionAnnouncement{ClientId(1), summary_for(1)});
  EXPECT_EQ(result, HandshakeResult::kAccepted);
  scripted.join();
}

TEST(PerformHandshake, PeerEofReportsStreamClosed) {
  auto [server_end, client_end] = make_socketpair_streams();
  std::thread scripted([stream = server_end] {
    FrameDecoder decoder;
    (void)read_one_frame(*stream, decoder);
    stream->close_write();
  });
  const auto result = perform_handshake(
      *client_end, DistributionAnnouncement{ClientId(2), summary_for(2)});
  EXPECT_EQ(result, HandshakeResult::kStreamClosed);
  scripted.join();
}

// ── Re-announce paths over a real server ────────────────────────────────

void expect_byte_identical_reannounce_is_idempotent(ServiceConfig config) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), config);
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));
  const std::uint64_t g0 = registry.generation();

  auto wire = connect_retry(path, 0);
  ASSERT_NE(wire, nullptr);
  std::vector<std::uint8_t> bytes = announce_frame(0);
  auto append = [&bytes](const std::vector<std::uint8_t>& frame) {
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  };
  append(message_frame(0, 1, 1.0));
  append(announce_frame(0));  // byte-identical re-send mid-stream
  append(message_frame(0, 2, 1.001));
  append(heartbeat_frame(0, 1.002));
  ASSERT_TRUE(wire->write_all(bytes));
  wire->close_write();
  ASSERT_TRUE(server.wait_for_accepted(1, 10000));
  server.frontend().join_readers();

  EXPECT_EQ(registry.generation(), g0);
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_EQ(service.epoch(), 0u);
  service.quiesce();
  EXPECT_EQ(service.pending_count(), 2u);
  server.stop();
}

TEST(WireReconfig, SequentialByteIdenticalReannounceIsIdempotent) {
  expect_byte_identical_reannounce_is_idempotent(sequential_config());
}

TEST(WireReconfig, ThreadedByteIdenticalReannounceIsIdempotent) {
  expect_byte_identical_reannounce_is_idempotent(threaded_config());
}

void expect_mutated_reannounce_reconfigures(ServiceConfig config) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), config);
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));
  const std::uint64_t g0 = registry.generation();

  auto wire = connect_retry(path, 0);
  ASSERT_NE(wire, nullptr);
  std::vector<std::uint8_t> bytes = announce_frame(0);
  auto append = [&bytes](const std::vector<std::uint8_t>& frame) {
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  };
  append(message_frame(0, 1, 1.0));
  // A mutated summary from an already-handshaken client: the connection
  // must stay open and the service must start a live reconfig.
  append(encode_frame(WireMessage(DistributionAnnouncement{
      ClientId(0),
      stats::DistributionSummary(stats::GaussianParams{7e-4, 2e-3})})));
  append(message_frame(0, 2, 1.001));
  append(heartbeat_frame(0, 1.002));
  ASSERT_TRUE(wire->write_all(bytes));
  wire->close_write();
  ASSERT_TRUE(server.wait_for_accepted(1, 10000));
  server.frontend().join_readers();
  EXPECT_EQ(server.frontend().connection_error(0), WireError::kNone);

  EXPECT_EQ(registry.generation(), g0 + 1);
  // The pump drives the install opportunistically (nobody re-announces);
  // pump at a pre-traffic instant so no emissions are consumed here.
  ASSERT_TRUE(eventually([&server, &service] {
    (void)server.pump(TimePoint(0.5));
    return !service.reconfig_pending();
  }));
  EXPECT_EQ(service.primed_generation(), registry.generation());
  service.quiesce();
  EXPECT_EQ(service.pending_count(), 2u);
  server.stop();
}

TEST(WireReconfig, SequentialMutatedReannounceReconfiguresLive) {
  expect_mutated_reannounce_reconfigures(sequential_config());
}

TEST(WireReconfig, ThreadedMutatedReannounceReconfiguresLive) {
  expect_mutated_reannounce_reconfigures(threaded_config());
}

// ── Join flow ───────────────────────────────────────────────────────────

TEST(WireReconfig, JoinHandshakeRidesReconfigPendingToAnAck) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), threaded_config());
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.accept_new_clients = true;
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));

  // Unknown client: the first announce is necessarily ReconfigPending
  // (expect_client + prime start); retries ride the install to an ack.
  auto wire = connect_retry(path, 0);
  ASSERT_NE(wire, nullptr);
  const auto result = perform_handshake(
      *wire, DistributionAnnouncement{ClientId(2), summary_for(2)});
  ASSERT_EQ(result, HandshakeResult::kAccepted);
  EXPECT_TRUE(service.expects_client(ClientId(2)));
  EXPECT_EQ(service.primed_generation(), registry.generation());
  EXPECT_GE(service.epoch(), 1u);

  // The joined session carries traffic on the same connection.
  std::vector<std::uint8_t> bytes = message_frame(2, 7, 1.0);
  const auto tail = heartbeat_frame(2, 1.01);
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  ASSERT_TRUE(wire->write_all(bytes));
  wire->close_write();
  server.frontend().join_readers();
  service.quiesce();
  EXPECT_EQ(service.pending_count(), 1u);
  server.stop();
}

TEST(WireReconfig, KnownClientHandshakeAcksWithoutAReconfigRound) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), sequential_config());
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.accept_new_clients = true;
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));

  auto wire = connect_retry(path, 0);
  ASSERT_NE(wire, nullptr);
  RetryPolicy no_retries;
  no_retries.attempts = 1;  // any ReconfigPending round would fail this
  const auto result = perform_handshake(
      *wire, DistributionAnnouncement{ClientId(1), summary_for(1)},
      no_retries);
  EXPECT_EQ(result, HandshakeResult::kAccepted);
  EXPECT_EQ(service.epoch(), 0u);  // no swap for a byte-identical announce
  server.stop();
}

// ── Mid-handshake cuts ──────────────────────────────────────────────────

TEST(WireReconfig, TornJoinAnnounceLeavesTheServiceUntouched) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), threaded_config());
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.accept_new_clients = true;
  server_config.frontend.retire_on_eof = true;
  FrameServer server(registry, service, server_config);
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));
  const std::uint64_t g0 = registry.generation();

  {
    auto inner = connect_retry(path, 0);
    ASSERT_NE(inner, nullptr);
    const auto announce = announce_frame(2);
    FaultPlan plan;
    plan.cut_write_after = announce.size() / 2;
    FaultyByteStream torn(inner, plan);
    EXPECT_FALSE(
        torn.write_all(std::span<const std::uint8_t>(announce)));
    EXPECT_TRUE(torn.stats().write_cut);
    // inner drops here: the server sees EOF mid-frame.
  }
  ASSERT_TRUE(server.wait_for_accepted(1, 10000));
  ASSERT_TRUE(eventually(
      [&server] { return server.frontend().connection_count() == 0; }));

  // Half an announce must not move the registry, queue a join, or retire
  // anyone (the connection never handshook).
  EXPECT_EQ(registry.generation(), g0);
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_FALSE(service.expects_client(ClientId(2)));

  // A clean retry joins as if the cut never happened.
  auto wire = connect_retry(path, 0);
  ASSERT_NE(wire, nullptr);
  const auto result = perform_handshake(
      *wire, DistributionAnnouncement{ClientId(2), summary_for(2)});
  EXPECT_EQ(result, HandshakeResult::kAccepted);
  EXPECT_TRUE(service.expects_client(ClientId(2)));
  server.stop();
}

}  // namespace
}  // namespace tommy::net
