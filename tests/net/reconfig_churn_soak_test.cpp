// The tentpole proof for live reconfiguration: a real listening server
// under phased client churn — three clients stream phase A, then at a
// quiesced boundary one re-announces a mutated summary (epoch swap), one
// departs (EOF → retirement from the completeness gate), and a brand-new
// client joins through the ReconfigPending → re-announce → HandshakeAck
// flow — and phase B streams over the SAME surviving connections, no
// restart anywhere. The emission stream, segmented per poll, must be
// bit-identical to a sequential oracle performing the same reconfigs at
// the same boundaries, gap-free in ranks, and arrival-monotone.
//
// SOAK_ITERS (env) repeats each scenario with fresh seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <optional>
#include <thread>

#include "net/acceptor.hpp"
#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using namespace tommy::net::testing;
using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;

constexpr std::uint32_t kDeparter = 1;
constexpr std::uint32_t kJoiner = 3;
constexpr double kPhaseBBase = 1.035;

int soak_iterations() {
  const char* env = std::getenv("SOAK_ITERS");
  if (env == nullptr) return 1;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 1;
}

// ── Phased workload ─────────────────────────────────────────────────────

struct ChurnWorkload {
  /// Indexed by client id; phase A covers {0, 1, 2}, phase B {0, 2, 3}.
  std::array<std::vector<Event>, 4> phase_a{};
  std::array<std::vector<Event>, 4> phase_b{};
  /// Client 0's boundary re-announce (a real change: reconfig trigger).
  stats::DistributionSummary mutated0{
      stats::GaussianParams{5e-4, 1.6e-3}};
};

/// One client's events for one phase: jittered stamps from `base`, a
/// heartbeat every few messages, and a phase-ending heartbeat that
/// flushes the front-end's pending batch. `trailing_gap` stretches the
/// final heartbeat's stamp — the departer gets a tight one, so only its
/// retirement (not a far frontier) can unblock the later polls.
std::vector<Event> phase_events(int per_client, double base,
                                std::uint64_t id_base, Rng rng,
                                double trailing_gap) {
  std::vector<Event> events;
  double stamp = base;
  for (int k = 0; k < per_client; ++k) {
    stamp += rng.uniform(0.5e-3, 3e-3);
    events.push_back(
        Event{false, id_base + static_cast<std::uint64_t>(k),
              TimePoint(stamp)});
    if (k % 4 == 3) {
      events.push_back(Event{true, 0, TimePoint(stamp + 0.1e-3)});
    }
  }
  events.push_back(Event{true, 0, TimePoint(stamp + trailing_gap)});
  return events;
}

ChurnWorkload make_churn_workload(std::uint64_t seed) {
  Rng rng(seed);
  ChurnWorkload w;
  for (std::uint32_t c : {0u, 1u, 2u}) {
    w.phase_a[c] = phase_events(10, 1.0 + 1e-4 * c, 1000ULL * c,
                                rng.split(), /*trailing_gap=*/0.1e-3);
  }
  for (std::uint32_t c : {0u, 2u, 3u}) {
    w.phase_b[c] = phase_events(10, kPhaseBBase + 1e-4 * c,
                                1000ULL * c + 500, rng.split(),
                                /*trailing_gap=*/50e-3);
  }
  return w;
}

struct PhaseTotals {
  std::uint64_t submits{0};
  std::uint64_t heartbeats{0};
};

PhaseTotals count(const std::array<std::vector<Event>, 4>& phase) {
  PhaseTotals totals;
  for (const auto& events : phase) {
    for (const Event& e : events) {
      if (e.is_heartbeat) {
        ++totals.heartbeats;
      } else {
        ++totals.submits;
      }
    }
  }
  return totals;
}

// ── Captures, segmented per poll ────────────────────────────────────────

/// Segments: poll(1.05) at the churn boundary, poll(1.2) after phase B,
/// poll(1.5)+poll(2.5)+flush(3.0) after teardown.
using Segments = std::vector<std::vector<CapturedBatch>>;

struct SegmentSink {
  std::vector<CapturedBatch> batches;

  auto sink() {
    return [this](core::EmissionRecord&& record, std::uint32_t shard) {
      batches.push_back(capture(record, shard));
    };
  }
};

std::vector<CapturedBatch> flatten(const Segments& segments) {
  std::vector<CapturedBatch> all;
  for (const auto& segment : segments) {
    all.insert(all.end(), segment.begin(), segment.end());
  }
  return all;
}

/// Gap-free and arrival-monotone. Shard-local drains deliver each
/// shard's batches in strict rank order, so ranks must be contiguous
/// from zero in delivery order. The global merge releases by safe_time
/// and may legally deliver a rank-blocked batch behind a later one (the
/// documented DrainPolicy caveat), so there the gap-free claim is on the
/// SET of ranks per shard: every rank 0..n-1 delivered exactly once.
/// Either way no message may be emitted before it arrived.
void expect_sane_emissions(const std::vector<CapturedBatch>& batches,
                           bool global_merge) {
  std::map<std::uint32_t, std::vector<Rank>> ranks;
  std::map<std::uint32_t, double> last_emit;
  for (const CapturedBatch& batch : batches) {
    ranks[batch.shard].push_back(batch.rank);
    if (!global_merge) {
      auto [emit_it, _] = last_emit.try_emplace(batch.shard, 0.0);
      EXPECT_GE(batch.emitted_at, emit_it->second);
      emit_it->second = batch.emitted_at;
    }
    for (const CapturedMessage& m : batch.messages) {
      EXPECT_LE(m.arrival, batch.emitted_at)
          << "message " << m.id << " emitted before it arrived";
    }
  }
  for (auto& [shard, seen] : ranks) {
    if (global_merge) std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], Rank{i}) << "rank gap on shard " << shard;
    }
  }
}

// ── The churned wire run ────────────────────────────────────────────────

Segments run_churned(ServiceConfig config, const ChurnWorkload& w,
                     bool use_tcp) {
  ClientRegistry registry = make_registry(3);
  FairOrderingService service(registry, ids(3), config);
  ServerConfig server_config;
  server_config.frontend = test_frontend_config();
  server_config.frontend.accept_new_clients = true;
  server_config.frontend.retire_on_eof = true;
  FrameServer server(registry, service, server_config);

  std::string path;
  if (use_tcp) {
    EXPECT_TRUE(server.listen_tcp(0));
  } else {
    path = fresh_unix_path();
    EXPECT_TRUE(server.listen_unix(path));
  }
  auto connect = [&server, &path] { return connect_retry(path, server.port()); };

  std::array<std::shared_ptr<ByteStream>, 4> wires;
  std::atomic<int> write_failures{0};
  auto stream_phase = [&](const std::vector<std::uint32_t>& clients,
                          const std::array<std::vector<Event>, 4>& phase,
                          bool announce_first) {
    std::vector<std::thread> writers;
    for (std::uint32_t c : clients) {
      writers.emplace_back([&, c] {
        std::vector<std::uint8_t> bytes;
        if (announce_first) bytes = announce_frame(c);
        for (const Event& e : phase[c]) {
          const auto frame = event_frame(c, e);
          bytes.insert(bytes.end(), frame.begin(), frame.end());
        }
        if (!wires[c]->write_all(bytes)) {
          write_failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& writer : writers) writer.join();
  };

  // Phase A: three persistent connections stream concurrently.
  for (std::uint32_t c : {0u, 1u, 2u}) {
    wires[c] = connect();
    EXPECT_NE(wires[c], nullptr);
  }
  stream_phase({0u, 1u, 2u}, w.phase_a, /*announce_first=*/true);
  EXPECT_EQ(write_failures.load(), 0);

  // Barrier: every phase A frame decoded and dispatched, rings drained.
  const PhaseTotals a = count(w.phase_a);
  EXPECT_TRUE(eventually([&server, &a] {
    const FrontendTotals t = server.frontend().totals();
    return t.submits_in == a.submits && t.heartbeats_in == a.heartbeats;
  }));
  service.quiesce();
  Segments segments;
  SegmentSink boundary_poll;
  {
    // Boundary drains go through the front-end, not the service: reader
    // threads are live, and in sequential configs the front-end's
    // ingest lock is the only thing serializing them against a poll.
    auto sink = boundary_poll.sink();
    server.frontend().pump_into(TimePoint(1.05), sink);
  }
  segments.push_back(std::move(boundary_poll.batches));

  // Churn boundary (canonical order, mirrored by the oracle):
  // (1) client 0 re-announces a mutated summary on its LIVE connection.
  const std::uint64_t pre_mutate = registry.generation();
  EXPECT_TRUE(wires[0]->write_all(encode_frame(WireMessage(
      DistributionAnnouncement{ClientId(0), w.mutated0}))));
  EXPECT_TRUE(eventually([&registry, pre_mutate] {
    return registry.generation() > pre_mutate;
  }));
  // (2) the departer EOFs; retire_on_eof pulls it out of the gate.
  wires[kDeparter]->close_write();
  EXPECT_TRUE(eventually(
      [&server] { return server.frontend().connection_count() == 2; }));
  // (3) a brand-new client joins via the ReconfigPending → ack flow.
  wires[kJoiner] = connect();
  EXPECT_NE(wires[kJoiner], nullptr);
  const auto join = perform_handshake(
      *wires[kJoiner],
      DistributionAnnouncement{ClientId(kJoiner), summary_for(kJoiner)});
  EXPECT_EQ(join, HandshakeResult::kAccepted);
  // (4) drive any residual swap to completion before phase B flows —
  // via the front-end so the swap holds the ingest lock that live
  // readers contend on (sequential configs).
  server.frontend().reconfigure();
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_EQ(service.primed_generation(), registry.generation());
  EXPECT_GE(service.epoch(), 1u);
  service.quiesce();

  // Phase B: the survivors and the joiner stream on their connections.
  stream_phase({0u, 2u, kJoiner}, w.phase_b, /*announce_first=*/false);
  EXPECT_EQ(write_failures.load(), 0);
  const PhaseTotals b = count(w.phase_b);
  EXPECT_TRUE(eventually([&server, &a, &b] {
    const FrontendTotals t = server.frontend().totals();
    return t.submits_in == a.submits + b.submits
           && t.heartbeats_in == a.heartbeats + b.heartbeats;
  }));
  service.quiesce();
  SegmentSink after_b;
  {
    auto sink = after_b.sink();
    server.frontend().pump_into(TimePoint(1.2), sink);
  }
  segments.push_back(std::move(after_b.batches));

  // Teardown: everyone departs; the final polls and flush drain the rest.
  // (Readers are joined below, so these may hit the service directly.)
  for (std::uint32_t c : {0u, 2u, kJoiner}) wires[c]->close_write();
  server.frontend().join_readers();
  service.quiesce();
  SegmentSink tail;
  {
    auto sink = tail.sink();
    service.poll(TimePoint(1.5), sink);
    service.poll(TimePoint(2.5), sink);
    service.flush(TimePoint(3.0), sink);
  }
  segments.push_back(std::move(tail.batches));
  server.stop();
  return segments;
}

// ── The sequential oracle ───────────────────────────────────────────────

/// Direct session calls performing the exact same announces, retirement,
/// join, and reconfigure at the exact same boundaries.
Segments run_oracle(ServiceConfig config, const ChurnWorkload& w) {
  ClientRegistry registry = make_registry(3);
  FairOrderingService service(registry, ids(3), config);
  std::array<std::optional<FairOrderingService::Session>, 4> sessions;
  for (std::uint32_t c : {0u, 1u, 2u}) {
    sessions[c] = service.open_session(ClientId(c));
  }

  auto feed = [&sessions](std::uint32_t c, const std::vector<Event>& events) {
    std::vector<core::Submission> batch;
    for (const Event& e : events) {
      if (e.is_heartbeat) {
        sessions[c]->submit_batch(
            std::span<const core::Submission>(batch));
        batch.clear();
        sessions[c]->heartbeat(e.stamp, e.stamp + kWireDelay);
      } else {
        batch.push_back(core::Submission{e.stamp, MessageId(e.id),
                                         e.stamp + kWireDelay});
      }
    }
    EXPECT_TRUE(batch.empty());  // phases end on a heartbeat
  };

  for (std::uint32_t c : {0u, 1u, 2u}) feed(c, w.phase_a[c]);
  service.quiesce();
  Segments segments;
  SegmentSink boundary_poll;
  {
    auto sink = boundary_poll.sink();
    service.poll(TimePoint(1.05), sink);
  }
  segments.push_back(std::move(boundary_poll.batches));

  registry.announce(ClientId(0), w.mutated0);
  service.close_session(*sessions[kDeparter]);
  registry.announce(ClientId(kJoiner), summary_for(kJoiner));
  service.expect_client(ClientId(kJoiner));
  service.reconfigure();
  sessions[kJoiner] = service.open_session(ClientId(kJoiner));
  service.quiesce();

  for (std::uint32_t c : {0u, 2u, kJoiner}) feed(c, w.phase_b[c]);
  service.quiesce();
  SegmentSink after_b;
  {
    auto sink = after_b.sink();
    service.poll(TimePoint(1.2), sink);
  }
  segments.push_back(std::move(after_b.batches));

  for (std::uint32_t c : {0u, 2u, kJoiner}) {
    service.close_session(*sessions[c]);
  }
  service.quiesce();
  SegmentSink tail;
  {
    auto sink = tail.sink();
    service.poll(TimePoint(1.5), sink);
    service.poll(TimePoint(2.5), sink);
    service.flush(TimePoint(3.0), sink);
  }
  segments.push_back(std::move(tail.batches));
  return segments;
}

// ── The acceptance criterion ────────────────────────────────────────────

void churn_equivalence(ServiceConfig wire_config,
                       ServiceConfig oracle_config, bool use_tcp,
                       std::uint64_t seed) {
  const ChurnWorkload w = make_churn_workload(seed);
  const Segments oracle = run_oracle(oracle_config, w);
  const Segments churned = run_churned(wire_config, w, use_tcp);

  ASSERT_EQ(oracle.size(), churned.size());
  for (std::size_t s = 0; s < oracle.size(); ++s) {
    ASSERT_EQ(oracle[s].size(), churned[s].size()) << "segment " << s;
    for (std::size_t i = 0; i < oracle[s].size(); ++i) {
      EXPECT_EQ(oracle[s][i], churned[s][i])
          << "segment " << s << " batch " << i;
    }
  }

  const auto all = flatten(churned);
  ASSERT_FALSE(all.empty());
  expect_sane_emissions(
      all, wire_config.drain_policy == core::DrainPolicy::kGlobalMerge);

  // Retirement visibility: the poll after phase B emits phase-B stamps —
  // impossible if the departed client still pinned the gate at its last
  // phase-A heartbeat.
  bool phase_b_emitted = false;
  for (const CapturedBatch& batch : churned[1]) {
    for (const CapturedMessage& m : batch.messages) {
      if (m.stamp > kPhaseBBase) phase_b_emitted = true;
    }
  }
  EXPECT_TRUE(phase_b_emitted);

  // The full workload landed: 30 phase-A + 30 phase-B messages.
  std::size_t messages = 0;
  for (const CapturedBatch& batch : all) messages += batch.messages.size();
  EXPECT_EQ(messages, 60u);
}

TEST(ReconfigChurnSoak, ThreadedGlobalMergeMatchesTheOracleOverUnix) {
  ServiceConfig wire;
  wire.with_shards(2).with_p_safe(0.99).with_worker_threads()
      .with_drain_policy(core::DrainPolicy::kGlobalMerge);
  ServiceConfig oracle;
  oracle.with_shards(2).with_p_safe(0.99).with_drain_policy(
      core::DrainPolicy::kGlobalMerge);
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    churn_equivalence(wire, oracle, /*use_tcp=*/false,
                      /*seed=*/21 + static_cast<std::uint64_t>(iter));
  }
}

TEST(ReconfigChurnSoak, ThreadedShardLocalMatchesTheOracleOverUnix) {
  ServiceConfig wire;
  wire.with_shards(2).with_p_safe(0.99).with_worker_threads();
  ServiceConfig oracle;
  oracle.with_shards(2).with_p_safe(0.99);
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    churn_equivalence(wire, oracle, /*use_tcp=*/false,
                      /*seed=*/37 + static_cast<std::uint64_t>(iter));
  }
}

TEST(ReconfigChurnSoak, SequentialMatchesTheOracleOverUnix) {
  ServiceConfig config;
  config.with_p_safe(0.99);
  for (int iter = 0; iter < soak_iterations(); ++iter) {
    churn_equivalence(config, config, /*use_tcp=*/false,
                      /*seed=*/53 + static_cast<std::uint64_t>(iter));
  }
}

TEST(ReconfigChurnSoak, ThreadedGlobalMergeMatchesTheOracleOverTcp) {
  ServiceConfig wire;
  wire.with_shards(2).with_p_safe(0.99).with_worker_threads()
      .with_drain_policy(core::DrainPolicy::kGlobalMerge);
  ServiceConfig oracle;
  oracle.with_shards(2).with_p_safe(0.99).with_drain_policy(
      core::DrainPolicy::kGlobalMerge);
  churn_equivalence(wire, oracle, /*use_tcp=*/true, /*seed=*/71);
}

}  // namespace
}  // namespace tommy::net
