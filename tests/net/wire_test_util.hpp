// Shared helpers for the server-facing net suites (acceptor, soak,
// replay): deterministic workloads, the captured-emission currency the
// equivalence tests compare, the direct-session reference run, and
// throwaway socket endpoints. Kept header-only and test-local — this is
// harness code, not library surface.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/framing.hpp"
#include "net/frontend.hpp"
#include "stats/gaussian.hpp"
#include "stats/summary.hpp"

namespace tommy::net::testing {

constexpr Duration kWireDelay = Duration(0.5e-3);

/// Deterministic arrival clock: a pure function of the message, so any
/// transport timing (fast replay, slow replay, reconnects) produces the
/// same session calls — the precondition for bit-identical equivalence.
inline TimePoint modeled_arrival(const WireMessage& message) {
  if (const auto* msg = std::get_if<TimestampedMessage>(&message)) {
    return msg->local_stamp + kWireDelay;
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    return heartbeat->local_stamp + kWireDelay;
  }
  ADD_FAILURE() << "arrival requested for a non-ingest message";
  return TimePoint::epoch();
}

inline FrontendConfig test_frontend_config() {
  FrontendConfig config;
  config.arrival_clock = modeled_arrival;
  return config;
}

inline stats::DistributionSummary summary_for(std::uint32_t client) {
  return stats::DistributionSummary(
      stats::GaussianParams{1e-4 * client, 1e-3});
}

inline core::ClientRegistry make_registry(std::uint32_t n) {
  core::ClientRegistry registry;
  for (std::uint32_t c = 0; c < n; ++c) {
    registry.announce(ClientId(c), summary_for(c));
  }
  return registry;
}

inline std::vector<ClientId> ids(std::uint32_t n) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < n; ++c) out.push_back(ClientId(c));
  return out;
}

inline std::vector<std::uint8_t> announce_frame(std::uint32_t client) {
  return encode_frame(WireMessage(
      DistributionAnnouncement{ClientId(client), summary_for(client)}));
}

inline std::vector<std::uint8_t> message_frame(std::uint32_t client,
                                               std::uint64_t id,
                                               double stamp) {
  return encode_frame(WireMessage(TimestampedMessage{
      ClientId(client), MessageId(id), TimePoint(stamp)}));
}

inline std::vector<std::uint8_t> heartbeat_frame(std::uint32_t client,
                                                 double stamp) {
  return encode_frame(
      WireMessage(Heartbeat{ClientId(client), TimePoint(stamp)}));
}

// ── Captured emissions (the equivalence currency) ───────────────────────

struct CapturedMessage {
  std::uint64_t id;
  std::uint32_t client;
  double stamp;
  double arrival;

  friend bool operator==(const CapturedMessage&, const CapturedMessage&)
      = default;
};

struct CapturedBatch {
  std::uint32_t shard;
  Rank rank;
  double emitted_at;
  double safe_time;
  std::vector<CapturedMessage> messages;

  friend bool operator==(const CapturedBatch&, const CapturedBatch&)
      = default;
};

inline CapturedBatch capture(const core::EmissionRecord& record,
                             std::uint32_t shard) {
  CapturedBatch batch;
  batch.shard = shard;
  batch.rank = record.batch.rank;
  batch.emitted_at = record.emitted_at.seconds();
  batch.safe_time = record.safe_time.seconds();
  for (const core::Message& m : record.batch.messages) {
    batch.messages.push_back(CapturedMessage{m.id.value(), m.client.value(),
                                             m.stamp.seconds(),
                                             m.arrival.seconds()});
  }
  return batch;
}

// ── Workload ────────────────────────────────────────────────────────────

struct Event {
  bool is_heartbeat;
  std::uint64_t id;  // messages only
  TimePoint stamp;
};

/// Per-client event sequences: stamps advance with jitter, a heartbeat
/// every few messages, and a trailing heartbeat that pushes the
/// completeness frontier past everything.
inline std::vector<std::vector<Event>> make_workload(std::uint32_t clients,
                                                     int per_client,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Event>> events(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    Rng client_rng = rng.split();
    double stamp = 1.0 + 1e-4 * c;
    for (int k = 0; k < per_client; ++k) {
      stamp += client_rng.uniform(0.5e-3, 3e-3);
      events[c].push_back(Event{
          false, 1000ULL * c + static_cast<std::uint64_t>(k),
          TimePoint(stamp)});
      if (k % 5 == 4) {
        events[c].push_back(Event{true, 0, TimePoint(stamp + 0.1e-3)});
      }
    }
    events[c].push_back(Event{true, 0, TimePoint(stamp + 50e-3)});
  }
  return events;
}

inline std::vector<std::uint8_t> event_frame(std::uint32_t client,
                                             const Event& event) {
  return event.is_heartbeat
             ? heartbeat_frame(client, event.stamp.seconds())
             : message_frame(client, event.id, event.stamp.seconds());
}

inline std::vector<TimePoint> poll_schedule() {
  return {TimePoint(1.05), TimePoint(1.2), TimePoint(1.5), TimePoint(2.5)};
}

/// Reference run: the workload through direct session calls.
inline std::vector<CapturedBatch> run_direct(
    const std::vector<std::vector<Event>>& workload,
    core::ServiceConfig config) {
  core::ClientRegistry registry =
      make_registry(static_cast<std::uint32_t>(workload.size()));
  core::FairOrderingService service(
      registry, ids(static_cast<std::uint32_t>(workload.size())), config);

  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    auto session = service.open_session(ClientId(c));
    std::vector<core::Submission> batch;
    for (const Event& event : workload[c]) {
      if (event.is_heartbeat) {
        session.submit_batch(std::span<const core::Submission>(batch));
        batch.clear();
        session.heartbeat(event.stamp, event.stamp + kWireDelay);
      } else {
        batch.push_back(core::Submission{event.stamp, MessageId(event.id),
                                         event.stamp + kWireDelay});
      }
    }
    session.submit_batch(std::span<const core::Submission>(batch));
  }

  std::vector<CapturedBatch> out;
  auto sink = [&out](core::EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(capture(record, shard));
  };
  for (TimePoint t : poll_schedule()) service.poll(t, sink);
  service.flush(TimePoint(3.0), sink);
  return out;
}

/// Drains a service into captured batches on the shared poll schedule.
inline std::vector<CapturedBatch> drain_captured(
    core::FairOrderingService& service) {
  std::vector<CapturedBatch> out;
  auto sink = [&out](core::EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(capture(record, shard));
  };
  for (TimePoint t : poll_schedule()) service.poll(t, sink);
  service.flush(TimePoint(3.0), sink);
  return out;
}

inline void expect_equivalent(const std::vector<CapturedBatch>& direct,
                              const std::vector<CapturedBatch>& other) {
  ASSERT_EQ(direct.size(), other.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], other[i]) << "batch " << i;
  }
}

// ── Throwaway endpoints ─────────────────────────────────────────────────

/// A fresh abstract-enough Unix socket path under /tmp (pid + counter:
/// parallel ctest binaries never collide, and sun_path stays short).
inline std::string fresh_unix_path() {
  static std::atomic<int> counter{0};
  return "/tmp/tommy_srv_" + std::to_string(::getpid()) + "_"
         + std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Spin-waits (with sleeps) until `predicate` holds or ~5 s elapsed.
template <typename Predicate>
bool eventually(Predicate predicate, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now()
                        + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

}  // namespace tommy::net::testing
