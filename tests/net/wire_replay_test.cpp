// Replay driver round-trip: traces survive save/load bit-for-bit,
// malformed files are rejected, and a recorded randomized workload
// replayed through a LIVE server (any speed) emits a stream bit-identical
// to the recorded run's direct-session emissions — the property that
// makes traces portable regression workloads.
#include "sim/wire_replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "net/acceptor.hpp"
#include "wire_test_util.hpp"

namespace tommy::sim {
namespace {

using namespace tommy::net::testing;
using core::FairOrderingService;
using core::ServiceConfig;
using net::FrameServer;
using net::ServerConfig;

std::string fresh_trace_path() {
  static std::atomic<int> counter{0};
  return "/tmp/tommy_trace_" + std::to_string(::getpid()) + "_"
         + std::to_string(counter.fetch_add(1)) + ".trace";
}

/// Records `workload` as a wire trace: per client one logical connection
/// (or `segments` connect/disconnect episodes, re-announcing on each
/// reconnect), frames stamped on the trace clock at their event stamps.
WireTrace record_workload(const std::vector<std::vector<Event>>& workload,
                          int segments = 1) {
  WireTraceRecorder recorder;
  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    const auto& events = workload[c];
    const std::size_t per_segment =
        (events.size() + static_cast<std::size_t>(segments) - 1)
        / static_cast<std::size_t>(segments);
    std::size_t next = 0;
    for (int segment = 0; segment < segments && next < events.size();
         ++segment) {
      const double at =
          events[next].stamp.seconds() - 1e-6;  // just before the frames
      recorder.connect(c, at);
      recorder.send(c, at, announce_frame(c));
      const std::size_t end = std::min(events.size(), next + per_segment);
      for (; next < end; ++next) {
        recorder.send(c, events[next].stamp.seconds(),
                      event_frame(c, events[next]));
      }
      recorder.disconnect(c, events[next - 1].stamp.seconds() + 1e-6);
    }
  }
  return recorder.take();
}

TEST(WireTrace, SaveLoadRoundTripsBitForBit) {
  const auto workload = make_workload(3, 15, /*seed=*/71);
  const WireTrace trace = record_workload(workload, /*segments=*/2);
  ASSERT_FALSE(trace.events.empty());
  const std::string path = fresh_trace_path();
  ASSERT_TRUE(trace.save(path));
  const auto loaded = WireTrace::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  EXPECT_EQ(loaded->connection_count(), 3u);
  EXPECT_EQ(loaded->total_bytes(), trace.total_bytes());
  std::remove(path.c_str());
}

TEST(WireTrace, LoadRejectsMalformedFiles) {
  const std::string path = fresh_trace_path();
  // Bad magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOPE", f);
    std::fclose(f);
    EXPECT_FALSE(WireTrace::load(path).has_value());
  }
  // Truncation at every prefix of a valid file.
  const auto workload = make_workload(1, 3, /*seed=*/5);
  const WireTrace trace = record_workload(workload);
  ASSERT_TRUE(trace.save(path));
  std::vector<std::uint8_t> bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      bytes.push_back(static_cast<std::uint8_t>(c));
    }
    std::fclose(f);
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, len, f), len);
    std::fclose(f);
    EXPECT_FALSE(WireTrace::load(path).has_value()) << "prefix " << len;
  }
  std::remove(path.c_str());
  EXPECT_FALSE(WireTrace::load(path).has_value());  // missing file
}

TEST(WireReplay, SparseConnectionIndexesSpawnNoIdleThreads) {
  // A trace whose only events live on a high connection index must not
  // spawn (or fail to spawn) thousands of threads for the empty slots —
  // it replays exactly its populated connections.
  auto registry = make_registry(1);
  core::FairOrderingService service(registry, ids(1), {});
  FrameServer server(registry, service,
                     ServerConfig{test_frontend_config()});
  const std::string socket_path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(socket_path));

  WireTrace trace;
  const std::uint32_t sparse = kMaxTraceConnections - 1;
  trace.events.push_back(
      WireTraceEvent{WireTraceEvent::Kind::kConnect, sparse, 1.0, {}});
  trace.events.push_back(WireTraceEvent{WireTraceEvent::Kind::kSend, sparse,
                                        1.0, announce_frame(0)});
  trace.events.push_back(
      WireTraceEvent{WireTraceEvent::Kind::kDisconnect, sparse, 1.1, {}});
  const auto stats = replay(trace, ReplayTarget{socket_path, 0});
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->connections, 1u);
  EXPECT_EQ(stats->frames, 1u);
  server.stop();
}

TEST(WireTrace, LoadRejectsAbsurdConnectionIndexes) {
  // replay() spawns one thread per logical connection and sizes its
  // per-connection table from the max index: a corrupt file naming
  // connection 2^32-1 (or anything past the cap) must die at load, not
  // at an out-of-bounds write or a 50 GB allocation.
  const std::string path = fresh_trace_path();
  for (const std::uint32_t bad :
       {kMaxTraceConnections, ~std::uint32_t{0}}) {
    WireTrace trace;
    trace.events.push_back(
        WireTraceEvent{WireTraceEvent::Kind::kConnect, bad, 1.0, {}});
    ASSERT_TRUE(trace.save(path));
    EXPECT_FALSE(WireTrace::load(path).has_value()) << bad;
  }
  std::remove(path.c_str());
}

TEST(WireTrace, RecorderShapesEventsAsSpecified) {
  WireTraceRecorder recorder;
  recorder.connect(0, 1.0);
  recorder.send(0, 1.1, std::vector<std::uint8_t>{1, 2, 3});
  recorder.disconnect(0, 1.2);
  recorder.connect(0, 1.3);  // reconnect on the same logical index
  recorder.disconnect(0, 1.4);
  const WireTrace& trace = recorder.trace();
  ASSERT_EQ(trace.events.size(), 5u);
  EXPECT_EQ(trace.events[0].kind, WireTraceEvent::Kind::kConnect);
  EXPECT_EQ(trace.events[1].bytes, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(trace.events[3].kind, WireTraceEvent::Kind::kConnect);
  EXPECT_EQ(trace.connection_count(), 1u);
}

/// The headline: record → save → load → replay through a live Unix-domain
/// server == the recorded run's direct emissions, at wire speed and at a
/// paced speed, with reconnecting segments.
TEST(WireReplay, ReplayedEmissionsAreBitIdenticalToTheRecordedRun) {
  const auto workload = make_workload(4, 24, /*seed=*/91);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  const auto direct = run_direct(workload, service_config);
  ASSERT_FALSE(direct.empty());

  const WireTrace trace = record_workload(workload, /*segments=*/3);
  const std::string path = fresh_trace_path();
  ASSERT_TRUE(trace.save(path));
  const auto loaded = WireTrace::load(path);
  ASSERT_TRUE(loaded.has_value());
  std::remove(path.c_str());

  // Trace spans ~[1.0, 1.2] trace-seconds; speed 50 ⇒ a few ms of pacing,
  // enough to exercise the scheduler without slowing the suite.
  for (const double speed : {0.0, 50.0}) {
    auto registry = make_registry(4);
    FairOrderingService service(registry, ids(4), service_config);
    FrameServer server(registry, service,
                       ServerConfig{test_frontend_config()});
    const std::string socket_path = fresh_unix_path();
    ASSERT_TRUE(server.listen_unix(socket_path));

    ReplayOptions options;
    options.speed = speed;
    const auto stats =
        replay(*loaded, ReplayTarget{socket_path, 0}, options);
    ASSERT_TRUE(stats.has_value()) << "speed " << speed;
    EXPECT_EQ(stats->connections, 4u * 3u);
    EXPECT_EQ(stats->frames, loaded->events.size() - 2u * stats->connections);
    EXPECT_EQ(stats->bytes, loaded->total_bytes());

    // Everything the replay sent must be applied before we poll: all 12
    // episodes accepted and every reader done.
    ASSERT_TRUE(server.wait_for_accepted(stats->connections, 5000));
    server.frontend().join_readers();
    expect_equivalent(direct, drain_captured(service));
    server.stop();
    EXPECT_FALSE(server.running());
  }
}

// ── Typed load errors & dist-frame traces ───────────────────────────────

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    bytes.push_back(static_cast<std::uint8_t>(c));
  }
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TraceError load_error(const std::string& path) {
  TraceError error = TraceError::kNone;
  const auto trace = WireTrace::load(path, &error);
  EXPECT_EQ(trace.has_value(), error == TraceError::kNone);
  return error;
}

TEST(WireTrace, DistFramesRoundTripThroughATraceFile) {
  // The uplink protocol's frames (SafeTimeAnnounce, OrderedBatch) are
  // recordable wire traffic like any other — a merge-side capture must
  // survive the save/load round trip byte for byte.
  WireTraceRecorder recorder;
  recorder.connect(0, 1.0);
  recorder.send(0, 1.05,
                net::WireMessage(net::SafeTimeAnnounce{2, 1, TimePoint(1.04)}));
  net::OrderedBatch batch;
  batch.node = 2;
  batch.epoch = 1;
  batch.rank = 3;
  batch.safe_time = TimePoint(1.03);
  batch.emitted_at = TimePoint(1.05);
  batch.messages = {net::OrderedBatch::Entry{
      ClientId(4), MessageId(44), TimePoint(1.0), TimePoint(1.0005)}};
  recorder.send(0, 1.06, net::WireMessage(batch));
  recorder.disconnect(0, 1.1);
  const WireTrace trace = recorder.take();

  const std::string path = fresh_trace_path();
  ASSERT_TRUE(trace.save(path));
  ASSERT_EQ(load_error(path), TraceError::kNone);
  const auto loaded = WireTrace::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  std::remove(path.c_str());
}

TEST(WireTrace, LoadReportsEveryFailureClassByName) {
  const std::string path = fresh_trace_path();
  EXPECT_EQ(load_error(path), TraceError::kIoError);  // missing file

  write_file(path, {'N', 'O', 'P', 'E'});
  EXPECT_EQ(load_error(path), TraceError::kBadMagic);
  write_file(path, {'T', 'M'});
  EXPECT_EQ(load_error(path), TraceError::kTruncated);  // mid-magic

  // A small valid file to mutate. Layout: magic(4) version(4) count(8)
  // then per event kind(1) connection(4) at(8) [len(4) bytes].
  const auto workload = make_workload(1, 3, /*seed=*/9);
  ASSERT_TRUE(record_workload(workload).save(path));
  const std::vector<std::uint8_t> good = file_bytes(path);
  ASSERT_EQ(load_error(path), TraceError::kNone);

  auto mutated = good;
  mutated[4] = 0xFE;  // version little-endian low byte
  write_file(path, mutated);
  EXPECT_EQ(load_error(path), TraceError::kBadVersion);

  mutated = good;
  mutated[16] = 0x7F;  // first event's kind byte
  write_file(path, mutated);
  EXPECT_EQ(load_error(path), TraceError::kBadEventKind);

  mutated = good;
  mutated.resize(good.size() - 3);  // ends mid-event
  write_file(path, mutated);
  EXPECT_EQ(load_error(path), TraceError::kTruncated);

  mutated = good;
  mutated.push_back(0xAA);
  write_file(path, mutated);
  EXPECT_EQ(load_error(path), TraceError::kTrailingGarbage);

  WireTrace absurd;
  absurd.events.push_back(WireTraceEvent{WireTraceEvent::Kind::kConnect,
                                         kMaxTraceConnections, 1.0, {}});
  ASSERT_TRUE(absurd.save(path));
  EXPECT_EQ(load_error(path), TraceError::kConnectionOutOfRange);

  EXPECT_STREQ(to_string(TraceError::kBadVersion), "unsupported version");
  EXPECT_STREQ(to_string(TraceError::kNone), "none");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tommy::sim
