// Wire front-end: ByteStream pipes, the Connection handshake/dispatch
// state machine (typed error paths, partial-read torture), the
// frames-in == direct-session-calls-in equivalence (bit-identical
// emission streams, sequential and threaded engines, deliberately
// fragmented and coalesced reads), and the outbound BatchEmission
// broadcast — including over a real socketpair.
#include "net/frontend.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <variant>

#include "common/rng.hpp"
#include "stats/gaussian.hpp"
#include "stats/summary.hpp"

namespace tommy::net {
namespace {

using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;
using tommy::literals::operator""_ms;

constexpr Duration kWireDelay = Duration(0.5e-3);

/// Deterministic arrival clock: every run (framed or direct) stamps a
/// message's sequencer-clock arrival as its local stamp plus a fixed wire
/// delay, so emission streams are replayable bit-for-bit.
TimePoint modeled_arrival(const WireMessage& message) {
  if (const auto* msg = std::get_if<TimestampedMessage>(&message)) {
    return msg->local_stamp + kWireDelay;
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    return heartbeat->local_stamp + kWireDelay;
  }
  ADD_FAILURE() << "arrival requested for a non-ingest message";
  return TimePoint::epoch();
}

FrontendConfig test_config() {
  FrontendConfig config;
  config.arrival_clock = modeled_arrival;
  return config;
}

stats::DistributionSummary summary_for(std::uint32_t client) {
  return stats::DistributionSummary(
      stats::GaussianParams{1e-4 * client, 1e-3});
}

/// Registry announced via summaries (so announced_summary() has wire
/// bytes to compare against handshake re-sends).
ClientRegistry make_registry(std::uint32_t n) {
  ClientRegistry registry;
  for (std::uint32_t c = 0; c < n; ++c) {
    registry.announce(ClientId(c), summary_for(c));
  }
  return registry;
}

std::vector<ClientId> ids(std::uint32_t n) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < n; ++c) out.push_back(ClientId(c));
  return out;
}

std::vector<std::uint8_t> announce_frame(std::uint32_t client) {
  return encode_frame(
      WireMessage(DistributionAnnouncement{ClientId(client),
                                           summary_for(client)}));
}

std::vector<std::uint8_t> message_frame(std::uint32_t client,
                                        std::uint64_t id, double stamp) {
  return encode_frame(WireMessage(TimestampedMessage{
      ClientId(client), MessageId(id), TimePoint(stamp)}));
}

std::vector<std::uint8_t> heartbeat_frame(std::uint32_t client,
                                          double stamp) {
  return encode_frame(
      WireMessage(Heartbeat{ClientId(client), TimePoint(stamp)}));
}

// ── Captured emissions (the equivalence currency) ───────────────────────

struct CapturedMessage {
  std::uint64_t id;
  std::uint32_t client;
  double stamp;
  double arrival;

  friend bool operator==(const CapturedMessage&, const CapturedMessage&)
      = default;
};

struct CapturedBatch {
  std::uint32_t shard;
  Rank rank;
  double emitted_at;
  double safe_time;
  std::vector<CapturedMessage> messages;

  friend bool operator==(const CapturedBatch&, const CapturedBatch&)
      = default;
};

CapturedBatch capture(const core::EmissionRecord& record,
                      std::uint32_t shard) {
  CapturedBatch batch;
  batch.shard = shard;
  batch.rank = record.batch.rank;
  batch.emitted_at = record.emitted_at.seconds();
  batch.safe_time = record.safe_time.seconds();
  for (const core::Message& m : record.batch.messages) {
    batch.messages.push_back(CapturedMessage{m.id.value(), m.client.value(),
                                             m.stamp.seconds(),
                                             m.arrival.seconds()});
  }
  return batch;
}

// ── Workload ────────────────────────────────────────────────────────────

struct Event {
  bool is_heartbeat;
  std::uint64_t id;      // messages only
  TimePoint stamp;
};

/// Per-client event sequences: stamps advance with jitter, a heartbeat
/// every few messages, and a trailing heartbeat that pushes the
/// completeness frontier past everything.
std::vector<std::vector<Event>> make_workload(std::uint32_t clients,
                                              int per_client,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Event>> events(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    Rng client_rng = rng.split();
    double stamp = 1.0 + 1e-4 * c;
    for (int k = 0; k < per_client; ++k) {
      stamp += client_rng.uniform(0.5e-3, 3e-3);
      events[c].push_back(Event{false, 1000ULL * c + static_cast<std::uint64_t>(k),
                                TimePoint(stamp)});
      if (k % 5 == 4) {
        events[c].push_back(Event{true, 0, TimePoint(stamp + 0.1e-3)});
      }
    }
    events[c].push_back(Event{true, 0, TimePoint(stamp + 50e-3)});
  }
  return events;
}

std::vector<TimePoint> poll_schedule() {
  // Mid-stream polls plus a generous end-of-world poll before the flush.
  return {TimePoint(1.05), TimePoint(1.2), TimePoint(1.5), TimePoint(2.5)};
}

/// Reference run: the same workload through direct session calls.
std::vector<CapturedBatch> run_direct(
    const std::vector<std::vector<Event>>& workload, ServiceConfig config) {
  ClientRegistry registry =
      make_registry(static_cast<std::uint32_t>(workload.size()));
  FairOrderingService service(
      registry, ids(static_cast<std::uint32_t>(workload.size())), config);

  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    auto session = service.open_session(ClientId(c));
    std::vector<core::Submission> batch;
    for (const Event& event : workload[c]) {
      if (event.is_heartbeat) {
        session.submit_batch(std::span<const core::Submission>(batch));
        batch.clear();
        session.heartbeat(event.stamp, event.stamp + kWireDelay);
      } else {
        batch.push_back(core::Submission{event.stamp, MessageId(event.id),
                                         event.stamp + kWireDelay});
      }
    }
    session.submit_batch(std::span<const core::Submission>(batch));
  }

  std::vector<CapturedBatch> out;
  auto sink = [&out](core::EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(capture(record, shard));
  };
  for (TimePoint t : poll_schedule()) service.poll(t, sink);
  service.flush(TimePoint(3.0), sink);
  return out;
}

/// Frame run: the same workload encoded as wire frames, written through
/// in-process pipes in random fragments (sometimes coalescing several
/// frames into one write, sometimes splitting one frame across many).
std::vector<CapturedBatch> run_framed(
    const std::vector<std::vector<Event>>& workload, ServiceConfig config,
    std::uint64_t fragment_seed) {
  ClientRegistry registry =
      make_registry(static_cast<std::uint32_t>(workload.size()));
  FairOrderingService service(
      registry, ids(static_cast<std::uint32_t>(workload.size())), config);
  FrameFrontend frontend(registry, service, test_config());

  // Per-client byte image: handshake announcement, then the event frames.
  Rng rng(fragment_seed);
  std::vector<std::thread> writers;
  std::vector<std::shared_ptr<ByteStream>> client_ends;
  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    auto [server_end, client_end] = make_pipe_pair();
    frontend.add_connection(server_end);
    client_ends.push_back(client_end);

    std::vector<std::uint8_t> bytes = announce_frame(c);
    for (const Event& event : workload[c]) {
      const auto frame =
          event.is_heartbeat
              ? heartbeat_frame(c, event.stamp.seconds())
              : message_frame(c, event.id, event.stamp.seconds());
      bytes.insert(bytes.end(), frame.begin(), frame.end());
    }

    // Concurrent writers with independent random chunkings: partial and
    // coalesced reads on every connection.
    Rng writer_rng = rng.split();
    writers.emplace_back([bytes = std::move(bytes),
                          stream = client_end.get(),
                          writer_rng]() mutable {
      std::size_t offset = 0;
      while (offset < bytes.size()) {
        const auto chunk = static_cast<std::size_t>(writer_rng.uniform_int(
            1, std::min<std::int64_t>(
                   97, static_cast<std::int64_t>(bytes.size() - offset))));
        ASSERT_TRUE(stream->write_all(std::span<const std::uint8_t>(
            bytes.data() + offset, chunk)));
        offset += chunk;
      }
      stream->close_write();
    });
  }
  for (std::thread& writer : writers) writer.join();
  frontend.join_readers();

  for (std::uint32_t c = 0; c < workload.size(); ++c) {
    EXPECT_EQ(frontend.connection_error(c), WireError::kNone);
    EXPECT_TRUE(frontend.connection(c).handshaken());
  }

  std::vector<CapturedBatch> out;
  auto sink = [&out](core::EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(capture(record, shard));
  };
  for (TimePoint t : poll_schedule()) service.poll(t, sink);
  service.flush(TimePoint(3.0), sink);
  return out;
}

// ── ByteStream pipes ────────────────────────────────────────────────────

TEST(InProcessPipe, TransportsBytesAndSignalsEof) {
  auto [a, b] = make_pipe_pair();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(a->write_all(payload));
  a->close_write();

  std::vector<std::uint8_t> got;
  std::uint8_t buf[3];
  while (true) {
    const auto n = b->read_some(std::span<std::uint8_t>(buf, sizeof(buf)));
    ASSERT_TRUE(n.has_value());
    if (*n == 0) break;
    got.insert(got.end(), buf, buf + *n);
  }
  EXPECT_EQ(got, payload);
  // Full duplex: the other direction still works after the half-close.
  ASSERT_TRUE(b->write_all(payload));
}

TEST(InProcessPipe, ShutdownUnblocksAPendingRead) {
  auto [a, b] = make_pipe_pair();
  std::thread reader([&b] {
    std::uint8_t buf[8];
    const auto n = b->read_some(std::span<std::uint8_t>(buf, sizeof(buf)));
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 0u);  // EOF, not an error
  });
  b->shutdown();
  reader.join();
  EXPECT_FALSE(a->write_all(std::vector<std::uint8_t>{1}));
}

// ── Connection state machine (thread-free) ──────────────────────────────

struct ConnectionFixture {
  ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  FairOrderingService service;
  Connection connection;

  explicit ConnectionFixture(ServiceConfig service_config = {})
      : config(service_config),
        service(registry, ids(4), config),
        connection(registry, service, test_config()) {}
};

TEST(Connection, HandshakeThenMessagesFlow) {
  ConnectionFixture fx;
  EXPECT_FALSE(fx.connection.handshaken());
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_TRUE(fx.connection.handshaken());
  EXPECT_EQ(fx.connection.client(), ClientId(1));

  ASSERT_TRUE(fx.connection.on_bytes(message_frame(1, 7, 1.001)));
  ASSERT_TRUE(fx.connection.on_bytes(heartbeat_frame(1, 1.002)));
  EXPECT_EQ(fx.connection.frames_in(), 3u);
  EXPECT_EQ(fx.connection.submits_in(), 1u);
  EXPECT_EQ(fx.connection.heartbeats_in(), 1u);
  EXPECT_EQ(fx.service.pending_count(), 1u);
}

TEST(Connection, HandshakeSurvivesEveryByteSplit) {
  const auto handshake = announce_frame(2);
  const auto message = message_frame(2, 9, 1.5);
  for (std::size_t split = 0; split <= handshake.size(); ++split) {
    ConnectionFixture fx;
    ASSERT_TRUE(fx.connection.on_bytes(std::span<const std::uint8_t>(
        handshake.data(), split)));
    EXPECT_EQ(fx.connection.handshaken(), split == handshake.size());
    ASSERT_TRUE(fx.connection.on_bytes(std::span<const std::uint8_t>(
        handshake.data() + split, handshake.size() - split)));
    EXPECT_TRUE(fx.connection.handshaken());
    // A message split across two reads lands exactly once.
    const std::size_t half = message.size() / 2;
    ASSERT_TRUE(fx.connection.on_bytes(
        std::span<const std::uint8_t>(message.data(), half)));
    EXPECT_EQ(fx.connection.submits_in(), 0u);
    ASSERT_TRUE(fx.connection.on_bytes(std::span<const std::uint8_t>(
        message.data() + half, message.size() - half)));
    EXPECT_EQ(fx.connection.submits_in(), 1u);
    EXPECT_EQ(fx.service.pending_count(), 1u);
  }
}

TEST(Connection, FirstFrameMustBeAnnouncement) {
  ConnectionFixture fx;
  EXPECT_FALSE(fx.connection.on_bytes(message_frame(1, 7, 1.0)));
  EXPECT_EQ(fx.connection.error(), WireError::kHandshakeExpected);
  // Poisoned: even a valid handshake is ignored now.
  EXPECT_FALSE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_FALSE(fx.connection.handshaken());
}

TEST(Connection, UnknownClientIsATypedError) {
  ConnectionFixture fx;
  EXPECT_FALSE(fx.connection.on_bytes(announce_frame(77)));
  EXPECT_EQ(fx.connection.error(), WireError::kUnknownClient);
}

TEST(Connection, DataFrameForAnotherClientIsRejected) {
  ConnectionFixture fx;
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_FALSE(fx.connection.on_bytes(message_frame(2, 7, 1.0)));
  EXPECT_EQ(fx.connection.error(), WireError::kClientMismatch);
}

TEST(Connection, HeartbeatForAnotherClientIsRejected) {
  ConnectionFixture fx;
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_FALSE(fx.connection.on_bytes(heartbeat_frame(3, 1.0)));
  EXPECT_EQ(fx.connection.error(), WireError::kClientMismatch);
}

TEST(Connection, BatchEmissionFromClientIsRejected) {
  ConnectionFixture fx;
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_FALSE(fx.connection.on_bytes(
      encode_frame(WireMessage(BatchEmission{0, {MessageId(1)}}))));
  EXPECT_EQ(fx.connection.error(), WireError::kBatchFromClient);
}

TEST(Connection, MalformedPayloadIsRejected) {
  ConnectionFixture fx;
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  const std::vector<std::uint8_t> garbage = {0xFF, 0x13, 0x37};
  EXPECT_FALSE(fx.connection.on_bytes(
      encode_frame(std::span<const std::uint8_t>(garbage))));
  EXPECT_EQ(fx.connection.error(), WireError::kMalformedMessage);
}

TEST(Connection, OversizedFrameIsRejected) {
  ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(4), {});
  FrontendConfig config = test_config();
  config.max_frame_bytes = 8;
  Connection connection(registry, service, config);
  EXPECT_FALSE(connection.on_bytes(announce_frame(1)));  // summary > 8 bytes
  EXPECT_EQ(connection.error(), WireError::kOversizedFrame);
}

TEST(Connection, ValidPrefixBeforeAPoisonByteStillCounts) {
  ConnectionFixture fx;
  std::vector<std::uint8_t> bytes = announce_frame(1);
  const auto good = message_frame(1, 7, 1.001);
  const auto bad = message_frame(2, 8, 1.002);  // wrong client
  bytes.insert(bytes.end(), good.begin(), good.end());
  bytes.insert(bytes.end(), bad.begin(), bad.end());
  EXPECT_FALSE(fx.connection.on_bytes(bytes));
  EXPECT_EQ(fx.connection.error(), WireError::kClientMismatch);
  // The in-protocol prefix (handshake + one message) was applied.
  EXPECT_TRUE(fx.connection.handshaken());
  EXPECT_EQ(fx.service.pending_count(), 1u);
}

TEST(Connection, IdenticalReannounceIsIdempotent) {
  ConnectionFixture fx;
  const std::uint64_t generation = fx.registry.generation();
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  EXPECT_EQ(fx.registry.generation(), generation);  // wire form matched
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));  // mid-stream
  EXPECT_EQ(fx.registry.generation(), generation);
}

TEST(Connection, ChangedReannounceUpdatesASequentialRegistry) {
  ConnectionFixture fx;
  ASSERT_TRUE(fx.connection.on_bytes(announce_frame(1)));
  const std::uint64_t generation = fx.registry.generation();
  const auto changed = encode_frame(WireMessage(DistributionAnnouncement{
      ClientId(1),
      stats::DistributionSummary(stats::GaussianParams{5e-4, 2e-3})}));
  ASSERT_TRUE(fx.connection.on_bytes(changed));
  EXPECT_EQ(fx.registry.generation(), generation + 1);
  // Ingest still works against the re-primed engine.
  ASSERT_TRUE(fx.connection.on_bytes(message_frame(1, 7, 1.001)));
  EXPECT_EQ(fx.service.pending_count(), 1u);
}

TEST(Connection, ChangedAnnounceAgainstAThreadedServiceStartsAReconfig) {
  ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  config.with_worker_threads();
  FairOrderingService service(registry, ids(4), config);
  Connection connection(registry, service, test_config());
  // Identical announce: fine (generation untouched).
  ASSERT_TRUE(connection.on_bytes(announce_frame(1)));
  EXPECT_FALSE(service.reconfig_pending());
  // Different distribution: no longer poisons the stream — the registry
  // moves, a reconfig is requested, and the connection keeps streaming
  // against the old epoch until the install.
  const auto changed = encode_frame(WireMessage(DistributionAnnouncement{
      ClientId(1),
      stats::DistributionSummary(stats::GaussianParams{5e-4, 2e-3})}));
  EXPECT_TRUE(connection.on_bytes(changed));
  EXPECT_EQ(connection.error(), WireError::kNone);
  EXPECT_EQ(registry.generation(), 5u);  // the change landed
  ASSERT_TRUE(connection.on_bytes(message_frame(1, 7, 1.001)));
  service.quiesce();
  EXPECT_EQ(service.pending_count(), 1u);
  // The epoch catches up (the announce already requested the prime).
  service.reconfigure();
  EXPECT_EQ(service.primed_generation(), registry.generation());
  EXPECT_FALSE(service.reconfig_pending());
}

// ── End-to-end equivalence (the acceptance criterion) ───────────────────

void expect_equivalent(const std::vector<CapturedBatch>& direct,
                       const std::vector<CapturedBatch>& framed) {
  ASSERT_EQ(direct.size(), framed.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], framed[i]) << "batch " << i;
  }
}

TEST(FrameFrontend, FramedEqualsDirectSequentialSingleShard) {
  const auto workload = make_workload(4, 40, /*seed=*/11);
  ServiceConfig config;
  config.with_p_safe(0.99);
  const auto direct = run_direct(workload, config);
  EXPECT_FALSE(direct.empty());
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    expect_equivalent(direct, run_framed(workload, config, seed));
  }
}

TEST(FrameFrontend, FramedEqualsDirectSequentialSharded) {
  const auto workload = make_workload(6, 30, /*seed=*/5);
  ServiceConfig config;
  config.with_shards(3).with_p_safe(0.99);
  const auto direct = run_direct(workload, config);
  EXPECT_FALSE(direct.empty());
  expect_equivalent(direct, run_framed(workload, config, /*seed=*/17));
}

TEST(FrameFrontend, FramedEqualsDirectThreaded) {
  const auto workload = make_workload(6, 30, /*seed=*/23);
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99).with_worker_threads();
  // The threaded service's per-shard streams are themselves bit-identical
  // to the sequential ones, so compare against the SEQUENTIAL direct
  // drive: frames → rings → workers must not change emissions either.
  ServiceConfig direct_config;
  direct_config.with_shards(2).with_p_safe(0.99);
  const auto direct = run_direct(workload, direct_config);
  EXPECT_FALSE(direct.empty());
  for (std::uint64_t seed : {7ULL, 8ULL}) {
    expect_equivalent(direct, run_framed(workload, config, seed));
  }
}

TEST(FrameFrontend, FramedEqualsDirectThreadedGlobalMerge) {
  const auto workload = make_workload(4, 25, /*seed=*/31);
  ServiceConfig threaded;
  threaded.with_shards(2).with_p_safe(0.99).with_worker_threads()
      .with_drain_policy(core::DrainPolicy::kGlobalMerge);
  ServiceConfig sequential;
  sequential.with_shards(2).with_p_safe(0.99).with_drain_policy(
      core::DrainPolicy::kGlobalMerge);
  const auto direct = run_direct(workload, sequential);
  EXPECT_FALSE(direct.empty());
  expect_equivalent(direct, run_framed(workload, threaded, /*seed=*/41));
}

// ── Outbound: emissions come back as frames ─────────────────────────────

TEST(FrameFrontend, BroadcastsEmittedBatchesAsFrames) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), service_config);
  FrameFrontend frontend(registry, service, test_config());

  auto [server0, client0] = make_pipe_pair();
  auto [server1, client1] = make_pipe_pair();
  frontend.add_connection(server0);
  frontend.add_connection(server1);

  for (std::uint32_t c = 0; c < 2; ++c) {
    auto& client = c == 0 ? client0 : client1;
    std::vector<std::uint8_t> bytes = announce_frame(c);
    for (int k = 0; k < 5; ++k) {
      const auto frame =
          message_frame(c, 10 * c + static_cast<std::uint64_t>(k),
                        1.0 + 1e-3 * k);
      bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    const auto tail = heartbeat_frame(c, 1.2);
    bytes.insert(bytes.end(), tail.begin(), tail.end());
    ASSERT_TRUE(client->write_all(bytes));
    client->close_write();
  }
  frontend.join_readers();

  const std::size_t emitted = frontend.pump(TimePoint(2.0))
                              + frontend.pump_flush(TimePoint(2.0));
  ASSERT_GT(emitted, 0u);

  // Both clients receive the identical broadcast stream.
  for (auto& client : {client0, client1}) {
    FrameDecoder decoder;
    std::vector<BatchEmission> batches;
    std::uint8_t buf[256];
    while (batches.size() < emitted) {
      const auto n =
          client->read_some(std::span<std::uint8_t>(buf, sizeof(buf)));
      ASSERT_TRUE(n.has_value());
      ASSERT_GT(*n, 0u);
      decoder.append(std::span<const std::uint8_t>(buf, *n));
      while (auto payload = decoder.next()) {
        const auto message = decode(*payload);
        ASSERT_TRUE(message.has_value());
        ASSERT_TRUE(std::holds_alternative<BatchEmission>(*message));
        batches.push_back(std::get<BatchEmission>(*message));
      }
    }
    ASSERT_EQ(batches.size(), emitted);
    std::size_t total = 0;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      EXPECT_EQ(batches[i].rank, i);  // single shard: dense ranks
      total += batches[i].messages.size();
    }
    EXPECT_EQ(total, 10u);  // every submitted message came back exactly once
  }
}

// ── Real kernel transport ───────────────────────────────────────────────

TEST(FrameFrontend, WorksOverASocketpair) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99).with_worker_threads();
  FairOrderingService service(registry, ids(2), service_config);
  FrameFrontend frontend(registry, service, test_config());

  auto [server_end, client_end] = make_socketpair_streams();
  frontend.add_connection(server_end);

  std::vector<std::uint8_t> bytes = announce_frame(0);
  for (int k = 0; k < 8; ++k) {
    const auto frame =
        message_frame(0, static_cast<std::uint64_t>(k), 1.0 + 1e-3 * k);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  const auto tail = heartbeat_frame(0, 1.1);
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  ASSERT_TRUE(client_end->write_all(bytes));
  client_end->close_write();
  frontend.join_readers();
  ASSERT_EQ(frontend.connection_error(0), WireError::kNone);

  const std::size_t emitted = frontend.pump_flush(TimePoint(2.0));
  ASSERT_GT(emitted, 0u);

  FrameDecoder decoder;
  std::vector<BatchEmission> batches;
  std::uint8_t buf[512];
  while (batches.size() < emitted) {
    const auto n =
        client_end->read_some(std::span<std::uint8_t>(buf, sizeof(buf)));
    ASSERT_TRUE(n.has_value());
    ASSERT_GT(*n, 0u);
    decoder.append(std::span<const std::uint8_t>(buf, *n));
    while (auto payload = decoder.next()) {
      const auto message = decode(*payload);
      ASSERT_TRUE(message.has_value());
      batches.push_back(std::get<BatchEmission>(*message));
    }
  }
  std::size_t total = 0;
  for (const BatchEmission& batch : batches) total += batch.messages.size();
  EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace tommy::net
