// Incremental frame codec: partial reads at every split point, coalesced
// frames, byte trickles, zero-length payloads, the oversized-frame poison
// path, and buffer compaction on long-lived streams.
#include "net/framing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace tommy::net {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// A frame stream with one payload of every protocol message type (plus
/// an empty one): the canonical input the split-point tests dissect.
struct FrameFixture {
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint8_t> stream;

  FrameFixture() {
    payloads.push_back(encode(DistributionAnnouncement{
        ClientId(3), stats::DistributionSummary(
                         stats::GaussianParams{1e-5, 2e-6})}));
    payloads.push_back(encode(
        TimestampedMessage{ClientId(7), MessageId(42), TimePoint(1.5)}));
    payloads.push_back(encode(Heartbeat{ClientId(7), TimePoint(2.0)}));
    payloads.push_back(
        encode(BatchEmission{9, {MessageId(1), MessageId(2)}}));
    payloads.push_back({});  // zero-length payload frames are legal
    for (const auto& payload : payloads) {
      const auto frame = encode_frame(std::span<const std::uint8_t>(payload));
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
  }
};

std::vector<std::vector<std::uint8_t>> pull_all(FrameDecoder& decoder) {
  std::vector<std::vector<std::uint8_t>> out;
  while (auto payload = decoder.next()) out.push_back(std::move(*payload));
  return out;
}

TEST(Framing, SingleFrameRoundTrip) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  const auto frame = encode_frame(std::span<const std::uint8_t>(payload));
  ASSERT_EQ(frame.size(), 4 + payload.size());

  FrameDecoder decoder;
  decoder.append(frame);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Framing, CoalescedFramesDecodeInOrder) {
  const FrameFixture fixture;
  FrameDecoder decoder;
  decoder.append(fixture.stream);  // one append, every frame at once
  EXPECT_EQ(pull_all(decoder), fixture.payloads);
  EXPECT_EQ(decoder.error(), FrameError::kNone);
}

// The satellite torture: the stream split into two appends at EVERY
// possible point must yield the identical payload sequence, with nothing
// emitted early.
TEST(Framing, EverySplitPointYieldsTheSameFrames) {
  const FrameFixture fixture;
  for (std::size_t split = 0; split <= fixture.stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.append(
        std::span<const std::uint8_t>(fixture.stream.data(), split));
    auto frames = pull_all(decoder);
    decoder.append(std::span<const std::uint8_t>(
        fixture.stream.data() + split, fixture.stream.size() - split));
    for (auto& frame : pull_all(decoder)) frames.push_back(std::move(frame));
    EXPECT_EQ(frames, fixture.payloads) << "split at " << split;
    EXPECT_EQ(decoder.error(), FrameError::kNone);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(Framing, ByteAtATimeTrickle) {
  const FrameFixture fixture;
  FrameDecoder decoder;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint8_t byte : fixture.stream) {
    decoder.append(std::span<const std::uint8_t>(&byte, 1));
    for (auto& frame : pull_all(decoder)) frames.push_back(std::move(frame));
  }
  EXPECT_EQ(frames, fixture.payloads);
}

TEST(Framing, RandomFragmentationMatches) {
  const FrameFixture fixture;
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    std::vector<std::vector<std::uint8_t>> frames;
    std::size_t offset = 0;
    while (offset < fixture.stream.size()) {
      const auto chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(fixture.stream.size() - offset)));
      decoder.append(std::span<const std::uint8_t>(
          fixture.stream.data() + offset, chunk));
      offset += chunk;
      for (auto& frame : pull_all(decoder)) {
        frames.push_back(std::move(frame));
      }
    }
    EXPECT_EQ(frames, fixture.payloads) << "round " << round;
  }
}

TEST(Framing, NeedsAllLengthBytesBeforeDeciding) {
  FrameDecoder decoder;
  decoder.append(bytes_of({5, 0, 0}));  // 3 of the 4 length bytes
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  decoder.append(bytes_of({0}));
  EXPECT_FALSE(decoder.next().has_value());  // header complete, payload not
  decoder.append(bytes_of({1, 2, 3, 4, 5}));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, bytes_of({1, 2, 3, 4, 5}));
}

TEST(Framing, OversizedLengthPoisonsTheDecoder) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  decoder.append(bytes_of({17, 0, 0, 0}));  // length 17 > cap 16
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
  // Poisoned: later (well-formed) bytes are ignored, no frame ever comes.
  decoder.append(encode_frame(std::span<const std::uint8_t>()));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Framing, MaxSizedFrameIsAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  const std::vector<std::uint8_t> payload(8, 0xAA);
  decoder.append(encode_frame(std::span<const std::uint8_t>(payload)));
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
  EXPECT_EQ(decoder.error(), FrameError::kNone);
}

// Long-lived connection: thousands of frames through one decoder (with
// interleaved appends) exercise the internal buffer compaction without
// changing observable behaviour.
TEST(Framing, LongStreamDoesNotDropOrReorderFrames) {
  FrameDecoder decoder;
  Rng rng(7);
  std::vector<std::uint8_t> carry;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (int round = 0; round < 400; ++round) {
    // A burst of frames whose payloads encode their sequence number.
    std::vector<std::uint8_t> burst = std::move(carry);
    carry.clear();
    const int frames = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < frames; ++f) {
      std::vector<std::uint8_t> payload(8);
      for (int i = 0; i < 8; ++i) {
        payload[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(sent >> (8 * i));
      }
      ++sent;
      const auto frame = encode_frame(std::span<const std::uint8_t>(payload));
      burst.insert(burst.end(), frame.begin(), frame.end());
    }
    // Hold back a random suffix for the next round (partial frame).
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(burst.size())));
    carry.assign(burst.begin() + static_cast<std::ptrdiff_t>(keep),
                 burst.end());
    decoder.append(std::span<const std::uint8_t>(burst.data(), keep));
    while (auto payload = decoder.next()) {
      ASSERT_EQ(payload->size(), 8u);
      std::uint64_t value = 0;
      for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>((*payload)[static_cast<std::size_t>(i)])
                 << (8 * i);
      }
      EXPECT_EQ(value, received);
      ++received;
    }
  }
  decoder.append(carry);
  while (auto payload = decoder.next()) ++received;
  EXPECT_EQ(received, sent);
  EXPECT_EQ(decoder.error(), FrameError::kNone);
}

}  // namespace
}  // namespace tommy::net
