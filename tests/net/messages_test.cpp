#include "net/messages.hpp"

#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace tommy::net {
namespace {

TEST(Wire, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1.5e-6);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.f64(), -1.5e-6);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ReaderRejectsTruncation) {
  ByteWriter w;
  w.u32(42);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_TRUE(r.u32().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Codec, TimestampedMessageRoundTrip) {
  const TimestampedMessage m{ClientId(7), MessageId(123456789),
                             TimePoint(1.25e-3)};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<TimestampedMessage>(*decoded));
  EXPECT_EQ(std::get<TimestampedMessage>(*decoded), m);
}

TEST(Codec, HeartbeatRoundTrip) {
  const Heartbeat h{ClientId(9), TimePoint(42.5)};
  const auto decoded = decode(encode(h));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<Heartbeat>(*decoded));
  EXPECT_EQ(std::get<Heartbeat>(*decoded), h);
}

TEST(Codec, GaussianAnnouncementRoundTrip) {
  const DistributionAnnouncement a{
      ClientId(3),
      stats::DistributionSummary(stats::GaussianParams{1e-5, 2e-6})};
  const auto decoded = decode(encode(a));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<DistributionAnnouncement>(*decoded));
  EXPECT_EQ(std::get<DistributionAnnouncement>(*decoded), a);
}

TEST(Codec, HistogramAnnouncementRoundTrip) {
  const DistributionAnnouncement a{
      ClientId(4), stats::DistributionSummary(stats::HistogramParams{
                       -1e-3, 1e-3, {0.1, 0.2, 0.4, 0.2, 0.1}})};
  const auto decoded = decode(encode(a));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<DistributionAnnouncement>(*decoded), a);
}

TEST(Codec, BatchEmissionRoundTrip) {
  BatchEmission b;
  b.rank = 17;
  b.messages = {MessageId(1), MessageId(5), MessageId(9)};
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<BatchEmission>(*decoded));
  EXPECT_EQ(std::get<BatchEmission>(*decoded), b);
}

TEST(Codec, EmptyBatchRoundTrip) {
  BatchEmission b;
  b.rank = 0;
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<BatchEmission>(*decoded).messages.empty());
}

TEST(Codec, ReconfigPendingRoundTrip) {
  const ReconfigPending p{0xDEADBEEFCAFEULL};
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<ReconfigPending>(*decoded));
  EXPECT_EQ(std::get<ReconfigPending>(*decoded), p);
}

TEST(Codec, HandshakeAckRoundTrip) {
  const HandshakeAck a{42};
  const auto decoded = decode(encode(a));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<HandshakeAck>(*decoded));
  EXPECT_EQ(std::get<HandshakeAck>(*decoded), a);
}

TEST(Codec, SafeTimeAnnounceRoundTrip) {
  const SafeTimeAnnounce s{3, 7, TimePoint(1.0625)};
  const auto decoded = decode(encode(s));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<SafeTimeAnnounce>(*decoded));
  EXPECT_EQ(std::get<SafeTimeAnnounce>(*decoded), s);
}

TEST(Codec, SafeTimeAnnounceInfiniteFrontierRoundTrip) {
  // An idle shard's frontier is infinite; the f64 codec must carry it.
  const SafeTimeAnnounce s{0, 0, TimePoint::infinite_future()};
  const auto decoded = decode(encode(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SafeTimeAnnounce>(*decoded), s);
}

TEST(Codec, MergeWatermarkRoundTrip) {
  const MergeWatermark w{42, 3, 1ULL << 41, TimePoint(1.5e-3)};
  const auto decoded = decode(encode(w));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<MergeWatermark>(*decoded));
  EXPECT_EQ(std::get<MergeWatermark>(*decoded), w);
}

TEST(Codec, EmptyMergeWatermarkRoundTrip) {
  // released == 0 is the "nothing released yet" watermark; the cursor
  // fields are zeros by convention.
  const MergeWatermark w{};
  const auto decoded = decode(encode(w));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<MergeWatermark>(*decoded));
  EXPECT_EQ(std::get<MergeWatermark>(*decoded), w);
}

TEST(Codec, ReplayTruncatedRoundTrip) {
  const ReplayTruncated t{2, 5, 1ULL << 35};
  const auto decoded = decode(encode(t));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<ReplayTruncated>(*decoded));
  EXPECT_EQ(std::get<ReplayTruncated>(*decoded), t);
}

TEST(Codec, OrderedBatchRoundTrip) {
  OrderedBatch b;
  b.node = 2;
  b.epoch = 5;
  b.rank = 40;
  b.safe_time = TimePoint(1.5e-3);
  b.emitted_at = TimePoint(2.25);
  b.messages = {
      OrderedBatch::Entry{ClientId(1), MessageId(10), TimePoint(1.0),
                          TimePoint(1.0005)},
      OrderedBatch::Entry{ClientId(3), MessageId(1ULL << 60),
                          TimePoint(1.0001), TimePoint(1.0006)},
  };
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<OrderedBatch>(*decoded));
  EXPECT_EQ(std::get<OrderedBatch>(*decoded), b);
}

TEST(Codec, EmptyOrderedBatchRoundTrip) {
  OrderedBatch b;
  b.node = 0;
  b.epoch = 0;
  b.rank = 0;
  b.safe_time = TimePoint(0.5);
  b.emitted_at = TimePoint(0.75);
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<OrderedBatch>(*decoded).messages.empty());
}

TEST(Codec, OrderedBatchCountMismatchRejected) {
  OrderedBatch b;
  b.rank = 1;
  b.messages = {OrderedBatch::Entry{ClientId(1), MessageId(2),
                                    TimePoint(3.0), TimePoint(4.0)}};
  auto bytes = encode(b);
  // Count field sits after tag(1) + node(4) + epoch(8) + rank(8) +
  // safe_time(8) + emitted_at(8) = offset 37; claim 2 entries, provide 1.
  bytes[37] = 2;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsMalformedInput) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({0xFF, 0x00}).has_value());  // unknown tag

  // Truncated payloads of every type.
  for (const WireMessage& m :
       {WireMessage(TimestampedMessage{ClientId(1), MessageId(2),
                                       TimePoint(3.0)}),
        WireMessage(Heartbeat{ClientId(1), TimePoint(2.0)}),
        WireMessage(BatchEmission{4, {MessageId(1)}}),
        WireMessage(ReconfigPending{9}),
        WireMessage(HandshakeAck{11}),
        WireMessage(SafeTimeAnnounce{1, 2, TimePoint(3.0)}),
        WireMessage(OrderedBatch{
            1,
            2,
            3,
            TimePoint(4.0),
            TimePoint(5.0),
            {OrderedBatch::Entry{ClientId(6), MessageId(7), TimePoint(8.0),
                                 TimePoint(9.0)}}})}) {
    auto bytes = encode(m);
    bytes.pop_back();
    EXPECT_FALSE(decode(bytes).has_value());
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(Heartbeat{ClientId(1), TimePoint(2.0)});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode(bytes).has_value());
}

// Exhaustive truncation torture, one sample per codec (both announcement
// encodings, a populated and an empty batch): at EVERY possible split
// point of the encoded buffer, the prefix must decode to "not a message"
// (nullopt) — never crash, never mis-parse as a shorter valid message.
// This is the property the framing layer's incremental decoder leans on.
TEST(Codec, EveryPrefixOfEveryCodecIsRejected) {
  const std::vector<WireMessage> samples = {
      WireMessage(DistributionAnnouncement{
          ClientId(3),
          stats::DistributionSummary(stats::GaussianParams{1e-5, 2e-6})}),
      WireMessage(DistributionAnnouncement{
          ClientId(4), stats::DistributionSummary(stats::HistogramParams{
                           -1e-3, 1e-3, {0.1, 0.2, 0.4, 0.2, 0.1}})}),
      WireMessage(
          TimestampedMessage{ClientId(1), MessageId(2), TimePoint(3.0)}),
      WireMessage(Heartbeat{ClientId(1), TimePoint(2.0)}),
      WireMessage(BatchEmission{
          4, {MessageId(1), MessageId(7), MessageId(1ULL << 60)}}),
      WireMessage(BatchEmission{0, {}}),
      WireMessage(ReconfigPending{1ULL << 40}),
      WireMessage(HandshakeAck{3}),
      WireMessage(SafeTimeAnnounce{9, 1ULL << 33, TimePoint(1.25)}),
      WireMessage(OrderedBatch{
          2,
          1,
          17,
          TimePoint(1.5e-3),
          TimePoint(2.25),
          {OrderedBatch::Entry{ClientId(1), MessageId(10), TimePoint(1.0),
                               TimePoint(1.0005)},
           OrderedBatch::Entry{ClientId(3), MessageId(1ULL << 60),
                               TimePoint(1.0001), TimePoint(1.0006)}}}),
      WireMessage(OrderedBatch{0, 0, 0, TimePoint(0.5), TimePoint(0.75), {}}),
      WireMessage(MergeWatermark{7, 1, 1ULL << 50, TimePoint(2.5)}),
      WireMessage(MergeWatermark{}),
      WireMessage(ReplayTruncated{3, 2, 129}),
  };
  for (std::size_t sample = 0; sample < samples.size(); ++sample) {
    const auto bytes = encode(samples[sample]);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes.begin(),
                                             bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(decode(prefix).has_value())
          << "sample " << sample << " mis-parsed at prefix length " << len
          << "/" << bytes.size();
    }
    const auto full = decode(bytes);
    ASSERT_TRUE(full.has_value()) << "sample " << sample;
    EXPECT_EQ(*full, samples[sample]);
  }
}

TEST(Codec, BatchCountMismatchRejected) {
  BatchEmission b;
  b.rank = 1;
  b.messages = {MessageId(1), MessageId(2)};
  auto bytes = encode(b);
  // Claim 3 messages but provide 2 (count field is at offset 9).
  bytes[9] = 3;
  EXPECT_FALSE(decode(bytes).has_value());
}

}  // namespace
}  // namespace tommy::net
