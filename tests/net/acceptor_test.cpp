// FrameServer accept-loop coverage: TCP and Unix-domain listeners,
// concurrent client processes' worth of connections, handshake races,
// torn handshakes from dying clients, stop() during active traffic — and
// the connection-lifecycle regression the acceptor forced: dead
// connections are reaped (conns_ no longer grows monotonically), ids are
// reused, per-connection stats survive into lifetime totals.
#include "net/acceptor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "wire_test_util.hpp"

namespace tommy::net {
namespace {

using namespace tommy::net::testing;
using core::ClientRegistry;
using core::FairOrderingService;
using core::ServiceConfig;

ServerConfig test_server_config() {
  ServerConfig config;
  config.frontend = test_frontend_config();
  return config;
}

/// Sends a full single-connection client workload and closes.
void run_client(ByteStream& wire, std::uint32_t client,
                const std::vector<Event>& events) {
  std::vector<std::uint8_t> bytes = announce_frame(client);
  for (const Event& event : events) {
    const auto frame = event_frame(client, event);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(wire.write_all(bytes));
  wire.close_write();
}

TEST(FrameServer, TcpAcceptsAndOrdersASingleClient) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  FrameServer server(registry, service, test_server_config());
  ASSERT_TRUE(server.listen_tcp(0));  // ephemeral
  ASSERT_NE(server.port(), 0);
  ASSERT_TRUE(server.running());

  auto wire = connect_tcp(server.port());
  ASSERT_NE(wire, nullptr);
  const auto workload = make_workload(1, 10, /*seed=*/3);
  run_client(*wire, 0, workload[0]);

  ASSERT_TRUE(server.wait_for_accepted(1, 5000));
  server.frontend().join_readers();
  const auto totals = server.frontend().totals();
  EXPECT_EQ(totals.accepted, 1u);
  EXPECT_EQ(totals.submits_in, 10u);
  EXPECT_GT(totals.bytes_in, 0u);

  std::size_t messages = 0;
  service.flush(TimePoint(3.0),
                [&messages](core::EmissionRecord&& record, std::uint32_t) {
                  messages += record.batch.messages.size();
                });
  EXPECT_EQ(messages, 10u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(FrameServer, UnixSocketEmissionsMatchDirectDriveWithConcurrentClients) {
  const auto workload = make_workload(4, 25, /*seed=*/17);
  ServiceConfig config;
  config.with_p_safe(0.99);
  const auto direct = run_direct(workload, config);
  ASSERT_FALSE(direct.empty());

  ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(4), config);
  FrameServer server(registry, service, test_server_config());
  const std::string path = fresh_unix_path();
  ASSERT_TRUE(server.listen_unix(path));
  EXPECT_EQ(server.unix_path(), path);

  // >= 3 concurrent clients (the acceptance bar), each its own thread —
  // the in-process stand-in for N client processes; the multi-process
  // variant lives in scripts/bench_multiproc.sh.
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < 4; ++c) {
    clients.emplace_back([&path, &workload, c] {
      auto wire = connect_unix(path);
      ASSERT_NE(wire, nullptr);
      run_client(*wire, c, workload[c]);
    });
  }
  for (std::thread& client : clients) client.join();

  ASSERT_TRUE(server.wait_for_accepted(4, 5000));
  server.frontend().join_readers();
  expect_equivalent(direct, drain_captured(service));
  server.stop();
}

TEST(FrameServer, HandshakeRacesResolveToOneTypedOutcomePerConnection) {
  ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(4), config);
  FrameServer server(registry, service, test_server_config());
  ASSERT_TRUE(server.listen_tcp(0));

  // 8 simultaneous connects racing the accept loop: 4 valid handshakes
  // (one per known client), 2 unknown clients, 2 that send a data frame
  // first. Valid ones proceed; invalid ones die with their typed error.
  std::vector<std::thread> clients;
  std::atomic<int> write_failures{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&server, &write_failures, i] {
      auto wire = connect_tcp(server.port());
      ASSERT_NE(wire, nullptr);
      std::vector<std::uint8_t> bytes;
      if (i < 4) {
        bytes = announce_frame(static_cast<std::uint32_t>(i));
        const auto frame =
            message_frame(static_cast<std::uint32_t>(i),
                          static_cast<std::uint64_t>(100 + i), 1.0 + i * 1e-3);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
      } else if (i < 6) {
        bytes = announce_frame(77);  // unknown client
      } else {
        bytes = message_frame(0, 5, 1.0);  // handshake violation
      }
      if (!wire->write_all(bytes)) write_failures.fetch_add(1);
      wire->close_write();
      if (i >= 4) {
        // Rejected connections are torn down server-side: observe the
        // EOF/reset. (Valid connections are only closed by reap/stop —
        // draining them here would block forever.)
        std::uint8_t buf[256];
        while (true) {
          const auto n = wire->read_some(buf);
          if (!n || *n == 0) break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  ASSERT_TRUE(server.wait_for_accepted(8, 5000));
  server.frontend().join_readers();
  EXPECT_EQ(service.pending_count(), 4u);
  // The 4 valid clients' messages landed; nothing from the rejects.
  std::size_t messages = 0;
  service.flush(TimePoint(3.0),
                [&messages](core::EmissionRecord&& record, std::uint32_t) {
                  messages += record.batch.messages.size();
                });
  EXPECT_EQ(messages, 4u);
  server.stop();
}

TEST(FrameServer, TornHandshakeThenDropIsContainedAndReaped) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  FrameServer server(registry, service, test_server_config());
  ASSERT_TRUE(server.listen_tcp(0));

  // A client that sends half its announcement frame, then vanishes.
  {
    auto wire = connect_tcp(server.port());
    ASSERT_NE(wire, nullptr);
    const auto handshake = announce_frame(1);
    ASSERT_TRUE(wire->write_all(std::span<const std::uint8_t>(
        handshake.data(), handshake.size() / 2)));
    wire->shutdown();  // full close: reads AND writes die
  }
  ASSERT_TRUE(server.wait_for_accepted(1, 5000));
  // The reader sees EOF mid-frame, the connection is reaped (kRemove),
  // and nothing reached the service.
  ASSERT_TRUE(eventually([&server] {
    return server.frontend().connection_count() == 0;
  }));
  server.frontend().reap();
  EXPECT_EQ(server.frontend().tracked_connection_count(), 0u);
  EXPECT_EQ(service.pending_count(), 0u);

  // The server is unharmed: a well-behaved client works afterwards.
  auto wire = connect_tcp(server.port());
  ASSERT_NE(wire, nullptr);
  const auto workload = make_workload(1, 5, /*seed=*/9);
  run_client(*wire, 0, workload[0]);
  ASSERT_TRUE(server.wait_for_accepted(2, 5000));
  server.frontend().join_readers();
  EXPECT_TRUE(eventually([&service] { return service.pending_count() == 5; }));
  server.stop();
}

TEST(FrameServer, StopDuringActiveTrafficJoinsEverythingCleanly) {
  ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(4), config);
  auto server = std::make_unique<FrameServer>(registry, service,
                                              test_server_config());
  ASSERT_TRUE(server->listen_tcp(0));
  const std::uint16_t port = server->port();

  // Clients that write frames until their stream dies under them.
  std::vector<std::thread> clients;
  std::atomic<bool> go{false};
  for (std::uint32_t c = 0; c < 4; ++c) {
    clients.emplace_back([port, c, &go] {
      auto wire = connect_tcp(port);
      if (wire == nullptr) return;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (!wire->write_all(announce_frame(c))) return;
      double stamp = 1.0;
      for (int k = 0; k < 100000; ++k) {
        stamp += 1e-5;
        if (!wire->write_all(message_frame(
                c, 1000ULL * c + static_cast<std::uint64_t>(k), stamp))) {
          return;  // server stopped mid-write: expected
        }
      }
    });
  }
  ASSERT_TRUE(server->wait_for_accepted(4, 5000));
  go.store(true, std::memory_order_release);
  // Let real traffic flow, then tear the server down under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->stop();
  EXPECT_FALSE(server->running());
  EXPECT_EQ(server->frontend().tracked_connection_count(), 0u);
  server.reset();  // destructor after stop(): idempotent
  for (std::thread& client : clients) client.join();
  // Whatever was applied is a consistent per-connection prefix; the
  // service stays fully pollable and drains clean.
  std::size_t emitted = 0;
  service.flush(TimePoint(10.0),
                [&emitted](core::EmissionRecord&& record, std::uint32_t) {
                  emitted += record.batch.messages.size();
                });
  EXPECT_EQ(service.pending_count(), 0u);
}

TEST(FrameServer, ListenFailuresAreReported) {
  ClientRegistry registry = make_registry(1);
  FairOrderingService service(registry, ids(1), {});
  {
    FrameServer a(registry, service, test_server_config());
    ASSERT_TRUE(a.listen_tcp(0));
    FrameServer b(registry, service, test_server_config());
    EXPECT_FALSE(b.listen_tcp(a.port()));  // port taken
    EXPECT_FALSE(b.running());
  }
  {
    FrameServer c(registry, service, test_server_config());
    EXPECT_FALSE(c.listen_unix(std::string(200, 'x')));  // ENAMETOOLONG
    EXPECT_FALSE(c.running());
  }
}

// ── Connection lifecycle regressions (the PR 4 deferral) ────────────────

TEST(FrameFrontendLifecycle, ChurnDoesNotGrowTheConnectionTable) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  FrontendConfig frontend_config = test_frontend_config();
  frontend_config.eof_policy = EofPolicy::kRemove;
  FrameFrontend frontend(registry, service, frontend_config);

  std::uint64_t max_id = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    auto [server_end, client_end] = make_pipe_pair();
    const std::uint64_t id = frontend.add_connection(server_end);
    max_id = std::max(max_id, id);
    std::vector<std::uint8_t> bytes = announce_frame(0);
    const auto frame =
        message_frame(0, static_cast<std::uint64_t>(cycle),
                      1.0 + 1e-3 * cycle);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    ASSERT_TRUE(client_end->write_all(bytes));
    client_end->close_write();
    // Wait out this cycle's reader so the next add_connection's reap
    // deterministically recycles the id (live count drops to 0 as soon
    // as the reader exits — kRemove makes EOF conns reap-ready).
    ASSERT_TRUE(eventually(
        [&frontend] { return frontend.connection_count() == 0; }));
  }
  frontend.join_readers();
  frontend.reap();
  // All 100 cycles' connections are gone, their ids were recycled, and
  // nothing was lost on the way to the service.
  EXPECT_EQ(frontend.tracked_connection_count(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
  // Each cycle's connection was reaped before the next id was minted:
  // the id space never grew past the live set.
  EXPECT_LE(max_id, 1u);
  const auto totals = frontend.totals();
  EXPECT_EQ(totals.accepted, 100u);
  EXPECT_EQ(totals.removed, 100u);
  EXPECT_EQ(totals.submits_in, 100u);
  EXPECT_EQ(service.pending_count(), 100u);
}

TEST(FrameFrontendLifecycle, IdsAreReusedSmallestFirst) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), {});
  FrontendConfig config = test_frontend_config();
  config.eof_policy = EofPolicy::kRemove;
  FrameFrontend frontend(registry, service, config);

  auto [s0, c0] = make_pipe_pair();
  auto [s1, c1] = make_pipe_pair();
  auto [s2, c2] = make_pipe_pair();
  EXPECT_EQ(frontend.add_connection(s0), 0u);
  EXPECT_EQ(frontend.add_connection(s1), 1u);
  EXPECT_EQ(frontend.add_connection(s2), 2u);
  EXPECT_EQ(frontend.connection_count(), 3u);

  EXPECT_TRUE(frontend.close_connection(1));
  EXPECT_FALSE(frontend.has_connection(1));
  EXPECT_FALSE(frontend.close_connection(1));  // already gone: an outcome
  EXPECT_EQ(frontend.tracked_connection_count(), 2u);

  auto [s3, c3] = make_pipe_pair();
  EXPECT_EQ(frontend.add_connection(s3), 1u);  // recycled
  auto [s4, c4] = make_pipe_pair();
  EXPECT_EQ(frontend.add_connection(s4), 3u);  // fresh
  frontend.stop();
  EXPECT_EQ(frontend.tracked_connection_count(), 0u);
  EXPECT_EQ(frontend.totals().accepted, 5u);
  EXPECT_EQ(frontend.totals().removed, 5u);
}

TEST(FrameFrontendLifecycle, StatsTrackTrafficAndSurviveIntoTotals) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), service_config);
  FrameFrontend frontend(registry, service, test_frontend_config());

  auto [server_end, client_end] = make_pipe_pair();
  const auto id = frontend.add_connection(server_end);
  std::vector<std::uint8_t> bytes = announce_frame(0);
  for (int k = 0; k < 5; ++k) {
    const auto frame = message_frame(0, static_cast<std::uint64_t>(k),
                                     1.0 + 1e-3 * k);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  const auto tail = heartbeat_frame(0, 1.2);
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  ASSERT_TRUE(client_end->write_all(bytes));
  client_end->close_write();
  frontend.join_readers();

  auto stats = frontend.connection_stats(id);
  EXPECT_EQ(stats.frames_in, 7u);
  EXPECT_EQ(stats.submits_in, 5u);
  EXPECT_EQ(stats.heartbeats_in, 1u);
  EXPECT_EQ(stats.bytes_in, bytes.size());
  EXPECT_TRUE(stats.done);
  EXPECT_TRUE(stats.clean_eof);
  EXPECT_GT(stats.last_activity, 0.0);
  EXPECT_EQ(stats.error, WireError::kNone);
  EXPECT_EQ(stats.frames_out, 0u);

  // Lingering policy: the half-closed peer still receives the broadcast.
  const std::size_t emitted = frontend.pump_flush(TimePoint(3.0));
  ASSERT_GT(emitted, 0u);
  stats = frontend.connection_stats(id);
  EXPECT_EQ(stats.frames_out, emitted);
  EXPECT_GT(stats.bytes_out, 0u);

  EXPECT_TRUE(frontend.close_connection(id));
  const auto totals = frontend.totals();
  EXPECT_EQ(totals.frames_in, 7u);
  EXPECT_EQ(totals.frames_out, emitted);
  EXPECT_EQ(totals.removed, 1u);
}

TEST(FrameFrontendLifecycle, LingerKeepsServingUntilWritesFail) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), service_config);
  FrameFrontend frontend(registry, service, test_frontend_config());

  // Connection A: sends one message, half-closes, lingers as a
  // subscriber. Connection B: stays to generate later traffic.
  auto [server_a, client_a] = make_pipe_pair();
  const auto id_a = frontend.add_connection(server_a);
  std::vector<std::uint8_t> bytes = announce_frame(0);
  const auto frame = message_frame(0, 1, 1.0);
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  const auto tail = heartbeat_frame(0, 1.1);
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  ASSERT_TRUE(client_a->write_all(bytes));
  client_a->close_write();

  auto [server_b, client_b] = make_pipe_pair();
  frontend.add_connection(server_b);
  ASSERT_TRUE(client_b->write_all(announce_frame(1)));

  ASSERT_TRUE(eventually([&frontend, id_a] {
    return frontend.connection_stats(id_a).done;
  }));
  // EOF + linger: still counted live, still broadcast to.
  EXPECT_EQ(frontend.connection_count(), 2u);
  ASSERT_GT(frontend.pump_flush(TimePoint(3.0)), 0u);
  EXPECT_TRUE(frontend.has_connection(id_a));
  EXPECT_GT(frontend.connection_stats(id_a).frames_out, 0u);

  // A's peer vanishes entirely; the next emission's broadcast write to A
  // fails, and the pump after that reaps it.
  client_a->shutdown();
  const auto frame_b = message_frame(1, 2, 2.0);
  ASSERT_TRUE(client_b->write_all(frame_b));
  ASSERT_TRUE(client_b->write_all(heartbeat_frame(1, 2.1)));
  ASSERT_TRUE(eventually([&frontend] {
    return frontend.totals().submits_in >= 2;
  }));
  ASSERT_GT(frontend.pump_flush(TimePoint(4.0)), 0u);  // write to A fails
  (void)frontend.pump(TimePoint(5.0));                 // reap on entry
  EXPECT_FALSE(frontend.has_connection(id_a));
  EXPECT_EQ(frontend.tracked_connection_count(), 1u);  // B lives on
  frontend.stop();
}

// ── Connect retry (bounded transient backoff) ───────────────────────────

/// A RetryPolicy whose sleeps are recorded instead of slept, so the
/// backoff schedule is observable and the tests run in microseconds.
struct RecordedRetry {
  RetryPolicy policy;
  std::vector<std::chrono::microseconds> slept;

  explicit RecordedRetry(int attempts) {
    policy.attempts = attempts;
    policy.sleep = [this](std::chrono::microseconds d) {
      slept.push_back(d);
    };
  }
};

TEST(ConnectRetry, DelayScheduleIsExponentialWithCap) {
  RetryPolicy policy;
  policy.base_delay = std::chrono::microseconds(100);
  policy.multiplier = 2.0;
  policy.max_delay = std::chrono::microseconds(500);
  EXPECT_EQ(policy.delay_for(0), std::chrono::microseconds(100));
  EXPECT_EQ(policy.delay_for(1), std::chrono::microseconds(200));
  EXPECT_EQ(policy.delay_for(2), std::chrono::microseconds(400));
  EXPECT_EQ(policy.delay_for(3), std::chrono::microseconds(500));  // capped
  EXPECT_EQ(policy.delay_for(10), std::chrono::microseconds(500));
}

TEST(ConnectRetry, UnixConnectSurvivesTheServerStartupRace) {
  // The socket file does not exist yet (ENOENT — transient for unix):
  // the server comes up from inside the retry's first backoff, exactly
  // the multi-process startup race the policy exists for.
  const std::string path = fresh_unix_path();
  ClientRegistry registry = make_registry(1);
  FairOrderingService service(registry, ids(1), ServiceConfig{});
  FrameServer server(registry, service, test_server_config());

  RecordedRetry retry(/*attempts=*/10);
  auto base_sleep = retry.policy.sleep;
  retry.policy.sleep = [&](std::chrono::microseconds d) {
    if (retry.slept.empty()) {
      ASSERT_TRUE(server.listen_unix(path));
    }
    base_sleep(d);
  };
  auto stream = connect_unix(path, retry.policy);
  ASSERT_NE(stream, nullptr);
  EXPECT_GE(retry.slept.size(), 1u);
  server.stop();
}

TEST(ConnectRetry, NonTransientUnixFailureDoesNotRetry) {
  // A path component that is a regular file fails with ENOTDIR — no
  // amount of waiting fixes that, so the policy must not burn attempts.
  const std::string file = fresh_unix_path();
  std::FILE* f = std::fopen(file.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  RecordedRetry retry(/*attempts=*/10);
  EXPECT_EQ(connect_unix(file + "/sub.sock", retry.policy), nullptr);
  EXPECT_TRUE(retry.slept.empty());
  std::remove(file.c_str());
}

TEST(ConnectRetry, RefusedTcpConnectExhaustsExactlyTheBudget) {
  // Grab a port the kernel just released: connecting to it refuses
  // (transient class), so the client backs off between each of its 3
  // attempts — 2 recorded sleeps — then reports failure.
  std::uint16_t dead_port;
  {
    ClientRegistry registry = make_registry(1);
    FairOrderingService service(registry, ids(1), ServiceConfig{});
    FrameServer server(registry, service, test_server_config());
    ASSERT_TRUE(server.listen_tcp(0));
    dead_port = server.port();
    server.stop();
  }
  RecordedRetry retry(/*attempts=*/3);
  EXPECT_EQ(connect_tcp(dead_port, retry.policy), nullptr);
  EXPECT_EQ(retry.slept.size(), 2u);
}

TEST(ConnectRetry, MissingUnixSocketExhaustsExactlyTheBudget) {
  RecordedRetry retry(/*attempts=*/4);
  EXPECT_EQ(connect_unix(fresh_unix_path(), retry.policy), nullptr);
  EXPECT_EQ(retry.slept.size(), 3u);
}

}  // namespace
}  // namespace tommy::net
