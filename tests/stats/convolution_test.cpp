#include "stats/convolution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace tommy::stats {
namespace {

TEST(Convolution, GaussianSumIsGaussian) {
  // X ~ N(1, 2²), Y ~ N(-0.5, 1.5²); X+Y ~ N(0.5, 6.25).
  const Gaussian x(1.0, 2.0);
  const Gaussian y(-0.5, 1.5);
  const GridDensity gx = GridDensity::from_distribution(x, 2048);
  // The convolution requires equal grid spacing; lay y out on gx's dx.
  const Support sy = y.effective_support();
  const auto ny =
      static_cast<std::size_t>(std::ceil(sy.width() / gx.dx())) + 1;
  const GridDensity gy = GridDensity::from_distribution_on(
      y, sy.lo, sy.lo + gx.dx() * static_cast<double>(ny - 1), ny);
  const GridDensity sum = convolve(gx, gy);

  const Gaussian expected(0.5, 2.5);
  EXPECT_NEAR(sum.mean(), expected.mean(), 1e-3);
  EXPECT_NEAR(std::sqrt(sum.variance()), expected.stddev(), 1e-2);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(sum.cdf(expected.quantile(q)), q, 5e-3) << "q=" << q;
  }
}

TEST(Convolution, DirectAndFftAgree) {
  const Gaussian x(0.0, 1.0);
  const Uniform y(-2.0, 2.0);
  const GridDensity gx = GridDensity::from_distribution(x, 512);
  // Rebuild y on gx's spacing so the two grids are convolvable.
  const auto ny = static_cast<std::size_t>(std::ceil(4.0 / gx.dx())) + 1;
  const GridDensity gy = GridDensity::from_distribution_on(
      y, -2.0, -2.0 + gx.dx() * static_cast<double>(ny - 1), ny);

  const GridDensity fft = convolve(gx, gy, ConvolutionMethod::kFft);
  const GridDensity direct = convolve(gx, gy, ConvolutionMethod::kDirect);
  ASSERT_EQ(fft.size(), direct.size());
  for (std::size_t k = 0; k < fft.size(); ++k) {
    EXPECT_NEAR(fft.values()[k], direct.values()[k], 1e-8);
  }
}

TEST(DifferenceDensity, GaussianMatchesClosedForm) {
  // θ_j ~ N(3, 4), θ_i ~ N(1, 9): Δθ = θ_j − θ_i ~ N(2, 13).
  const Gaussian theta_j(3.0, 2.0);
  const Gaussian theta_i(1.0, 3.0);
  const GridDensity delta = difference_density(theta_j, theta_i, 2048);

  EXPECT_NEAR(delta.mean(), 2.0, 0.01);
  EXPECT_NEAR(delta.variance(), 13.0, 0.1);

  const Gaussian expected(2.0, std::sqrt(13.0));
  for (double x : {-4.0, -1.0, 0.0, 2.0, 5.0, 8.0}) {
    EXPECT_NEAR(delta.cdf(x), expected.cdf(x), 5e-3) << "x=" << x;
  }
}

TEST(DifferenceDensity, TailProbabilityIsPrecedingProbability) {
  // Same-parameter clients: P(Δθ > 0) must be 1/2 by symmetry.
  const Gaussian theta(0.5, 1.0);
  const GridDensity delta = difference_density(theta, theta, 1024);
  EXPECT_NEAR(delta.tail_probability(0.0), 0.5, 5e-3);
}

TEST(DifferenceDensity, SkewedInputsKeepMeanDifference) {
  const ShiftedExponential theta_j(0.0, 2.0);  // mean 2
  const Gumbel theta_i(1.0, 0.5);              // mean 1 + 0.5γ
  const GridDensity delta = difference_density(theta_j, theta_i, 2048);
  const double expected_mean = 2.0 - (1.0 + 0.5 * 0.5772156649015329);
  EXPECT_NEAR(delta.mean(), expected_mean, 0.02);
}

TEST(DifferenceDensity, AntisymmetricUnderSwap) {
  const Gaussian a(1.0, 1.0);
  const Uniform b(-1.0, 3.0);
  const GridDensity ab = difference_density(a, b, 1024);  // a − b
  const GridDensity ba = difference_density(b, a, 1024);  // b − a
  for (double x : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    // P(a−b <= x) == P(b−a >= −x).
    EXPECT_NEAR(ab.cdf(x), ba.tail_probability(-x), 1e-2) << "x=" << x;
  }
}

TEST(Convolution, PreservesTotalMass) {
  const Gaussian x(0.0, 1.0);
  const Gaussian y(0.0, 2.0);
  const GridDensity sum = difference_density(x, y, 1024);
  // GridDensity normalizes; verify the CDF really reaches 1 smoothly.
  EXPECT_NEAR(sum.cdf(sum.hi()), 1.0, 1e-12);
  EXPECT_NEAR(sum.cdf(sum.lo()), 0.0, 1e-12);
}

}  // namespace
}  // namespace tommy::stats
