#include "stats/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace tommy::stats {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  fft_forward(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  const int tone = 5;
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = std::cos(2.0 * std::numbers::pi * tone * static_cast<double>(k) /
                       static_cast<double>(n));
  }
  fft_forward(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(data[k]);
    if (k == tone || k == n - tone) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9) << "bin " << k;
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, InverseRoundTrips) {
  Rng rng(3);
  std::vector<std::complex<double>> data(256);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft_forward(data);
  fft_inverse(data);
  for (std::size_t k = 0; k < data.size(); ++k) {
    EXPECT_NEAR(data[k].real(), original[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), original[k].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(17);
  std::vector<std::complex<double>> data(128);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  fft_forward(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-8 * time_energy);
}

TEST(Convolve, KnownSmallCase) {
  // [1,2,3] * [4,5] = [4, 13, 22, 15]
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5};
  const auto direct = direct_convolve_real(a, b);
  ASSERT_EQ(direct.size(), 4u);
  EXPECT_NEAR(direct[0], 4, 1e-12);
  EXPECT_NEAR(direct[1], 13, 1e-12);
  EXPECT_NEAR(direct[2], 22, 1e-12);
  EXPECT_NEAR(direct[3], 15, 1e-12);
}

TEST(Convolve, FftMatchesDirectOnRandomInputs) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const auto na = static_cast<std::size_t>(rng.uniform_int(1, 200));
    const auto nb = static_cast<std::size_t>(rng.uniform_int(1, 200));
    std::vector<double> a(na), b(nb);
    for (auto& x : a) x = rng.uniform(-2, 2);
    for (auto& x : b) x = rng.uniform(-2, 2);
    const auto d = direct_convolve_real(a, b);
    const auto f = fft_convolve_real(a, b);
    ASSERT_EQ(d.size(), f.size());
    for (std::size_t k = 0; k < d.size(); ++k) {
      EXPECT_NEAR(d[k], f[k], 1e-9) << "trial " << trial << " k " << k;
    }
  }
}

TEST(Convolve, CommutativeViaFft) {
  const std::vector<double> a{0.5, 1.5, 0.25};
  const std::vector<double> b{2.0, 0.0, 1.0, 3.0};
  const auto ab = fft_convolve_real(a, b);
  const auto ba = fft_convolve_real(b, a);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t k = 0; k < ab.size(); ++k) EXPECT_NEAR(ab[k], ba[k], 1e-10);
}

TEST(FftDeathTest, RequiresPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_DEATH(fft_forward(data), "precondition");
}

}  // namespace
}  // namespace tommy::stats
