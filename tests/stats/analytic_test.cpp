#include "stats/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace tommy::stats {
namespace {

TEST(Uniform, DensityIsFlatInsideZeroOutside) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.pdf(3.0), 0.25);
  EXPECT_DOUBLE_EQ(u.pdf(1.9), 0.0);
  EXPECT_DOUBLE_EQ(u.pdf(6.1), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(6.0), 1.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_NEAR(u.variance(), 16.0 / 12.0, 1e-12);
}

TEST(UniformDeathTest, RejectsEmptyInterval) {
  EXPECT_DEATH(Uniform(3.0, 3.0), "precondition");
}

TEST(Laplace, CdfIsContinuousAtLocation) {
  const Laplace l(1.0, 2.0);
  EXPECT_NEAR(l.cdf(1.0 - 1e-12), 0.5, 1e-9);
  EXPECT_NEAR(l.cdf(1.0 + 1e-12), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(l.mean(), 1.0);
  EXPECT_DOUBLE_EQ(l.variance(), 8.0);
}

TEST(Laplace, QuantileKinksAtMedian) {
  const Laplace l(0.0, 1.0);
  EXPECT_NEAR(l.quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(l.quantile(0.25), -std::log(2.0), 1e-12);
  EXPECT_NEAR(l.quantile(0.75), std::log(2.0), 1e-12);
}

TEST(ShiftedExponential, SupportStartsAtLocation) {
  const ShiftedExponential e(-1.0, 2.0);
  EXPECT_DOUBLE_EQ(e.pdf(-1.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_NEAR(e.pdf(-1.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(e.mean(), 1.0);
  EXPECT_DOUBLE_EQ(e.variance(), 4.0);
  EXPECT_EQ(e.support().lo, -1.0);
  EXPECT_FALSE(e.support().is_bounded());
}

TEST(ShiftedExponential, MemorylessCdf) {
  const ShiftedExponential e(0.0, 1.0);
  EXPECT_NEAR(e.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.quantile(1.0 - std::exp(-2.0)), 2.0, 1e-9);
}

TEST(Gumbel, MeanUsesEulerGamma) {
  const Gumbel g(1.0, 2.0);
  EXPECT_NEAR(g.mean(), 1.0 + 2.0 * 0.5772156649015329, 1e-12);
  EXPECT_NEAR(g.variance(),
              std::numbers::pi * std::numbers::pi / 6.0 * 4.0, 1e-12);
}

TEST(Gumbel, CdfAtLocation) {
  const Gumbel g(0.0, 1.0);
  EXPECT_NEAR(g.cdf(0.0), std::exp(-1.0), 1e-12);
  // Right skew: mass above the location exceeds mass below.
  EXPECT_LT(g.cdf(0.0), 0.5);
}

TEST(Logistic, ClosedForms) {
  const Logistic l(2.0, 0.5);
  EXPECT_NEAR(l.cdf(2.0), 0.5, 1e-12);
  EXPECT_NEAR(l.quantile(0.5), 2.0, 1e-12);
  EXPECT_NEAR(l.quantile(l.cdf(3.1)), 3.1, 1e-9);
  EXPECT_DOUBLE_EQ(l.mean(), 2.0);
}

TEST(StudentT, HeavierTailsThanGaussian) {
  const StudentT t(3.0, 0.0, 1.0);
  // t(3) tail beyond 3 is much fatter than the normal's.
  EXPECT_GT(1.0 - t.cdf(3.0), 0.02);
  EXPECT_NEAR(t.cdf(0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(t.variance(), 3.0);  // scale²·ν/(ν−2)
}

TEST(StudentT, CdfMatchesKnownValue) {
  // t(2) CDF at 1.0 is 0.7886751... (= 1/2 + 1/(2·sqrt(3)) · sqrt(3)/... )
  const StudentT t(2.0 + 1e-9, 0.0, 1.0);  // df > 2 required
  EXPECT_NEAR(t.cdf(1.0), 0.78867513, 1e-4);
}

TEST(StudentTDeathTest, RequiresFiniteVariance) {
  EXPECT_DEATH(StudentT(2.0, 0.0, 1.0), "precondition");
}

}  // namespace
}  // namespace tommy::stats
