#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/empirical.hpp"
#include "stats/gaussian.hpp"
#include "stats/mixture.hpp"

namespace tommy::stats {
namespace {

// ------------------------------------------------------------- Empirical

TEST(Empirical, NormalizesBinMasses) {
  const Empirical e(0.0, 4.0, {2.0, 2.0, 2.0, 2.0});
  EXPECT_NEAR(e.pdf(1.0), 0.25, 1e-12);
  EXPECT_NEAR(e.cdf(2.0), 0.5, 1e-12);
}

TEST(Empirical, PdfIsPiecewiseConstant) {
  const Empirical e(0.0, 2.0, {1.0, 3.0});
  EXPECT_NEAR(e.pdf(0.3), 0.25, 1e-12);
  EXPECT_NEAR(e.pdf(0.9), 0.25, 1e-12);
  EXPECT_NEAR(e.pdf(1.5), 0.75, 1e-12);
  EXPECT_EQ(e.pdf(-0.1), 0.0);
  EXPECT_EQ(e.pdf(2.0), 0.0);  // hi edge exclusive
}

TEST(Empirical, CdfPiecewiseLinearAndInvertible) {
  const Empirical e(0.0, 2.0, {1.0, 3.0});
  EXPECT_NEAR(e.cdf(0.5), 0.125, 1e-12);
  EXPECT_NEAR(e.cdf(1.0), 0.25, 1e-12);
  EXPECT_NEAR(e.cdf(1.5), 0.625, 1e-12);
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(e.cdf(e.quantile(p)), p, 1e-10);
  }
}

TEST(Empirical, FromSamplesRecoversShape) {
  Rng rng(7);
  const Gaussian ref(5.0, 2.0);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(ref.sample(rng));
  const Empirical e = Empirical::from_samples(samples, 64);
  EXPECT_NEAR(e.mean(), 5.0, 0.05);
  EXPECT_NEAR(e.variance(), 4.0, 0.1);
  EXPECT_NEAR(e.cdf(5.0), 0.5, 0.01);
}

TEST(Empirical, FromSamplesHandlesTightCluster) {
  const std::vector<double> samples{1.0, 1.0, 1.0, 1.0};
  const Empirical e = Empirical::from_samples(samples, 4);
  EXPECT_NEAR(e.mean(), 1.0, 1e-3);
  EXPECT_GT(e.pdf(1.0), 0.0);
}

TEST(Empirical, ZeroMassBinsAreSkippedByQuantile) {
  const Empirical e(0.0, 3.0, {1.0, 0.0, 1.0});
  // Median sits at a zero-mass stretch; quantile must stay inside support.
  const double median = e.quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 3.0);
  EXPECT_NEAR(e.cdf(1.0), 0.5, 1e-12);
  EXPECT_NEAR(e.cdf(2.0), 0.5, 1e-12);
}

TEST(EmpiricalDeathTest, RejectsAllZeroMasses) {
  EXPECT_DEATH(Empirical(0.0, 1.0, {0.0, 0.0}), "precondition");
}

// --------------------------------------------------------------- Mixture

TEST(Mixture, NormalizesWeights) {
  const Mixture m = Mixture::of(2.0, std::make_unique<Gaussian>(0.0, 1.0),
                                6.0, std::make_unique<Gaussian>(10.0, 1.0));
  EXPECT_NEAR(m.weight(0), 0.25, 1e-12);
  EXPECT_NEAR(m.weight(1), 0.75, 1e-12);
  EXPECT_NEAR(m.mean(), 7.5, 1e-12);
}

TEST(Mixture, LawOfTotalVariance) {
  const Mixture m = Mixture::of(0.5, std::make_unique<Gaussian>(-1.0, 1.0),
                                0.5, std::make_unique<Gaussian>(1.0, 1.0));
  // Var = E[Var] + Var[E] = 1 + 1 = 2.
  EXPECT_NEAR(m.variance(), 2.0, 1e-12);
  EXPECT_NEAR(m.mean(), 0.0, 1e-12);
}

TEST(Mixture, PdfAndCdfAreWeightedSums) {
  const Gaussian a(0.0, 1.0);
  const Gaussian b(4.0, 2.0);
  const Mixture m = Mixture::of(0.3, a.clone(), 0.7, b.clone());
  for (double x : {-1.0, 0.0, 2.0, 4.0, 7.0}) {
    EXPECT_NEAR(m.pdf(x), 0.3 * a.pdf(x) + 0.7 * b.pdf(x), 1e-12);
    EXPECT_NEAR(m.cdf(x), 0.3 * a.cdf(x) + 0.7 * b.cdf(x), 1e-12);
  }
}

TEST(Mixture, SamplesFromBothModes) {
  const Mixture m = Mixture::of(0.5, std::make_unique<Gaussian>(-10.0, 0.5),
                                0.5, std::make_unique<Gaussian>(10.0, 0.5));
  Rng rng(11);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = m.sample(rng);
    if (x < 0) {
      ++low;
    } else {
      ++high;
    }
  }
  EXPECT_NEAR(low, 1000, 120);
  EXPECT_NEAR(high, 1000, 120);
}

TEST(Mixture, IsNotFlaggedGaussian) {
  const Mixture m = Mixture::of(0.5, std::make_unique<Gaussian>(0.0, 1.0),
                                0.5, std::make_unique<Gaussian>(0.0, 2.0));
  EXPECT_FALSE(m.is_gaussian());
}

TEST(MixtureDeathTest, RejectsEmptyAndBadWeights) {
  EXPECT_DEATH(Mixture(std::vector<Mixture::Component>{}), "precondition");
  std::vector<Mixture::Component> bad;
  bad.push_back({-1.0, std::make_unique<Gaussian>(0.0, 1.0)});
  EXPECT_DEATH(Mixture(std::move(bad)), "precondition");
}

}  // namespace
}  // namespace tommy::stats
