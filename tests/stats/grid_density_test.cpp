#include "stats/grid_density.hpp"

#include <gtest/gtest.h>

#include "stats/gaussian.hpp"

namespace tommy::stats {
namespace {

TEST(GridDensity, NormalizesInputMass) {
  // Unnormalized flat density becomes Uniform-like.
  GridDensity g(0.0, 0.1, std::vector<double>(11, 7.0));
  EXPECT_NEAR(g.cdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(g.cdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(g.pdf(0.5), 1.0, 1e-9);
}

TEST(GridDensity, ClampsNegativeInputValues) {
  GridDensity g(0.0, 0.5, std::vector<double>{1.0, -5.0, 1.0});
  EXPECT_GE(g.pdf(0.25), 0.0);
  EXPECT_NEAR(g.cdf(g.hi()), 1.0, 1e-12);
}

TEST(GridDensity, PdfInterpolatesLinearly) {
  GridDensity g(0.0, 1.0, std::vector<double>{0.0, 1.0, 0.0});
  // Mass = 1 by construction (trapezoid = 1), so values stay as given.
  EXPECT_NEAR(g.pdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(g.pdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(g.pdf(1.75), 0.25, 1e-12);
  EXPECT_EQ(g.pdf(-0.1), 0.0);
  EXPECT_EQ(g.pdf(2.1), 0.0);
}

TEST(GridDensity, CdfBoundariesAndMonotone) {
  const Gaussian ref(0.0, 1.0);
  const GridDensity g = GridDensity::from_distribution(ref, 1024);
  EXPECT_EQ(g.cdf(g.lo() - 1.0), 0.0);
  EXPECT_EQ(g.cdf(g.hi() + 1.0), 1.0);
  double prev = -1.0;
  for (double x = g.lo(); x <= g.hi(); x += 0.05) {
    const double c = g.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(GridDensity, QuantileInvertsCdf) {
  const Gaussian ref(2.0, 3.0);
  const GridDensity g = GridDensity::from_distribution(ref, 4096);
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-6) << "p=" << p;
  }
  EXPECT_EQ(g.quantile(0.0), g.lo());
  EXPECT_EQ(g.quantile(1.0), g.hi());
}

TEST(GridDensity, MomentsMatchSource) {
  const Gaussian ref(-1.5, 0.8);
  const GridDensity g = GridDensity::from_distribution(ref, 4096);
  EXPECT_NEAR(g.mean(), -1.5, 1e-3);
  EXPECT_NEAR(g.variance(), 0.64, 1e-3);
}

TEST(GridDensity, ReflectionNegatesSupportAndMean) {
  const Gaussian ref(2.0, 1.0);
  const GridDensity g = GridDensity::from_distribution(ref, 1024);
  const GridDensity r = g.reflected();
  EXPECT_NEAR(r.lo(), -g.hi(), 1e-12);
  EXPECT_NEAR(r.hi(), -g.lo(), 1e-12);
  EXPECT_NEAR(r.mean(), -2.0, 1e-2);
  // Density matches pointwise under negation.
  for (double x : {-3.5, -2.0, -1.0, 0.0}) {
    EXPECT_NEAR(r.pdf(x), g.pdf(-x), 1e-9) << "x=" << x;
  }
}

TEST(GridDensity, TailProbabilityComplementsCdf) {
  const Gaussian ref(0.0, 1.0);
  const GridDensity g = GridDensity::from_distribution(ref, 1024);
  for (double x : {-2.0, -0.3, 0.0, 1.2}) {
    EXPECT_NEAR(g.tail_probability(x) + g.cdf(x), 1.0, 1e-12);
  }
}

TEST(GridDensityDeathTest, RejectsBadConstruction) {
  EXPECT_DEATH(GridDensity(0.0, 0.0, std::vector<double>{1.0, 1.0}),
               "precondition");
  EXPECT_DEATH(GridDensity(0.0, 1.0, std::vector<double>{1.0}),
               "precondition");
  EXPECT_DEATH(GridDensity(0.0, 1.0, std::vector<double>{0.0, 0.0}),
               "precondition");
}

}  // namespace
}  // namespace tommy::stats
