#include "stats/gaussian.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tommy::stats {
namespace {

TEST(Gaussian, MomentsAndFlags) {
  const Gaussian g(2.5, 1.5);
  EXPECT_DOUBLE_EQ(g.mean(), 2.5);
  EXPECT_DOUBLE_EQ(g.variance(), 2.25);
  EXPECT_DOUBLE_EQ(g.stddev(), 1.5);
  EXPECT_TRUE(g.is_gaussian());
  EXPECT_EQ(g.mu(), 2.5);
  EXPECT_EQ(g.sigma(), 1.5);
}

TEST(Gaussian, PdfPeaksAtMean) {
  const Gaussian g(1.0, 2.0);
  EXPECT_GT(g.pdf(1.0), g.pdf(0.0));
  EXPECT_GT(g.pdf(1.0), g.pdf(2.0));
  EXPECT_NEAR(g.pdf(0.0), g.pdf(2.0), 1e-15);  // symmetry
}

TEST(Gaussian, CdfStandardValues) {
  const Gaussian g(0.0, 1.0);
  EXPECT_NEAR(g.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(g.cdf(1.96), 0.975, 1e-3);
}

TEST(Gaussian, QuantileClosedFormInvertsCdf) {
  const Gaussian g(-3.0, 0.25);
  for (double p = 0.02; p < 0.99; p += 0.05) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-10);
  }
}

TEST(Gaussian, SupportIsUnbounded) {
  const Gaussian g(0.0, 1.0);
  EXPECT_FALSE(g.support().is_bounded());
}

TEST(Gaussian, DescribeMentionsParameters) {
  const Gaussian g(2.0, 5.0);
  EXPECT_EQ(g.describe(), "Gaussian(mu=2, sigma=5)");
}

TEST(GaussianDeathTest, RejectsNonPositiveSigma) {
  EXPECT_DEATH(Gaussian(0.0, 0.0), "precondition");
  EXPECT_DEATH(Gaussian(0.0, -1.0), "precondition");
}

TEST(Gaussian, SampleUsesBoxMullerNotQuantile) {
  // Moments of direct sampling should match (this exercises the override).
  const Gaussian g(10.0, 3.0);
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += g.sample(rng);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

}  // namespace
}  // namespace tommy::stats
