// Parameterized property suite: every Distribution in the library must
// satisfy the axioms the sequencer relies on (density normalization, CDF
// monotonicity, quantile inversion, moment consistency, sampling
// agreement). New distributions plug in by adding a factory row.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "stats/analytic.hpp"
#include "stats/empirical.hpp"
#include "stats/gaussian.hpp"
#include "stats/grid_density.hpp"
#include "stats/kde.hpp"
#include "stats/mixture.hpp"

namespace tommy::stats {
namespace {

struct DistCase {
  std::string name;
  std::function<DistributionPtr()> make;
  // Sampling-moment tolerances (heavier tails need looser bounds).
  double mean_tol;
  double var_rel_tol;
};

DistributionPtr make_mixture() {
  return std::make_unique<Mixture>(
      Mixture::of(0.4, std::make_unique<Gaussian>(-2.0, 0.5), 0.6,
                  std::make_unique<Gaussian>(3.0, 1.5)));
}

DistributionPtr make_empirical() {
  // Triangle-ish histogram on [-1, 3].
  return std::make_unique<Empirical>(
      -1.0, 3.0, std::vector<double>{1.0, 3.0, 5.0, 3.0, 1.0, 0.5});
}

DistributionPtr make_kde() {
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.normal(1.0, 2.0));
  return std::make_unique<KernelDensity>(samples);
}

const DistCase kCases[] = {
    {"gaussian", [] { return std::make_unique<Gaussian>(2.0, 5.0); }, 0.1,
     0.05},
    {"gaussian_tiny_sigma",
     [] { return std::make_unique<Gaussian>(-1e-6, 1e-7); }, 0.1, 0.05},
    {"uniform", [] { return std::make_unique<Uniform>(-3.0, 7.0); }, 0.1,
     0.05},
    {"laplace", [] { return std::make_unique<Laplace>(1.0, 2.0); }, 0.1, 0.1},
    {"shifted_exponential",
     [] { return std::make_unique<ShiftedExponential>(-2.0, 1.5); }, 0.05,
     0.1},
    {"gumbel", [] { return std::make_unique<Gumbel>(0.5, 2.0); }, 0.1, 0.1},
    {"logistic", [] { return std::make_unique<Logistic>(-1.0, 1.2); }, 0.1,
     0.1},
    {"student_t", [] { return std::make_unique<StudentT>(5.0, 2.0, 1.0); },
     0.05, 0.25},
    {"mixture", make_mixture, 0.1, 0.05},
    {"empirical", make_empirical, 0.05, 0.05},
    {"kde", make_kde, 0.1, 0.1},
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, PdfIsNonNegative) {
  const auto dist = GetParam().make();
  const Support sup = dist->effective_support(1e-10);
  for (int k = 0; k <= 200; ++k) {
    const double x = sup.lo + (sup.hi - sup.lo) * k / 200.0;
    EXPECT_GE(dist->pdf(x), 0.0) << "x=" << x;
  }
}

TEST_P(DistributionProperty, PdfIntegratesToOne) {
  const auto dist = GetParam().make();
  const Support sup = dist->effective_support(1e-10);
  const std::size_t n = 20001;
  const double dx = (sup.hi - sup.lo) / static_cast<double>(n - 1);
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) {
    y[k] = dist->pdf(sup.lo + static_cast<double>(k) * dx);
  }
  EXPECT_NEAR(math::trapezoid(y, dx), 1.0, 2e-3);
}

TEST_P(DistributionProperty, CdfIsMonotoneAndSpansUnit) {
  const auto dist = GetParam().make();
  const Support sup = dist->effective_support(1e-10);
  double prev = -1.0;
  for (int k = 0; k <= 300; ++k) {
    const double x = sup.lo + (sup.hi - sup.lo) * k / 300.0;
    const double c = dist->cdf(x);
    EXPECT_GE(c, prev - 1e-12) << "x=" << x;
    EXPECT_GE(c, -1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_LT(dist->cdf(sup.lo), 0.01);
  EXPECT_GT(dist->cdf(sup.hi), 0.99);
}

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  const auto dist = GetParam().make();
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(dist->cdf(x), p, 5e-3) << "p=" << p;
  }
}

TEST_P(DistributionProperty, MeanMatchesNumericIntegral) {
  const auto dist = GetParam().make();
  const Support sup = dist->effective_support(1e-10);
  const std::size_t n = 20001;
  const double dx = (sup.hi - sup.lo) / static_cast<double>(n - 1);
  std::vector<double> xw(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double x = sup.lo + static_cast<double>(k) * dx;
    xw[k] = x * dist->pdf(x);
  }
  const double scale = std::max(1.0, dist->stddev());
  EXPECT_NEAR(math::trapezoid(xw, dx), dist->mean(), 0.01 * scale);
}

TEST_P(DistributionProperty, SampleMomentsMatch) {
  const auto dist = GetParam().make();
  Rng rng(4242);
  const int n = 60000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double scale = std::max(dist->stddev(), 1e-9);
  EXPECT_NEAR(mean, dist->mean(), GetParam().mean_tol * scale * 3.0);
  EXPECT_NEAR(var, dist->variance(),
              GetParam().var_rel_tol * dist->variance() * 3.0);
}

TEST_P(DistributionProperty, CloneIsEquivalent) {
  const auto dist = GetParam().make();
  const auto copy = dist->clone();
  for (double p : {0.05, 0.3, 0.5, 0.8, 0.95}) {
    EXPECT_DOUBLE_EQ(dist->quantile(p), copy->quantile(p));
  }
  EXPECT_DOUBLE_EQ(dist->mean(), copy->mean());
  EXPECT_DOUBLE_EQ(dist->variance(), copy->variance());
  EXPECT_EQ(dist->describe(), copy->describe());
}

TEST_P(DistributionProperty, EffectiveSupportCarriesTheMass) {
  const auto dist = GetParam().make();
  const Support sup = dist->effective_support(1e-6);
  EXPECT_TRUE(sup.is_bounded());
  EXPECT_GE(dist->cdf(sup.hi) - dist->cdf(sup.lo), 1.0 - 1e-5);
}

TEST_P(DistributionProperty, GridDensityTracksCdf) {
  const auto dist = GetParam().make();
  const GridDensity grid = GridDensity::from_distribution(*dist, 4096, 1e-9);
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(grid.cdf(x), p, 0.02) << GetParam().name << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionProperty,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace tommy::stats
