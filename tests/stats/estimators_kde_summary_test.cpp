#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "stats/analytic.hpp"
#include "stats/estimators.hpp"
#include "stats/gaussian.hpp"
#include "stats/kde.hpp"
#include "stats/summary.hpp"

namespace tommy::stats {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = d.sample(rng);
  return out;
}

// ------------------------------------------------------------ Estimators

TEST(FitGaussian, RecoversParameters) {
  const Gaussian truth(3.0, 2.0);
  const auto samples = draw(truth, 50000, 1);
  const Gaussian fit = fit_gaussian(samples);
  EXPECT_NEAR(fit.mu(), 3.0, 0.05);
  EXPECT_NEAR(fit.sigma(), 2.0, 0.05);
}

TEST(FitGaussianRobust, IgnoresWildOutliers) {
  const Gaussian truth(0.0, 1.0);
  auto samples = draw(truth, 5000, 2);
  // 1% of probes go wild (the §5 "abrupt temperature change" scenario).
  for (int k = 0; k < 50; ++k) samples.push_back(1000.0);

  const Gaussian naive = fit_gaussian(samples);
  const Gaussian robust = fit_gaussian_robust(samples);
  EXPECT_GT(naive.sigma(), 10.0);            // poisoned
  EXPECT_NEAR(robust.sigma(), 1.0, 0.1);     // unaffected
  EXPECT_NEAR(robust.mu(), 0.0, 0.1);
}

TEST(FitHistogram, MatchesSampleMass) {
  const Uniform truth(-1.0, 1.0);
  const auto samples = draw(truth, 20000, 3);
  const Empirical fit = fit_histogram(samples, 32);
  EXPECT_NEAR(fit.cdf(0.0), 0.5, 0.02);
  EXPECT_NEAR(fit.mean(), 0.0, 0.02);
}

TEST(FitHistogramAuto, BinCountRespectsBounds) {
  const Gaussian truth(0.0, 1.0);
  const auto samples = draw(truth, 1000, 4);
  const Empirical fit = fit_histogram_auto(samples, 8, 64);
  EXPECT_GE(fit.bin_masses().size(), 8u);
  EXPECT_LE(fit.bin_masses().size(), 64u);
}

TEST(DensityL1Error, ZeroForIdenticalAndLargeForDisjoint) {
  const Gaussian a(0.0, 1.0);
  const Gaussian b(0.0, 1.0);
  EXPECT_NEAR(density_l1_error(a, b), 0.0, 1e-9);

  const Gaussian far(100.0, 1.0);
  EXPECT_NEAR(density_l1_error(a, far), 2.0, 0.01);
}

TEST(DensityL1Error, ShrinksWithMoreSamples) {
  const Gaussian truth(1.0, 2.0);
  const Empirical small = fit_histogram(draw(truth, 200, 5), 16);
  const Empirical big = fit_histogram(draw(truth, 50000, 6), 64);
  EXPECT_LT(density_l1_error(big, truth), density_l1_error(small, truth));
}

// ------------------------------------------------------------------- KDE

TEST(KernelDensity, SmoothsToTruth) {
  const Gaussian truth(0.0, 1.0);
  const KernelDensity kde(draw(truth, 4000, 7));
  EXPECT_NEAR(kde.mean(), 0.0, 0.06);
  EXPECT_NEAR(kde.cdf(0.0), 0.5, 0.03);
  EXPECT_LT(density_l1_error(kde, truth), 0.12);
}

TEST(KernelDensity, ExplicitBandwidthIsUsed) {
  const std::vector<double> samples{0.0, 1.0, 2.0, 3.0};
  const KernelDensity kde(samples, 0.5);
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.5);
  EXPECT_EQ(kde.sample_count(), 4u);
}

TEST(KernelDensityDeathTest, RejectsDegenerateSamples) {
  EXPECT_DEATH(KernelDensity(std::vector<double>{1.0}), "precondition");
  EXPECT_DEATH(KernelDensity(std::vector<double>{2.0, 2.0}), "precondition");
}

// --------------------------------------------------------------- Summary

TEST(DistributionSummary, GaussianRoundTrip) {
  const DistributionSummary s(GaussianParams{2.5, 0.75});
  const auto bytes = s.serialize();
  EXPECT_EQ(bytes.size(), s.wire_size());
  const auto parsed = DistributionSummary::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
  const auto dist = parsed->materialize();
  EXPECT_TRUE(dist->is_gaussian());
  EXPECT_DOUBLE_EQ(dist->mean(), 2.5);
  EXPECT_DOUBLE_EQ(dist->stddev(), 0.75);
}

TEST(DistributionSummary, HistogramRoundTrip) {
  const DistributionSummary s(
      HistogramParams{-1.0, 1.0, {0.25, 0.5, 0.25}});
  const auto bytes = s.serialize();
  EXPECT_EQ(bytes.size(), s.wire_size());
  const auto parsed = DistributionSummary::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);
  EXPECT_FALSE(parsed->materialize()->is_gaussian());
}

TEST(DistributionSummary, DescribeGaussianIsExact) {
  const Gaussian g(1.0, 2.0);
  const DistributionSummary s = DistributionSummary::describe(g);
  ASSERT_TRUE(s.is_gaussian());
  EXPECT_DOUBLE_EQ(s.gaussian()->mu, 1.0);
  EXPECT_DOUBLE_EQ(s.gaussian()->sigma, 2.0);
}

TEST(DistributionSummary, DescribeNonGaussianPreservesShape) {
  const Uniform u(0.0, 10.0);
  const DistributionSummary s = DistributionSummary::describe(u, 64);
  ASSERT_FALSE(s.is_gaussian());
  const auto dist = s.materialize();
  EXPECT_NEAR(dist->mean(), 5.0, 0.1);
  EXPECT_NEAR(dist->cdf(5.0), 0.5, 0.02);
}

TEST(DistributionSummary, DeserializeRejectsMalformed) {
  EXPECT_FALSE(DistributionSummary::deserialize({}).has_value());
  EXPECT_FALSE(DistributionSummary::deserialize({99}).has_value());
  // Truncated Gaussian payload.
  auto bytes = DistributionSummary(GaussianParams{0.0, 1.0}).serialize();
  bytes.pop_back();
  EXPECT_FALSE(DistributionSummary::deserialize(bytes).has_value());
  // Trailing garbage.
  bytes = DistributionSummary(GaussianParams{0.0, 1.0}).serialize();
  bytes.push_back(0);
  EXPECT_FALSE(DistributionSummary::deserialize(bytes).has_value());
}

TEST(DistributionSummary, DeserializeRejectsInvalidParameters) {
  // sigma <= 0 on the wire.
  auto bytes = DistributionSummary(GaussianParams{0.0, 1.0}).serialize();
  // Overwrite sigma (bytes 9..16) with -1.0.
  const double bad = -1.0;
  std::uint64_t bits;
  std::memcpy(&bits, &bad, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    bytes[9 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (8 * i));
  }
  EXPECT_FALSE(DistributionSummary::deserialize(bytes).has_value());
}

}  // namespace
}  // namespace tommy::stats
