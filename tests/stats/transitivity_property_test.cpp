// Appendix A property test: for Gaussian clock offsets the
// likely-happened-before relation (p > 1/2) is transitive — and, by the
// same argument, determined entirely by corrected means. Also verifies the
// paper's converse worry: non-Gaussian (dice-like mixture) offsets can
// produce genuine preference cycles.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/client_registry.hpp"
#include "core/preceding.hpp"
#include "graph/tournament.hpp"
#include "stats/gaussian.hpp"
#include "stats/mixture.hpp"
#include "stats/analytic.hpp"

namespace tommy {
namespace {

using core::ClientRegistry;
using core::Message;
using core::PrecedingConfig;
using core::PrecedingEngine;

/// Builds a random Gaussian scenario and returns its kept-edge tournament.
graph::Tournament random_gaussian_tournament(std::size_t n, Rng& rng) {
  ClientRegistry registry;
  std::vector<Message> messages(n);
  for (std::size_t k = 0; k < n; ++k) {
    const ClientId client{static_cast<std::uint32_t>(k)};
    registry.announce(client, std::make_unique<stats::Gaussian>(
                                  rng.uniform(-50.0, 50.0),
                                  rng.uniform(0.1, 30.0)));
    messages[k] = Message{MessageId{k}, client,
                          TimePoint(rng.uniform(-100.0, 100.0))};
  }
  PrecedingEngine engine(registry);
  return graph::Tournament::from_pairwise(
      n, [&](std::size_t i, std::size_t j) {
        return engine.preceding_probability(messages[i], messages[j]);
      });
}

class GaussianTransitivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaussianTransitivity, RandomGaussianTournamentsAreTransitive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto n =
        static_cast<std::size_t>(rng.uniform_int(3, 12));
    const graph::Tournament t = random_gaussian_tournament(n, rng);
    EXPECT_TRUE(t.is_transitive()) << "seed=" << GetParam() << " n=" << n;
    EXPECT_TRUE(t.find_triangle().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussianTransitivity,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(GaussianTransitivity, PreferenceFollowsCorrectedMeans) {
  // Appendix A's eq. (2): P(A > B) > 1/2 iff μ_A > μ_B. In message terms:
  // i precedes j with p > 1/2 iff T_i + μ_i < T_j + μ_j.
  ClientRegistry registry;
  registry.announce(ClientId{0}, std::make_unique<stats::Gaussian>(5.0, 2.0));
  registry.announce(ClientId{1}, std::make_unique<stats::Gaussian>(-3.0, 9.0));
  PrecedingEngine engine(registry);

  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Message a{MessageId{0}, ClientId{0}, TimePoint(rng.uniform(-10, 10))};
    const Message b{MessageId{1}, ClientId{1}, TimePoint(rng.uniform(-10, 10))};
    const double corrected_a = a.stamp.seconds() + 5.0;
    const double corrected_b = b.stamp.seconds() - 3.0;
    const double p = engine.preceding_probability(a, b);
    if (corrected_a < corrected_b) {
      EXPECT_GT(p, 0.5);
    } else if (corrected_a > corrected_b) {
      EXPECT_LT(p, 0.5);
    }
  }
}

stats::DistributionPtr near_uniform(double lo, double hi) {
  // Smooth stand-in for a die face range [lo, hi].
  return std::make_unique<stats::Uniform>(lo, hi);
}

TEST(Intransitivity, DiceLikeMixturesCreateCycles) {
  // Non-transitive dice (Efron-style): A beats B beats C beats A, realized
  // as clock-offset mixtures with equal stamps. Face values become narrow
  // uniform offset modes.
  //   A = {2, 2, 4, 4, 9, 9},  B = {1, 1, 6, 6, 8, 8},  C = {3, 3, 5, 5, 7, 7}
  const auto die = [](std::initializer_list<double> faces) {
    std::vector<stats::Mixture::Component> parts;
    for (double f : faces) {
      parts.push_back({1.0, near_uniform(f - 0.05, f + 0.05)});
    }
    return std::make_unique<stats::Mixture>(std::move(parts));
  };

  ClientRegistry registry;
  registry.announce(ClientId{0}, die({2, 4, 9}));
  registry.announce(ClientId{1}, die({1, 6, 8}));
  registry.announce(ClientId{2}, die({3, 5, 7}));

  PrecedingConfig config;
  config.grid_points = 512;
  PrecedingEngine engine(registry, config);

  // Equal stamps: ordering is decided purely by the offset distributions.
  const Message a{MessageId{0}, ClientId{0}, TimePoint(0.0)};
  const Message b{MessageId{1}, ClientId{1}, TimePoint(0.0)};
  const Message c{MessageId{2}, ClientId{2}, TimePoint(0.0)};

  // "i precedes j" ⇔ θ_j − θ_i > 0 likely ⇔ die j rolls higher than die i.
  // With these dice A beats B beats C beats A with 5/9 each, so the
  // *preceding* direction cycles the other way: P(a⇢b) = P(B > A) = 4/9.
  const double p_ab = engine.preceding_probability(a, b);
  const double p_bc = engine.preceding_probability(b, c);
  const double p_ca = engine.preceding_probability(c, a);
  EXPECT_NEAR(p_ab, 4.0 / 9.0, 0.02);
  EXPECT_NEAR(p_bc, 4.0 / 9.0, 0.02);
  EXPECT_NEAR(p_ca, 4.0 / 9.0, 0.02);

  graph::Tournament t(3);
  t.set_probability(0, 1, p_ab);
  t.set_probability(1, 2, p_bc);
  t.set_probability(2, 0, p_ca);
  EXPECT_FALSE(t.is_transitive());
  EXPECT_EQ(t.find_triangle().size(), 3u);
}

}  // namespace
}  // namespace tommy
