// Threaded FairOrderingService: the worker-thread execution engine must
// be an invisible optimization. The randomized equivalence test drives a
// sequential and a threaded 4-shard service with byte-identical inputs
// and the same poll schedule and requires bit-identical per-shard
// emission sequences (poll is a synchronous command, so the threaded
// service is deterministic under a single producer). The stress test is
// the TSan target: many sessions on many producer threads hammering a
// threaded service with random concurrent flushes, checked for
// conservation and dense ranks rather than determinism. Global-merge
// drain is pinned against the shard-local stream (same records, total
// (safe_time, shard, rank) order) in both execution modes.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/offline_runner.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

struct Tagged {
  EmissionRecord record;
  std::uint32_t shard;
};

struct Stream {
  sim::Population population;
  std::vector<Message> messages;  // arrival order
  ClientRegistry registry;
};

Stream make_stream(std::uint64_t seed, std::size_t clients,
                   std::size_t count) {
  Rng rng(seed);
  Stream s{sim::gaussian_population(clients, 60e-6, rng), {}, {}};
  const auto events = sim::poisson_workload(s.population.ids(), count,
                                            15_us, rng);
  auto observed = sim::materialize_messages(s.population, events,
                                            sim::MaterializeConfig{}, rng);
  for (const auto& om : observed) s.messages.push_back(om.message);
  std::stable_sort(s.messages.begin(), s.messages.end(),
                   [](const Message& a, const Message& b) {
                     return a.arrival < b.arrival;
                   });
  s.population.seed_registry(s.registry);
  return s;
}

/// Drives `service` over the stream on a deterministic schedule; returns
/// the collected (record, shard) sequence in sink delivery order.
std::vector<Tagged> drive(FairOrderingService& service, const Stream& s,
                          bool use_submit_batch = false) {
  std::unordered_map<ClientId, FairOrderingService::Session> sessions;
  for (ClientId c : s.population.ids()) {
    sessions.emplace(c, service.open_session(c));
  }
  std::vector<Tagged> out;
  auto sink = [&out](EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(Tagged{std::move(record), shard});
  };
  // Per-client pending submissions for the batched variant.
  std::unordered_map<ClientId, std::vector<Submission>> pending;
  auto flush_pending = [&] {
    for (ClientId c : s.population.ids()) {
      auto& items = pending[c];
      if (items.empty()) continue;
      sessions.at(c).submit_batch(
          std::span<const Submission>(items));
      items.clear();
    }
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    if (use_submit_batch) {
      pending[m.client].push_back(Submission{m.stamp, m.id, now});
    } else {
      sessions.at(m.client).submit(m.stamp, m.id, now);
    }
    ++k;
    if (k % 13 == 0) {
      flush_pending();
      for (ClientId c : s.population.ids()) {
        sessions.at(c).heartbeat(now, now);
      }
    }
    if (k % 7 == 0) {
      flush_pending();
      service.poll(now, sink);
    }
  }
  flush_pending();
  for (ClientId c : s.population.ids()) {
    sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
  }
  service.poll(now + 1_s, sink);
  service.flush(now + 2_s, sink);
  return out;
}

void expect_identical_per_shard(const std::vector<Tagged>& actual,
                                const std::vector<Tagged>& expected,
                                std::uint32_t shard_count, const char* label,
                                bool sort_by_rank = false) {
  SCOPED_TRACE(label);
  auto split = [shard_count, sort_by_rank](const std::vector<Tagged>& all) {
    std::vector<std::vector<const Tagged*>> by_shard(shard_count);
    for (const Tagged& t : all) by_shard[t.shard].push_back(&t);
    if (sort_by_rank) {
      // The global merge releases a shard's records in safe-time order,
      // which can permute rank order within the shard (the documented
      // rank-blocked caveat); compare the per-shard streams rank-aligned.
      for (auto& records : by_shard) {
        std::sort(records.begin(), records.end(),
                  [](const Tagged* lhs, const Tagged* rhs) {
                    return lhs->record.batch.rank < rhs->record.batch.rank;
                  });
      }
    }
    return by_shard;
  };
  const auto a = split(actual);
  const auto b = split(expected);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ASSERT_EQ(a[s].size(), b[s].size());
    for (std::size_t r = 0; r < a[s].size(); ++r) {
      SCOPED_TRACE("record " + std::to_string(r));
      const EmissionRecord& x = a[s][r]->record;
      const EmissionRecord& y = b[s][r]->record;
      EXPECT_EQ(x.batch.rank, y.batch.rank);
      EXPECT_EQ(x.emitted_at.seconds(), y.emitted_at.seconds());
      EXPECT_EQ(x.safe_time.seconds(), y.safe_time.seconds());
      ASSERT_EQ(x.batch.messages.size(), y.batch.messages.size());
      for (std::size_t m = 0; m < x.batch.messages.size(); ++m) {
        EXPECT_EQ(x.batch.messages[m], y.batch.messages[m]);
      }
    }
  }
}

TEST(ServiceThreadedTest, FourShardThreadedMatchesSequentialBitForBit) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const Stream s = make_stream(seed, 12, 700);

    ServiceConfig sequential;
    sequential.with_p_safe(0.995).with_shards(4);
    FairOrderingService seq_service(s.registry, s.population.ids(),
                                    sequential);
    const auto seq_out = drive(seq_service, s);
    EXPECT_FALSE(seq_out.empty());

    ServiceConfig threaded = sequential;
    threaded.with_worker_threads();
    FairOrderingService thr_service(s.registry, s.population.ids(),
                                    threaded);
    const auto thr_out = drive(thr_service, s);

    expect_identical_per_shard(thr_out, seq_out, 4,
                               ("seed " + std::to_string(seed)).c_str());
    EXPECT_EQ(thr_service.pending_count(), 0u);
    EXPECT_EQ(thr_service.fairness_violations(),
              seq_service.fairness_violations());
  }
}

TEST(ServiceThreadedTest, SubmitBatchMatchesPerMessageSubmit) {
  // Batched ingest is pure amortization: the same stream chunked through
  // submit_batch must produce the same emissions — sequential AND
  // threaded (where the batch rides the same ring).
  const Stream s = make_stream(77u, 8, 500);
  for (const bool threaded : {false, true}) {
    SCOPED_TRACE(threaded ? "threaded" : "sequential");
    ServiceConfig config;
    config.with_p_safe(0.995).with_shards(2).with_worker_threads(threaded);

    FairOrderingService singles(s.registry, s.population.ids(), config);
    const auto single_out = drive(singles, s, /*use_submit_batch=*/false);
    EXPECT_FALSE(single_out.empty());

    FairOrderingService batched(s.registry, s.population.ids(), config);
    const auto batch_out = drive(batched, s, /*use_submit_batch=*/true);
    expect_identical_per_shard(batch_out, single_out, 2, "batched-vs-single");
  }
}

TEST(ServiceThreadedTest, BareSequencerSubmitBatchMatchesSubmit) {
  // The session-level contract, without the service in the way.
  const Stream s = make_stream(31u, 6, 300);
  OnlineConfig config;
  config.p_safe = 0.995;

  auto run = [&](bool batched) {
    OnlineSequencer seq(s.registry, s.population.ids(), config);
    std::unordered_map<ClientId, OnlineSequencer::Session> sessions;
    for (ClientId c : s.population.ids()) {
      sessions.emplace(c, seq.open_session(c));
    }
    std::vector<EmissionRecord> out;
    std::unordered_map<ClientId, std::vector<Submission>> pending;
    auto flush_pending = [&] {
      for (auto& [client, items] : pending) {
        if (items.empty()) continue;
        sessions.at(client).submit_batch_relaxed(
            std::span<const Submission>(items));
        items.clear();
      }
    };
    TimePoint now(0.0);
    std::size_t k = 0;
    for (const Message& m : s.messages) {
      now = std::max(now, m.arrival);
      if (batched) {
        pending[m.client].push_back(Submission{m.stamp, m.id, now});
      } else {
        sessions.at(m.client).submit(m.stamp, m.id, now);
      }
      if (++k % 7 == 0) {
        // Flush in deterministic client order before observable events
        // (relaxed: the per-client accumulation interleaves arrivals
        // across sessions by construction).
        if (batched) {
          for (ClientId c : s.population.ids()) {
            auto& items = pending[c];
            if (items.empty()) continue;
            sessions.at(c).submit_batch_relaxed(
                std::span<const Submission>(items));
            items.clear();
          }
        }
        for (ClientId c : s.population.ids()) {
          sessions.at(c).heartbeat(now, now);
        }
        for (auto& r : seq.poll(now)) out.push_back(std::move(r));
      }
    }
    flush_pending();
    for (ClientId c : s.population.ids()) {
      sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
    }
    for (auto& r : seq.poll(now + 1_s)) out.push_back(std::move(r));
    for (auto& r : seq.flush(now + 2_s)) out.push_back(std::move(r));
    return out;
  };

  const auto single = run(false);
  const auto batch = run(true);
  ASSERT_EQ(single.size(), batch.size());
  EXPECT_FALSE(single.empty());
  for (std::size_t r = 0; r < single.size(); ++r) {
    EXPECT_EQ(single[r].batch.rank, batch[r].batch.rank);
    ASSERT_EQ(single[r].batch.messages.size(), batch[r].batch.messages.size());
    for (std::size_t m = 0; m < single[r].batch.messages.size(); ++m) {
      EXPECT_EQ(single[r].batch.messages[m], batch[r].batch.messages[m]);
    }
  }
}

TEST(ServiceThreadedTest, GlobalMergeDeliversSameRecordsTotallyOrdered) {
  // kGlobalMerge must (a) deliver exactly the records kShardLocal
  // delivers (per shard, same order), (b) hand them over sorted by
  // (safe_time, shard, rank) within each poll's release, and (c) agree
  // between sequential and threaded execution.
  const Stream s = make_stream(55u, 12, 600);

  ServiceConfig local;
  local.with_p_safe(0.995).with_shards(3);
  FairOrderingService local_service(s.registry, s.population.ids(), local);
  const auto local_out = drive(local_service, s);

  std::vector<Tagged> merged_out[2];
  for (const bool threaded : {false, true}) {
    ServiceConfig merged = local;
    merged.with_drain_policy(DrainPolicy::kGlobalMerge)
        .with_worker_threads(threaded);
    FairOrderingService merged_service(s.registry, s.population.ids(),
                                       merged);
    merged_out[threaded ? 1 : 0] = drive(merged_service, s);
  }

  for (const bool threaded : {false, true}) {
    SCOPED_TRACE(threaded ? "threaded" : "sequential");
    const auto& out = merged_out[threaded ? 1 : 0];
    // (a) same per-shard records as shard-local (rank-aligned; release
    // order within a shard follows safe_time, not rank).
    expect_identical_per_shard(out, local_out, 3, "same-records",
                               /*sort_by_rank=*/true);
    // (b) the merged stream is totally ordered by (safe_time, shard,
    // rank) — the shard-local rank caveat (a rank-blocked batch with an
    // earlier T_b) cannot appear because release waits for
    // min(next_safe_time).
    for (std::size_t r = 1; r < out.size(); ++r) {
      const auto& prev = out[r - 1];
      const auto& cur = out[r];
      const bool ordered =
          prev.record.safe_time < cur.record.safe_time ||
          (prev.record.safe_time == cur.record.safe_time &&
           (prev.shard < cur.shard ||
            (prev.shard == cur.shard &&
             prev.record.batch.rank < cur.record.batch.rank)));
      EXPECT_TRUE(ordered) << "record " << r << " out of order";
    }
  }
  // (c) both execution modes produce the identical merged sequence.
  ASSERT_EQ(merged_out[0].size(), merged_out[1].size());
  for (std::size_t r = 0; r < merged_out[0].size(); ++r) {
    EXPECT_EQ(merged_out[0][r].shard, merged_out[1][r].shard);
    EXPECT_EQ(merged_out[0][r].record.batch.rank,
              merged_out[1][r].record.batch.rank);
  }
}

TEST(ServiceThreadedTest, LegacyEntryPointsDieUnderWorkerThreads) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1e-3));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1e-3));
  ServiceConfig config;
  config.with_p_safe(0.99).with_worker_threads();
  FairOrderingService service(registry, {ClientId(0), ClientId(1)}, config);
  EXPECT_DEATH(service.submit(Message{MessageId(1), ClientId(0),
                                      TimePoint(1.0), TimePoint(1.0)}),
               "precondition");
  EXPECT_DEATH(service.heartbeat(ClientId(0), TimePoint(1.0), TimePoint(1.0)),
               "precondition");
}

TEST(ServiceThreadedTest, ReferenceModeRefusesWorkerThreads) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1e-3));
  ServiceConfig config;
  config.with_p_safe(0.99).with_worker_threads();
  config.online.reference_mode = true;
  EXPECT_DEATH(FairOrderingService(registry, {ClientId(0)}, config),
               "precondition");
}

TEST(ServiceThreadedTest, ConcurrentProducersWithRandomFlushesStress) {
  // The TSan target: kProducers threads × kSessionsPerProducer sessions
  // hammer a threaded 4-shard service while the main thread issues
  // random polls and flushes. No determinism to assert — instead:
  // conservation (every submitted message emitted exactly once after the
  // final flush), dense per-shard ranks, and no data race (TSan) or
  // crash.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kSessionsPerProducer = 3;
  constexpr std::size_t kPerSession = 400;
  constexpr std::size_t kClients = kProducers * kSessionsPerProducer;

  ClientRegistry registry;
  std::vector<ClientId> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Gaussian>(0.0, 50e-6));
    clients.push_back(ClientId(c));
  }
  ServiceConfig config;
  config.with_p_safe(0.99).with_shards(4).with_worker_threads();
  config.online.client_silence_timeout = 10_ms;  // don't gate on quiet peers
  config.ingest_ring_capacity = 64;              // force backpressure
  FairOrderingService service(registry, clients, config);

  std::atomic<std::uint64_t> total_emitted{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::vector<Rank>> ranks_seen(4);
  auto sink = [&](EmissionRecord&& record, std::uint32_t shard) {
    total_emitted.fetch_add(record.batch.messages.size(),
                            std::memory_order_relaxed);
    ranks_seen[shard].push_back(record.batch.rank);
  };

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      std::vector<FairOrderingService::Session> sessions;
      for (std::size_t i = 0; i < kSessionsPerProducer; ++i) {
        sessions.push_back(service.open_session(
            ClientId(static_cast<std::uint32_t>(p * kSessionsPerProducer
                                                + i))));
      }
      TimePoint now(0.0);
      std::uint64_t id = p * 1000000;
      for (std::size_t k = 0; k < kPerSession * kSessionsPerProducer; ++k) {
        now += Duration::from_micros(rng.uniform(0.1, 5.0));
        auto& session = sessions[k % kSessionsPerProducer];
        if (k % 17 == 0) {
          session.heartbeat(now, now);
        } else {
          session.submit(now - Duration::from_micros(rng.uniform(0.0, 40.0)),
                         MessageId(id++), now);
        }
      }
      for (auto& session : sessions) session.heartbeat(now + 10_s, now);
    });
  }

  std::thread drainer([&] {
    Rng rng(42);
    while (!producers_done.load(std::memory_order_acquire)) {
      const double dice = rng.uniform(0.0, 1.0);
      const TimePoint at(rng.uniform(0.0, 10.0));
      if (dice < 0.55) {
        service.poll(at, sink);
      } else if (dice < 0.75) {
        service.flush(at, sink);
      } else if (dice < 0.85) {
        // State accessors race real producers here on purpose: they must
        // serve ack-time snapshots, never live shard state (TSan target).
        (void)service.pending_count();
      } else if (dice < 0.95) {
        (void)service.next_safe_time();
      } else {
        (void)service.fairness_violations();
      }
      std::this_thread::yield();
    }
  });

  for (auto& producer : producers) producer.join();
  producers_done.store(true, std::memory_order_release);
  drainer.join();
  service.flush(TimePoint(100.0), sink);

  // Conservation: heartbeats don't emit; every submit does, exactly once.
  std::size_t expected = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t k = 0; k < kPerSession * kSessionsPerProducer; ++k) {
      if (k % 17 != 0) ++expected;
    }
  }
  EXPECT_EQ(total_emitted.load(), expected);
  EXPECT_EQ(service.pending_count(), 0u);
  // Ranks are dense per shard even under concurrent flush/poll.
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::size_t r = 0; r < ranks_seen[s].size(); ++r) {
      ASSERT_EQ(ranks_seen[s][r], static_cast<Rank>(r))
          << "shard " << s << " rank gap";
    }
  }
}

TEST(ServiceThreadedTest, QuiesceMakesStateAccessorsExact) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1e-4));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1e-4));
  ServiceConfig config;
  config.with_p_safe(0.999).with_shards(2).with_worker_threads();
  FairOrderingService service(registry, {ClientId(0), ClientId(1)}, config);

  auto a = service.open_session(ClientId(0));
  auto b = service.open_session(ClientId(1));
  a.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  b.submit(TimePoint(1.1), MessageId(2), TimePoint(1.101));
  // pending_count quiesces internally: both submits must be visible.
  EXPECT_EQ(service.pending_count(), 2u);
  EXPECT_TRUE(service.next_safe_time().is_finite());

  std::size_t emitted = 0;
  service.flush(TimePoint(2.0), [&](EmissionRecord&& record, std::uint32_t) {
    emitted += record.batch.messages.size();
  });
  EXPECT_EQ(emitted, 2u);
  EXPECT_EQ(service.pending_count(), 0u);
  EXPECT_EQ(service.next_safe_time(), TimePoint::infinite_future());
}

}  // namespace
}  // namespace tommy::core
