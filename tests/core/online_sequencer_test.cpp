#include "core/online_sequencer.hpp"

#include <gtest/gtest.h>

#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

constexpr double kSigma = 1e-3;  // 1 ms clock noise

class OnlineSequencerTest : public ::testing::Test {
 protected:
  OnlineSequencerTest() {
    for (std::uint32_t c : {0u, 1u}) {
      registry_.announce(ClientId(c),
                         std::make_unique<stats::Gaussian>(0.0, kSigma));
    }
    config_.threshold = 0.75;
    config_.p_safe = 0.999;
  }

  OnlineSequencer make() {
    return OnlineSequencer(registry_, {ClientId(0), ClientId(1)}, config_);
  }

  static Message msg(std::uint64_t id, std::uint32_t client, double stamp,
                     double arrival) {
    return Message{MessageId(id), ClientId(client), TimePoint(stamp),
                   TimePoint(arrival)};
  }

  /// Heartbeats recent and far-stamped enough to satisfy completeness.
  void open_gates(OnlineSequencer& seq, double now) {
    seq.on_heartbeat(ClientId(0), TimePoint(now + 10.0), TimePoint(now));
    seq.on_heartbeat(ClientId(1), TimePoint(now + 10.0), TimePoint(now));
  }

  ClientRegistry registry_;
  OnlineConfig config_;
};

TEST_F(OnlineSequencerTest, EmptyPollsEmitNothing) {
  OnlineSequencer seq = make();
  EXPECT_TRUE(seq.poll(TimePoint(1.0)).empty());
  EXPECT_EQ(seq.next_safe_time(), TimePoint::infinite_future());
  EXPECT_EQ(seq.pending_count(), 0u);
}

TEST_F(OnlineSequencerTest, SafeEmissionWaitsForTb) {
  OnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0, 1.001));
  open_gates(seq, 1.002);

  const TimePoint t_b = seq.next_safe_time();
  EXPECT_NEAR(t_b.seconds(), 1.0 + kSigma * 3.0902, 1e-5);

  EXPECT_TRUE(seq.poll(t_b - 1_us).empty());
  const auto emitted = seq.poll(t_b + 1_us);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].batch.rank, 0u);
}

TEST_F(OnlineSequencerTest, RanksAreDenseAndOrdered) {
  OnlineSequencer seq = make();
  // Three well-separated messages (100 ms apart >> 1 ms noise).
  seq.on_message(msg(1, 0, 1.0, 1.001));
  seq.on_message(msg(2, 1, 1.1, 1.101));
  seq.on_message(msg(3, 0, 1.2, 1.201));
  open_gates(seq, 1.3);

  const auto emitted = seq.poll(TimePoint(2.0));
  ASSERT_EQ(emitted.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(emitted[k].batch.rank, k);
    ASSERT_EQ(emitted[k].batch.messages.size(), 1u);
  }
  EXPECT_EQ(emitted[0].batch.messages[0].id, MessageId(1));
  EXPECT_EQ(emitted[1].batch.messages[0].id, MessageId(2));
  EXPECT_EQ(emitted[2].batch.messages[0].id, MessageId(3));
  EXPECT_EQ(seq.next_rank(), 3u);
}

TEST_F(OnlineSequencerTest, CloseStampsShareABatch) {
  OnlineSequencer seq = make();
  // 0.1 ms apart with 1 ms noise: unorderable at threshold 0.75.
  seq.on_message(msg(1, 0, 1.0, 1.001));
  seq.on_message(msg(2, 1, 1.0001, 1.0011));
  open_gates(seq, 1.01);

  const auto emitted = seq.poll(TimePoint(2.0));
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].batch.messages.size(), 2u);
}

TEST_F(OnlineSequencerTest, CompletenessBlocksWithoutAnyHeartbeat) {
  OnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0, 1.001));
  // Client 1 has never been heard from; no timeout configured.
  EXPECT_TRUE(seq.poll(TimePoint(10.0)).empty());
  // Client 1 speaking is not enough: client 0's own high-water mark (its
  // message stamp) must also clear T_b — a later message from client 0
  // could still demand a lower rank.
  seq.on_heartbeat(ClientId(1), TimePoint(9.0), TimePoint(10.0));
  EXPECT_TRUE(seq.poll(TimePoint(10.0)).empty());
  // Once client 0's own clock has visibly moved past T_b, emission
  // unblocks.
  seq.on_heartbeat(ClientId(0), TimePoint(9.0), TimePoint(10.0));
  EXPECT_EQ(seq.poll(TimePoint(10.0)).size(), 1u);
}

TEST_F(OnlineSequencerTest, SilenceTimeoutRestoresLiveness) {
  config_.client_silence_timeout = 100_ms;
  OnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0, 1.001));
  // Client 1 stays silent. Before the timeout the sequencer is stuck...
  EXPECT_TRUE(seq.poll(TimePoint(1.05)).empty());
  EXPECT_EQ(seq.timed_out_clients(TimePoint(1.05)).size(), 1u);
  // ...after it, the gate drops client 1 (the §3.5 liveness trade-off).
  const auto emitted = seq.poll(TimePoint(1.2));
  ASSERT_EQ(emitted.size(), 1u);
}

TEST_F(OnlineSequencerTest, ViolationCountedForLateConfidentMessage) {
  OnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0, 1.001));
  open_gates(seq, 1.01);
  ASSERT_EQ(seq.poll(TimePoint(2.0)).size(), 1u);
  EXPECT_EQ(seq.fairness_violations(), 0u);

  // A message stamped 0.5 — confidently before the emitted batch.
  seq.on_message(msg(2, 1, 0.5, 2.1));
  EXPECT_EQ(seq.fairness_violations(), 1u);

  // A message stamped well after it is not a violation.
  seq.on_message(msg(3, 1, 5.0, 5.1));
  EXPECT_EQ(seq.fairness_violations(), 1u);
}

TEST_F(OnlineSequencerTest, HigherPSafeDelaysEmission) {
  config_.p_safe = 0.9;
  OnlineSequencer low = make();
  config_.p_safe = 0.9999;
  OnlineSequencer high = make();

  for (OnlineSequencer* seq : {&low, &high}) {
    seq->on_message(msg(1, 0, 1.0, 1.001));
  }
  EXPECT_LT(low.next_safe_time(), high.next_safe_time());
}

TEST_F(OnlineSequencerTest, EmittedBatchesNeverDecreaseInCorrectedStamp) {
  OnlineSequencer seq = make();
  // A mixed stream; all gaps large enough to order confidently.
  double stamp = 1.0;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    seq.on_message(msg(id, id % 2, stamp, stamp + 0.001));
    stamp += 0.05;
  }
  open_gates(seq, stamp);
  const auto emitted = seq.poll(TimePoint(stamp + 1.0));
  ASSERT_EQ(emitted.size(), 10u);
  for (std::size_t k = 1; k < emitted.size(); ++k) {
    EXPECT_LT(emitted[k - 1].batch.messages[0].stamp,
              emitted[k].batch.messages[0].stamp);
  }
}

TEST_F(OnlineSequencerTest, PollIsIdempotentBetweenArrivals) {
  OnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0, 1.001));
  open_gates(seq, 1.01);
  EXPECT_EQ(seq.poll(TimePoint(2.0)).size(), 1u);
  EXPECT_TRUE(seq.poll(TimePoint(2.1)).empty());
  EXPECT_TRUE(seq.poll(TimePoint(3.0)).empty());
}

TEST_F(OnlineSequencerTest, UnknownClientIsRejected) {
  OnlineSequencer seq = make();
  EXPECT_DEATH(seq.on_message(msg(1, 99, 1.0, 1.0)), "precondition");
}

TEST_F(OnlineSequencerTest, ConfigValidation) {
  EXPECT_DEATH(
      {
        config_.threshold = 0.4;
        (void)make();
      },
      "precondition");
}

}  // namespace
}  // namespace tommy::core
