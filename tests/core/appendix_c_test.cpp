// Appendix C worked example: online sequencing where one high-uncertainty
// message (client C2) forces two temporally-distinct messages from a
// well-synchronized client (C1's 1a, 1b) into the same batch, and the
// batch is only emitted after its safe-emission time T_b with completeness
// confirmed by heartbeats.
#include <gtest/gtest.h>

#include "core/online_sequencer.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

constexpr double kSigmaTight = 0.05;  // C1's clock
constexpr double kSigmaWide = 1.0;    // C2's clock (high uncertainty)

class AppendixC : public ::testing::Test {
 protected:
  AppendixC() {
    registry_.announce(ClientId(1),
                       std::make_unique<stats::Gaussian>(0.0, kSigmaTight));
    registry_.announce(ClientId(2),
                       std::make_unique<stats::Gaussian>(0.0, kSigmaWide));
    config_.threshold = 0.75;
    config_.p_safe = 0.999;
  }

  static Message msg_1a() {
    // True time 100.0, θ drew 0 -> stamp 100.0; arrives first.
    return Message{MessageId(10), ClientId(1), TimePoint(100.0),
                   TimePoint(100.10)};
  }
  static Message msg_2() {
    // True time 100.2 but θ drew −0.4 -> stamp 100.6 (the paper's t2).
    return Message{MessageId(20), ClientId(2), TimePoint(100.6),
                   TimePoint(100.70)};
  }
  static Message msg_1b() {
    // True time 100.3, stamp 100.3; arrives last.
    return Message{MessageId(11), ClientId(1), TimePoint(100.3),
                   TimePoint(100.80)};
  }

  ClientRegistry registry_;
  OnlineConfig config_;
};

TEST_F(AppendixC, AllThreeMessagesShareOneBatch) {
  OnlineSequencer seq(registry_, {ClientId(1), ClientId(2)}, config_);

  // Step 1-3 of the appendix: messages arrive in the order 1a, 2, 1b.
  seq.on_message(msg_1a());
  seq.on_message(msg_2());
  seq.on_message(msg_1b());
  EXPECT_EQ(seq.pending_count(), 3u);

  // The head batch must span all three: C2's uncertainty blocks every cut.
  // T_b is dominated by message 2: 100.6 + Q_{N(0,1)}(0.999) ≈ 103.69.
  const TimePoint t_b = seq.next_safe_time();
  EXPECT_NEAR(t_b.seconds(), 100.6 + 3.0902, 1e-3);

  // Step 4: before T_b nothing may be emitted even with completeness.
  seq.on_heartbeat(ClientId(1), TimePoint(108.0), TimePoint(101.0));
  seq.on_heartbeat(ClientId(2), TimePoint(108.0), TimePoint(101.0));
  EXPECT_TRUE(seq.poll(TimePoint(101.0)).empty());
  EXPECT_TRUE(seq.poll(TimePoint(103.5)).empty());

  // Past T_b with fresh-enough heartbeats: the batch emits, whole.
  const auto emissions = seq.poll(TimePoint(103.75));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].batch.rank, 0u);
  ASSERT_EQ(emissions[0].batch.messages.size(), 3u);
  EXPECT_EQ(seq.pending_count(), 0u);
  EXPECT_NEAR(emissions[0].safe_time.seconds(), t_b.seconds(), 1e-9);
}

TEST_F(AppendixC, WithoutC2TheC1MessagesSeparateCleanly) {
  // Control: drop the high-uncertainty message; 1a and 1b are confidently
  // ordered (gap 0.3 ≫ σ√2 ≈ 0.07) and land in two batches.
  OnlineSequencer seq(registry_, {ClientId(1), ClientId(2)}, config_);
  seq.on_message(msg_1a());
  seq.on_message(msg_1b());

  seq.on_heartbeat(ClientId(1), TimePoint(108.0), TimePoint(101.0));
  seq.on_heartbeat(ClientId(2), TimePoint(108.0), TimePoint(101.0));
  const auto emissions = seq.poll(TimePoint(105.0));
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_EQ(emissions[0].batch.messages.size(), 1u);
  EXPECT_EQ(emissions[0].batch.messages[0].id, MessageId(10));
  EXPECT_EQ(emissions[1].batch.messages.size(), 1u);
  EXPECT_EQ(emissions[1].batch.messages[0].id, MessageId(11));
}

TEST_F(AppendixC, CompletenessBlocksUntilBothClientsPassTb) {
  OnlineSequencer seq(registry_, {ClientId(1), ClientId(2)}, config_);
  seq.on_message(msg_1a());
  seq.on_message(msg_2());
  seq.on_message(msg_1b());

  // Heartbeats whose stamps do NOT clear T_b ≈ 103.69 for C2: its
  // completeness frontier is stamp − 3.09, so stamp 105 gives 101.9 < T_b.
  seq.on_heartbeat(ClientId(1), TimePoint(105.0), TimePoint(104.0));
  seq.on_heartbeat(ClientId(2), TimePoint(105.0), TimePoint(104.0));
  EXPECT_TRUE(seq.poll(TimePoint(104.0)).empty());

  // A later C2 heartbeat clears the gate (107 − 3.09 = 103.91 > T_b).
  seq.on_heartbeat(ClientId(2), TimePoint(107.0), TimePoint(104.5));
  const auto emissions = seq.poll(TimePoint(104.5));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].batch.messages.size(), 3u);
}

TEST_F(AppendixC, TbExtendsWhenAMergingMessageArrives) {
  OnlineSequencer seq(registry_, {ClientId(1), ClientId(2)}, config_);
  seq.on_message(msg_1a());
  const TimePoint tb_before = seq.next_safe_time();
  // 1a alone: T_b = 100.0 + 0.05·3.09 ≈ 100.15.
  EXPECT_NEAR(tb_before.seconds(), 100.0 + kSigmaTight * 3.0902, 1e-3);

  // Message 2 merges into the open batch and drags T_b out by seconds.
  seq.on_message(msg_2());
  const TimePoint tb_after = seq.next_safe_time();
  EXPECT_GT(tb_after, tb_before + Duration(3.0));
}

}  // namespace
}  // namespace tommy::core
