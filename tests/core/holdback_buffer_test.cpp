// HoldbackBuffer is the sequencer's O(log n) pending structure; these
// tests pin its ordered-sequence contract against a flat sorted-vector
// oracle across the operations OnlineSequencer composes: ordered inserts
// in adversarial arrival orders (ascending, descending, interleaved
// bursts), prefix pops straddling chunk boundaries, prefix iterators,
// bidirectional walks, and the extract/assign rebuild used at epoch
// refresh. Sizes deliberately cross many chunk splits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/holdback_buffer.hpp"

namespace tommy::core {
namespace {

struct Entry {
  double key{0.0};
  std::uint64_t id{0};
};

struct EntryLess {
  bool operator()(const Entry& lhs, const Entry& rhs) const {
    if (lhs.key != rhs.key) return lhs.key < rhs.key;
    return lhs.id < rhs.id;
  }
};

using Buffer = HoldbackBuffer<Entry, EntryLess>;

std::vector<Entry> contents(const Buffer& buffer) {
  std::vector<Entry> out;
  for (const Entry& e : buffer) out.push_back(e);
  return out;
}

void expect_matches(const Buffer& buffer, std::vector<Entry> oracle,
                    const char* label) {
  SCOPED_TRACE(label);
  std::sort(oracle.begin(), oracle.end(), EntryLess{});
  const std::vector<Entry> got = contents(buffer);
  ASSERT_EQ(got.size(), oracle.size());
  ASSERT_EQ(buffer.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, oracle[i].key) << "index " << i;
    EXPECT_EQ(got[i].id, oracle[i].id) << "index " << i;
  }
}

TEST(HoldbackBuffer, InsertOrdersAcrossManyChunksAllArrivalOrders) {
  constexpr std::size_t kCount = 4 * Buffer::kChunkCapacity + 37;
  enum class Order { kAscending, kDescending, kShuffled, kInterleaved };
  for (const Order order : {Order::kAscending, Order::kDescending,
                            Order::kShuffled, Order::kInterleaved}) {
    std::vector<Entry> items;
    items.reserve(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      items.push_back(Entry{static_cast<double>(i % 97), i});
    }
    switch (order) {
      case Order::kAscending:
        std::sort(items.begin(), items.end(), EntryLess{});
        break;
      case Order::kDescending:
        std::sort(items.begin(), items.end(), EntryLess{});
        std::reverse(items.begin(), items.end());
        break;
      case Order::kShuffled: {
        std::mt19937_64 rng(7);
        std::shuffle(items.begin(), items.end(), rng);
        break;
      }
      case Order::kInterleaved:
        // Alternate bursts from the low and high end of the key space —
        // the merge-of-streams arrival pattern.
        std::sort(items.begin(), items.end(), EntryLess{});
        {
          std::vector<Entry> woven;
          woven.reserve(items.size());
          std::size_t lo = 0;
          std::size_t hi = items.size();
          while (lo < hi) {
            for (std::size_t k = 0; k < 8 && lo < hi; ++k) {
              woven.push_back(items[lo++]);
            }
            for (std::size_t k = 0; k < 8 && lo < hi; ++k) {
              woven.push_back(items[--hi]);
            }
          }
          items = std::move(woven);
        }
        break;
    }
    Buffer buffer;
    for (const Entry& e : items) buffer.insert(e);
    expect_matches(buffer, items, "arrival order variant");
  }
}

TEST(HoldbackBuffer, PopFrontStraddlesChunkBoundaries) {
  Buffer buffer;
  std::vector<Entry> oracle;
  constexpr std::size_t kCount = 3 * Buffer::kChunkCapacity + 11;
  for (std::size_t i = 0; i < kCount; ++i) {
    const Entry e{static_cast<double>((i * 31) % 101), i};
    buffer.insert(e);
    oracle.push_back(e);
  }
  std::sort(oracle.begin(), oracle.end(), EntryLess{});
  // Pop in strides chosen to land mid-chunk, at chunk edges, and across
  // several whole chunks at once.
  const std::size_t strides[] = {1, Buffer::kChunkCapacity / 2 - 1,
                                 Buffer::kChunkCapacity,
                                 2 * Buffer::kChunkCapacity + 3};
  std::size_t si = 0;
  while (!buffer.empty()) {
    const std::size_t k = std::min(strides[si++ % 4], buffer.size());
    EXPECT_EQ(buffer.front().id, oracle.front().id);
    buffer.pop_front(k);
    oracle.erase(oracle.begin(), oracle.begin() + static_cast<long>(k));
    ASSERT_EQ(buffer.size(), oracle.size());
    if (!oracle.empty()) {
      EXPECT_EQ(buffer.front().key, oracle.front().key);
      EXPECT_EQ(buffer.front().id, oracle.front().id);
    }
  }
  EXPECT_TRUE(buffer.empty());
  // A drained buffer accepts fresh inserts.
  buffer.insert(Entry{1.0, 1});
  buffer.insert(Entry{0.5, 2});
  EXPECT_EQ(buffer.front().id, 2u);
}

TEST(HoldbackBuffer, IteratorAtAndBidirectionalWalk) {
  Buffer buffer;
  constexpr std::size_t kCount = 2 * Buffer::kChunkCapacity + 53;
  for (std::size_t i = 0; i < kCount; ++i) {
    buffer.insert(Entry{static_cast<double>(i), i});
  }
  // iterator_at agrees with advancing begin() at every prefix index.
  for (const std::size_t idx :
       {std::size_t{0}, std::size_t{1}, Buffer::kChunkCapacity / 2 - 1,
        Buffer::kChunkCapacity / 2, Buffer::kChunkCapacity, kCount - 1,
        kCount}) {
    auto walked = buffer.begin();
    for (std::size_t i = 0; i < idx; ++i) ++walked;
    EXPECT_TRUE(buffer.iterator_at(idx) == walked) << "index " << idx;
  }
  // A full backward walk from end() visits everything in reverse.
  auto it = buffer.end();
  std::size_t expect = kCount;
  while (it != buffer.begin()) {
    --it;
    --expect;
    EXPECT_EQ(it->id, expect);
  }
  EXPECT_EQ(expect, 0u);
}

TEST(HoldbackBuffer, ExtractAssignRebuildRoundTrip) {
  Buffer buffer;
  constexpr std::size_t kCount = 3 * Buffer::kChunkCapacity + 7;
  std::mt19937_64 rng(11);
  std::vector<Entry> oracle;
  for (std::size_t i = 0; i < kCount; ++i) {
    const Entry e{static_cast<double>(rng() % 1000), i};
    buffer.insert(e);
    oracle.push_back(e);
  }
  // Epoch refresh: extract in order, re-key, sort, rebuild.
  std::vector<Entry> extracted = buffer.extract_all();
  EXPECT_TRUE(buffer.empty());
  ASSERT_EQ(extracted.size(), kCount);
  EXPECT_TRUE(std::is_sorted(extracted.begin(), extracted.end(), EntryLess{}));
  for (Entry& e : extracted) e.key = -e.key;  // drastic re-key: reverses
  std::sort(extracted.begin(), extracted.end(), EntryLess{});
  buffer.assign_sorted(std::move(extracted));
  for (Entry& e : oracle) e.key = -e.key;
  expect_matches(buffer, oracle, "after rebuild");
  // The rebuilt buffer keeps absorbing ordered inserts correctly.
  buffer.insert(Entry{-1e9, 999999});
  EXPECT_EQ(buffer.front().id, 999999u);
  EXPECT_EQ(buffer.size(), kCount + 1);
}

TEST(HoldbackBuffer, RandomizedMixedOpsMatchOracle) {
  // Interleaved insert / pop_front / iterate, the composition the
  // sequencer actually performs, against the flat oracle.
  std::mt19937_64 rng(23);
  Buffer buffer;
  std::vector<Entry> oracle;
  std::uint64_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto op = rng() % 10;
    if (op < 7 || oracle.empty()) {
      const Entry e{static_cast<double>(rng() % 500), next_id++};
      buffer.insert(e);
      oracle.insert(
          std::upper_bound(oracle.begin(), oracle.end(), e, EntryLess{}), e);
    } else {
      const std::size_t k = 1 + rng() % oracle.size();
      buffer.pop_front(k);
      oracle.erase(oracle.begin(), oracle.begin() + static_cast<long>(k));
    }
    ASSERT_EQ(buffer.size(), oracle.size());
    if (round % 97 == 0) {
      const std::vector<Entry> got = contents(buffer);
      ASSERT_EQ(got.size(), oracle.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].id, oracle[i].id) << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace tommy::core
