#include "core/wfo_online.hpp"

#include <gtest/gtest.h>

namespace tommy::core {
namespace {

Message msg(std::uint64_t id, std::uint32_t client, double stamp) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp)};
}

class WfoOnlineTest : public ::testing::Test {
 protected:
  WfoOnlineSequencer make(std::size_t clients = 2) {
    std::vector<ClientId> ids;
    for (std::uint32_t c = 0; c < clients; ++c) ids.emplace_back(c);
    return WfoOnlineSequencer(ids);
  }
};

TEST_F(WfoOnlineTest, WaitsForEveryClientBeforeReleasing) {
  WfoOnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0));
  // Client 1 unheard: nothing can be released yet.
  EXPECT_TRUE(seq.poll().empty());
  EXPECT_EQ(seq.pending_count(), 1u);

  seq.on_message(msg(2, 1, 2.0));
  // Now every client has a message: the smaller stamp (1.0) releases;
  // message 2 must wait until client 0 proves it has passed 2.0.
  const auto released = seq.poll();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].messages[0].id, MessageId(1));
  EXPECT_EQ(seq.pending_count(), 1u);
}

TEST_F(WfoOnlineTest, HeartbeatUnblocksIdleClient) {
  WfoOnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0));
  EXPECT_TRUE(seq.poll().empty());
  // Client 1 is idle but alive: its heartbeat stamped past 1.0 proves no
  // earlier message can come (in-order channel).
  seq.on_heartbeat(ClientId(1), TimePoint(1.5));
  const auto released = seq.poll();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].messages[0].id, MessageId(1));
}

TEST_F(WfoOnlineTest, HeartbeatAtExactStampDoesNotUnblock) {
  WfoOnlineSequencer seq = make();
  seq.on_message(msg(1, 0, 1.0));
  seq.on_heartbeat(ClientId(1), TimePoint(1.0));  // not strictly greater
  EXPECT_TRUE(seq.poll().empty());
}

TEST_F(WfoOnlineTest, ReleasesInGlobalStampOrder) {
  WfoOnlineSequencer seq = make(3);
  seq.on_message(msg(1, 0, 3.0));
  seq.on_message(msg(2, 1, 1.0));
  seq.on_message(msg(3, 2, 2.0));
  seq.on_message(msg(4, 1, 4.0));

  // msg 2 (1.0) and msg 3 (2.0) release (everyone has a queued message
  // when they are the minimum); msg 1 (3.0) is then blocked because
  // client 2's queue drained and its high-water (2.0) has not passed 3.0.
  const auto released = seq.poll();
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].messages[0].id, MessageId(2));
  EXPECT_EQ(released[1].messages[0].id, MessageId(3));
  for (std::size_t k = 0; k < released.size(); ++k) {
    EXPECT_EQ(released[k].rank, k);
  }

  seq.on_heartbeat(ClientId(2), TimePoint(5.0));
  seq.on_heartbeat(ClientId(0), TimePoint(5.0));
  const auto tail = seq.poll();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].messages[0].id, MessageId(1));
  EXPECT_EQ(tail[0].rank, 2u);
  EXPECT_EQ(tail[1].messages[0].id, MessageId(4));
  EXPECT_EQ(tail[1].rank, 3u);
}

TEST_F(WfoOnlineTest, PerClientFifoPreservedEvenWithStampRegression) {
  WfoOnlineSequencer seq = make();
  // Client 0's clock regresses between messages (noisy clock): WFO's
  // assumption breaks; it must count the violation and keep arrival order
  // within the client's queue.
  seq.on_message(msg(1, 0, 2.0));
  seq.on_message(msg(2, 0, 1.5));  // stamped earlier, arrived later
  EXPECT_EQ(seq.monotonicity_violations(), 1u);

  seq.on_heartbeat(ClientId(1), TimePoint(10.0));
  const auto released = seq.poll();
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].messages[0].id, MessageId(1));  // arrival order
  EXPECT_EQ(released[1].messages[0].id, MessageId(2));
}

TEST_F(WfoOnlineTest, FairWhenClocksArePerfect) {
  // The Fig. 2 regime: with exact stamps and dense traffic from everyone,
  // WFO's release order equals true generation order.
  WfoOnlineSequencer seq = make(3);
  std::uint64_t id = 0;
  std::vector<MessageId> expected;
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      const double t = 0.01 * static_cast<double>(3 * round + c);
      seq.on_message(msg(id, c, t));
      expected.emplace_back(id);
      ++id;
    }
  }
  for (std::uint32_t c = 0; c < 3; ++c) {
    seq.on_heartbeat(ClientId(c), TimePoint(100.0));
  }
  const auto released = seq.poll();
  ASSERT_EQ(released.size(), expected.size());
  for (std::size_t k = 0; k < released.size(); ++k) {
    EXPECT_EQ(released[k].messages[0].id, expected[k]);
  }
  EXPECT_EQ(seq.pending_count(), 0u);
}

TEST_F(WfoOnlineTest, UnknownClientDies) {
  WfoOnlineSequencer seq = make();
  EXPECT_DEATH(seq.on_message(msg(1, 9, 1.0)), "precondition");
}

}  // namespace
}  // namespace tommy::core
