// Adversarial arrival-order equivalence: the O(log n) HoldbackBuffer fast
// path must stay bit-identical to reference_mode (the retained naive
// sorted-deque path) under exactly the arrival patterns that made the old
// flat buffer quadratic — and that a rank-stealing adversary would
// engineer. Three stream shapes:
//
//   * reverse-corrected: corrected stamps strictly DECREASING in arrival
//     order, so every insert lands at the buffer front while a closed
//     completeness gate holds the backlog deep;
//   * interleaved bursts: alternating low/high stamp bursts that make
//     inserts ping-pong between the buffer's ends and repeatedly split
//     chunks on both flanks;
//   * mid-stream reprime: a drastic re-announce landing on a deep
//     backlog, forcing both modes through their re-key + re-sort refresh
//     boundary mid-stream.
//
// Each shape is proven on the bare sequencer (fast vs reference) and then
// across the service engine configs: sequential multi-shard fast vs
// reference, threaded workers vs sequential (fast), and kGlobalMerge
// sequential vs threaded — covering sequential / sharded / threaded /
// global-merge with the new structure everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/online_sequencer.hpp"
#include "core/service.hpp"
#include "sim/population.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

enum class Pattern { kReverseCorrected, kInterleavedBursts, kMidStreamReprime };

const char* to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::kReverseCorrected:
      return "reverse-corrected";
    case Pattern::kInterleavedBursts:
      return "interleaved-bursts";
    case Pattern::kMidStreamReprime:
      return "mid-stream-reprime";
  }
  return "unknown";
}

struct Scenario {
  sim::Population population;
  ClientRegistry registry;
  std::vector<Message> messages;  // arrival order (FIFO-feasible)
  /// Message count after which the drive re-announces client 0 with a
  /// drastically shifted clock model (0 = never).
  std::size_t reprime_at{0};
};

/// Hand-built adversarial streams: arrivals are non-decreasing (the FIFO
/// contract) while stamps move against them, so the buffer placement —
/// not the transport — is the adversarial element.
Scenario make_scenario(Pattern pattern, std::uint64_t seed,
                       std::size_t clients, std::size_t count) {
  Rng rng(seed);
  Scenario s{sim::gaussian_population(clients, 40e-6, rng), {}, {}, 0};
  s.population.seed_registry(s.registry);
  const auto ids = s.population.ids();
  const double step = 3e-6;
  std::uint64_t next_id = 1;
  auto push = [&](std::size_t i, double stamp_s, double arrival_s) {
    Message m;
    m.id = MessageId(next_id++);
    m.client = ids[i % ids.size()];
    m.stamp = TimePoint(stamp_s);
    m.arrival = TimePoint(arrival_s);
    s.messages.push_back(m);
  };
  switch (pattern) {
    case Pattern::kReverseCorrected: {
      // Newest arrival carries the OLDEST stamp: with per-client offsets
      // only tens of microseconds wide, corrected stamps decrease with
      // every arrival and each insert hits the buffer front.
      const double base = 1.0;
      for (std::size_t i = 0; i < count; ++i) {
        push(i, base - static_cast<double>(i) * step,
             base + static_cast<double>(i) * 0.5e-6);
      }
      break;
    }
    case Pattern::kInterleavedBursts: {
      // Alternating bursts from a low and a high stamp band, both bands
      // sliding forward: inserts alternate between the two ends of the
      // pending order in groups of 16.
      const double base = 1.0;
      const double band_gap = 0.3;  // ≫ any critical gap: bands stay apart
      std::size_t i = 0;
      while (i < count) {
        for (std::size_t k = 0; k < 16 && i < count; ++k, ++i) {
          push(i, base + static_cast<double>(i) * step,
               base + static_cast<double>(i) * 0.5e-6);
        }
        for (std::size_t k = 0; k < 16 && i < count; ++k, ++i) {
          push(i, base + band_gap - static_cast<double>(i) * step,
               base + static_cast<double>(i) * 0.5e-6);
        }
      }
      break;
    }
    case Pattern::kMidStreamReprime: {
      // Reverse-corrected backlog, then a drastic mean shift halfway:
      // the refresh re-keys a deep buffer in both modes.
      const double base = 1.0;
      for (std::size_t i = 0; i < count; ++i) {
        push(i, base - static_cast<double>(i) * step,
             base + static_cast<double>(i) * 0.5e-6);
      }
      s.reprime_at = count / 2;
      break;
    }
  }
  return s;
}

struct DriveResult {
  std::vector<EmissionRecord> records;
  std::size_t violations{0};
  Rank final_rank{0};
  std::size_t pending_after_flush{0};
};

/// Drives a bare sequencer: sparse polls while the gate starves (no
/// heartbeats — the backlog must go deep), the optional drastic reprime,
/// then heartbeats + poll + flush to land every record.
DriveResult drive(OnlineSequencer& seq, Scenario& s) {
  DriveResult out;
  auto append = [&](std::vector<EmissionRecord>&& recs) {
    for (auto& r : recs) out.records.push_back(std::move(r));
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    Message copy = m;
    copy.arrival = now;
    seq.on_message(copy);
    if (++k == s.reprime_at && s.reprime_at != 0) {
      s.registry.announce(
          s.population.ids().front(),
          std::make_unique<stats::Gaussian>(0.4, 150e-6));
    }
    if (k % 37 == 0) append(seq.poll(now));
  }
  for (ClientId c : s.population.ids()) {
    seq.on_heartbeat(c, now + 1_s, now + 1_ms);
  }
  append(seq.poll(now + 1_s));
  append(seq.flush(now + 2_s));
  out.pending_after_flush = seq.pending_count();
  out.violations = seq.fairness_violations();
  out.final_rank = seq.next_rank();
  return out;
}

void expect_identical(const DriveResult& fast, const DriveResult& ref,
                      const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(fast.records.size(), ref.records.size());
  for (std::size_t r = 0; r < fast.records.size(); ++r) {
    SCOPED_TRACE("record " + std::to_string(r));
    const EmissionRecord& a = fast.records[r];
    const EmissionRecord& b = ref.records[r];
    EXPECT_EQ(a.batch.rank, b.batch.rank);
    EXPECT_EQ(a.emitted_at.seconds(), b.emitted_at.seconds());
    EXPECT_EQ(a.safe_time.seconds(), b.safe_time.seconds());
    ASSERT_EQ(a.batch.messages.size(), b.batch.messages.size());
    for (std::size_t m = 0; m < a.batch.messages.size(); ++m) {
      EXPECT_EQ(a.batch.messages[m], b.batch.messages[m]);
    }
  }
  EXPECT_EQ(fast.violations, ref.violations);
  EXPECT_EQ(fast.final_rank, ref.final_rank);
  EXPECT_EQ(fast.pending_after_flush, ref.pending_after_flush);
}

TEST(AdversarialEquivalence, BareSequencerAllPatterns) {
  for (const Pattern pattern :
       {Pattern::kReverseCorrected, Pattern::kInterleavedBursts,
        Pattern::kMidStreamReprime}) {
    for (const std::uint64_t seed : {5u, 17u}) {
      // Scenarios are rebuilt per mode: drive() mutates the registry on
      // the reprime pattern and both modes must see the same sequence.
      Scenario fast_s = make_scenario(pattern, seed, 6, 1200);
      OnlineConfig config;
      config.threshold = 0.75;
      config.p_safe = 0.99;
      OnlineSequencer fast(fast_s.registry, fast_s.population.ids(), config);
      const DriveResult fast_result = drive(fast, fast_s);

      Scenario ref_s = make_scenario(pattern, seed, 6, 1200);
      config.reference_mode = true;
      OnlineSequencer ref(ref_s.registry, ref_s.population.ids(), config);
      const DriveResult ref_result = drive(ref, ref_s);

      expect_identical(fast_result, ref_result, to_string(pattern));
      // The adversarial gate starvation must actually build a deep
      // buffer: the flush at the end should still be emitting records.
      EXPECT_FALSE(fast_result.records.empty());
    }
  }
}

// ── Service engine configs ──────────────────────────────────────────────

struct Tagged {
  EmissionRecord record;
  std::uint32_t shard;
};

std::vector<Tagged> drive_service(FairOrderingService& service, Scenario& s) {
  std::unordered_map<ClientId, FairOrderingService::Session> sessions;
  for (ClientId c : s.population.ids()) {
    sessions.emplace(c, service.open_session(c));
  }
  std::vector<Tagged> out;
  auto sink = [&out](EmissionRecord&& record, std::uint32_t shard) {
    out.push_back(Tagged{std::move(record), shard});
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    sessions.at(m.client).submit(m.stamp, m.id, now);
    if (++k == s.reprime_at && s.reprime_at != 0) {
      // The service's live-reconfig path: re-announce, then block until
      // the new epoch is installed before the stream continues.
      s.registry.announce(
          s.population.ids().front(),
          std::make_unique<stats::Gaussian>(0.4, 150e-6));
      service.reconfigure();
    }
    if (k % 37 == 0) service.poll(now, sink);
  }
  for (ClientId c : s.population.ids()) {
    sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
  }
  service.poll(now + 1_s, sink);
  service.flush(now + 2_s, sink);
  return out;
}

void expect_identical_per_shard(const std::vector<Tagged>& actual,
                                const std::vector<Tagged>& expected,
                                std::uint32_t shard_count,
                                const char* label) {
  SCOPED_TRACE(label);
  auto split = [shard_count](const std::vector<Tagged>& all) {
    std::vector<std::vector<const Tagged*>> by_shard(shard_count);
    for (const Tagged& t : all) by_shard[t.shard].push_back(&t);
    return by_shard;
  };
  const auto a = split(actual);
  const auto b = split(expected);
  for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    ASSERT_EQ(a[shard].size(), b[shard].size());
    for (std::size_t r = 0; r < a[shard].size(); ++r) {
      SCOPED_TRACE("record " + std::to_string(r));
      const EmissionRecord& x = a[shard][r]->record;
      const EmissionRecord& y = b[shard][r]->record;
      EXPECT_EQ(x.batch.rank, y.batch.rank);
      EXPECT_EQ(x.emitted_at.seconds(), y.emitted_at.seconds());
      EXPECT_EQ(x.safe_time.seconds(), y.safe_time.seconds());
      ASSERT_EQ(x.batch.messages.size(), y.batch.messages.size());
      for (std::size_t m = 0; m < x.batch.messages.size(); ++m) {
        EXPECT_EQ(x.batch.messages[m], y.batch.messages[m]);
      }
    }
  }
}

TEST(AdversarialEquivalence, ServiceConfigsAllPatterns) {
  constexpr std::uint32_t kShards = 4;
  for (const Pattern pattern :
       {Pattern::kReverseCorrected, Pattern::kInterleavedBursts,
        Pattern::kMidStreamReprime}) {
    SCOPED_TRACE(to_string(pattern));
    auto run = [&](bool reference, bool threaded, DrainPolicy policy) {
      Scenario s = make_scenario(pattern, 29u, 6, 1200);
      ServiceConfig config;
      config.with_p_safe(0.99).with_shards(kShards);
      config.online.reference_mode = reference;
      config.with_worker_threads(threaded).with_drain_policy(policy);
      FairOrderingService service(s.registry, s.population.ids(), config);
      return drive_service(service, s);
    };

    // Sequential sharded: fast vs reference, bit-identical per shard.
    const auto seq_fast = run(false, false, DrainPolicy::kShardLocal);
    const auto seq_ref = run(true, false, DrainPolicy::kShardLocal);
    EXPECT_FALSE(seq_fast.empty());
    expect_identical_per_shard(seq_fast, seq_ref, kShards,
                               "sequential fast-vs-reference");

    // Threaded workers (fast only — reference refuses threads): must
    // match the sequential fast run per shard.
    const auto thr_fast = run(false, true, DrainPolicy::kShardLocal);
    expect_identical_per_shard(thr_fast, seq_fast, kShards,
                               "threaded-vs-sequential");

    // Global merge: sequential and threaded must produce the identical
    // total stream (delivery order included).
    const auto merge_seq = run(false, false, DrainPolicy::kGlobalMerge);
    const auto merge_thr = run(false, true, DrainPolicy::kGlobalMerge);
    ASSERT_EQ(merge_seq.size(), merge_thr.size());
    EXPECT_FALSE(merge_seq.empty());
    for (std::size_t r = 0; r < merge_seq.size(); ++r) {
      EXPECT_EQ(merge_seq[r].shard, merge_thr[r].shard);
      EXPECT_EQ(merge_seq[r].record.batch.rank,
                merge_thr[r].record.batch.rank);
    }
    // And per shard it is the same record set the shard-local drain
    // produced (rank order within a shard can differ across policies —
    // compare rank-aligned).
    auto rank_sorted = [](std::vector<Tagged> v) {
      std::stable_sort(v.begin(), v.end(),
                       [](const Tagged& lhs, const Tagged& rhs) {
                         if (lhs.shard != rhs.shard) {
                           return lhs.shard < rhs.shard;
                         }
                         return lhs.record.batch.rank < rhs.record.batch.rank;
                       });
      return v;
    };
    expect_identical_per_shard(rank_sorted(merge_seq), rank_sorted(seq_fast),
                               kShards, "merge-vs-local records");
  }
}

}  // namespace
}  // namespace tommy::core
