// Live reconfiguration at the service layer (the RCU-style epoch swap):
// request/prime/install catching the registry generation up, clients
// joining a running service without a restart, close_session retiring a
// departed client from the completeness gate, first-time shard
// population under an install, and — the core guarantee — a service that
// reconfigures mid-stream staying bit-identical to a sequential oracle
// performing the same reconfigs at the same workload boundaries.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

constexpr double kSigma = 1e-3;
constexpr Duration kDelay = Duration(0.5e-3);

ClientRegistry make_registry(std::uint32_t n) {
  ClientRegistry registry;
  for (std::uint32_t c = 0; c < n; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Gaussian>(1e-4 * c, kSigma));
  }
  return registry;
}

std::vector<ClientId> ids(std::uint32_t n) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < n; ++c) out.push_back(ClientId(c));
  return out;
}

// ── Captured emissions (local equivalence currency) ─────────────────────

struct CapturedMessage {
  std::uint64_t id;
  std::uint32_t client;
  double stamp;
  double arrival;

  friend bool operator==(const CapturedMessage&, const CapturedMessage&)
      = default;
};

struct CapturedBatch {
  std::uint32_t shard;
  Rank rank;
  double emitted_at;
  std::vector<CapturedMessage> messages;

  friend bool operator==(const CapturedBatch&, const CapturedBatch&)
      = default;
};

struct Capture {
  std::vector<CapturedBatch> batches;

  auto sink() {
    return [this](EmissionRecord&& record, std::uint32_t shard) {
      CapturedBatch batch;
      batch.shard = shard;
      batch.rank = record.batch.rank;
      batch.emitted_at = record.emitted_at.seconds();
      for (const Message& m : record.batch.messages) {
        batch.messages.push_back(CapturedMessage{
            m.id.value(), m.client.value(), m.stamp.seconds(),
            m.arrival.seconds()});
      }
      batches.push_back(std::move(batch));
    };
  }

  [[nodiscard]] std::size_t message_count() const {
    std::size_t n = 0;
    for (const CapturedBatch& b : batches) n += b.messages.size();
    return n;
  }
};

// ── Canned phase workload ───────────────────────────────────────────────

/// Feeds `per_client` messages for each session, stamps advancing from
/// `base`, each client's run flushed by a heartbeat (run_direct's batch +
/// heartbeat shape — submit_batch is exempt from the cross-session
/// arrival-order assertion).
void feed_phase(std::vector<FairOrderingService::Session>& sessions,
                double base, int per_client, std::uint64_t id_base,
                double trailing_heartbeat) {
  for (std::uint32_t c = 0; c < sessions.size(); ++c) {
    std::vector<Submission> batch;
    double stamp = base + 1e-5 * c;
    for (int k = 0; k < per_client; ++k) {
      stamp += 1.3e-3;
      batch.push_back(Submission{
          TimePoint(stamp),
          MessageId(id_base + 1000ULL * c + static_cast<std::uint64_t>(k)),
          TimePoint(stamp) + kDelay});
    }
    sessions[c].submit_batch(std::span<const Submission>(batch));
    sessions[c].heartbeat(TimePoint(trailing_heartbeat),
                          TimePoint(trailing_heartbeat) + kDelay);
  }
}

// ── Install mechanics ───────────────────────────────────────────────────

void expect_install_catches_up(ServiceConfig config) {
  ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(4), config);
  const std::uint64_t g0 = registry.generation();
  EXPECT_EQ(service.primed_generation(), g0);
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_EQ(service.epoch(), 0u);

  // A moved registry makes the service stale; an explicit reconfigure
  // primes a fresh engine off-thread and installs it.
  registry.announce(ClientId(1),
                    std::make_unique<stats::Gaussian>(5e-4, 2e-3));
  EXPECT_TRUE(service.reconfig_pending());
  EXPECT_EQ(service.request_reconfig(), registry.generation());
  service.reconfigure();
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_EQ(service.primed_generation(), registry.generation());
  EXPECT_GE(service.epoch(), 1u);

  // Sessions opened against the new epoch carry traffic.
  auto session = service.open_session(ClientId(1));
  session.submit(TimePoint(1.0), MessageId(7), TimePoint(1.0) + kDelay);
  session.heartbeat(TimePoint(1.5), TimePoint(1.5) + kDelay);
  service.quiesce();
  EXPECT_GE(service.pending_count(), 1u);
}

TEST(ServiceReconfig, SequentialInstallCatchesTheGenerationUp) {
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99);
  expect_install_catches_up(config);
}

TEST(ServiceReconfig, ThreadedInstallCatchesTheGenerationUp) {
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99).with_worker_threads();
  expect_install_catches_up(config);
}

TEST(ServiceReconfig, RepeatedReconfigureIsIdempotent) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  service.reconfigure();  // nothing pending: no-op
  const std::uint64_t epoch0 = service.epoch();
  registry.announce(ClientId(0),
                    std::make_unique<stats::Gaussian>(3e-4, kSigma));
  service.reconfigure();
  const std::uint64_t epoch1 = service.epoch();
  EXPECT_GT(epoch1, epoch0);
  service.reconfigure();  // caught up: no further swap
  EXPECT_EQ(service.epoch(), epoch1);
}

// ── Joins without restart ───────────────────────────────────────────────

void expect_join_without_restart(ServiceConfig config) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), config);

  // Not announced, not expected: unknown.
  OpenError error = OpenError::kNone;
  EXPECT_FALSE(service.try_open_session(ClientId(2), &error).has_value());
  EXPECT_EQ(error, OpenError::kUnknownClient);

  // Announced + expected but not yet installed: pending join.
  registry.announce(ClientId(2),
                    std::make_unique<stats::Gaussian>(2e-4, kSigma));
  service.expect_client(ClientId(2));
  EXPECT_FALSE(service.try_open_session(ClientId(2), &error).has_value());
  EXPECT_EQ(error, OpenError::kRegistryChanged);
  EXPECT_TRUE(service.reconfig_pending());

  service.reconfigure();
  EXPECT_TRUE(service.expects_client(ClientId(2)));
  auto joined = service.try_open_session(ClientId(2), &error);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(error, OpenError::kNone);

  // The joined service's emissions are bit-identical to a service built
  // with all three clients from scratch (same registry content, same
  // dense indices: the join announce landed after 0 and 1).
  std::vector<FairOrderingService::Session> sessions;
  sessions.push_back(service.open_session(ClientId(0)));
  sessions.push_back(service.open_session(ClientId(1)));
  sessions.push_back(std::move(*joined));
  feed_phase(sessions, 1.0, 8, 0, 1.2);
  service.quiesce();
  Capture live;
  {
    auto sink = live.sink();
    service.poll(TimePoint(1.05), sink);
    service.flush(TimePoint(2.0), sink);
  }

  ClientRegistry fresh_registry = make_registry(3);
  FairOrderingService fresh(fresh_registry, ids(3), config);
  std::vector<FairOrderingService::Session> fresh_sessions;
  for (std::uint32_t c = 0; c < 3; ++c) {
    fresh_sessions.push_back(fresh.open_session(ClientId(c)));
  }
  feed_phase(fresh_sessions, 1.0, 8, 0, 1.2);
  fresh.quiesce();
  Capture scratch;
  {
    auto sink = scratch.sink();
    fresh.poll(TimePoint(1.05), sink);
    fresh.flush(TimePoint(2.0), sink);
  }

  ASSERT_GT(scratch.message_count(), 0u);
  EXPECT_EQ(live.batches, scratch.batches);
}

TEST(ServiceReconfig, SequentialClientJoinsWithoutRestart) {
  ServiceConfig config;
  config.with_p_safe(0.99);
  expect_join_without_restart(config);
}

TEST(ServiceReconfig, ThreadedClientJoinsWithoutRestart) {
  ServiceConfig config;
  config.with_p_safe(0.99).with_worker_threads();
  expect_join_without_restart(config);
}

TEST(ServiceReconfig, InstallPopulatesAPreviouslyEmptyShard) {
  // Client 0 is alone on shard 0 (modulo routing); client 1's join must
  // create shard 1's sequencer — and, threaded, its worker — at install.
  ClientRegistry registry = make_registry(1);
  ServiceConfig config;
  config.with_shards(2)
      .with_router(std::make_shared<ModuloRouter>())
      .with_p_safe(0.99)
      .with_worker_threads();
  FairOrderingService service(registry, ids(1), config);
  EXPECT_FALSE(service.has_shard(1));

  registry.announce(ClientId(1),
                    std::make_unique<stats::Gaussian>(1e-4, kSigma));
  service.expect_client(ClientId(1));
  service.reconfigure();
  EXPECT_TRUE(service.has_shard(1));
  EXPECT_EQ(service.shard_of(ClientId(1)), 1u);

  auto session = service.open_session(ClientId(1));
  session.submit(TimePoint(1.0), MessageId(42), TimePoint(1.0) + kDelay);
  session.heartbeat(TimePoint(1.4), TimePoint(1.4) + kDelay);
  service.quiesce();
  Capture out;
  {
    auto sink = out.sink();
    service.flush(TimePoint(2.0), sink);
  }
  ASSERT_EQ(out.message_count(), 1u);
  EXPECT_EQ(out.batches[0].shard, 1u);
  EXPECT_EQ(out.batches[0].messages[0].id, 42u);
}

// ── Retirement via close_session ────────────────────────────────────────

void expect_retirement_unblocks_the_gate(ServiceConfig config) {
  ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), config);
  auto speaking = service.open_session(ClientId(0));
  auto silent = service.open_session(ClientId(1));

  speaking.submit(TimePoint(1.0), MessageId(1), TimePoint(1.0) + kDelay);
  speaking.heartbeat(TimePoint(1.5), TimePoint(1.5) + kDelay);
  service.quiesce();

  Capture out;
  {
    auto sink = out.sink();
    service.poll(TimePoint(2.0), sink);
  }
  // The silent client has never been heard: the completeness gate holds
  // everything back.
  EXPECT_EQ(out.message_count(), 0u);

  // Retiring it removes it from the frontier immediately.
  service.close_session(silent);
  service.quiesce();
  {
    auto sink = out.sink();
    service.poll(TimePoint(2.1), sink);
  }
  EXPECT_EQ(out.message_count(), 1u);
}

TEST(ServiceReconfig, SequentialCloseSessionRetiresTheClientFromTheGate) {
  ServiceConfig config;
  config.with_p_safe(0.99);
  expect_retirement_unblocks_the_gate(config);
}

TEST(ServiceReconfig, ThreadedCloseSessionRetiresTheClientFromTheGate) {
  ServiceConfig config;
  config.with_p_safe(0.99).with_worker_threads();
  expect_retirement_unblocks_the_gate(config);
}

// ── Mid-stream equivalence ──────────────────────────────────────────────

/// Half the workload, then a mutating re-announce + epoch swap while the
/// original sessions stay open, then the other half. Every config runs
/// the exact same call sequence, so captures must match bit-for-bit.
std::vector<CapturedBatch> run_with_midstream_reconfig(ServiceConfig config) {
  ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(4), config);
  std::vector<FairOrderingService::Session> sessions;
  for (std::uint32_t c = 0; c < 4; ++c) {
    sessions.push_back(service.open_session(ClientId(c)));
  }

  feed_phase(sessions, 1.0, 10, 0, 1.02);
  service.quiesce();
  Capture out;
  {
    auto sink = out.sink();
    service.poll(TimePoint(1.01), sink);
  }

  registry.announce(ClientId(2),
                    std::make_unique<stats::Gaussian>(7e-4, 2e-3));
  service.reconfigure();

  // The pre-swap session handles keep running against the new epoch
  // (revalidated by generation, not erroring).
  feed_phase(sessions, 1.02, 10, 100000, 1.2);
  service.quiesce();
  {
    auto sink = out.sink();
    service.poll(TimePoint(1.04), sink);
    service.poll(TimePoint(1.1), sink);
    service.flush(TimePoint(2.0), sink);
  }
  return out.batches;
}

TEST(ServiceReconfig, MidStreamSwapMatchesTheSequentialOracle) {
  ServiceConfig sequential;
  sequential.with_shards(2).with_p_safe(0.99);
  const auto oracle = run_with_midstream_reconfig(sequential);
  ASSERT_FALSE(oracle.empty());

  ServiceConfig threaded;
  threaded.with_shards(2).with_p_safe(0.99).with_worker_threads();
  EXPECT_EQ(run_with_midstream_reconfig(threaded), oracle);

  ServiceConfig merged;
  merged.with_shards(2).with_p_safe(0.99).with_worker_threads()
      .with_drain_policy(DrainPolicy::kGlobalMerge);
  const auto merged_run = run_with_midstream_reconfig(merged);
  ServiceConfig merged_oracle;
  merged_oracle.with_shards(2).with_p_safe(0.99).with_drain_policy(
      DrainPolicy::kGlobalMerge);
  EXPECT_EQ(merged_run, run_with_midstream_reconfig(merged_oracle));
}

}  // namespace
}  // namespace tommy::core
