// Appendix B worked example, reproduced end to end: the exact pairwise
// probability table for messages {A, B, C, D} must produce the tournament
//   A→B (.85), A→C (.65), A→D (.92), B→C (.72), B→D (.68), C→D (.80),
// the unique topological order A ≺ B ≺ C ≺ D, and — with Threshold = 0.75 —
// the batches {A}, {B, C}, {D}.
#include <gtest/gtest.h>

#include "core/batching.hpp"
#include "graph/ordering.hpp"
#include "graph/tournament.hpp"

namespace tommy::core {
namespace {

constexpr std::size_t A = 0;
constexpr std::size_t B = 1;
constexpr std::size_t C = 2;
constexpr std::size_t D = 3;

graph::Tournament appendix_b_tournament() {
  graph::Tournament t(4);
  t.set_probability(A, B, 0.85);
  t.set_probability(A, C, 0.65);
  t.set_probability(A, D, 0.92);
  t.set_probability(B, C, 0.72);
  t.set_probability(B, D, 0.68);
  t.set_probability(C, D, 0.80);
  return t;
}

TEST(AppendixB, TableMatchesPaperIncludingComplements) {
  const graph::Tournament t = appendix_b_tournament();
  // The paper's table lists the reverse direction explicitly; our
  // complement storage must reproduce it (e.g. B→A = 0.15, D→A = 0.08).
  EXPECT_DOUBLE_EQ(t.probability(B, A), 0.15);
  EXPECT_DOUBLE_EQ(t.probability(C, A), 0.35);
  EXPECT_DOUBLE_EQ(t.probability(D, A), 0.08);
  EXPECT_DOUBLE_EQ(t.probability(C, B), 0.28);
  EXPECT_DOUBLE_EQ(t.probability(D, B), 0.32);
  EXPECT_DOUBLE_EQ(t.probability(D, C), 0.20);
}

TEST(AppendixB, KeptEdgesFormThePaperTournament) {
  const graph::Tournament t = appendix_b_tournament();
  EXPECT_TRUE(t.edge(A, B));
  EXPECT_TRUE(t.edge(A, C));
  EXPECT_TRUE(t.edge(A, D));
  EXPECT_TRUE(t.edge(B, C));
  EXPECT_TRUE(t.edge(B, D));
  EXPECT_TRUE(t.edge(C, D));
}

TEST(AppendixB, TournamentIsTransitiveWithUniqueOrder) {
  const graph::Tournament t = appendix_b_tournament();
  EXPECT_TRUE(t.is_transitive());
  const auto order = graph::hamiltonian_path(t);
  EXPECT_EQ(order, (std::vector<std::size_t>{A, B, C, D}));
  EXPECT_TRUE(graph::is_linear_extension(t, order));
}

TEST(AppendixB, ThresholdBatchingYieldsPaperBatches) {
  const graph::Tournament t = appendix_b_tournament();

  std::vector<Message> ordered;
  for (std::size_t k : graph::hamiltonian_path(t)) {
    ordered.push_back(Message{MessageId(k), ClientId(0), TimePoint(0.0)});
  }
  const auto probability = [&t](const Message& x, const Message& y) {
    return t.probability(x.id.value(), y.id.value());
  };

  // Threshold 0.75: boundaries at A|B (0.85) and C|D (0.80), none at
  // B|C (0.72) -> {A}, {B, C}, {D}.
  const auto batches = batch_by_threshold(ordered, probability, 0.75);
  ASSERT_EQ(batches.size(), 3u);
  ASSERT_EQ(batches[0].messages.size(), 1u);
  EXPECT_EQ(batches[0].messages[0].id, MessageId(A));
  ASSERT_EQ(batches[1].messages.size(), 2u);
  EXPECT_EQ(batches[1].messages[0].id, MessageId(B));
  EXPECT_EQ(batches[1].messages[1].id, MessageId(C));
  ASSERT_EQ(batches[2].messages.size(), 1u);
  EXPECT_EQ(batches[2].messages[0].id, MessageId(D));
}

TEST(AppendixB, HigherThresholdCoarsensLowerThresholdRefines) {
  const graph::Tournament t = appendix_b_tournament();
  std::vector<Message> ordered;
  for (std::size_t k : graph::hamiltonian_path(t)) {
    ordered.push_back(Message{MessageId(k), ClientId(0), TimePoint(0.0)});
  }
  const auto probability = [&t](const Message& x, const Message& y) {
    return t.probability(x.id.value(), y.id.value());
  };

  // Threshold 0.9 (paper: "fewer, larger batches"): no boundary at all.
  EXPECT_EQ(batch_by_threshold(ordered, probability, 0.9).size(), 1u);
  // Threshold 0.6 (paper: "finer-grained batching, approaching total
  // order"): every adjacent pair separates.
  EXPECT_EQ(batch_by_threshold(ordered, probability, 0.6).size(), 4u);
}

TEST(AppendixB, ReversedEdgeCreatesTheCycleThePaperWarnsAbout) {
  // "If, however, some edges such as C→A (0.55) were reversed, a cycle
  // (A→B→C→A) could form."
  graph::Tournament t = appendix_b_tournament();
  t.set_probability(C, A, 0.55);  // reverse A→C
  EXPECT_FALSE(t.is_transitive());
  const auto triangle = t.find_triangle();
  ASSERT_EQ(triangle.size(), 3u);
}

}  // namespace
}  // namespace tommy::core
