// Randomized invariant sweeps across all sequencers and configurations —
// the properties that must hold on ANY input, checked over many seeded
// scenarios:
//   P1. partition: every input message appears in exactly one batch;
//   P2. ranks are dense from 0 and batches are non-empty;
//   P3. the closure rule keeps min cross-batch confidence > threshold;
//   P4. Tommy's normalized RAS is never materially below TrueTime's on
//       Gaussian populations (the paper's headline, as an invariant);
//   P5. Tommy never scores a pair it would call uncertain both ways
//       incorrectly more often than the threshold allows (calibration);
//   P6. online sequencing emits each message exactly once, in
//       non-decreasing rank order, never before its safe time.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/baselines.hpp"
#include "core/online_sequencer.hpp"
#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

struct Scenario {
  sim::Population population;
  std::vector<sim::ObservedMessage> observed;
  ClientRegistry registry;
};

Scenario random_scenario(std::uint64_t seed, std::size_t clients,
                         std::size_t count) {
  Rng rng(seed);
  const double sigma = rng.uniform(1e-6, 200e-6);
  const double gap_us = rng.uniform(1.0, 100.0);
  Scenario s{sim::gaussian_population(clients, sigma, rng), {}, {}};
  const auto events = sim::poisson_workload(
      s.population.ids(), count, Duration::from_micros(gap_us), rng);
  sim::MaterializeConfig mat;
  mat.mean_net_delay = Duration::from_micros(rng.uniform(0.1, 50.0));
  s.observed = sim::materialize_messages(s.population, events, mat, rng);
  s.population.seed_registry(s.registry);
  return s;
}

std::vector<Message> inputs_of(const Scenario& s) {
  std::vector<Message> out;
  for (const auto& om : s.observed) out.push_back(om.message);
  return out;
}

void check_partition(const SequencerResult& result,
                     const std::vector<Message>& input) {
  std::set<MessageId> seen;
  for (std::size_t b = 0; b < result.batches.size(); ++b) {
    ASSERT_FALSE(result.batches[b].messages.empty()) << "empty batch " << b;
    EXPECT_EQ(result.batches[b].rank, b) << "ranks must be dense";
    for (const Message& m : result.batches[b].messages) {
      EXPECT_TRUE(seen.insert(m.id).second) << "duplicate " << m.id;
    }
  }
  EXPECT_EQ(seen.size(), input.size());
  for (const Message& m : input) {
    EXPECT_TRUE(seen.contains(m.id)) << "lost " << m.id;
  }
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, AllSequencersPartitionTheInput) {
  const Scenario s = random_scenario(GetParam(), 20, 150);

  TommySequencer tommy(s.registry);
  TrueTimeSequencer truetime(s.registry);
  WfoSequencer wfo;
  FifoSequencer fifo;
  for (Sequencer* seq :
       std::initializer_list<Sequencer*>{&tommy, &truetime, &wfo, &fifo}) {
    const auto result = seq->sequence(inputs_of(s));
    check_partition(result, inputs_of(s));
  }
}

TEST_P(PropertySweep, ClosureRuleKeepsCrossBatchConfidence) {
  const Scenario s = random_scenario(GetParam() + 1000, 15, 80);
  TommyConfig config;
  config.batch_rule = BatchRule::kClosure;
  config.threshold = 0.75;
  TommySequencer seq(s.registry, config);
  const auto result = seq.sequence(inputs_of(s));
  if (result.batches.size() < 2) return;  // nothing committed
  const double min_cross = min_cross_batch_probability(
      result.batches, [&seq](const Message& a, const Message& b) {
        return seq.engine().preceding_probability(a, b);
      });
  EXPECT_GT(min_cross, config.threshold);
}

TEST_P(PropertySweep, TommyNeverMateriallyBelowTrueTime) {
  const Scenario s = random_scenario(GetParam() + 2000, 30, 300);
  TommySequencer tommy(s.registry);
  TrueTimeSequencer truetime(s.registry);
  const double tommy_ras =
      sim::score_sequencer(tommy, s.observed).ras.normalized();
  const double truetime_ras =
      sim::score_sequencer(truetime, s.observed).ras.normalized();
  // Tolerance covers sampling wiggle on near-tied scenarios; the paper's
  // claim is Tommy >= TrueTime across the sweep.
  EXPECT_GE(tommy_ras, truetime_ras - 0.02)
      << "tommy " << tommy_ras << " vs truetime " << truetime_ras;
}

TEST_P(PropertySweep, CommittedAdjacentPairsAreCalibrated) {
  // Every adjacent boundary Tommy commits has confidence > threshold by
  // construction; empirically those pairs must be truly ordered at least
  // ~threshold of the time (calibration of the statistical model).
  const Scenario s = random_scenario(GetParam() + 3000, 25, 400);
  TommyConfig config;
  config.threshold = 0.75;
  TommySequencer seq(s.registry, config);
  const auto result = seq.sequence(inputs_of(s));

  std::map<MessageId, TimePoint> truth;
  for (const auto& om : s.observed) truth[om.message.id] = om.true_time;

  std::size_t committed = 0;
  std::size_t correct = 0;
  for (std::size_t b = 1; b < result.batches.size(); ++b) {
    const Message& before = result.batches[b - 1].messages.back();
    const Message& after = result.batches[b].messages.front();
    ++committed;
    if (truth.at(before.id) < truth.at(after.id)) ++correct;
  }
  if (committed < 20) return;  // not enough boundaries to judge
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(committed);
  EXPECT_GE(accuracy, 0.75 - 0.12)  // binomial slack at small counts
      << correct << "/" << committed;
}

TEST_P(PropertySweep, OnlineEmitsEachMessageOnceInRankOrder) {
  const Scenario s = random_scenario(GetParam() + 4000, 10, 120);

  OnlineConfig config;
  config.p_safe = 0.999;
  OnlineSequencer seq(s.registry, s.population.ids(), config);

  // Feed messages in arrival order; poll opportunistically.
  std::vector<Message> arrivals = inputs_of(s);
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Message& a, const Message& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  std::vector<EmissionRecord> emissions;
  TimePoint last_arrival = TimePoint::epoch();
  for (const Message& m : arrivals) {
    seq.on_message(m);
    last_arrival = m.arrival;
    for (auto& e : seq.poll(m.arrival)) emissions.push_back(std::move(e));
  }
  // Keep everyone's frontier moving, then drain far in the future.
  const TimePoint end = last_arrival + 10_s;
  for (ClientId c : s.population.ids()) {
    seq.on_heartbeat(c, end + 10_s, end);
  }
  for (auto& e : seq.poll(end)) emissions.push_back(std::move(e));

  std::set<MessageId> seen;
  for (std::size_t k = 0; k < emissions.size(); ++k) {
    const EmissionRecord& e = emissions[k];
    EXPECT_EQ(e.batch.rank, k);            // dense, in order
    EXPECT_GE(e.emitted_at, e.safe_time);  // never early
    for (const Message& m : e.batch.messages) {
      EXPECT_TRUE(seen.insert(m.id).second);
    }
  }
  EXPECT_EQ(seen.size(), arrivals.size());
  EXPECT_EQ(seq.pending_count(), 0u);
}

TEST_P(PropertySweep, FlushDrainsEverythingWithDenseRanks) {
  const Scenario s = random_scenario(GetParam() + 5000, 8, 60);
  OnlineSequencer seq(s.registry, s.population.ids(), OnlineConfig{});
  std::vector<Message> arrivals = inputs_of(s);
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Message& a, const Message& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });
  for (const Message& m : arrivals) seq.on_message(m);

  const auto emissions = seq.flush(arrivals.back().arrival + 1_s);
  std::size_t total = 0;
  for (std::size_t k = 0; k < emissions.size(); ++k) {
    EXPECT_EQ(emissions[k].batch.rank, k);
    total += emissions[k].batch.messages.size();
  }
  EXPECT_EQ(total, arrivals.size());
  EXPECT_EQ(seq.pending_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 110u));

}  // namespace
}  // namespace tommy::core
