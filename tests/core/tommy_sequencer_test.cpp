#include "core/tommy_sequencer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"
#include "stats/mixture.hpp"

namespace tommy::core {
namespace {

Message msg(std::uint64_t id, std::uint32_t client, double stamp) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp)};
}

std::vector<MessageId> flatten(const SequencerResult& result) {
  std::vector<MessageId> out;
  for (const Batch& b : result.batches) {
    for (const Message& m : b.messages) out.push_back(m.id);
  }
  return out;
}

class TommyGaussian : public ::testing::Test {
 protected:
  TommyGaussian() {
    registry_.announce(ClientId(0),
                       std::make_unique<stats::Gaussian>(0.0, 1e-3));
    registry_.announce(ClientId(1),
                       std::make_unique<stats::Gaussian>(5e-3, 1e-3));
    registry_.announce(ClientId(2),
                       std::make_unique<stats::Gaussian>(-5e-3, 2e-3));
  }
  ClientRegistry registry_;
};

TEST_F(TommyGaussian, EmptyInputYieldsNoBatches) {
  TommySequencer seq(registry_);
  EXPECT_TRUE(seq.sequence({}).batches.empty());
}

TEST_F(TommyGaussian, FastPathOrdersByCorrectedStamp) {
  TommySequencer seq(registry_);
  // Raw stamps disorder the true order; corrected stamps (T + μ) fix it:
  //   id 1: client 1, stamp 0.000 -> corrected 0.005
  //   id 2: client 0, stamp 0.002 -> corrected 0.002
  //   id 3: client 2, stamp 0.013 -> corrected 0.008
  const auto result =
      seq.sequence({msg(1, 1, 0.000), msg(2, 0, 0.002), msg(3, 2, 0.013)});
  EXPECT_TRUE(seq.last_diagnostics().used_gaussian_fast_path);
  EXPECT_EQ(flatten(result),
            (std::vector<MessageId>{MessageId(2), MessageId(1), MessageId(3)}));
}

TEST_F(TommyGaussian, WellSeparatedMessagesGetSingletonBatches) {
  TommySequencer seq(registry_);
  const auto result = seq.sequence(
      {msg(1, 0, 0.0), msg(2, 0, 0.1), msg(3, 0, 0.2)});  // 100 ms gaps
  EXPECT_EQ(result.batches.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(result.batches[k].rank, k);
    EXPECT_EQ(result.batches[k].messages.size(), 1u);
  }
}

TEST_F(TommyGaussian, IndistinguishableMessagesShareABatch) {
  TommySequencer seq(registry_);
  const auto result = seq.sequence(
      {msg(1, 0, 0.0), msg(2, 0, 1e-5), msg(3, 0, 2e-5)});  // 10 µs gaps
  EXPECT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].messages.size(), 3u);
}

TEST_F(TommyGaussian, FastPathAndTournamentPathAgree) {
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Message> messages;
    for (std::uint64_t id = 0; id < 12; ++id) {
      messages.push_back(msg(id, static_cast<std::uint32_t>(id % 3),
                             rng.uniform(0.0, 0.02)));
    }

    TommyConfig fast_config;
    TommySequencer fast(registry_, fast_config);
    TommyConfig slow_config;
    slow_config.gaussian_fast_path = false;
    TommySequencer slow(registry_, slow_config);

    const auto fast_result = fast.sequence(messages);
    const auto slow_result = slow.sequence(messages);
    EXPECT_TRUE(fast.last_diagnostics().used_gaussian_fast_path);
    EXPECT_FALSE(slow.last_diagnostics().used_gaussian_fast_path);
    EXPECT_TRUE(slow.last_diagnostics().tournament_transitive);

    ASSERT_EQ(fast_result.batches.size(), slow_result.batches.size())
        << "trial " << trial;
    EXPECT_EQ(flatten(fast_result), flatten(slow_result));
  }
}

TEST_F(TommyGaussian, ThresholdControlsGranularity) {
  // Stamps chosen so adjacent preceding probabilities sit around ~0.76:
  // gap = 1.04 mm... use gap g with p = Φ(g/(1e-3·√2)) ≈ 0.76 -> g ≈ 1e-3.
  std::vector<Message> messages;
  for (std::uint64_t id = 0; id < 6; ++id) {
    messages.push_back(msg(id, 0, static_cast<double>(id) * 1.0e-3));
  }

  TommyConfig strict;
  strict.threshold = 0.9;
  TommyConfig loose;
  loose.threshold = 0.7;
  TommySequencer strict_seq(registry_, strict);
  TommySequencer loose_seq(registry_, loose);
  EXPECT_LT(strict_seq.sequence(messages).batches.size(),
            loose_seq.sequence(messages).batches.size());
}

TEST_F(TommyGaussian, ForcedNumericPathMatchesClosedForm) {
  TommyConfig numeric_config;
  numeric_config.preceding.force_numeric = true;
  numeric_config.preceding.grid_points = 1024;
  numeric_config.max_tournament_nodes = 64;
  TommySequencer numeric(registry_, numeric_config);
  TommySequencer closed(registry_);

  std::vector<Message> messages = {msg(1, 0, 0.0), msg(2, 1, 2e-3),
                                   msg(3, 2, 1e-2), msg(4, 0, 1.1e-2)};
  const auto a = numeric.sequence(messages);
  const auto b = closed.sequence(messages);
  EXPECT_EQ(flatten(a), flatten(b));
  EXPECT_EQ(a.batches.size(), b.batches.size());
}

class TommyCyclic : public ::testing::Test {
 protected:
  TommyCyclic() {
    // Non-transitive dice mixtures (see transitivity_property_test):
    // equal stamps produce a 3-cycle among one message per client.
    const auto die = [](std::initializer_list<double> faces) {
      std::vector<stats::Mixture::Component> parts;
      for (double f : faces) {
        parts.push_back(
            {1.0, std::make_unique<stats::Uniform>(f - 0.05, f + 0.05)});
      }
      return std::make_unique<stats::Mixture>(std::move(parts));
    };
    registry_.announce(ClientId(0), die({2, 4, 9}));
    registry_.announce(ClientId(1), die({1, 6, 8}));
    registry_.announce(ClientId(2), die({3, 5, 7}));
    config_.preceding.grid_points = 256;
    config_.threshold = 0.52;  // the cycle's edges are weak (~0.56)
  }

  std::vector<Message> cycle_messages() {
    return {msg(0, 0, 0.0), msg(1, 1, 0.0), msg(2, 2, 0.0)};
  }

  ClientRegistry registry_;
  TommyConfig config_;
};

TEST_F(TommyCyclic, TransitivityDiagnosticsReportTheCycle) {
  config_.analyze_transitivity = true;
  TommySequencer seq(registry_, config_);
  (void)seq.sequence(cycle_messages());
  const auto& report = seq.last_diagnostics().transitivity;
  EXPECT_EQ(report.triples, 1u);
  EXPECT_EQ(report.cyclic_triples, 1u);
  EXPECT_FALSE(report.transitive());
  // The dice cycle's kept edges are all ~5/9 ≈ 0.556 (the coarse
  // 256-point grid shaves a little off the weakest edge).
  EXPECT_NEAR(report.worst_cycle_confidence, 5.0 / 9.0, 0.04);
}

TEST_F(TommyCyclic, CondensePolicyGroupsTheCycle) {
  config_.cycle_policy = CyclePolicy::kCondense;
  TommySequencer seq(registry_, config_);
  const auto result = seq.sequence(cycle_messages());
  EXPECT_FALSE(seq.last_diagnostics().tournament_transitive);
  EXPECT_EQ(seq.last_diagnostics().scc_count, 1u);
  ASSERT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].messages.size(), 3u);
}

TEST_F(TommyCyclic, FasPoliciesProduceCompleteOrderings) {
  for (CyclePolicy policy : {CyclePolicy::kGreedyFas,
                             CyclePolicy::kStochasticFas,
                             CyclePolicy::kExactFas}) {
    config_.cycle_policy = policy;
    TommySequencer seq(registry_, config_);
    const auto result = seq.sequence(cycle_messages());
    EXPECT_FALSE(seq.last_diagnostics().tournament_transitive);
    // Breaking the 3-cycle sacrifices at least one edge (a random order
    // can leave two backward); the exact policy removes exactly one.
    EXPECT_GE(seq.last_diagnostics().fas_removed_edges, 1u);
    if (policy == CyclePolicy::kExactFas) {
      EXPECT_EQ(seq.last_diagnostics().fas_removed_edges, 1u);
    }
    EXPECT_EQ(result.message_count(), 3u);
  }
}

TEST_F(TommyCyclic, StochasticFasVariesAcrossRounds) {
  config_.cycle_policy = CyclePolicy::kStochasticFas;
  TommySequencer seq(registry_, config_);
  std::set<std::vector<MessageId>> seen;
  for (int round = 0; round < 40; ++round) {
    seen.insert(flatten(seq.sequence(cycle_messages())));
  }
  // The symmetric cycle must not always break the same way.
  EXPECT_GT(seen.size(), 1u);
}

TEST_F(TommyCyclic, MixedTransitiveAndCyclicMessages) {
  // Add two well-separated messages around the cycle: they order cleanly,
  // the cycle stays one batch between them.
  config_.cycle_policy = CyclePolicy::kCondense;
  TommySequencer seq(registry_, config_);
  auto messages = cycle_messages();
  messages.push_back(msg(10, 0, -100.0));
  messages.push_back(msg(11, 1, +100.0));
  const auto result = seq.sequence(messages);
  ASSERT_EQ(result.batches.size(), 3u);
  EXPECT_EQ(result.batches[0].messages[0].id, MessageId(10));
  EXPECT_EQ(result.batches[1].messages.size(), 3u);
  EXPECT_EQ(result.batches[2].messages[0].id, MessageId(11));
}

TEST(TommyConfigDeathTest, RejectsBadThreshold) {
  ClientRegistry registry;
  TommyConfig config;
  config.threshold = 1.0;
  EXPECT_DEATH(TommySequencer(registry, config), "precondition");
}

// ── Primed-threshold equivalence ────────────────────────────────────────
// The default batching path answers "p(a, b) > threshold" from the
// engine's primed critical-gap tables (one subtraction per pair);
// reference_thresholds retains the raw per-pair probability evaluation.
// Both must cut bit-identical batches on every ordering path.

void expect_same_batches(const SequencerResult& primed,
                         const SequencerResult& reference,
                         const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(primed.batches.size(), reference.batches.size());
  for (std::size_t b = 0; b < primed.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    EXPECT_EQ(primed.batches[b].rank, reference.batches[b].rank);
    ASSERT_EQ(primed.batches[b].messages.size(),
              reference.batches[b].messages.size());
    for (std::size_t m = 0; m < primed.batches[b].messages.size(); ++m) {
      EXPECT_EQ(primed.batches[b].messages[m],
                reference.batches[b].messages[m]);
    }
  }
}

void run_primed_equivalence(const ClientRegistry& registry,
                            TommyConfig config,
                            const std::vector<Message>& messages,
                            const char* label) {
  TommyConfig primed_config = config;
  primed_config.reference_thresholds = false;
  TommySequencer primed(registry, primed_config);

  TommyConfig reference_config = config;
  reference_config.reference_thresholds = true;
  TommySequencer reference(registry, reference_config);

  expect_same_batches(primed.sequence(messages), reference.sequence(messages),
                      label);
}

TEST_F(TommyGaussian, PrimedThresholdsMatchReferenceOnGaussianPaths) {
  Rng rng(91);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Message> messages;
    for (std::uint64_t id = 0; id < 24; ++id) {
      messages.push_back(msg(id, static_cast<std::uint32_t>(id % 3),
                             rng.uniform(0.0, 0.03)));
    }
    for (BatchRule rule : {BatchRule::kAdjacent, BatchRule::kClosure}) {
      TommyConfig config;
      config.batch_rule = rule;
      run_primed_equivalence(registry_, config, messages, "gaussian-fast");
      config.gaussian_fast_path = false;  // tournament over the same input
      run_primed_equivalence(registry_, config, messages,
                             "gaussian-tournament");
    }
  }
}

TEST_F(TommyCyclic, PrimedThresholdsMatchReferenceOnNumericPaths) {
  Rng rng(17);
  for (CyclePolicy policy : {CyclePolicy::kCondense, CyclePolicy::kGreedyFas,
                             CyclePolicy::kExactFas}) {
    config_.cycle_policy = policy;
    // The pure 3-cycle plus randomized surrounding traffic: exercises
    // batch_groups (condense) and the post-FAS batching on the numeric
    // critical-gap path.
    auto messages = cycle_messages();
    for (std::uint64_t id = 10; id < 22; ++id) {
      messages.push_back(msg(id, static_cast<std::uint32_t>(id % 3),
                             rng.uniform(-8.0, 8.0)));
    }
    run_primed_equivalence(registry_, config_, messages, "numeric-cyclic");
  }
}

}  // namespace
}  // namespace tommy::core
