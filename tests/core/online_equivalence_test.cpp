// Equivalence of the online sequencer's constant-time fast path with the
// retained naive reference implementation (reference_mode): over
// randomized scenarios — Gaussian and non-Gaussian populations, forced
// numeric evaluation, heartbeats, silence timeouts, violation-inducing
// low p_safe — both modes must emit the exact same EmissionRecord
// sequence (ranks, members, order, emission and safe times) and count the
// same fairness violations. This is the contract that lets the critical-
// gap reduction and the incremental closure replace the O(n²)
// probability sweeps on the hot path.
//
// The same harness also proves the redesigned ingest/emission surfaces
// are pure re-skins of that contract: driving through per-connection
// Session handles must be bit-identical to the legacy
// on_message/on_heartbeat entry points, and a 1-shard FairOrderingService
// (sessions + emission sink) must be bit-identical to a bare
// OnlineSequencer — in fast AND reference mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/online_sequencer.hpp"
#include "core/service.hpp"
#include "sim/offline_runner.hpp"
#include "stats/gaussian.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

struct Scenario {
  sim::Population population;
  std::vector<Message> messages;       // arrival-feasible input order
  ClientRegistry registry;
  std::vector<ClientId> expected;      // completeness-gate client set
};

enum class Shape { kGaussian, kGumbel, kBimodal };

Scenario make_scenario(std::uint64_t seed, Shape shape, std::size_t clients,
                       std::size_t count, bool silent_last_client) {
  Rng rng(seed);
  const double scale = rng.uniform(5e-6, 300e-6);
  auto make_pop = [&]() {
    switch (shape) {
      case Shape::kGumbel:
        return sim::gumbel_population(clients, scale, rng);
      case Shape::kBimodal:
        return sim::bimodal_population(clients, scale, rng);
      case Shape::kGaussian:
      default:
        return sim::gaussian_population(clients, scale, rng);
    }
  };
  Scenario s{make_pop(), {}, {}, {}};
  s.expected = s.population.ids();

  // Optionally keep the last client silent (never generates) to exercise
  // the silence-timeout path identically in both modes.
  std::vector<ClientId> speakers = s.expected;
  if (silent_last_client) speakers.pop_back();

  const double gap_us = rng.uniform(2.0, 60.0);
  const auto events = sim::poisson_workload(
      speakers, count, Duration::from_micros(gap_us), rng);
  sim::MaterializeConfig mat;
  mat.mean_net_delay = Duration::from_micros(rng.uniform(0.0, 40.0));
  const auto observed =
      sim::materialize_messages(s.population, events, mat, rng);
  s.messages.reserve(observed.size());
  for (const auto& om : observed) s.messages.push_back(om.message);
  // FIFO channels deliver in arrival order.
  std::stable_sort(s.messages.begin(), s.messages.end(),
                   [](const Message& a, const Message& b) {
                     return a.arrival < b.arrival;
                   });
  s.population.seed_registry(s.registry);
  return s;
}

struct DriveResult {
  std::vector<EmissionRecord> records;
  std::size_t violations{0};
  Rank final_rank{0};
  std::size_t pending_after_flush{0};
  std::vector<double> next_safe_samples;
  std::vector<std::vector<ClientId>> timeout_samples;
};

/// Feeds the scenario through `seq` on a deterministic schedule derived
/// only from the input (so both modes see byte-identical calls):
/// interleaved polls, periodic all-client heartbeats, a settling
/// heartbeat+poll, then a flush of any remainder.
DriveResult drive(OnlineSequencer& seq, const Scenario& s) {
  DriveResult out;
  auto append = [&](std::vector<EmissionRecord>&& recs) {
    for (auto& r : recs) out.records.push_back(std::move(r));
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    Message copy = m;
    copy.arrival = now;
    seq.on_message(copy);
    ++k;
    if (k % 13 == 0) {
      for (ClientId c : s.expected) seq.on_heartbeat(c, now, now);
    }
    if (k % 7 == 0) append(seq.poll(now));
    if (k % 29 == 0) {
      out.next_safe_samples.push_back(seq.next_safe_time().seconds());
      out.timeout_samples.push_back(seq.timed_out_clients(now));
    }
  }
  for (ClientId c : s.expected) seq.on_heartbeat(c, now + 1_s, now + 1_ms);
  append(seq.poll(now + 1_s));
  append(seq.flush(now + 2_s));
  out.pending_after_flush = seq.pending_count();
  out.violations = seq.fairness_violations();
  out.final_rank = seq.next_rank();
  return out;
}

void expect_identical(const DriveResult& fast, const DriveResult& ref,
                      const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(fast.records.size(), ref.records.size());
  for (std::size_t r = 0; r < fast.records.size(); ++r) {
    SCOPED_TRACE("record " + std::to_string(r));
    const EmissionRecord& a = fast.records[r];
    const EmissionRecord& b = ref.records[r];
    EXPECT_EQ(a.batch.rank, b.batch.rank);
    EXPECT_EQ(a.emitted_at.seconds(), b.emitted_at.seconds());
    EXPECT_EQ(a.safe_time.seconds(), b.safe_time.seconds());
    ASSERT_EQ(a.batch.messages.size(), b.batch.messages.size());
    for (std::size_t m = 0; m < a.batch.messages.size(); ++m) {
      EXPECT_EQ(a.batch.messages[m], b.batch.messages[m]);
    }
  }
  EXPECT_EQ(fast.violations, ref.violations);
  EXPECT_EQ(fast.final_rank, ref.final_rank);
  EXPECT_EQ(fast.pending_after_flush, ref.pending_after_flush);
  EXPECT_EQ(fast.next_safe_samples, ref.next_safe_samples);
  ASSERT_EQ(fast.timeout_samples.size(), ref.timeout_samples.size());
  for (std::size_t t = 0; t < fast.timeout_samples.size(); ++t) {
    EXPECT_EQ(fast.timeout_samples[t], ref.timeout_samples[t]);
  }
}

/// The same deterministic schedule as drive(), but through per-connection
/// Session handles: sessions are opened once up front and every
/// submit/heartbeat goes through them. Byte-identical inputs, different
/// entry surface.
DriveResult drive_sessions(OnlineSequencer& seq, const Scenario& s) {
  std::unordered_map<ClientId, OnlineSequencer::Session> sessions;
  for (ClientId c : s.expected) sessions.emplace(c, seq.open_session(c));
  DriveResult out;
  auto append = [&](std::vector<EmissionRecord>&& recs) {
    for (auto& r : recs) out.records.push_back(std::move(r));
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    sessions.at(m.client).submit(m.stamp, m.id, now);
    ++k;
    if (k % 13 == 0) {
      for (ClientId c : s.expected) sessions.at(c).heartbeat(now, now);
    }
    if (k % 7 == 0) append(seq.poll(now));
    if (k % 29 == 0) {
      out.next_safe_samples.push_back(seq.next_safe_time().seconds());
      out.timeout_samples.push_back(seq.timed_out_clients(now));
    }
  }
  for (ClientId c : s.expected) {
    sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
  }
  append(seq.poll(now + 1_s));
  append(seq.flush(now + 2_s));
  out.pending_after_flush = seq.pending_count();
  out.violations = seq.fairness_violations();
  out.final_rank = seq.next_rank();
  return out;
}

/// drive() against a FairOrderingService: service sessions for ingest,
/// the emission sink for output. With one shard the collected stream must
/// be bit-identical to the bare sequencer's.
DriveResult drive_service(FairOrderingService& service, const Scenario& s) {
  std::unordered_map<ClientId, FairOrderingService::Session> sessions;
  for (ClientId c : s.expected) sessions.emplace(c, service.open_session(c));
  DriveResult out;
  auto collect = [&out](EmissionRecord&& record, std::uint32_t) {
    out.records.push_back(std::move(record));
  };
  TimePoint now(0.0);
  std::size_t k = 0;
  for (const Message& m : s.messages) {
    now = std::max(now, m.arrival);
    sessions.at(m.client).submit(m.stamp, m.id, now);
    ++k;
    if (k % 13 == 0) {
      for (ClientId c : s.expected) sessions.at(c).heartbeat(now, now);
    }
    if (k % 7 == 0) service.poll(now, collect);
    if (k % 29 == 0) {
      out.next_safe_samples.push_back(service.next_safe_time().seconds());
      // timed_out_clients has no service-level aggregate; sample the
      // shards in index order for the same deterministic view.
      std::vector<ClientId> timed_out;
      for (std::uint32_t sh = 0; sh < service.shard_count(); ++sh) {
        if (!service.has_shard(sh)) continue;
        for (ClientId c : service.shard(sh).timed_out_clients(now)) {
          timed_out.push_back(c);
        }
      }
      out.timeout_samples.push_back(std::move(timed_out));
    }
  }
  for (ClientId c : s.expected) {
    sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
  }
  service.poll(now + 1_s, collect);
  service.flush(now + 2_s, collect);
  out.pending_after_flush = service.pending_count();
  out.violations = service.fairness_violations();
  Rank final_rank = 0;
  for (std::uint32_t sh = 0; sh < service.shard_count(); ++sh) {
    if (service.has_shard(sh)) final_rank += service.shard(sh).next_rank();
  }
  out.final_rank = final_rank;
  return out;
}

void run_equivalence(std::uint64_t seed, Shape shape, std::size_t clients,
                     std::size_t count, OnlineConfig config,
                     bool silent_last_client, const char* label) {
  const Scenario s =
      make_scenario(seed, shape, clients, count, silent_last_client);

  OnlineConfig fast_config = config;
  fast_config.reference_mode = false;
  OnlineSequencer fast(s.registry, s.expected, fast_config);
  const DriveResult fast_result = drive(fast, s);

  OnlineConfig ref_config = config;
  ref_config.reference_mode = true;
  OnlineSequencer ref(s.registry, s.expected, ref_config);
  const DriveResult ref_result = drive(ref, s);

  // Sanity: the drive actually exercised emission, not just buffering.
  EXPECT_FALSE(ref_result.records.empty());
  expect_identical(fast_result, ref_result, label);
}

/// Asserts all three ingest surfaces agree bit-for-bit in `mode`:
/// legacy entry points, session handles, and a 1-shard service.
void run_surface_equivalence(std::uint64_t seed, Shape shape,
                             std::size_t clients, std::size_t count,
                             OnlineConfig config, bool reference_mode,
                             const char* label) {
  const Scenario s = make_scenario(seed, shape, clients, count, false);
  OnlineConfig mode_config = config;
  mode_config.reference_mode = reference_mode;

  OnlineSequencer legacy(s.registry, s.expected, mode_config);
  const DriveResult legacy_result = drive(legacy, s);
  EXPECT_FALSE(legacy_result.records.empty());

  OnlineSequencer sessioned(s.registry, s.expected, mode_config);
  const DriveResult session_result = drive_sessions(sessioned, s);
  expect_identical(session_result, legacy_result, label);

  ServiceConfig service_config;
  service_config.with_online(mode_config).with_shards(1);
  FairOrderingService service(s.registry, s.expected, service_config);
  const DriveResult service_result = drive_service(service, s);
  expect_identical(service_result, legacy_result, label);
}

TEST(OnlineEquivalence, GaussianClosedForm) {
  OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.999;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    run_equivalence(seed, Shape::kGaussian, 8, 500, config, false,
                    "gaussian");
  }
}

TEST(OnlineEquivalence, GaussianForcedNumeric) {
  OnlineConfig config;
  config.threshold = 0.8;
  config.p_safe = 0.99;
  config.preceding.force_numeric = true;
  config.preceding.grid_points = 256;
  for (std::uint64_t seed : {7u, 13u}) {
    run_equivalence(seed, Shape::kGaussian, 6, 300, config, false,
                    "forced-numeric");
  }
}

TEST(OnlineEquivalence, GumbelNumericPath) {
  OnlineConfig config;
  config.threshold = 0.7;
  config.p_safe = 0.99;
  config.preceding.grid_points = 256;
  for (std::uint64_t seed : {5u, 17u}) {
    run_equivalence(seed, Shape::kGumbel, 6, 300, config, false, "gumbel");
  }
}

TEST(OnlineEquivalence, BimodalMixturePath) {
  OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.995;
  config.preceding.grid_points = 256;
  for (std::uint64_t seed : {3u, 9u}) {
    run_equivalence(seed, Shape::kBimodal, 6, 300, config, false, "bimodal");
  }
}

TEST(OnlineEquivalence, SilenceTimeoutWithSilentClient) {
  OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.99;
  config.client_silence_timeout = 500_us;
  for (std::uint64_t seed : {21u, 42u}) {
    run_equivalence(seed, Shape::kGaussian, 7, 400, config, true,
                    "silence-timeout");
  }
}

TEST(OnlineEquivalence, ViolationInducingLowPSafe) {
  // Aggressive emission makes late arrivals land behind emitted ranks, so
  // the fairness-violation counters must also agree (and actually count).
  OnlineConfig config;
  config.threshold = 0.6;
  config.p_safe = 0.51;
  std::size_t total_violations = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Scenario s = make_scenario(seed, Shape::kGaussian, 8, 400, false);
    OnlineConfig fast_config = config;
    OnlineSequencer fast(s.registry, s.expected, fast_config);
    const DriveResult fast_result = drive(fast, s);
    OnlineConfig ref_config = config;
    ref_config.reference_mode = true;
    OnlineSequencer ref(s.registry, s.expected, ref_config);
    const DriveResult ref_result = drive(ref, s);
    expect_identical(fast_result, ref_result, "low-p-safe");
    total_violations += fast_result.violations;
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(OnlineEquivalence, MidRunReannounceRefreshesConstants) {
  // Re-announcing a distribution mid-run must take effect in the fast
  // path exactly as it does in the reference path: both modes re-key and
  // re-sort their buffer at the first entry-point call after the
  // announce, so the sorted invariant (and the windowed scans it
  // licenses) holds across the boundary. Two regimes: a mild re-learn
  // whose re-sort is a no-op, and a drastic mean shift (≫ every critical
  // gap) landing on a deep backlog, where the re-sort genuinely reorders
  // the pending buffer.
  struct Variant {
    double new_mean;
    double new_sigma;
    std::size_t poll_every;
    const char* label;
  };
  for (const Variant& v :
       {Variant{20e-6, 120e-6, 7, "mild-shift"},
        Variant{0.5, 120e-6, 61, "drastic-shift-deep-buffer"}}) {
    Rng rng(99);
    sim::Population population = sim::gaussian_population(6, 50e-6, rng);
    const auto events =
        sim::poisson_workload(population.ids(), 300, 10_us, rng);
    const auto observed = sim::materialize_messages(
        population, events, sim::MaterializeConfig{}, rng);

    auto run = [&](bool reference_mode) {
      ClientRegistry registry;
      population.seed_registry(registry);
      OnlineConfig config;
      config.threshold = 0.75;
      config.p_safe = 0.99;
      config.reference_mode = reference_mode;
      OnlineSequencer seq(registry, population.ids(), config);
      DriveResult out;
      TimePoint now(0.0);
      std::size_t k = 0;
      for (const auto& om : observed) {
        now = std::max(now, om.message.arrival);
        Message copy = om.message;
        copy.arrival = now;
        seq.on_message(copy);
        if (++k == observed.size() / 2) {
          // Halfway through, client 0's clock gets re-learned.
          registry.announce(
              population.ids().front(),
              std::make_unique<stats::Gaussian>(v.new_mean, v.new_sigma));
        }
        if (k % v.poll_every == 0) {
          for (ClientId c : population.ids()) seq.on_heartbeat(c, now, now);
          for (auto& r : seq.poll(now)) out.records.push_back(std::move(r));
        }
      }
      for (ClientId c : population.ids()) {
        seq.on_heartbeat(c, now + 1_s, now + 1_ms);
      }
      for (auto& r : seq.poll(now + 1_s)) out.records.push_back(std::move(r));
      for (auto& r : seq.flush(now + 2_s)) {
        out.records.push_back(std::move(r));
      }
      out.violations = seq.fairness_violations();
      out.final_rank = seq.next_rank();
      out.pending_after_flush = seq.pending_count();
      return out;
    };

    const DriveResult fast_result = run(false);
    const DriveResult ref_result = run(true);
    expect_identical(fast_result, ref_result, v.label);
  }
}

TEST(OnlineEquivalence, NumericReannounceDropsStaleDensities) {
  // On the numeric path a re-announce must also retire the cached Δθ
  // densities: fresh means mixed with stale difference quantiles would
  // break the critical-gap correspondence (and its row bounds). Drive a
  // forced-numeric run with a drastic mid-run re-learn and require the
  // modes to stay bit-identical.
  Rng rng(1234);
  sim::Population population = sim::gaussian_population(5, 60e-6, rng);
  const auto events = sim::poisson_workload(population.ids(), 200, 12_us, rng);
  const auto observed = sim::materialize_messages(
      population, events, sim::MaterializeConfig{}, rng);

  auto run = [&](bool reference_mode) {
    ClientRegistry registry;
    population.seed_registry(registry);
    OnlineConfig config;
    config.threshold = 0.75;
    config.p_safe = 0.99;
    config.reference_mode = reference_mode;
    config.preceding.force_numeric = true;
    config.preceding.grid_points = 128;
    OnlineSequencer seq(registry, population.ids(), config);
    DriveResult out;
    TimePoint now(0.0);
    std::size_t k = 0;
    for (const auto& om : observed) {
      now = std::max(now, om.message.arrival);
      Message copy = om.message;
      copy.arrival = now;
      seq.on_message(copy);
      if (++k == observed.size() / 2) {
        registry.announce(population.ids().front(),
                          std::make_unique<stats::Gaussian>(5e-3, 200e-6));
      }
      if (k % 17 == 0) {
        for (ClientId c : population.ids()) seq.on_heartbeat(c, now, now);
        for (auto& r : seq.poll(now)) out.records.push_back(std::move(r));
      }
    }
    for (ClientId c : population.ids()) {
      seq.on_heartbeat(c, now + 1_s, now + 1_ms);
    }
    for (auto& r : seq.poll(now + 1_s)) out.records.push_back(std::move(r));
    for (auto& r : seq.flush(now + 2_s)) out.records.push_back(std::move(r));
    out.violations = seq.fairness_violations();
    out.final_rank = seq.next_rank();
    out.pending_after_flush = seq.pending_count();
    return out;
  };

  const DriveResult fast_result = run(false);
  const DriveResult ref_result = run(true);
  expect_identical(fast_result, ref_result, "numeric-reannounce");
}

TEST(OnlineEquivalence, SessionAndServiceSurfacesMatchLegacyFastMode) {
  OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.999;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    run_surface_equivalence(seed, Shape::kGaussian, 8, 500, config,
                            /*reference_mode=*/false, "surfaces-fast");
  }
}

TEST(OnlineEquivalence, SessionAndServiceSurfacesMatchLegacyReferenceMode) {
  OnlineConfig config;
  config.threshold = 0.75;
  config.p_safe = 0.99;
  for (std::uint64_t seed : {11u, 29u}) {
    run_surface_equivalence(seed, Shape::kGaussian, 6, 250, config,
                            /*reference_mode=*/true, "surfaces-reference");
  }
}

TEST(OnlineEquivalence, SessionSurfaceMatchesLegacyNumericPath) {
  OnlineConfig config;
  config.threshold = 0.7;
  config.p_safe = 0.99;
  config.preceding.grid_points = 256;
  run_surface_equivalence(17u, Shape::kGumbel, 6, 300, config,
                          /*reference_mode=*/false, "surfaces-numeric");
}

TEST(OnlineEquivalence, SessionSurfaceMatchesLegacyWithViolations) {
  // Low p_safe forces emissions past in-flight messages, so the session
  // path's violation accounting must match the legacy path exactly too.
  OnlineConfig config;
  config.threshold = 0.6;
  config.p_safe = 0.51;
  for (std::uint64_t seed : {1u, 2u}) {
    run_surface_equivalence(seed, Shape::kGaussian, 8, 400, config,
                            /*reference_mode=*/false, "surfaces-violations");
  }
}

TEST(OnlineEquivalence, SessionSurfaceMatchesLegacyAcrossReannounce) {
  // A mid-run re-announce must refresh the session-cached offsets through
  // the generation counter: drive the legacy surface and the session
  // surface over the same stream with the same mid-run re-learn and
  // require identical emissions.
  Rng rng(77);
  sim::Population population = sim::gaussian_population(6, 50e-6, rng);
  const auto events = sim::poisson_workload(population.ids(), 300, 10_us, rng);
  const auto observed = sim::materialize_messages(
      population, events, sim::MaterializeConfig{}, rng);

  auto run = [&](bool use_sessions) {
    ClientRegistry registry;
    population.seed_registry(registry);
    OnlineConfig config;
    config.threshold = 0.75;
    config.p_safe = 0.99;
    OnlineSequencer seq(registry, population.ids(), config);
    std::unordered_map<ClientId, OnlineSequencer::Session> sessions;
    if (use_sessions) {
      for (ClientId c : population.ids()) {
        sessions.emplace(c, seq.open_session(c));
      }
    }
    DriveResult out;
    TimePoint now(0.0);
    std::size_t k = 0;
    for (const auto& om : observed) {
      now = std::max(now, om.message.arrival);
      if (use_sessions) {
        sessions.at(om.message.client)
            .submit(om.message.stamp, om.message.id, now);
      } else {
        Message copy = om.message;
        copy.arrival = now;
        seq.on_message(copy);
      }
      if (++k == observed.size() / 2) {
        registry.announce(population.ids().front(),
                          std::make_unique<stats::Gaussian>(20e-6, 120e-6));
      }
      if (k % 7 == 0) {
        for (ClientId c : population.ids()) {
          if (use_sessions) {
            sessions.at(c).heartbeat(now, now);
          } else {
            seq.on_heartbeat(c, now, now);
          }
        }
        for (auto& r : seq.poll(now)) out.records.push_back(std::move(r));
      }
    }
    for (ClientId c : population.ids()) {
      if (use_sessions) {
        sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
      } else {
        seq.on_heartbeat(c, now + 1_s, now + 1_ms);
      }
    }
    for (auto& r : seq.poll(now + 1_s)) out.records.push_back(std::move(r));
    for (auto& r : seq.flush(now + 2_s)) out.records.push_back(std::move(r));
    out.violations = seq.fairness_violations();
    out.final_rank = seq.next_rank();
    out.pending_after_flush = seq.pending_count();
    return out;
  };

  const DriveResult session_result = run(true);
  const DriveResult legacy_result = run(false);
  expect_identical(session_result, legacy_result, "session-reannounce");
}

TEST(OnlineEquivalence, DuplicateExpectedClientsCollapse) {
  // The original unordered_map-backed constructor silently deduplicated
  // repeated expected clients; the dense ClientState vector must do the
  // same or the duplicate entry never hears anything and the
  // completeness gate blocks every emission.
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1e-4));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1e-4));
  OnlineConfig config;
  config.p_safe = 0.99;
  OnlineSequencer seq(registry, {ClientId(0), ClientId(0), ClientId(1)},
                      config);
  seq.on_message(Message{MessageId(1), ClientId(0), TimePoint(1.0),
                         TimePoint(1.0)});
  seq.on_heartbeat(ClientId(0), TimePoint(10.0), TimePoint(1.1));
  seq.on_heartbeat(ClientId(1), TimePoint(10.0), TimePoint(1.1));
  const auto emitted = seq.poll(TimePoint(5.0));
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].batch.messages.size(), 1u);
}

}  // namespace
}  // namespace tommy::core
