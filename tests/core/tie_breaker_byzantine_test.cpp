#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/byzantine.hpp"
#include "core/tie_breaker.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

Message msg(std::uint64_t id, std::uint32_t client, double stamp,
            double arrival = 0.0) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp),
                 TimePoint(arrival)};
}

// ----------------------------------------------------------- TieBreaker

TEST(FairTieBreaker, OutputIsAPermutationOfTheBatch) {
  FairTieBreaker breaker(1);
  Batch batch;
  batch.rank = 0;
  for (std::uint64_t k = 0; k < 6; ++k) {
    batch.messages.push_back(msg(k, static_cast<std::uint32_t>(k), 0.0));
  }
  const auto ordered = breaker.total_order(batch);
  ASSERT_EQ(ordered.size(), 6u);
  std::set<std::uint64_t> ids;
  for (const Message& m : ordered) ids.insert(m.id.value());
  EXPECT_EQ(ids.size(), 6u);
}

TEST(FairTieBreaker, SingletonBatchesAreNotCounted) {
  FairTieBreaker breaker(2);
  Batch batch;
  batch.rank = 0;
  batch.messages.push_back(msg(1, 1, 0.0));
  (void)breaker.total_order(batch);
  EXPECT_EQ(breaker.ledger().participations(ClientId(1)), 0u);
}

TEST(FairTieBreaker, LongRunWinRatesEqualize) {
  // §5: random tie-breaking gives stochastic fairness over time. Two
  // clients tie in 4000 batches; win rates should approach 50/50.
  FairTieBreaker breaker(3);
  for (int round = 0; round < 4000; ++round) {
    Batch batch;
    batch.rank = static_cast<Rank>(round);
    batch.messages.push_back(msg(2 * static_cast<std::uint64_t>(round), 1, 0.0));
    batch.messages.push_back(
        msg(2 * static_cast<std::uint64_t>(round) + 1, 2, 0.0));
    (void)breaker.total_order(batch);
  }
  EXPECT_NEAR(breaker.ledger().win_rate(ClientId(1)), 0.5, 0.03);
  EXPECT_NEAR(breaker.ledger().win_rate(ClientId(2)), 0.5, 0.03);
  EXPECT_LT(breaker.ledger().disparity(), 1.15);
}

TEST(FairTieBreaker, FlattensSequencerResultInRankOrder) {
  FairTieBreaker breaker(4);
  SequencerResult result;
  Batch b0;
  b0.rank = 0;
  b0.messages.push_back(msg(1, 1, 0.0));
  Batch b1;
  b1.rank = 1;
  b1.messages.push_back(msg(2, 2, 0.0));
  b1.messages.push_back(msg(3, 3, 0.0));
  result.batches = {b0, b1};

  const auto total = breaker.total_order(result);
  ASSERT_EQ(total.size(), 3u);
  EXPECT_EQ(total[0].id, MessageId(1));  // batch order preserved
  EXPECT_TRUE(total[1].id == MessageId(2) || total[1].id == MessageId(3));
}

TEST(FairTieBreaker, DeterministicGivenSeed) {
  Batch batch;
  batch.rank = 0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    batch.messages.push_back(msg(k, static_cast<std::uint32_t>(k), 0.0));
  }
  FairTieBreaker a(42);
  FairTieBreaker b(42);
  const auto oa = a.total_order(batch);
  const auto ob = b.total_order(batch);
  for (std::size_t k = 0; k < oa.size(); ++k) EXPECT_EQ(oa[k].id, ob[k].id);
}

// ------------------------------------------------------------- Byzantine

class ByzantineTest : public ::testing::Test {
 protected:
  ByzantineTest() {
    // θ ~ N(0, 1 ms): residual = θ + delay should sit in roughly
    // [−3.7 ms, +3.7 ms + max_delay].
    registry_.announce(ClientId(0),
                       std::make_unique<stats::Gaussian>(0.0, 1e-3));
    config_.epsilon = 1e-4;
    config_.max_plausible_delay = Duration::from_millis(10);
  }
  ClientRegistry registry_;
  ByzantineConfig config_;
};

TEST_F(ByzantineTest, HonestResidualsPass) {
  ByzantineGuard guard(registry_, config_);
  // stamp 1.000, arrival 1.0015: residual 1.5 ms = plausible θ + delay.
  EXPECT_EQ(guard.inspect(msg(1, 0, 1.0, 1.0015)), Plausibility::kPlausible);
  EXPECT_EQ(guard.flagged_count(ClientId(0)), 0u);
  EXPECT_EQ(guard.inspected_count(ClientId(0)), 1u);
}

TEST_F(ByzantineTest, BackdatedStampIsFlagged) {
  ByzantineGuard guard(registry_, config_);
  // Claims generation 100 ms before arrival: no plausible θ + delay ≤
  // 3.7 + 10 ms explains a 100 ms residual.
  EXPECT_EQ(guard.inspect(msg(1, 0, 1.0, 1.1)), Plausibility::kBackdated);
  EXPECT_EQ(guard.flagged_count(ClientId(0)), 1u);
}

TEST_F(ByzantineTest, ForwardDatedStampIsFlagged) {
  ByzantineGuard guard(registry_, config_);
  // Stamp 20 ms in the arrival's future: θ would have to be < −20 ms.
  EXPECT_EQ(guard.inspect(msg(1, 0, 1.02, 1.0)),
            Plausibility::kForwardDated);
}

TEST_F(ByzantineTest, SuspicionScoreAccumulates) {
  ByzantineGuard guard(registry_, config_);
  for (int k = 0; k < 8; ++k) {
    (void)guard.inspect(msg(static_cast<std::uint64_t>(k), 0, 1.0, 1.001));
  }
  for (int k = 0; k < 2; ++k) {
    (void)guard.inspect(
        msg(static_cast<std::uint64_t>(100 + k), 0, 1.0, 1.5));
  }
  EXPECT_NEAR(guard.suspicion_score(ClientId(0)), 0.2, 1e-12);
  EXPECT_EQ(guard.suspects(0.1, 5).size(), 1u);
  EXPECT_TRUE(guard.suspects(0.5, 5).empty());
  EXPECT_TRUE(guard.suspects(0.1, 100).empty());  // not enough inspected
}

TEST_F(ByzantineTest, HonestHighVolumeClientStaysClean) {
  ByzantineGuard guard(registry_, config_);
  stats::Gaussian theta(0.0, 1e-3);
  Rng rng(9);
  for (int k = 0; k < 2000; ++k) {
    const double offset = theta.sample(rng);
    const double delay = rng.uniform(0.0, 5e-3);
    // arrival − stamp = θ + delay by construction.
    (void)guard.inspect(msg(static_cast<std::uint64_t>(k), 0, 1.0,
                            1.0 + offset + delay));
  }
  // ε = 1e-4 per side: expect a handful of false flags at most.
  EXPECT_LT(guard.suspicion_score(ClientId(0)), 0.005);
}

TEST(ByzantineConfigDeathTest, Validation) {
  ClientRegistry registry;
  ByzantineConfig bad;
  bad.epsilon = 0.7;
  EXPECT_DEATH(ByzantineGuard(registry, bad), "precondition");
}

}  // namespace
}  // namespace tommy::core
