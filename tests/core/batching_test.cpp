#include "core/batching.hpp"

#include <gtest/gtest.h>

#include <map>

namespace tommy::core {
namespace {

Message msg(std::uint64_t id) {
  return Message{MessageId(id), ClientId(0), TimePoint(0.0)};
}

/// Probability table keyed by (id, id).
class ProbTable {
 public:
  void set(std::uint64_t a, std::uint64_t b, double p) {
    table_[{a, b}] = p;
    table_[{b, a}] = 1.0 - p;
  }
  PairProbabilityFn fn() const {
    return [this](const Message& x, const Message& y) {
      return table_.at({x.id.value(), y.id.value()});
    };
  }

 private:
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> table_;
};

TEST(BatchByThreshold, SplitsOnConfidentAdjacentPairs) {
  ProbTable p;
  p.set(0, 1, 0.9);   // boundary
  p.set(1, 2, 0.6);   // no boundary
  p.set(2, 3, 0.8);   // boundary
  p.set(0, 2, 0.9);
  p.set(0, 3, 0.95);
  p.set(1, 3, 0.9);

  const auto batches =
      batch_by_threshold({msg(0), msg(1), msg(2), msg(3)}, p.fn(), 0.75);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].rank, 0u);
  EXPECT_EQ(batches[1].rank, 1u);
  EXPECT_EQ(batches[2].rank, 2u);
  ASSERT_EQ(batches[0].messages.size(), 1u);
  ASSERT_EQ(batches[1].messages.size(), 2u);
  ASSERT_EQ(batches[2].messages.size(), 1u);
  EXPECT_EQ(batches[0].messages[0].id, MessageId(0));
  EXPECT_EQ(batches[1].messages[0].id, MessageId(1));
  EXPECT_EQ(batches[1].messages[1].id, MessageId(2));
  EXPECT_EQ(batches[2].messages[0].id, MessageId(3));
}

TEST(BatchByThreshold, SingleMessageSingleBatch) {
  ProbTable p;
  const auto batches = batch_by_threshold({msg(0)}, p.fn(), 0.75);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].messages.size(), 1u);
}

TEST(BatchByThreshold, EmptyInput) {
  ProbTable p;
  EXPECT_TRUE(batch_by_threshold({}, p.fn(), 0.75).empty());
}

TEST(BatchByThreshold, ThresholdExactlyAtBoundaryDoesNotSplit) {
  ProbTable p;
  p.set(0, 1, 0.75);  // strict inequality required
  const auto batches = batch_by_threshold({msg(0), msg(1)}, p.fn(), 0.75);
  EXPECT_EQ(batches.size(), 1u);
}

TEST(BatchByThreshold, ClosureRuleMergesThroughUncertainMember) {
  // Appendix C shape: both adjacent pairs uncertain — one batch under
  // either rule.
  ProbTable p;
  p.set(0, 1, 0.55);  // 1a vs 2: uncertain
  p.set(0, 2, 0.99);  // 1a vs 1b: confident
  p.set(1, 2, 0.55);  // 2 vs 1b: uncertain

  const std::vector<Message> order{msg(0), msg(1), msg(2)};

  const auto adjacent =
      batch_by_threshold(order, p.fn(), 0.75, BatchRule::kAdjacent);
  EXPECT_EQ(adjacent.size(), 1u);

  const auto closure =
      batch_by_threshold(order, p.fn(), 0.75, BatchRule::kClosure);
  EXPECT_EQ(closure.size(), 1u);

  // Adjacent pairs confident but a skip pair uncertain: the adjacent rule
  // overconfidently cuts three batches (and its result violates
  // min_cross_batch_probability > threshold); the closure rule keeps one.
  ProbTable q;
  q.set(0, 1, 0.9);   // adjacent: confident
  q.set(1, 2, 0.9);   // adjacent: confident
  q.set(0, 2, 0.55);  // skip pair: uncertain
  const auto adj2 =
      batch_by_threshold(order, q.fn(), 0.75, BatchRule::kAdjacent);
  EXPECT_EQ(adj2.size(), 3u);
  EXPECT_LE(min_cross_batch_probability(adj2, q.fn()), 0.75);
  const auto closure2 =
      batch_by_threshold(order, q.fn(), 0.75, BatchRule::kClosure);
  EXPECT_EQ(closure2.size(), 1u);

  // Uncertainty confined to the front: closure still refuses every cut
  // that an uncertain pair crosses.
  ProbTable r;
  r.set(0, 1, 0.6);
  r.set(1, 2, 0.9);
  r.set(0, 2, 0.55);
  const auto adj3 =
      batch_by_threshold(order, r.fn(), 0.75, BatchRule::kAdjacent);
  EXPECT_EQ(adj3.size(), 2u);  // cuts between 1 and 2 — overconfident
  const auto closure3 =
      batch_by_threshold(order, r.fn(), 0.75, BatchRule::kClosure);
  EXPECT_EQ(closure3.size(), 1u);
}

TEST(BatchByThreshold, ClosureRuleGuaranteesCrossBatchConfidence) {
  // Fully confident chain: closure and adjacent agree, and the guarantee
  // min_cross_batch_probability > threshold holds.
  ProbTable p;
  p.set(0, 1, 0.9);
  p.set(0, 2, 0.95);
  p.set(1, 2, 0.85);
  const std::vector<Message> order{msg(0), msg(1), msg(2)};
  const auto closure =
      batch_by_threshold(order, p.fn(), 0.75, BatchRule::kClosure);
  EXPECT_EQ(closure.size(), 3u);
  EXPECT_GT(min_cross_batch_probability(closure, p.fn()), 0.75);
}

TEST(BatchGroups, NeverSplitsAGroup) {
  ProbTable p;
  p.set(0, 1, 0.99);
  p.set(0, 2, 0.99);
  p.set(1, 2, 0.99);
  std::vector<std::vector<Message>> groups;
  groups.push_back({msg(0), msg(1)});  // a 2-cycle SCC, say
  groups.push_back({msg(2)});
  const auto batches = batch_groups_by_threshold(std::move(groups), p.fn(),
                                                 0.75);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].messages.size(), 2u);
  EXPECT_EQ(batches[1].messages.size(), 1u);
}

TEST(BatchGroups, MergesGroupsOnUncertainBoundary) {
  ProbTable p;
  p.set(1, 2, 0.6);  // boundary pair uncertain -> merge groups
  std::vector<std::vector<Message>> groups;
  groups.push_back({msg(0), msg(1)});
  groups.push_back({msg(2), msg(3)});
  const auto batches = batch_groups_by_threshold(std::move(groups), p.fn(),
                                                 0.75);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].messages.size(), 4u);
}

TEST(MinCrossBatchProbability, FindsTheWeakestOrderedPair) {
  ProbTable p;
  p.set(0, 1, 0.9);
  p.set(0, 2, 0.8);
  p.set(1, 2, 0.65);

  std::vector<Batch> batches(3);
  for (std::uint64_t k = 0; k < 3; ++k) {
    batches[k].rank = k;
    batches[k].messages.push_back(msg(k));
  }
  EXPECT_DOUBLE_EQ(min_cross_batch_probability(batches, p.fn()), 0.65);
}

TEST(BatchByThresholdDeathTest, RejectsDegenerateThresholds) {
  ProbTable p;
  EXPECT_DEATH(batch_by_threshold({msg(0)}, p.fn(), 0.5), "precondition");
  EXPECT_DEATH(batch_by_threshold({msg(0)}, p.fn(), 1.0), "precondition");
}

}  // namespace
}  // namespace tommy::core
