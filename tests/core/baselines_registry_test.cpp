#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/client_registry.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

Message msg(std::uint64_t id, std::uint32_t client, double stamp,
            double arrival = 0.0) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp),
                 TimePoint(arrival)};
}

// --------------------------------------------------------- ClientRegistry

TEST(ClientRegistry, AnnounceAndLookup) {
  ClientRegistry registry;
  EXPECT_FALSE(registry.contains(ClientId(1)));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(1.0, 2.0));
  ASSERT_TRUE(registry.contains(ClientId(1)));
  EXPECT_DOUBLE_EQ(registry.offset_distribution(ClientId(1)).mean(), 1.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ClientRegistry, ReAnnounceReplaces) {
  ClientRegistry registry;
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(1.0, 2.0));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(9.0, 1.0));
  EXPECT_DOUBLE_EQ(registry.offset_distribution(ClientId(1)).mean(), 9.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ClientRegistry, AnnounceFromSummaryMaterializes) {
  ClientRegistry registry;
  registry.announce(ClientId(2), stats::DistributionSummary(
                                     stats::GaussianParams{0.5, 0.25}));
  EXPECT_TRUE(registry.offset_distribution(ClientId(2)).is_gaussian());
  EXPECT_DOUBLE_EQ(registry.offset_distribution(ClientId(2)).stddev(), 0.25);
}

TEST(ClientRegistry, AllGaussianFlag) {
  ClientRegistry registry;
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1.0));
  EXPECT_TRUE(registry.all_gaussian());
  registry.announce(ClientId(2), std::make_unique<stats::Uniform>(-1.0, 1.0));
  EXPECT_FALSE(registry.all_gaussian());
}

TEST(ClientRegistry, ClientsSorted) {
  ClientRegistry registry;
  registry.announce(ClientId(5), std::make_unique<stats::Gaussian>(0.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1.0));
  registry.announce(ClientId(3), std::make_unique<stats::Gaussian>(0.0, 1.0));
  EXPECT_EQ(registry.clients(),
            (std::vector<ClientId>{ClientId(1), ClientId(3), ClientId(5)}));
}

TEST(ClientRegistryDeathTest, UnknownClientLookupDies) {
  ClientRegistry registry;
  EXPECT_DEATH((void)registry.offset_distribution(ClientId(7)),
               "precondition");
}

// --------------------------------------------------------------- TrueTime

class TrueTimeTest : public ::testing::Test {
 protected:
  TrueTimeTest() {
    registry_.announce(ClientId(0),
                       std::make_unique<stats::Gaussian>(0.0, 1e-3));
    registry_.announce(ClientId(1),
                       std::make_unique<stats::Gaussian>(0.0, 10e-3));
  }
  ClientRegistry registry_;
};

TEST_F(TrueTimeTest, DisjointIntervalsGetDistinctRanks) {
  TrueTimeSequencer seq(registry_);
  // 3σ = 3 ms for client 0; stamps 100 ms apart are clearly disjoint.
  const auto result =
      seq.sequence({msg(1, 0, 0.0), msg(2, 0, 0.1), msg(3, 0, 0.2)});
  ASSERT_EQ(result.batches.size(), 3u);
  EXPECT_EQ(result.batches[0].messages[0].id, MessageId(1));
  EXPECT_EQ(result.batches[2].messages[0].id, MessageId(3));
}

TEST_F(TrueTimeTest, OverlappingIntervalsShareARank) {
  TrueTimeSequencer seq(registry_);
  // 2 ms apart with ±3 ms intervals: overlap -> same batch.
  const auto result = seq.sequence({msg(1, 0, 0.0), msg(2, 0, 2e-3)});
  ASSERT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].messages.size(), 2u);
}

TEST_F(TrueTimeTest, OverlapIsTransitiveViaChaining) {
  TrueTimeSequencer seq(registry_);
  // a-b overlap, b-c overlap, a-c do not: all three must share a rank
  // (connected component semantics).
  const auto result =
      seq.sequence({msg(1, 0, 0.0), msg(2, 0, 5e-3), msg(3, 0, 10e-3)});
  ASSERT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].messages.size(), 3u);
}

TEST_F(TrueTimeTest, WideClockWidensIntervals) {
  TrueTimeSequencer seq(registry_);
  // Client 1 has 3σ = 30 ms: messages 20 ms apart overlap through it.
  const auto mixed = seq.sequence({msg(1, 1, 0.0), msg(2, 0, 0.02)});
  EXPECT_EQ(mixed.batches.size(), 1u);
  // The same stamps on the tight client alone would separate.
  const auto tight = seq.sequence({msg(1, 0, 0.0), msg(2, 0, 0.02)});
  EXPECT_EQ(tight.batches.size(), 2u);
}

TEST_F(TrueTimeTest, MeanCorrectionCanBeDisabled) {
  ClientRegistry biased;
  biased.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.05, 1e-3));
  biased.announce(ClientId(1), std::make_unique<stats::Gaussian>(-0.05, 1e-3));

  // Corrected: stamps 0.0/0.01 become centers 0.05/−0.04 -> order flips.
  TrueTimeSequencer corrected(biased, TrueTimeConfig{3.0, true});
  const auto with_corr = corrected.sequence({msg(1, 0, 0.0), msg(2, 1, 0.01)});
  ASSERT_EQ(with_corr.batches.size(), 2u);
  EXPECT_EQ(with_corr.batches[0].messages[0].id, MessageId(2));

  // Literal paper form [T−3σ, T+3σ]: raw stamps keep message 1 first.
  TrueTimeSequencer literal(biased, TrueTimeConfig{3.0, false});
  const auto without = literal.sequence({msg(1, 0, 0.0), msg(2, 1, 0.01)});
  ASSERT_EQ(without.batches.size(), 2u);
  EXPECT_EQ(without.batches[0].messages[0].id, MessageId(1));
}

// -------------------------------------------------------------- WFO/FIFO

TEST(WfoSequencer, OrdersByRawStampWithSingletonBatches) {
  WfoSequencer seq;
  const auto result =
      seq.sequence({msg(1, 0, 3.0), msg(2, 1, 1.0), msg(3, 0, 2.0)});
  ASSERT_EQ(result.batches.size(), 3u);
  EXPECT_EQ(result.batches[0].messages[0].id, MessageId(2));
  EXPECT_EQ(result.batches[1].messages[0].id, MessageId(3));
  EXPECT_EQ(result.batches[2].messages[0].id, MessageId(1));
}

TEST(WfoSequencer, StampTiesBreakById) {
  WfoSequencer seq;
  const auto result = seq.sequence({msg(9, 0, 1.0), msg(2, 1, 1.0)});
  ASSERT_EQ(result.batches.size(), 2u);
  EXPECT_EQ(result.batches[0].messages[0].id, MessageId(2));
}

TEST(FifoSequencer, OrdersByArrival) {
  FifoSequencer seq;
  const auto result = seq.sequence({msg(1, 0, 1.0, /*arrival=*/5.0),
                                    msg(2, 1, 2.0, /*arrival=*/4.0),
                                    msg(3, 0, 3.0, /*arrival=*/6.0)});
  ASSERT_EQ(result.batches.size(), 3u);
  EXPECT_EQ(result.batches[0].messages[0].id, MessageId(2));
  EXPECT_EQ(result.batches[1].messages[0].id, MessageId(1));
  EXPECT_EQ(result.batches[2].messages[0].id, MessageId(3));
}

TEST(Baselines, NamesAreStable) {
  ClientRegistry registry;
  EXPECT_EQ(TrueTimeSequencer(registry).name(), "truetime");
  EXPECT_EQ(WfoSequencer().name(), "wfo");
  EXPECT_EQ(FifoSequencer().name(), "fifo");
}

}  // namespace
}  // namespace tommy::core
