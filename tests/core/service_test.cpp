// FairOrderingService facade + session-handle surface: routing, shard
// composition over the shared primed engine, sink emission, session
// lifecycle (unknown clients, re-announce/generation refresh, flush
// interleaving), and the ingest FIFO-contract precondition.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sim/offline_runner.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"
#include "stats/gaussian.hpp"
#include "stats/summary.hpp"

namespace tommy::core {
namespace {

using namespace tommy::literals;

constexpr double kSigma = 1e-3;

ClientRegistry make_registry(std::uint32_t n, double sigma = kSigma) {
  ClientRegistry registry;
  for (std::uint32_t c = 0; c < n; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Gaussian>(0.0, sigma));
  }
  return registry;
}

std::vector<ClientId> ids(std::uint32_t n) {
  std::vector<ClientId> out;
  for (std::uint32_t c = 0; c < n; ++c) out.push_back(ClientId(c));
  return out;
}

TEST(KeyRouters, RangeRouterSplitsTheSpanEvenly) {
  const RangeRouter router(ClientId(0), ClientId(99));
  std::vector<std::size_t> counts(4, 0);
  for (std::uint32_t c = 0; c < 100; ++c) {
    const std::uint32_t s = router.route(ClientId(c), 4);
    ASSERT_LT(s, 4u);
    ++counts[s];
  }
  for (std::size_t count : counts) EXPECT_EQ(count, 25u);
  // Ranges are contiguous: routing is monotone in the id.
  std::uint32_t prev = 0;
  for (std::uint32_t c = 0; c < 100; ++c) {
    const std::uint32_t s = router.route(ClientId(c), 4);
    EXPECT_GE(s, prev);
    prev = s;
  }
  // Ids outside the span clamp instead of crashing.
  EXPECT_EQ(router.route(ClientId(1000), 4), 3u);
}

TEST(KeyRouters, ModuloRouterWrapsIds) {
  const ModuloRouter router;
  for (std::uint32_t c = 0; c < 20; ++c) {
    EXPECT_EQ(router.route(ClientId(c), 3), c % 3);
  }
}

TEST(FairOrderingServiceTest, PartitionsClientsAcrossShards) {
  const ClientRegistry registry = make_registry(8);
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99);
  FairOrderingService service(registry, ids(8), config);

  EXPECT_EQ(service.shard_count(), 2u);
  EXPECT_TRUE(service.has_shard(0));
  EXPECT_TRUE(service.has_shard(1));
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_EQ(service.shard_of(ClientId(c)), c < 4 ? 0u : 1u);
  }
}

TEST(FairOrderingServiceTest, EmptyShardsAreTolerated) {
  const ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  // Everything routes to shard 0 of 3; shards 1 and 2 stay unpopulated.
  class ZeroRouter final : public KeyRouter {
   public:
    std::uint32_t route(ClientId, std::uint32_t) const override { return 0; }
    std::string name() const override { return "zero"; }
  };
  config.with_shards(3).with_router(std::make_shared<ZeroRouter>());
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(4), config);

  EXPECT_TRUE(service.has_shard(0));
  EXPECT_FALSE(service.has_shard(1));
  EXPECT_FALSE(service.has_shard(2));

  auto session = service.open_session(ClientId(2));
  session.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  EXPECT_EQ(service.pending_count(), 1u);
  std::size_t emitted = 0;
  EXPECT_EQ(service.poll(TimePoint(1.0),
                         [&](EmissionRecord&&, std::uint32_t) { ++emitted; }),
            0u);  // completeness gate: quiet clients block, shards absent
                  // from the partition do not
  EXPECT_EQ(service.next_safe_time(),
            service.shard(0).next_safe_time());
}

TEST(FairOrderingServiceTest, SinkReceivesShardTaggedRankOrderedBatches) {
  const ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99);
  FairOrderingService service(registry, ids(4), config);

  std::unordered_map<std::uint32_t, FairOrderingService::Session> sessions;
  for (std::uint32_t c = 0; c < 4; ++c) {
    sessions.emplace(c, service.open_session(ClientId(c)));
  }
  EXPECT_EQ(sessions.at(0).shard(), 0u);
  EXPECT_EQ(sessions.at(3).shard(), 1u);

  // Two well-separated messages per shard.
  sessions.at(0).submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  sessions.at(3).submit(TimePoint(1.05), MessageId(2), TimePoint(1.051));
  sessions.at(1).submit(TimePoint(1.1), MessageId(3), TimePoint(1.101));
  sessions.at(2).submit(TimePoint(1.15), MessageId(4), TimePoint(1.151));

  for (std::uint32_t c = 0; c < 4; ++c) {
    sessions.at(c).heartbeat(TimePoint(20.0), TimePoint(1.2));
  }

  std::vector<std::pair<std::uint32_t, Rank>> seen;  // (shard, rank)
  std::vector<MessageId> order;
  const std::size_t emitted =
      service.poll(TimePoint(10.0), [&](EmissionRecord&& record,
                                        std::uint32_t shard) {
        seen.emplace_back(shard, record.batch.rank);
        for (const Message& m : record.batch.messages) order.push_back(m.id);
      });
  EXPECT_EQ(emitted, 4u);
  // Shards are visited in index order; ranks are dense per shard.
  const std::vector<std::pair<std::uint32_t, Rank>> expected_seen = {
      {0u, 0u}, {0u, 1u}, {1u, 0u}, {1u, 1u}};
  EXPECT_EQ(seen, expected_seen);
  const std::vector<MessageId> expected_order = {MessageId(1), MessageId(3),
                                                 MessageId(2), MessageId(4)};
  EXPECT_EQ(order, expected_order);
  EXPECT_EQ(service.pending_count(), 0u);
}

TEST(FairOrderingServiceTest, RoutedLegacyEntryPointsWork) {
  // The session-less convenience surface: submit(Message) and
  // heartbeat(client, ...) route per call and behave like the shard's
  // own legacy entry points.
  const ClientRegistry registry = make_registry(4);
  ServiceConfig config;
  config.with_shards(2).with_p_safe(0.99);
  FairOrderingService service(registry, ids(4), config);

  service.submit(Message{MessageId(1), ClientId(0), TimePoint(1.0),
                         TimePoint(1.001)});
  service.submit(Message{MessageId(2), ClientId(3), TimePoint(1.05),
                         TimePoint(1.051)});
  EXPECT_EQ(service.pending_count(), 2u);
  EXPECT_EQ(service.shard(0).pending_count(), 1u);
  EXPECT_EQ(service.shard(1).pending_count(), 1u);

  for (std::uint32_t c = 0; c < 4; ++c) {
    service.heartbeat(ClientId(c), TimePoint(20.0), TimePoint(1.1));
  }
  std::vector<MessageId> order;
  EXPECT_EQ(service.poll(TimePoint(10.0),
                         [&](EmissionRecord&& record, std::uint32_t) {
                           for (const Message& m : record.batch.messages) {
                             order.push_back(m.id);
                           }
                         }),
            2u);
  const std::vector<MessageId> expected = {MessageId(1), MessageId(2)};
  EXPECT_EQ(order, expected);
  EXPECT_DEATH(service.submit(Message{MessageId(3), ClientId(77),
                                      TimePoint(2.0), TimePoint(2.0)}),
               "precondition");
}

TEST(FairOrderingServiceTest, MultiShardMatchesIndependentBareSequencers) {
  // A sharded service must behave exactly like N bare sequencers, each
  // fed its routed sub-stream: randomized check, per-shard bit-identical
  // emissions.
  Rng rng(123);
  const sim::Population pop = sim::gaussian_population(12, 60e-6, rng);
  const auto events = sim::poisson_workload(pop.ids(), 600, 15_us, rng);
  auto observed = sim::materialize_messages(pop, events,
                                            sim::MaterializeConfig{}, rng);
  std::stable_sort(observed.begin(), observed.end(),
                   [](const sim::ObservedMessage& a,
                      const sim::ObservedMessage& b) {
                     return a.message.arrival < b.message.arrival;
                   });

  ClientRegistry registry;
  pop.seed_registry(registry);
  constexpr std::uint32_t kShards = 3;
  ServiceConfig config;
  config.with_shards(kShards).with_p_safe(0.995);
  FairOrderingService service(registry, pop.ids(), config);

  // Independent twins: one bare sequencer per shard over that shard's
  // clients only (sharing the service's partition via shard_of).
  std::vector<std::vector<ClientId>> members(kShards);
  for (ClientId c : pop.ids()) {
    members[service.shard_of(c)].push_back(c);
  }
  OnlineConfig online;
  online.p_safe = 0.995;
  std::vector<std::unique_ptr<OnlineSequencer>> twins;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    ASSERT_FALSE(members[s].empty());
    twins.push_back(
        std::make_unique<OnlineSequencer>(registry, members[s], online));
  }

  std::unordered_map<ClientId, FairOrderingService::Session> sessions;
  for (ClientId c : pop.ids()) sessions.emplace(c, service.open_session(c));

  std::vector<std::vector<EmissionRecord>> service_out(kShards);
  auto sink = [&](EmissionRecord&& record, std::uint32_t shard) {
    service_out[shard].push_back(std::move(record));
  };
  std::vector<std::vector<EmissionRecord>> twin_out(kShards);

  TimePoint now(0.0);
  std::size_t k = 0;
  for (const auto& om : observed) {
    now = std::max(now, om.message.arrival);
    const std::uint32_t shard = service.shard_of(om.message.client);
    sessions.at(om.message.client)
        .submit(om.message.stamp, om.message.id, now);
    Message copy = om.message;
    copy.arrival = now;
    twins[shard]->on_message(copy);
    ++k;
    if (k % 11 == 0) {
      for (ClientId c : pop.ids()) {
        sessions.at(c).heartbeat(now, now);
        twins[service.shard_of(c)]->on_heartbeat(c, now, now);
      }
    }
    if (k % 5 == 0) {
      service.poll(now, sink);
      for (std::uint32_t s = 0; s < kShards; ++s) {
        for (auto& r : twins[s]->poll(now)) {
          twin_out[s].push_back(std::move(r));
        }
      }
    }
  }
  for (ClientId c : pop.ids()) {
    sessions.at(c).heartbeat(now + 1_s, now + 1_ms);
    twins[service.shard_of(c)]->on_heartbeat(c, now + 1_s, now + 1_ms);
  }
  service.poll(now + 1_s, sink);
  service.flush(now + 2_s, sink);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (auto& r : twins[s]->poll(now + 1_s)) twin_out[s].push_back(std::move(r));
    for (auto& r : twins[s]->flush(now + 2_s)) {
      twin_out[s].push_back(std::move(r));
    }
  }

  std::size_t total = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ASSERT_EQ(service_out[s].size(), twin_out[s].size());
    for (std::size_t r = 0; r < service_out[s].size(); ++r) {
      const EmissionRecord& a = service_out[s][r];
      const EmissionRecord& b = twin_out[s][r];
      EXPECT_EQ(a.batch.rank, b.batch.rank);
      EXPECT_EQ(a.emitted_at.seconds(), b.emitted_at.seconds());
      EXPECT_EQ(a.safe_time.seconds(), b.safe_time.seconds());
      ASSERT_EQ(a.batch.messages.size(), b.batch.messages.size());
      for (std::size_t m = 0; m < a.batch.messages.size(); ++m) {
        EXPECT_EQ(a.batch.messages[m], b.batch.messages[m]);
      }
      total += a.batch.messages.size();
    }
    EXPECT_EQ(service.shard(s).fairness_violations(),
              twins[s]->fairness_violations());
  }
  EXPECT_EQ(total, observed.size());
  EXPECT_EQ(service.pending_count(), 0u);
}

TEST(FairOrderingServiceTest, FlushInterleavesWithLiveSessions) {
  // flush() is a gate-ignoring drain, not a terminal state: sessions keep
  // submitting afterwards and ranks stay dense.
  const ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.999);
  FairOrderingService service(registry, ids(2), config);
  auto a = service.open_session(ClientId(0));
  auto b = service.open_session(ClientId(1));

  a.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  b.submit(TimePoint(1.1), MessageId(2), TimePoint(1.101));

  // Mid-stream shutdown drain: both messages leave despite closed gates.
  std::vector<EmissionRecord> flushed;
  EXPECT_EQ(service.flush(TimePoint(1.2),
                          [&](EmissionRecord&& r, std::uint32_t) {
                            flushed.push_back(std::move(r));
                          }),
            2u);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].batch.rank, 0u);
  EXPECT_EQ(flushed[1].batch.rank, 1u);
  EXPECT_EQ(service.pending_count(), 0u);

  // The same sessions stay live and feed the next ranks.
  a.submit(TimePoint(2.0), MessageId(3), TimePoint(2.001));
  b.submit(TimePoint(2.1), MessageId(4), TimePoint(2.101));
  a.heartbeat(TimePoint(30.0), TimePoint(2.2));
  b.heartbeat(TimePoint(30.0), TimePoint(2.2));
  std::vector<EmissionRecord> polled;
  service.poll(TimePoint(10.0), [&](EmissionRecord&& r, std::uint32_t) {
    polled.push_back(std::move(r));
  });
  ASSERT_EQ(polled.size(), 2u);
  EXPECT_EQ(polled[0].batch.rank, 2u);  // ranks continue past the flush
  EXPECT_EQ(polled[0].batch.messages[0].id, MessageId(3));
  EXPECT_EQ(polled[1].batch.rank, 3u);
  EXPECT_EQ(service.fairness_violations(), 0u);
}

TEST(FairOrderingServiceTest, BareSequencerFlushInterleavesWithSessions) {
  // Same interleaving at the OnlineSequencer level (no facade).
  const ClientRegistry registry = make_registry(2);
  OnlineConfig config;
  config.p_safe = 0.999;
  OnlineSequencer seq(registry, ids(2), config);
  auto a = seq.open_session(ClientId(0));
  auto b = seq.open_session(ClientId(1));

  a.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  const auto flushed = seq.flush(TimePoint(1.1));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].batch.rank, 0u);

  b.submit(TimePoint(2.0), MessageId(2), TimePoint(2.001));
  a.submit(TimePoint(2.2), MessageId(3), TimePoint(2.201));
  a.heartbeat(TimePoint(30.0), TimePoint(2.3));
  b.heartbeat(TimePoint(30.0), TimePoint(2.3));
  const auto polled = seq.poll(TimePoint(10.0));
  ASSERT_EQ(polled.size(), 2u);
  EXPECT_EQ(polled[0].batch.rank, 1u);
  EXPECT_EQ(polled[0].batch.messages[0].id, MessageId(2));
  EXPECT_EQ(polled[1].batch.rank, 2u);
  EXPECT_EQ(seq.next_rank(), 3u);
}

TEST(FairOrderingServiceTest, OpenSessionOnUnknownClientDies) {
  const ClientRegistry registry = make_registry(2);
  OnlineConfig config;
  config.p_safe = 0.99;
  OnlineSequencer seq(registry, ids(2), config);
  EXPECT_DEATH((void)seq.open_session(ClientId(99)), "precondition");

  ServiceConfig service_config;
  service_config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), service_config);
  EXPECT_DEATH((void)service.open_session(ClientId(99)), "precondition");
}

TEST(FairOrderingServiceTest, OpenSessionOnRegisteredButUnexpectedClientDies) {
  // Registry knows client 2, but the sequencer's expected set does not:
  // sessions (like the legacy entry points) must refuse it.
  const ClientRegistry registry = make_registry(3);
  OnlineConfig config;
  config.p_safe = 0.99;
  OnlineSequencer seq(registry, ids(2), config);
  EXPECT_DEATH((void)seq.open_session(ClientId(2)), "precondition");
}

TEST(FairOrderingServiceTest, SessionRefreshesAfterReannounce) {
  // Generation-counter path: a session opened before a re-announce keeps
  // working and picks up the new distribution (visible through T_b, which
  // tracks the re-announced safe-emission quantile).
  ClientRegistry registry;
  registry.announce(ClientId(0),
                    std::make_unique<stats::Gaussian>(0.0, 1e-3));
  registry.announce(ClientId(1),
                    std::make_unique<stats::Gaussian>(0.0, 1e-3));
  OnlineConfig config;
  config.p_safe = 0.999;
  OnlineSequencer seq(registry, ids(2), config);
  auto session = seq.open_session(ClientId(0));

  session.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  const double tb_tight = seq.next_safe_time().seconds();
  EXPECT_NEAR(tb_tight, 1.0 + 1e-3 * 3.0902, 1e-5);
  (void)seq.flush(TimePoint(1.5));

  // Client 0's clock is re-learned 100× wider. The already-open session
  // must serve the new constants (stale caches would keep the old T_b).
  registry.announce(ClientId(0),
                    std::make_unique<stats::Gaussian>(0.0, 0.1));
  session.submit(TimePoint(2.0), MessageId(2), TimePoint(2.001));
  const double tb_wide = seq.next_safe_time().seconds();
  EXPECT_NEAR(tb_wide, 2.0 + 0.1 * 3.0902, 1e-3);

  // And a session opened after the re-announce agrees with it.
  auto fresh = seq.open_session(ClientId(0));
  fresh.submit(TimePoint(2.0001), MessageId(3), TimePoint(2.01));
  EXPECT_NEAR(seq.next_safe_time().seconds(), tb_wide, 2e-3);
}

TEST(FairOrderingServiceTest, OutOfOrderArrivalDies) {
  // The ingest contract (FIFO delivery: arrival stamps non-decreasing) is
  // a checked precondition on every surface.
  const ClientRegistry registry = make_registry(2);
  OnlineConfig config;
  config.p_safe = 0.99;

  {
    OnlineSequencer seq(registry, ids(2), config);
    auto session = seq.open_session(ClientId(0));
    session.submit(TimePoint(1.0), MessageId(1), TimePoint(2.0));
    EXPECT_DEATH(session.submit(TimePoint(1.1), MessageId(2), TimePoint(1.0)),
                 "precondition");
  }
  {
    OnlineSequencer seq(registry, ids(2), config);
    seq.on_message(Message{MessageId(1), ClientId(0), TimePoint(1.0),
                           TimePoint(2.0)});
    EXPECT_DEATH(seq.on_message(Message{MessageId(2), ClientId(1),
                                        TimePoint(1.1), TimePoint(1.0)}),
                 "precondition");
  }
}

TEST(FairOrderingServiceTest, ServiceConfigBuilderComposes) {
  ServiceConfig config;
  OnlineConfig online;
  online.client_silence_timeout = 5_ms;
  config.with_online(online)
      .with_threshold(0.8)
      .with_p_safe(0.995)
      .with_shards(2)
      .with_router(std::make_shared<ModuloRouter>());
  EXPECT_EQ(config.online.threshold, 0.8);
  EXPECT_EQ(config.online.p_safe, 0.995);
  EXPECT_EQ(config.online.client_silence_timeout, 5_ms);
  EXPECT_EQ(config.shard_count, 2u);
  ASSERT_NE(config.router, nullptr);
  EXPECT_EQ(config.router->name(), "modulo");

  const ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(4), config);
  EXPECT_EQ(service.router().name(), "modulo");
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(service.shard_of(ClientId(c)), c % 2);
  }
}

TEST(FairOrderingServiceTest, CustomSinkClassTakesTheSinkOverload) {
  // A user-defined EmissionSink lvalue must bind to poll(now,
  // EmissionSink&), not get wrapped by the constrained callback
  // template (which would not compile).
  class CountingSink final : public EmissionSink {
   public:
    void on_emission(EmissionRecord&& record, std::uint32_t) override {
      messages += record.batch.messages.size();
    }
    std::size_t messages{0};
  };

  const ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  auto session = service.open_session(ClientId(0));
  session.submit(TimePoint(1.0), MessageId(1), TimePoint(1.001));
  session.heartbeat(TimePoint(20.0), TimePoint(1.1));
  service.heartbeat(ClientId(1), TimePoint(20.0), TimePoint(1.1));

  CountingSink sink;
  EXPECT_EQ(service.poll(TimePoint(10.0), sink), 1u);
  EXPECT_EQ(sink.messages, 1u);
}

TEST(FairOrderingServiceTest, MismatchedSharedEngineConfigDies) {
  // Two sequencers sharing one engine with different (threshold, p_safe)
  // would re-prime the whole engine on every call; that misuse is a
  // checked precondition at construction.
  const ClientRegistry registry = make_registry(2);
  auto engine = std::make_shared<const PrecedingEngine>(registry);
  OnlineConfig first;
  first.p_safe = 0.99;
  OnlineSequencer a(engine, ids(2), first);
  OnlineConfig second;
  second.p_safe = 0.999;  // disagrees with what `a` primed
  EXPECT_DEATH(OnlineSequencer(engine, ids(2), second), "precondition");
}

TEST(FairOrderingServiceTest, SharedEngineIsPrimedOnceAndReallyShared) {
  const ClientRegistry registry = make_registry(6);
  ServiceConfig config;
  config.with_shards(3).with_p_safe(0.99);
  FairOrderingService service(registry, ids(6), config);
  EXPECT_TRUE(service.engine().fast_ready(config.online.threshold,
                                          config.online.p_safe));
  for (std::uint32_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(service.has_shard(s));
    // Every shard sees the whole registry through the one engine.
    EXPECT_EQ(&service.shard(s).registry(), &registry);
  }
}

// ── Connection-front-end hooks (try_open_session & friends) ─────────────

TEST(FairOrderingServiceTest, ExpectsClientReflectsTheExpectedSet) {
  const ClientRegistry registry = make_registry(4);
  FairOrderingService service(registry, ids(3), {});  // client 3 not expected
  EXPECT_TRUE(service.expects_client(ClientId(0)));
  EXPECT_TRUE(service.expects_client(ClientId(2)));
  EXPECT_FALSE(service.expects_client(ClientId(3)));
  EXPECT_FALSE(service.expects_client(ClientId(99)));
}

TEST(FairOrderingServiceTest, TryOpenSessionReportsUnknownClients) {
  const ClientRegistry registry = make_registry(2);
  FairOrderingService service(registry, ids(2), {});

  OpenError error{};
  auto session = service.try_open_session(ClientId(7), &error);
  EXPECT_FALSE(session.has_value());
  EXPECT_EQ(error, OpenError::kUnknownClient);

  session = service.try_open_session(ClientId(1), &error);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(error, OpenError::kNone);
  session->submit(TimePoint(1.0), MessageId(5), TimePoint(1.01));
  EXPECT_EQ(service.pending_count(), 1u);
}

TEST(FairOrderingServiceTest, MovedRegistryKeepsSessionsOpenAndReconfigures) {
  ClientRegistry registry = make_registry(2);
  ServiceConfig config;
  config.with_worker_threads().with_p_safe(0.99);
  FairOrderingService service(registry, ids(2), config);
  EXPECT_EQ(service.primed_generation(), registry.generation());
  EXPECT_FALSE(service.reconfig_pending());

  // A changed re-announce no longer freezes the threaded service: known
  // clients keep opening sessions against the live epoch while the
  // reconfig is outstanding.
  registry.announce(ClientId(0),
                    stats::DistributionSummary(stats::GaussianParams{0.0, kSigma}));
  const std::uint64_t moved = registry.generation();
  EXPECT_NE(moved, service.primed_generation());
  EXPECT_TRUE(service.reconfig_pending());

  OpenError error{};
  const auto session = service.try_open_session(ClientId(0), &error);
  EXPECT_TRUE(session.has_value());
  EXPECT_EQ(error, OpenError::kNone);

  // The blocking convenience loop installs the new epoch.
  service.reconfigure();
  EXPECT_EQ(service.primed_generation(), moved);
  EXPECT_FALSE(service.reconfig_pending());
  EXPECT_GE(service.epoch(), 1u);
}

TEST(ClientRegistryTest, IdenticalSummaryReannounceKeepsGenerationStable) {
  ClientRegistry registry;
  const stats::DistributionSummary summary(stats::GaussianParams{1e-4, 2e-3});
  EXPECT_TRUE(registry.announce(ClientId(1), summary));
  const std::uint64_t generation = registry.generation();
  ASSERT_TRUE(registry.announced_summary(ClientId(1)).has_value());

  EXPECT_FALSE(registry.announce(ClientId(1), summary));  // no-op re-send
  EXPECT_EQ(registry.generation(), generation);

  const stats::DistributionSummary changed(stats::GaussianParams{2e-4, 2e-3});
  EXPECT_TRUE(registry.announce(ClientId(1), changed));
  EXPECT_EQ(registry.generation(), generation + 1);

  // Direct Distribution announces always replace and clear the wire form.
  EXPECT_TRUE(registry.announce(
      ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1e-3)));
  EXPECT_EQ(registry.announced_summary(ClientId(1)), std::nullopt);
  EXPECT_EQ(registry.generation(), generation + 2);
}

}  // namespace
}  // namespace tommy::core
