#include "core/preceding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"

namespace tommy::core {
namespace {

Message msg(std::uint64_t id, std::uint32_t client, double stamp_s) {
  return Message{MessageId(id), ClientId(client), TimePoint(stamp_s)};
}

class PrecedingGaussian : public ::testing::Test {
 protected:
  PrecedingGaussian() {
    registry_.announce(ClientId(0),
                       std::make_unique<stats::Gaussian>(2.0, 3.0));
    registry_.announce(ClientId(1),
                       std::make_unique<stats::Gaussian>(-1.0, 4.0));
  }
  ClientRegistry registry_;
};

TEST_F(PrecedingGaussian, MatchesClosedForm) {
  PrecedingEngine engine(registry_);
  const Message i = msg(0, 0, 10.0);
  const Message j = msg(1, 1, 12.0);
  // p = Φ((T_j + μ_j − T_i − μ_i)/√(σ_i² + σ_j²)) = Φ(−1/5).
  const double expected = math::normal_cdf((12.0 - 1.0 - 10.0 - 2.0) / 5.0);
  EXPECT_NEAR(engine.preceding_probability(i, j), expected, 1e-12);
}

TEST_F(PrecedingGaussian, ComplementaryInBothDirections) {
  PrecedingEngine engine(registry_);
  const Message i = msg(0, 0, 1.0);
  const Message j = msg(1, 1, 1.5);
  const double p_ij = engine.preceding_probability(i, j);
  const double p_ji = engine.preceding_probability(j, i);
  EXPECT_NEAR(p_ij + p_ji, 1.0, 1e-12);
}

TEST_F(PrecedingGaussian, MatchesMonteCarlo) {
  PrecedingEngine engine(registry_);
  const Message i = msg(0, 0, 0.0);
  const Message j = msg(1, 1, 1.0);
  const double p = engine.preceding_probability(i, j);

  Rng rng(77);
  const stats::Gaussian ti(2.0, 3.0);   // θ_i
  const stats::Gaussian tj(-1.0, 4.0);  // θ_j
  int hits = 0;
  const int n = 400000;
  for (int k = 0; k < n; ++k) {
    // T*_i < T*_j ⟺ T_i + θ_i < T_j + θ_j.
    if (0.0 + ti.sample(rng) < 1.0 + tj.sample(rng)) ++hits;
  }
  EXPECT_NEAR(p, static_cast<double>(hits) / n, 3e-3);
}

TEST_F(PrecedingGaussian, NumericPathAgreesWithClosedForm) {
  PrecedingConfig config;
  config.force_numeric = true;
  config.grid_points = 2048;
  PrecedingEngine numeric(registry_, config);
  PrecedingEngine closed(registry_);

  for (double gap : {-8.0, -2.0, -0.5, 0.0, 0.5, 2.0, 8.0}) {
    const Message i = msg(0, 0, 0.0);
    const Message j = msg(1, 1, gap);
    EXPECT_NEAR(numeric.preceding_probability(i, j),
                closed.preceding_probability(i, j), 2e-3)
        << "gap=" << gap;
  }
}

TEST_F(PrecedingGaussian, DirectAndFftConvolutionAgree) {
  PrecedingConfig fft_config;
  fft_config.force_numeric = true;
  fft_config.method = stats::ConvolutionMethod::kFft;
  PrecedingConfig direct_config = fft_config;
  direct_config.method = stats::ConvolutionMethod::kDirect;
  direct_config.grid_points = 512;
  fft_config.grid_points = 512;

  PrecedingEngine fft(registry_, fft_config);
  PrecedingEngine direct(registry_, direct_config);
  const Message i = msg(0, 0, 0.0);
  const Message j = msg(1, 1, 1.0);
  EXPECT_NEAR(fft.preceding_probability(i, j),
              direct.preceding_probability(i, j), 1e-9);
}

TEST_F(PrecedingGaussian, SameClientPairUsesIndependentDraws) {
  // Two messages from one client: equal stamps -> exactly 1/2 (Δθ of two
  // iid draws is symmetric about 0).
  PrecedingEngine engine(registry_);
  const Message a = msg(0, 0, 5.0);
  const Message b = msg(1, 0, 5.0);
  EXPECT_NEAR(engine.preceding_probability(a, b), 0.5, 1e-12);
}

TEST_F(PrecedingGaussian, LargeGapsSaturate) {
  PrecedingEngine engine(registry_);
  const Message early = msg(0, 0, 0.0);
  const Message late = msg(1, 1, 1000.0);
  EXPECT_GT(engine.preceding_probability(early, late), 0.999999);
  EXPECT_LT(engine.preceding_probability(late, early), 1e-6);
}

TEST(PrecedingNumeric, CachesPerOrderedClientPair) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Uniform>(-1.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Uniform>(-2.0, 2.0));

  PrecedingConfig config;
  config.grid_points = 256;
  PrecedingEngine engine(registry, config);
  EXPECT_EQ(engine.cached_pairs(), 0u);

  const Message i = msg(0, 0, 0.0);
  const Message j = msg(1, 1, 0.1);
  (void)engine.preceding_probability(i, j);
  EXPECT_EQ(engine.cached_pairs(), 1u);
  (void)engine.preceding_probability(i, j);
  EXPECT_EQ(engine.cached_pairs(), 1u);  // hit, not a second entry
  (void)engine.preceding_probability(j, i);
  EXPECT_EQ(engine.cached_pairs(), 2u);  // reverse direction is its own key
}

TEST(PrecedingNumeric, BoundedCacheEvictsLeastRecentlyUsed) {
  ClientRegistry registry;
  for (std::uint32_t c = 0; c < 4; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Uniform>(-1.0 - c, 1.0 + c));
  }

  PrecedingConfig config;
  config.grid_points = 128;
  config.difference_cache_capacity = 2;
  PrecedingEngine engine(registry, config);

  const auto probe = [&engine](std::uint32_t a, std::uint32_t b) {
    return engine.preceding_probability(msg(0, a, 0.0), msg(1, b, 0.1));
  };

  const double p01 = probe(0, 1);
  const double p12 = probe(1, 2);
  EXPECT_EQ(engine.cached_pairs(), 2u);

  // (0,1) is LRU; touching it first makes (1,2) the eviction victim.
  EXPECT_EQ(probe(0, 1), p01);
  (void)probe(2, 3);  // evicts (1,2)
  EXPECT_EQ(engine.cached_pairs(), 2u);

  // Re-deriving the evicted pair gives the same density → same value.
  EXPECT_EQ(probe(1, 2), p12);
  EXPECT_EQ(engine.cached_pairs(), 2u);
}

TEST(PrecedingNumeric, BoundedCacheMatchesUnboundedEverywhere) {
  // The bound must only affect memory, never values: sweep a grid of
  // queries over every ordered pair against an unbounded twin.
  ClientRegistry bounded_registry;
  ClientRegistry unbounded_registry;
  for (std::uint32_t c = 0; c < 5; ++c) {
    const double half_width = 0.5 + 0.3 * c;
    bounded_registry.announce(
        ClientId(c), std::make_unique<stats::Uniform>(-half_width,
                                                      half_width));
    unbounded_registry.announce(
        ClientId(c), std::make_unique<stats::Uniform>(-half_width,
                                                      half_width));
  }

  PrecedingConfig bounded_config;
  bounded_config.grid_points = 128;
  bounded_config.difference_cache_capacity = 3;
  PrecedingEngine bounded(bounded_registry, bounded_config);

  PrecedingConfig unbounded_config;
  unbounded_config.grid_points = 128;
  PrecedingEngine unbounded(unbounded_registry, unbounded_config);

  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = 0; b < 5; ++b) {
      if (a == b) continue;
      for (double gap : {-0.4, 0.0, 0.3}) {
        const Message i = msg(0, a, gap);
        const Message j = msg(1, b, 0.0);
        EXPECT_EQ(bounded.preceding_probability(i, j),
                  unbounded.preceding_probability(i, j))
            << "pair (" << a << "," << b << ") gap " << gap;
      }
      EXPECT_LE(bounded.cached_pairs(), 3u);
    }
  }
  EXPECT_GT(unbounded.cached_pairs(), 3u);  // the bound was actually live
}

TEST(PrecedingNumeric, BoundedCacheSurvivesLazyCriticalGapFill) {
  // fast_critical_gap memoizes scalars derived from densities the LRU may
  // since have evicted; the scalars must stay valid and consistent.
  ClientRegistry registry;
  for (std::uint32_t c = 0; c < 4; ++c) {
    registry.announce(ClientId(c),
                      std::make_unique<stats::Uniform>(-1.0, 1.0 + 0.1 * c));
  }
  PrecedingConfig config;
  config.grid_points = 128;
  config.difference_cache_capacity = 1;  // maximally hostile
  PrecedingEngine engine(registry, config);
  engine.prime(0.75, 0.99);

  std::vector<double> first_pass;
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (a != b) first_pass.push_back(engine.fast_critical_gap(a, b));
    }
  }
  EXPECT_LE(engine.cached_pairs(), 1u);
  std::size_t k = 0;
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_EQ(engine.fast_critical_gap(a, b), first_pass[k++]);
      }
    }
  }
}

TEST(PrecedingNumeric, UniformPairHasClosedFormCheck) {
  // θ_i, θ_j ~ U(0, 1) iid: P(θ_j − θ_i > g) = (1−g)²/2 for g in [0, 1].
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Uniform>(0.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Uniform>(0.0, 1.0));
  PrecedingConfig config;
  config.grid_points = 2048;
  PrecedingEngine engine(registry, config);

  for (double g : {0.0, 0.25, 0.5, 0.75}) {
    const Message i = msg(0, 0, g);   // T_i − T_j = g
    const Message j = msg(1, 1, 0.0);
    const double expected = (1.0 - g) * (1.0 - g) / 2.0;
    EXPECT_NEAR(engine.preceding_probability(i, j), expected, 3e-3)
        << "g=" << g;
  }
}

TEST(SafeEmission, UsesOffsetQuantile) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(1.0, 2.0));
  PrecedingEngine engine(registry);

  const Message m = msg(0, 0, 10.0);
  const TimePoint tf = engine.safe_emission_time(m, 0.999);
  // T^F = T + Q_θ(0.999) = 10 + 1 + 2·Φ⁻¹(0.999).
  EXPECT_NEAR(tf.seconds(), 11.0 + 2.0 * math::normal_quantile(0.999), 1e-9);
  // And by construction P(T* < T^F) = 0.999.
  const stats::Gaussian theta(1.0, 2.0);
  EXPECT_NEAR(theta.cdf(tf.seconds() - 10.0), 0.999, 1e-9);
}

TEST(SafeEmission, MonotoneInPSafe) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1.0));
  PrecedingEngine engine(registry);
  const Message m = msg(0, 0, 0.0);
  EXPECT_LT(engine.safe_emission_time(m, 0.9),
            engine.safe_emission_time(m, 0.99));
  EXPECT_LT(engine.safe_emission_time(m, 0.99),
            engine.safe_emission_time(m, 0.9999));
}

TEST(CompletenessFrontier, ConservativeForUncertainClients) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 10.0));
  PrecedingEngine engine(registry);

  const TimePoint hw(100.0);
  // frontier = hw + Q_θ(1 − p_safe); the noisier clock pushes further back.
  const TimePoint tight = engine.completeness_frontier(ClientId(0), hw, 0.999);
  const TimePoint loose = engine.completeness_frontier(ClientId(1), hw, 0.999);
  EXPECT_LT(loose, tight);
  EXPECT_LT(tight, hw);  // 1 − p_safe quantile is negative for zero-mean θ
}

TEST(CorrectedStamp, AddsMeanOffset) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(2.5, 1.0));
  PrecedingEngine engine(registry);
  EXPECT_DOUBLE_EQ(engine.corrected_stamp(msg(0, 0, 1.0)).seconds(), 3.5);
}

// ── Critical-gap fast path ─────────────────────────────────────────────

class CriticalGapFixture : public ::testing::Test {
 protected:
  /// Sweeps stamp gaps (dense near the decision boundary) and asserts the
  /// cached-constant predicate agrees with the full probability
  /// evaluation for every ordered client pair.
  void expect_predicates_agree(const ClientRegistry& registry,
                               PrecedingConfig config, double threshold,
                               double span) {
    PrecedingEngine engine(registry, config);
    engine.prime(threshold, 0.999);
    const std::size_t n = registry.size();
    Rng rng(4242);
    for (std::uint32_t ci = 0; ci < n; ++ci) {
      for (std::uint32_t cj = 0; cj < n; ++cj) {
        const ClientId id_i = registry.client_at(ci);
        const ClientId id_j = registry.client_at(cj);
        const double crit = engine.fast_critical_gap(ci, cj);
        EXPECT_LE(crit, engine.fast_max_gap_from(ci));
        EXPECT_LE(crit, engine.fast_global_max_gap());
        for (int k = 0; k < 200; ++k) {
          // Half the samples hug the critical gap, half roam the span.
          const double corrected_gap =
              (k % 2 == 0) ? crit + rng.uniform(-0.02 * span, 0.02 * span)
                           : rng.uniform(-span, span);
          const Message a{MessageId(0), id_i, TimePoint(0.0)};
          // Solve stamp_b from the corrected gap so both forms see the
          // same geometry: c_b − c_a = stamp_b + μ_j − μ_i.
          const double mu_i = registry.distribution_at(ci).mean();
          const double mu_j = registry.distribution_at(cj).mean();
          const Message b{MessageId(1), id_j,
                          TimePoint(corrected_gap + mu_i - mu_j)};
          const double ca = engine.fast_corrected(ci, a.stamp);
          const double cb = engine.fast_corrected(cj, b.stamp);
          const bool fast =
              engine.fast_confidently_preceding(ci, ca, cj, cb);
          const bool slow = engine.preceding_probability(a, b) > threshold;
          EXPECT_EQ(fast, slow)
              << "pair (" << ci << "," << cj << ") corrected gap "
              << corrected_gap << " crit " << crit;
        }
      }
    }
  }
};

TEST_F(CriticalGapFixture, GaussianPredicateMatchesProbability) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(2.0, 3.0));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(-1.0, 4.0));
  registry.announce(ClientId(2), std::make_unique<stats::Gaussian>(0.5, 0.2));
  for (double threshold : {0.6, 0.75, 0.9, 0.99}) {
    expect_predicates_agree(registry, PrecedingConfig{}, threshold, 40.0);
  }
}

TEST_F(CriticalGapFixture, NumericPredicateMatchesProbability) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Uniform>(-1.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Uniform>(-0.5, 2.0));
  registry.announce(ClientId(2), std::make_unique<stats::Gaussian>(0.0, 0.7));
  PrecedingConfig config;
  config.grid_points = 1024;
  for (double threshold : {0.66, 0.8, 0.95}) {
    expect_predicates_agree(registry, config, threshold, 8.0);
  }
}

TEST_F(CriticalGapFixture, FastOffsetsMatchSlowQueries) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(1.0, 2.0));
  registry.announce(ClientId(1), std::make_unique<stats::Uniform>(-3.0, 5.0));
  PrecedingEngine engine(registry);
  const double p_safe = 0.999;
  engine.prime(0.75, p_safe);
  for (std::uint32_t c = 0; c < registry.size(); ++c) {
    const ClientId id = registry.client_at(c);
    const Message m{MessageId(7), id, TimePoint(42.0)};
    EXPECT_EQ(engine.fast_corrected(c, m.stamp),
              engine.corrected_stamp(m).seconds());
    EXPECT_EQ(engine.fast_safe_emission_time(c, m.stamp).seconds(),
              engine.safe_emission_time(m, p_safe).seconds());
    EXPECT_EQ(engine.fast_completeness_frontier(c, TimePoint(42.0)).seconds(),
              engine.completeness_frontier(id, TimePoint(42.0),
                                           p_safe).seconds());
  }
}

TEST_F(CriticalGapFixture, PrimeTracksRegistryGeneration) {
  ClientRegistry registry;
  registry.announce(ClientId(0), std::make_unique<stats::Gaussian>(0.0, 1.0));
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 1.0));
  PrecedingEngine engine(registry);
  engine.prime(0.75, 0.999);
  EXPECT_TRUE(engine.fast_ready(0.75, 0.999));
  EXPECT_FALSE(engine.fast_ready(0.8, 0.999));

  const double before = engine.fast_critical_gap(0, 1);
  registry.announce(ClientId(1), std::make_unique<stats::Gaussian>(0.0, 5.0));
  EXPECT_FALSE(engine.fast_ready(0.75, 0.999));
  engine.prime(0.75, 0.999);
  EXPECT_GT(engine.fast_critical_gap(0, 1), before);
}

}  // namespace
}  // namespace tommy::core
