// SpscRing: capacity rounding, FIFO order, full/empty behaviour, bulk
// pops, and a two-thread stress run that checks every element crosses the
// ring intact and in order (run it under TSan to validate the memory
// ordering, not just the logic).
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace tommy {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderAndFullEmpty) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));

  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(std::move(v)));
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(std::move(overflow)));  // full
  EXPECT_EQ(ring.size(), 4u);

  for (int expected = 0; expected < 4; ++expected) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());

  // Wrap around: indices keep running past the capacity.
  for (int round = 0; round < 3; ++round) {
    for (int v = 0; v < 3; ++v) {
      int item = round * 10 + v;
      ASSERT_TRUE(ring.try_push(std::move(item)));
    }
    for (int v = 0; v < 3; ++v) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + v);
    }
  }
}

TEST(SpscRingTest, PopBulkRespectsBudgetAndOrder) {
  SpscRing<int> ring(8);
  for (int v = 0; v < 6; ++v) {
    int item = v;
    ASSERT_TRUE(ring.try_push(std::move(item)));
  }
  std::vector<int> out;
  EXPECT_EQ(ring.pop_bulk(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_bulk(out, 4), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(ring.pop_bulk(out, 4), 0u);
}

TEST(SpscRingTest, TwoThreadStressPreservesEveryElementInOrder) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(64);  // small: forces frequent full/empty
  std::thread producer([&ring] {
    for (std::uint64_t v = 0; v < kCount; ++v) {
      std::uint64_t item = v;
      while (!ring.try_push(std::move(item))) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> bulk;
  while (expected < kCount) {
    bulk.clear();
    if (ring.pop_bulk(bulk, 32) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::uint64_t v : bulk) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace tommy
