// The log-linear histogram's contract: bounded relative quantization
// error at every magnitude (the property that makes p99/p999 regression
// gates meaningful), exact percentiles against a sorted oracle in the
// exact low range, and merge/reset semantics used when per-iteration
// bench histograms are folded into one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/latency_histogram.hpp"

namespace tommy {
namespace {

TEST(LatencyHistogram, ExactInLowRangeMatchesSortedOracle) {
  LatencyHistogram h;
  std::vector<std::uint64_t> oracle;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng() % 100;  // within exact-bucket range
    h.record_ns(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(std::max(
        1.0, p * static_cast<double>(oracle.size()) + 0.5));
    EXPECT_EQ(h.percentile_ns(p), oracle[std::min(rank, oracle.size()) - 1])
        << "p=" << p;
  }
  EXPECT_EQ(h.count(), oracle.size());
  EXPECT_EQ(h.max_ns(), oracle.back());
}

TEST(LatencyHistogram, RelativeErrorBoundedAtEveryMagnitude) {
  // One sample per histogram: the reported p100 must sit within one
  // sub-bucket (2^-6 ≈ 1.6%) of the true value, from ns to seconds.
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 3 + 7) {
    LatencyHistogram h;
    h.record_ns(v);
    const double got = static_cast<double>(h.percentile_ns(1.0));
    const double err =
        std::abs(got - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(err, 1.0 / 64.0) << "value " << v;
  }
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndSecondsConvert) {
  LatencyHistogram h;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform spread over six decades.
    const double exponent = 2.0 + 6.0 * (static_cast<double>(rng() % 1000) / 1000.0);
    h.record(std::pow(10.0, exponent) * 1e-9);
  }
  std::uint64_t prev = 0;
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const std::uint64_t v = h.percentile_ns(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_EQ(h.percentile_seconds(p), static_cast<double>(v) * 1e-9);
    prev = v;
  }
  EXPECT_LE(prev, h.max_ns() + h.max_ns() / 64);
}

TEST(LatencyHistogram, MergeEqualsRecordingIntoOne) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  std::mt19937_64 rng(17);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    if (i % 2 == 0) {
      a.record_ns(v);
    } else {
      b.record_ns(v);
    }
    combined.record_ns(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_ns(), combined.max_ns());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.percentile_ns(p), combined.percentile_ns(p)) << "p=" << p;
  }
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile_ns(0.99), 0u);
}

}  // namespace
}  // namespace tommy
