#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tommy::math {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdf, SymmetricAboutZero) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.4}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12) << "x=" << x;
  }
}

TEST(NormalCdf, TailAccuracy) {
  // erfc-based form keeps relative accuracy deep in the lower tail.
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450376946e-10, 1e-18);
  EXPECT_GT(normal_cdf(-8.0), 0.0);
  EXPECT_LT(normal_cdf(8.0), 1.0 + 1e-15);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-16);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p = 0.001; p < 0.9995; p += 0.007) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, ExtremeTails) {
  EXPECT_NEAR(normal_cdf(normal_quantile(1e-9)), 1e-9, 1e-13);
  EXPECT_NEAR(normal_cdf(normal_quantile(1.0 - 1e-9)), 1.0 - 1e-9, 1e-12);
}

TEST(NormalQuantile, MedianIsZero) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(NormalQuantileDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH((void)normal_quantile(0.0), "precondition");
  EXPECT_DEATH((void)normal_quantile(1.0), "precondition");
}

TEST(ClampProbability, ClampsBothSides) {
  EXPECT_EQ(clamp_probability(-0.25), 0.0);
  EXPECT_EQ(clamp_probability(1.25), 1.0);
  EXPECT_EQ(clamp_probability(0.42), 0.42);
}

TEST(Lerp, InterpolatesAndHandlesDegenerate) {
  EXPECT_NEAR(lerp(0.0, 0.0, 1.0, 10.0, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(lerp(2.0, 5.0, 2.0, 7.0, 2.0), 6.0, 1e-12);  // x0 == x1
}

TEST(Trapezoid, IntegratesLinearFunctionExactly) {
  // f(x) = x on [0, 1] with 11 points -> exact 0.5.
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) y.push_back(i / 10.0);
  EXPECT_NEAR(trapezoid(y, 0.1), 0.5, 1e-12);
}

TEST(Trapezoid, DegenerateInputs) {
  EXPECT_EQ(trapezoid(std::vector<double>{}, 0.1), 0.0);
  EXPECT_EQ(trapezoid(std::vector<double>{3.0}, 0.1), 0.0);
}

TEST(CumulativeTrapezoid, MatchesTotalAndIsMonotone) {
  std::vector<double> y{1.0, 2.0, 4.0, 1.0, 0.5};
  const auto cum = cumulative_trapezoid(y, 0.5);
  ASSERT_EQ(cum.size(), y.size());
  EXPECT_EQ(cum.front(), 0.0);
  EXPECT_NEAR(cum.back(), trapezoid(y, 0.5), 1e-12);
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
}

TEST(SampleStats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStats, SingletonVarianceIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(SampleQuantile, InterpolatesSorted) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_NEAR(sample_quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(sample_quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(sample_quantile(xs, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(sample_quantile(xs, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1 + 1e-10)));
}

}  // namespace
}  // namespace tommy::math
