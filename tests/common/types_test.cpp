#include "common/types.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace tommy {
namespace {

TEST(TaggedId, DefaultIsZero) {
  EXPECT_EQ(ClientId{}.value(), 0u);
  EXPECT_EQ(MessageId{}.value(), 0u);
}

TEST(TaggedId, ComparisonsFollowValue) {
  EXPECT_EQ(ClientId(3), ClientId(3));
  EXPECT_NE(ClientId(3), ClientId(4));
  EXPECT_LT(ClientId(3), ClientId(4));
  EXPECT_GE(MessageId(9), MessageId(9));
}

TEST(TaggedId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ClientId, MessageId>);
  static_assert(!std::is_same_v<ClientId, BatchId>);
}

TEST(TaggedId, Hashable) {
  std::unordered_set<ClientId> set;
  set.insert(ClientId(1));
  set.insert(ClientId(2));
  set.insert(ClientId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ClientId(2)));
  EXPECT_FALSE(set.contains(ClientId(3)));
}

TEST(TaggedId, Streams) {
  std::ostringstream os;
  os << ClientId(42);
  EXPECT_EQ(os.str(), "42");
}

}  // namespace
}  // namespace tommy
