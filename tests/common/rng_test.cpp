#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace tommy {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 2.5);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent_copy(37);
  (void)parent_copy.next_u64();  // advance equally to the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleUniformityOnThreeElements) {
  // All 6 permutations of {0,1,2} should appear with similar frequency.
  Rng rng(43);
  std::vector<int> counts(6, 0);
  const auto index_of = [](const std::vector<int>& p) {
    return p[0] * 2 + (p[1] > p[2] ? 1 : 0);
  };
  for (int i = 0; i < 60000; ++i) {
    std::vector<int> p{0, 1, 2};
    rng.shuffle(p);
    ++counts[static_cast<std::size_t>(index_of(p))];
  }
  for (int count : counts) EXPECT_NEAR(count, 10000, 400);
}

}  // namespace
}  // namespace tommy
