#include "common/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tommy {
namespace {

using namespace tommy::literals;

TEST(Duration, UnitConversions) {
  EXPECT_DOUBLE_EQ(Duration::from_micros(1.0).seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(Duration::from_millis(2.0).seconds(), 2e-3);
  EXPECT_DOUBLE_EQ(Duration::from_nanos(5.0).seconds(), 5e-9);
  EXPECT_DOUBLE_EQ(Duration(1.5).micros(), 1.5e6);
  EXPECT_DOUBLE_EQ(Duration(1.5).millis(), 1500.0);
  EXPECT_DOUBLE_EQ(Duration(2e-9).nanos(), 2.0);
}

TEST(Duration, Literals) {
  EXPECT_DOUBLE_EQ((3_s).seconds(), 3.0);
  EXPECT_DOUBLE_EQ((1.5_ms).seconds(), 1.5e-3);
  EXPECT_DOUBLE_EQ((20_us).seconds(), 20e-6);
  EXPECT_DOUBLE_EQ((7_ns).seconds(), 7e-9);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(1_s + 500_ms, Duration(1.5));
  EXPECT_EQ(1_s - 250_ms, Duration(0.75));
  EXPECT_EQ(2.0 * (1_s), Duration(2.0));
  EXPECT_EQ((1_s) * 2.0, Duration(2.0));
  EXPECT_EQ((3_s) / 2.0, Duration(1.5));
  EXPECT_DOUBLE_EQ((3_s) / (2_s), 1.5);
  EXPECT_EQ(-(1_s), Duration(-1.0));

  Duration d = 1_s;
  d += 1_s;
  EXPECT_EQ(d, 2_s);
  d -= 500_ms;
  EXPECT_EQ(d, Duration(1.5));
  d *= 2.0;
  EXPECT_EQ(d, 3_s);
}

TEST(Duration, ComparisonAndInfinity) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_TRUE((1_s).is_finite());
  EXPECT_FALSE(Duration::infinity().is_finite());
  EXPECT_GT(Duration::infinity(), Duration(1e100));
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::epoch();
  const TimePoint t1 = t0 + 2_s;
  EXPECT_DOUBLE_EQ(t1.seconds(), 2.0);
  EXPECT_EQ(t1 - t0, 2_s);
  EXPECT_EQ(t1 - 500_ms, TimePoint(1.5));

  TimePoint t = t0;
  t += 1_s;
  EXPECT_EQ(t, TimePoint(1.0));
}

TEST(TimePoint, OrderingAndInfiniteFuture) {
  EXPECT_LT(TimePoint(1.0), TimePoint(2.0));
  EXPECT_TRUE(TimePoint(5.0).is_finite());
  EXPECT_FALSE(TimePoint::infinite_future().is_finite());
  EXPECT_LT(TimePoint(1e300), TimePoint::infinite_future());
}

TEST(TimePoint, FromMicros) {
  EXPECT_DOUBLE_EQ(TimePoint::from_micros(3.0).seconds(), 3e-6);
}

TEST(TimeFormatting, StreamsWithUnit) {
  std::ostringstream os;
  os << Duration(0.25) << " " << TimePoint(1.5);
  EXPECT_EQ(os.str(), "0.25s 1.5s");
}

}  // namespace
}  // namespace tommy
