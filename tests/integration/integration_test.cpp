// Cross-module integration tests: the full Figure-1 pipeline (sync probes
// -> learners -> announcements over the wire -> sequencing), the Fig. 5
// shape assertions, and the online end-to-end run.
#include <gtest/gtest.h>

#include "clock/learner.hpp"
#include "clock/local_clock.hpp"
#include "clock/sync.hpp"
#include "core/baselines.hpp"
#include "core/tommy_sequencer.hpp"
#include "net/messages.hpp"
#include "sim/fig5.hpp"
#include "sim/offline_runner.hpp"
#include "sim/online_runner.hpp"
#include "stats/gaussian.hpp"

namespace tommy {
namespace {

using namespace tommy::literals;

TEST(Fig5Shape, PerfectClocksBothSystemsAreFair) {
  sim::Fig5Config config;
  config.clients = 100;
  config.messages = 400;
  config.deviation_scale_us = 0.0;
  config.gap_us = 5.0;
  config.seed = 21;
  const sim::Fig5Point point = sim::run_fig5_point(config);
  EXPECT_GT(point.tommy_ras, 0.99);
  EXPECT_GT(point.truetime_ras, 0.99);
  EXPECT_GT(point.wfo_ras, 0.99);
}

TEST(Fig5Shape, TommyBeatsTrueTimeUnderClockNoise) {
  // The headline claim: as clock errors grow relative to the gap,
  // TrueTime collapses toward 0 (all-overlap) while Tommy keeps ordering.
  sim::Fig5Config config;
  config.clients = 100;
  config.messages = 400;
  config.deviation_scale_us = 40.0;
  config.gap_us = 5.0;
  config.seed = 22;
  const sim::Fig5Point point = sim::run_fig5_point(config);
  EXPECT_GT(point.tommy_ras, point.truetime_ras);
  EXPECT_LT(point.truetime_ras, 0.1);
  EXPECT_GT(point.tommy_ras, 0.2);
}

TEST(Fig5Shape, TrueTimeNeverGoesNegativeTommyCan) {
  // TrueTime's conservatism floors its RAS at 0; Tommy's probabilistic
  // commitments can lose pairs outright at extreme noise.
  sim::Fig5Config config;
  config.clients = 50;
  config.messages = 300;
  config.deviation_scale_us = 2000.0;  // σ ≫ gap
  config.gap_us = 0.5;
  config.seed = 23;
  const sim::Fig5Point point = sim::run_fig5_point(config);
  EXPECT_GE(point.truetime_ras, 0.0);
  EXPECT_LT(point.truetime_ras, 0.05);
}

TEST(Fig5Shape, SmallerGapsHurtBothButTommyDegradesGracefully) {
  sim::Fig5Config config;
  config.clients = 100;
  config.messages = 400;
  config.deviation_scale_us = 20.0;
  config.seed = 24;

  config.gap_us = 50.0;
  const auto wide = sim::run_fig5_point(config);
  config.gap_us = 1.0;
  const auto narrow = sim::run_fig5_point(config);

  EXPECT_GT(wide.tommy_ras, narrow.tommy_ras);
  EXPECT_GE(narrow.tommy_ras, narrow.truetime_ras - 1e-9);
}

TEST(Fig5Shape, WfoDegradesWithClockErrorWhileStayingPositive) {
  // Fig. 2's regime claim: WFO (raw-timestamp order) is fair only while
  // clock error ≪ gap. Note WFO's normalized RAS stays positive even at
  // large σ — RAS counts ALL pairs and distant pairs survive noise — but
  // it sheds score monotonically, and unlike Tommy it also eats −1s on
  // the per-client bias μ it cannot correct (see EXPERIMENTS.md).
  sim::Fig5Config config;
  config.clients = 100;
  config.messages = 400;
  config.gap_us = 10.0;
  config.seed = 25;

  config.deviation_scale_us = 0.01;  // σ ≪ gap: WFO is fine
  const auto clean = sim::run_fig5_point(config);
  EXPECT_GT(clean.wfo_ras, 0.95);

  config.deviation_scale_us = 100.0;  // σ ≫ gap: WFO commits to noise
  const auto noisy = sim::run_fig5_point(config);
  EXPECT_LT(noisy.wfo_ras, clean.wfo_ras - 0.02);
}

TEST(Fig5Shape, TommySweetSpotSeparatesWhereTrueTimeCannot) {
  // The regime the paper's Figure 5 highlights: adjacent separations land
  // between Tommy's ~0.95σ boundary scale (threshold 0.75) and
  // TrueTime's ~6σ overlap scale. Tommy keeps ordering; TrueTime chains
  // into giant batches.
  sim::Fig5Config config;
  config.clients = 100;
  config.messages = 400;
  config.gap_us = 10.0;
  config.deviation_scale_us = 8.0;  // σ ≈ gap: TrueTime chains, Tommy cuts
  config.seed = 26;
  const auto point = sim::run_fig5_point(config);
  EXPECT_GT(point.tommy_ras, point.truetime_ras + 0.1);
  EXPECT_GT(point.tommy_ras, 0.8);
}

TEST(LearnedPipeline, SyncProbesToSequencerViaWireFormat) {
  // Figure 1 end to end with LEARNED distributions: each client runs sync
  // probes against the sequencer, fits a Gaussian, announces it over the
  // wire; the sequencer then orders a burst fairly.
  net::Simulation sim;
  Rng rng(31);

  struct ClientRig {
    std::unique_ptr<clock::LocalClock> clk;
    stats::Gaussian truth{0.0, 1.0};
  };

  core::ClientRegistry registry;
  std::vector<ClientId> ids;
  std::vector<std::unique_ptr<clock::LocalClock>> clocks;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const ClientId id(c);
    ids.push_back(id);
    const stats::Gaussian truth(rng.uniform(-200e-6, 200e-6),
                                rng.uniform(20e-6, 80e-6));
    auto clk = std::make_unique<clock::LocalClock>(
        sim, std::make_unique<clock::IidOffset>(truth.clone(), rng.split()));

    clock::SyncSession session(sim, *clk, net::DelayModel::fixed(50_us),
                               net::DelayModel::fixed(50_us));
    // Clients sync one after another on the shared simulation timeline, so
    // each session starts at the simulation's current time.
    session.schedule_probes(sim.now(), 200_us, 3000);
    sim.run();

    clock::GaussianLearner learner;
    learner.add_samples(session.offset_estimates());

    // Ship the announcement through the codec, as a real client would.
    const auto bytes = net::encode(
        net::DistributionAnnouncement{id, learner.summarize()});
    const auto decoded = net::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    const auto& ann = std::get<net::DistributionAnnouncement>(*decoded);
    registry.announce(ann.client, ann.summary);

    // Learned mean must be close to truth (variance shrinks by the probe
    // averaging; see clock tests).
    EXPECT_NEAR(registry.offset_distribution(id).mean(), truth.mean(), 5e-6);
    clocks.push_back(std::move(clk));
  }

  // A burst of messages 400 µs apart (≫ residual error): the learned
  // registry should order them perfectly.
  std::vector<core::Message> messages;
  const TimePoint base = sim.now() + 1_ms;
  for (std::uint64_t k = 0; k < 12; ++k) {
    const TimePoint true_time = base + Duration::from_micros(400.0 * static_cast<double>(k));
    const ClientId client = ids[k % ids.size()];
    const TimePoint stamp = clocks[k % ids.size()]->read_at(true_time);
    messages.push_back(core::Message{MessageId(k), client, stamp});
  }

  core::TommySequencer tommy(registry);
  const auto result = tommy.sequence(messages);
  std::vector<MessageId> flat;
  for (const auto& batch : result.batches) {
    for (const auto& m : batch.messages) flat.push_back(m.id);
  }
  ASSERT_EQ(flat.size(), 12u);
  for (std::uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(flat[k], MessageId(k)) << "position " << k;
  }
}

TEST(OnlineEndToEnd, BurstWorkloadEmitsFairlyWithLowViolations) {
  Rng rng(41);
  const sim::Population pop = sim::gaussian_population(20, 50e-6, rng);
  const auto events =
      sim::burst_workload(pop.ids(), 3, 20_ms, 100_us, 2_ms, rng);

  sim::OnlineRunConfig config;
  config.sequencer.threshold = 0.75;
  config.sequencer.p_safe = 0.995;
  config.heartbeat_interval = 500_us;
  config.poll_interval = 100_us;
  config.drain = 100_ms;

  const sim::OnlineRunResult result =
      sim::run_online(pop, events, config, rng);

  EXPECT_EQ(result.emitted_messages, events.size());
  EXPECT_EQ(result.unemitted_messages, 0u);
  // Fairness: ordering quality must be far above arbitrary (gap 100µs-2ms
  // vs σ 50µs leaves most pairs orderable).
  EXPECT_GT(result.ras.normalized(), 0.5);
  // p_safe = 0.995 keeps confident late arrivals rare.
  EXPECT_LT(static_cast<double>(result.fairness_violations),
            0.05 * static_cast<double>(events.size()));
  // Latency is bounded by p_safe quantiles + network + heartbeat lag:
  // generously under 50 ms here.
  EXPECT_LT(result.emission_latency.p99, 0.05);
}

TEST(OnlineEndToEnd, TighterPSafeReducesViolations) {
  Rng rng(43);
  const sim::Population pop = sim::gaussian_population(10, 200e-6, rng);
  const auto events =
      sim::poisson_workload(pop.ids(), 300, 150_us, rng);

  sim::OnlineRunConfig lax;
  lax.sequencer.p_safe = 0.7 + 1e-9;  // nearly reckless
  lax.drain = 100_ms;
  sim::OnlineRunConfig strict = lax;
  strict.sequencer.p_safe = 0.9999;

  Rng rng_a(44);
  Rng rng_b(44);
  const auto lax_result = sim::run_online(pop, events, lax, rng_a);
  const auto strict_result = sim::run_online(pop, events, strict, rng_b);

  EXPECT_LE(strict_result.fairness_violations,
            lax_result.fairness_violations);
  // The price: higher emission latency.
  EXPECT_GT(strict_result.emission_latency.p50,
            lax_result.emission_latency.p50);
}

}  // namespace
}  // namespace tommy
