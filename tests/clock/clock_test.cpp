#include <gtest/gtest.h>

#include <cmath>

#include "clock/local_clock.hpp"
#include "clock/offset_process.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "net/simulation.hpp"
#include "stats/gaussian.hpp"

namespace tommy::clock {
namespace {

using namespace tommy::literals;

TEST(ConstantOffset, IsConstant) {
  ConstantOffset p(0.5);
  EXPECT_DOUBLE_EQ(p.offset_at(TimePoint(0.0)), 0.5);
  EXPECT_DOUBLE_EQ(p.offset_at(TimePoint(100.0)), 0.5);
}

TEST(IidOffset, SamplesMatchDistributionMoments) {
  IidOffset p(std::make_unique<stats::Gaussian>(2.0, 0.5), Rng(1));
  std::vector<double> xs;
  for (int k = 0; k < 20000; ++k) xs.push_back(p.offset_at(TimePoint(0.0)));
  EXPECT_NEAR(math::mean(xs), 2.0, 0.02);
  EXPECT_NEAR(math::stddev(xs), 0.5, 0.02);
}

TEST(IidOffset, IndependentAcrossReads) {
  IidOffset p(std::make_unique<stats::Gaussian>(0.0, 1.0), Rng(2));
  // Lag-1 autocorrelation of iid draws must be ~0.
  std::vector<double> xs;
  for (int k = 0; k < 20000; ++k) xs.push_back(p.offset_at(TimePoint(0.0)));
  double num = 0.0;
  double den = 0.0;
  const double m = math::mean(xs);
  for (std::size_t k = 1; k < xs.size(); ++k) {
    num += (xs[k] - m) * (xs[k - 1] - m);
  }
  for (double x : xs) den += (x - m) * (x - m);
  EXPECT_NEAR(num / den, 0.0, 0.03);
}

TEST(DriftOffset, GrowsLinearly) {
  DriftOffset p(1.0, 40e-6, nullptr, Rng(3));  // 40 ppm
  EXPECT_DOUBLE_EQ(p.offset_at(TimePoint(0.0)), 1.0);
  EXPECT_NEAR(p.offset_at(TimePoint(100.0)), 1.0 + 4e-3, 1e-12);
}

TEST(RandomWalkOffset, VarianceGrowsLikeTime) {
  // Var[θ(t) − θ(0)] = rate² · t across many independent walks.
  const double rate = 0.1;
  double sum_sq = 0.0;
  const int walks = 4000;
  for (int w = 0; w < walks; ++w) {
    RandomWalkOffset p(0.0, rate, Rng(1000 + static_cast<std::uint64_t>(w)));
    (void)p.offset_at(TimePoint(0.0));
    const double end = p.offset_at(TimePoint(4.0));
    sum_sq += end * end;
  }
  EXPECT_NEAR(sum_sq / walks, rate * rate * 4.0, 0.004);
}

TEST(RandomWalkOffset, MonotoneTimeRequired) {
  RandomWalkOffset p(0.0, 1.0, Rng(5));
  (void)p.offset_at(TimePoint(2.0));
  EXPECT_DEATH((void)p.offset_at(TimePoint(1.0)), "precondition");
}

TEST(OuOffset, StationaryMomentsHold) {
  // Sample the process far apart (>> tau) so draws are near-stationary.
  OuOffset p(3.0, 0.5, 1_s, Rng(7));
  std::vector<double> xs;
  for (int k = 0; k < 5000; ++k) {
    xs.push_back(p.offset_at(TimePoint(static_cast<double>(k) * 10.0)));
  }
  EXPECT_NEAR(math::mean(xs), 3.0, 0.05);
  EXPECT_NEAR(math::stddev(xs), 0.5, 0.05);
}

TEST(OuOffset, RevertsTowardMean) {
  // Conditional expectation after dt: mean + (x − mean)·exp(−dt/τ).
  const int trials = 4000;
  double sum = 0.0;
  for (int k = 0; k < trials; ++k) {
    OuOffset p(0.0, 1.0, 1_s, Rng(100 + static_cast<std::uint64_t>(k)));
    const double x0 = p.offset_at(TimePoint(0.0));
    const double x1 = p.offset_at(TimePoint(1.0));
    sum += x1 - x0 * std::exp(-1.0);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
}

TEST(LocalClock, ReadImplementsModelIdentity) {
  // T = t_true − θ, so T + θ recovers true time exactly (the paper's
  // T* = T + θ).
  net::Simulation sim;
  LocalClock clock(sim, std::make_unique<ConstantOffset>(0.25));
  const TimePoint local = clock.read_at(TimePoint(10.0));
  EXPECT_DOUBLE_EQ(local.seconds(), 9.75);
  EXPECT_DOUBLE_EQ(local.seconds() + clock.last_offset(), 10.0);
}

TEST(LocalClock, ReadUsesSimulationNow) {
  net::Simulation sim;
  LocalClock clock(sim, std::make_unique<ConstantOffset>(1.0));
  sim.schedule_at(TimePoint(5.0), [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(clock.read().seconds(), 4.0);
}

TEST(LocalClock, LastOffsetTracksEachRead) {
  net::Simulation sim;
  LocalClock clock(sim,
                   std::make_unique<IidOffset>(
                       std::make_unique<stats::Gaussian>(0.0, 1.0), Rng(11)));
  for (int k = 0; k < 50; ++k) {
    const TimePoint local = clock.read_at(TimePoint(static_cast<double>(k)));
    EXPECT_DOUBLE_EQ(local.seconds() + clock.last_offset(),
                     static_cast<double>(k));
  }
}

}  // namespace
}  // namespace tommy::clock
