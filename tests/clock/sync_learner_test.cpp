#include <gtest/gtest.h>

#include <numbers>

#include "clock/learner.hpp"
#include "clock/local_clock.hpp"
#include "clock/sync.hpp"
#include "common/math.hpp"
#include "net/simulation.hpp"
#include "stats/analytic.hpp"
#include "stats/estimators.hpp"
#include "stats/gaussian.hpp"

namespace tommy::clock {
namespace {

using namespace tommy::literals;

TEST(SyncSession, ExactWithSymmetricFixedDelays) {
  net::Simulation sim;
  LocalClock client_clock(sim, std::make_unique<ConstantOffset>(0.125));
  SyncSession session(sim, client_clock,
                      net::DelayModel::fixed(2_ms),
                      net::DelayModel::fixed(2_ms));
  session.schedule_probes(TimePoint(1.0), 10_ms, 5);
  sim.run();

  ASSERT_EQ(session.samples().size(), 5u);
  for (const ProbeSample& s : session.samples()) {
    // Symmetric delays cancel exactly: θ̂ = θ.
    EXPECT_NEAR(s.offset_estimate, 0.125, 1e-12);
    EXPECT_NEAR(s.rtt.seconds(), 4e-3, 1e-12);
  }
}

TEST(SyncSession, AsymmetryBiasesByHalfTheDifference) {
  net::Simulation sim;
  LocalClock client_clock(sim, std::make_unique<ConstantOffset>(0.0));
  SyncSession session(sim, client_clock,
                      net::DelayModel::fixed(3_ms),   // to sequencer
                      net::DelayModel::fixed(1_ms));  // back
  session.schedule_probes(TimePoint(0.0), 5_ms, 3);
  sim.run();

  ASSERT_EQ(session.samples().size(), 3u);
  for (const ProbeSample& s : session.samples()) {
    // Classic NTP bias: (d1 − d2)/2 = 1 ms.
    EXPECT_NEAR(s.offset_estimate, 1e-3, 1e-12);
  }
}

TEST(SyncSession, JitteredProbesEstimateIidOffsetDistribution) {
  net::Simulation sim;
  // The client's offset distribution is what §5 wants learned: θ ~ N(50µs,
  // (10µs)²), redrawn per read (iid model).
  LocalClock client_clock(
      sim, std::make_unique<IidOffset>(
               std::make_unique<stats::Gaussian>(50e-6, 10e-6), Rng(3)));
  SyncSession session(
      sim, client_clock,
      net::DelayModel(100_us,
                      std::make_unique<stats::ShiftedExponential>(0.0, 10e-6),
                      Rng(4)),
      net::DelayModel(100_us,
                      std::make_unique<stats::ShiftedExponential>(0.0, 10e-6),
                      Rng(5)));
  session.schedule_probes(TimePoint(0.0), 1_ms, 2000);
  sim.run();

  const auto estimates = session.offset_estimates();
  ASSERT_EQ(estimates.size(), 2000u);
  // t0 and t3 both carry an iid θ draw, and delay jitter adds (d2−d1)/2;
  // the mean estimate must still center on E[θ].
  EXPECT_NEAR(math::mean(estimates), 50e-6, 2e-6);
}

TEST(GaussianLearner, RecoversSeededParameters) {
  GaussianLearner learner;
  Rng rng(7);
  for (int k = 0; k < 20000; ++k) learner.add_sample(rng.normal(2e-3, 5e-4));
  const stats::DistributionSummary summary = learner.summarize();
  ASSERT_TRUE(summary.is_gaussian());
  EXPECT_NEAR(summary.gaussian()->mu, 2e-3, 2e-5);
  EXPECT_NEAR(summary.gaussian()->sigma, 5e-4, 2e-5);
}

TEST(RobustGaussianLearner, SurvivesOutliers) {
  RobustGaussianLearner learner;
  Rng rng(8);
  for (int k = 0; k < 5000; ++k) learner.add_sample(rng.normal(0.0, 1e-3));
  for (int k = 0; k < 40; ++k) learner.add_sample(10.0);  // wild probes
  const auto summary = learner.summarize();
  ASSERT_TRUE(summary.is_gaussian());
  EXPECT_NEAR(summary.gaussian()->sigma, 1e-3, 2e-4);
}

TEST(HistogramLearner, CapturesSkewAGaussianFitMisses) {
  HistogramLearner learner;
  Rng rng(9);
  const stats::ShiftedExponential truth(0.0, 1.0);
  std::vector<double> samples;
  for (int k = 0; k < 30000; ++k) samples.push_back(truth.sample(rng));
  learner.add_samples(samples);

  const auto hist_dist = learner.summarize().materialize();
  const stats::Gaussian gauss_fit = stats::fit_gaussian(samples);
  EXPECT_LT(stats::density_l1_error(*hist_dist, truth),
            stats::density_l1_error(gauss_fit, truth));
}

TEST(KdeLearner, SmoothsSmallSamplesIntoAUsableSummary) {
  KdeLearner learner;
  Rng rng(12);
  for (int k = 0; k < 40; ++k) learner.add_sample(rng.normal(1e-3, 2e-4));
  const auto summary = learner.summarize();
  EXPECT_FALSE(summary.is_gaussian());  // ships as a histogram
  const auto dist = summary.materialize();
  EXPECT_NEAR(dist->mean(), 1e-3, 1e-4);
  // KDE inflates spread by the bandwidth — it must still be in the right
  // ballpark and usable for quantiles.
  EXPECT_NEAR(dist->stddev(), 2e-4, 1.5e-4);
  EXPECT_GT(dist->quantile(0.999), dist->quantile(0.5));
}

TEST(KdeLearner, WorksAtMinimumSampleCount) {
  KdeLearner learner;
  learner.add_samples({1e-3, 1.2e-3, 0.8e-3, 1.1e-3});
  ASSERT_EQ(learner.sample_count(), learner.min_samples());
  const auto dist = learner.summarize().materialize();
  EXPECT_GT(dist->stddev(), 0.0);
}

TEST(Learners, SampleBookkeeping) {
  GaussianLearner learner;
  EXPECT_EQ(learner.sample_count(), 0u);
  learner.add_sample(1.0);
  learner.add_samples({2.0, 3.0});
  EXPECT_EQ(learner.sample_count(), 3u);
  EXPECT_EQ(learner.samples().size(), 3u);
}

TEST(LearnersDeathTest, SummarizeRequiresMinSamples) {
  GaussianLearner learner;
  learner.add_sample(1.0);
  EXPECT_DEATH((void)learner.summarize(), "precondition");
}

TEST(EndToEnd, ProbesThroughLearnerMatchTrueDistribution) {
  // The §5 loop in miniature: sync probes -> learner -> summary -> the
  // distribution the sequencer would use.
  net::Simulation sim;
  const stats::Gaussian truth(20e-6, 5e-6);
  LocalClock client_clock(
      sim, std::make_unique<IidOffset>(truth.clone(), Rng(10)));
  SyncSession session(sim, client_clock, net::DelayModel::fixed(50_us),
                      net::DelayModel::fixed(50_us));
  session.schedule_probes(TimePoint(0.0), 100_us, 4000);
  sim.run();

  GaussianLearner learner;
  learner.add_samples(session.offset_estimates());
  const auto learned = learner.summarize().materialize();
  // Probe estimates average two iid θ draws, so the learned mean matches
  // but the variance halves: σ̂² = σ²/2 under the iid read model.
  EXPECT_NEAR(learned->mean(), 20e-6, 1e-6);
  EXPECT_NEAR(learned->stddev(), 5e-6 / std::numbers::sqrt2, 5e-7);
}

}  // namespace
}  // namespace tommy::clock
