#include "graph/transitivity.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tommy::graph {
namespace {

Tournament chain(std::size_t n, double p = 0.9) {
  Tournament t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) t.set_probability(i, j, p);
  }
  return t;
}

TEST(TransitivityReport, TransitiveChainHasNoCycles) {
  const TransitivityReport report = analyze_transitivity(chain(6));
  EXPECT_EQ(report.triples, 20u);  // C(6,3)
  EXPECT_EQ(report.cyclic_triples, 0u);
  EXPECT_TRUE(report.transitive());
  EXPECT_DOUBLE_EQ(report.cyclic_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.worst_cycle_confidence, 0.0);
  EXPECT_DOUBLE_EQ(report.weakest_edge, 0.9);
}

TEST(TransitivityReport, PureThreeCycleIsFullyCyclic) {
  Tournament t(3);
  t.set_probability(0, 1, 0.8);
  t.set_probability(1, 2, 0.7);
  t.set_probability(2, 0, 0.6);
  const TransitivityReport report = analyze_transitivity(t);
  EXPECT_EQ(report.triples, 1u);
  EXPECT_EQ(report.cyclic_triples, 1u);
  EXPECT_FALSE(report.transitive());
  EXPECT_DOUBLE_EQ(report.cyclic_fraction(), 1.0);
  // Weakest edge of the (only) cycle is 0.6.
  EXPECT_DOUBLE_EQ(report.worst_cycle_confidence, 0.6);
  EXPECT_DOUBLE_EQ(report.weakest_edge, 0.6);
}

TEST(TransitivityReport, ReverseRotationCycleAlsoDetected) {
  // Edges 1->0, 2->1, 0->2 — the other rotation.
  Tournament t(3);
  t.set_probability(1, 0, 0.8);
  t.set_probability(2, 1, 0.8);
  t.set_probability(0, 2, 0.8);
  EXPECT_EQ(analyze_transitivity(t).cyclic_triples, 1u);
}

TEST(TransitivityReport, EmbeddedCycleCountsOnlyCyclicTriples) {
  // 5-node transitive chain with one back edge creating cycles through
  // nodes {1, 2, 3}.
  Tournament t = chain(5);
  t.set_probability(3, 1, 0.8);  // reverse 1 -> 3
  const TransitivityReport report = analyze_transitivity(t);
  EXPECT_EQ(report.triples, 10u);
  // The only cyclic triple is {1, 2, 3}: 1->2->3->1.
  EXPECT_EQ(report.cyclic_triples, 1u);
  EXPECT_NEAR(report.cyclic_fraction(), 0.1, 1e-12);
}

TEST(TransitivityReport, ConfidentCycleIsWorseThanWeakCycle) {
  // Two separate 3-cycles embedded in a 6-node tournament: one barely
  // decided (0.52 edges), one confident (0.9 edges). The report's
  // worst_cycle_confidence must reflect the confident one.
  Tournament t = chain(6, 0.95);
  // Weak cycle on {0,1,2}.
  t.set_probability(0, 1, 0.52);
  t.set_probability(1, 2, 0.52);
  t.set_probability(2, 0, 0.52);
  // Confident cycle on {3,4,5}.
  t.set_probability(3, 4, 0.9);
  t.set_probability(4, 5, 0.9);
  t.set_probability(5, 3, 0.9);
  const TransitivityReport report = analyze_transitivity(t);
  EXPECT_EQ(report.cyclic_triples, 2u);
  EXPECT_DOUBLE_EQ(report.worst_cycle_confidence, 0.9);
  EXPECT_DOUBLE_EQ(report.weakest_edge, 0.52);
}

TEST(TransitivityReport, DegenerateSizes) {
  EXPECT_TRUE(analyze_transitivity(Tournament(1)).transitive());
  EXPECT_EQ(analyze_transitivity(Tournament(2)).triples, 0u);
}

TEST(TransitivityReport, AgreesWithIsTransitiveOnRandomTournaments) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 14));
    Tournament t(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        t.set_probability(i, j, rng.uniform(0.05, 0.95));
      }
    }
    EXPECT_EQ(analyze_transitivity(t).transitive(), t.is_transitive())
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace tommy::graph
