#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tommy::graph {
namespace {

TEST(Digraph, TopologicalSortOnDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto order = g.topological_sort();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);

  std::vector<std::size_t> pos(4);
  for (std::size_t k = 0; k < 4; ++k) pos[(*order)[k]] = k;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, TopologicalSortIsDeterministicLowestFirst) {
  Digraph g(4);  // no edges: pure tie-break order
  const auto order = g.topological_sort();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Digraph, CycleYieldsNullopt) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.topological_sort().has_value());
  EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, SelfLoopIsACycle) {
  Digraph g(2);
  g.add_edge(1, 1);
  EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, EmptyGraphSorts) {
  Digraph g(0);
  const auto order = g.topological_sort();
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(Scc, SingleCycleIsOneComponent) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const SccResult scc = strongly_connected_components(g);
  ASSERT_EQ(scc.components.size(), 1u);
  EXPECT_EQ(scc.components[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Scc, DagGivesSingletons) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.components.size(), 4u);
  for (const auto& comp : scc.components) EXPECT_EQ(comp.size(), 1u);
}

TEST(Scc, MixedGraph) {
  // Two 2-cycles bridged by one edge: {0,1} -> {2,3}, plus a lone node 4.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const SccResult scc = strongly_connected_components(g);
  ASSERT_EQ(scc.components.size(), 3u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  EXPECT_NE(scc.component_of[4], scc.component_of[0]);
  EXPECT_NE(scc.component_of[4], scc.component_of[2]);
}

TEST(Condense, ProducesAcyclicDagWithSummedWeights) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);   // SCC {0,1}
  g.add_edge(0, 2, 2.0);   // two cross edges into SCC {2,3}
  g.add_edge(1, 3, 3.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 2, 1.0);   // SCC {2,3}

  const SccResult scc = strongly_connected_components(g);
  ASSERT_EQ(scc.components.size(), 2u);
  const Digraph dag = condense(g, scc);
  EXPECT_FALSE(dag.has_cycle());
  EXPECT_EQ(dag.edge_count(), 1u);

  const std::size_t from = scc.component_of[0];
  const auto& edges = dag.out_edges(from);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 5.0);  // 2.0 + 3.0 summed
}

TEST(Condense, TopologicalOrderRespectsCrossEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const SccResult scc = strongly_connected_components(g);
  const Digraph dag = condense(g, scc);
  const auto order = dag.topological_sort();
  ASSERT_TRUE(order.has_value());
  // The {0,1} component must precede the {2,3} component.
  std::vector<std::size_t> pos(scc.components.size());
  for (std::size_t k = 0; k < order->size(); ++k) pos[(*order)[k]] = k;
  EXPECT_LT(pos[scc.component_of[0]], pos[scc.component_of[2]]);
}

TEST(DigraphDeathTest, RejectsOutOfRange) {
  Digraph g(2);
  EXPECT_DEATH(g.add_edge(0, 2), "precondition");
  EXPECT_DEATH((void)g.out_edges(5), "precondition");
}

}  // namespace
}  // namespace tommy::graph
