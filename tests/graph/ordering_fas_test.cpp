#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "graph/feedback_arc.hpp"
#include "graph/ordering.hpp"
#include "graph/tournament.hpp"

namespace tommy::graph {
namespace {

Tournament random_tournament(std::size_t n, Rng& rng) {
  Tournament t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.set_probability(i, j, rng.uniform(0.05, 0.95));
    }
  }
  return t;
}

Tournament transitive_with_order(const std::vector<std::size_t>& order) {
  Tournament t(order.size());
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      t.set_probability(order[a], order[b], 0.95);
    }
  }
  return t;
}

bool is_permutation_of_n(const std::vector<std::size_t>& order,
                         std::size_t n) {
  if (order.size() != n) return false;
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 0; k < n; ++k) {
    if (sorted[k] != k) return false;
  }
  return true;
}

bool consecutive_edges_hold(const Tournament& t,
                            const std::vector<std::size_t>& path) {
  for (std::size_t k = 1; k < path.size(); ++k) {
    if (!t.edge(path[k - 1], path[k])) return false;
  }
  return true;
}

TEST(HamiltonianPath, RecoversPlantedTransitiveOrder) {
  const std::vector<std::size_t> planted{3, 0, 4, 1, 2};
  const Tournament t = transitive_with_order(planted);
  EXPECT_EQ(hamiltonian_path(t), planted);
}

TEST(HamiltonianPath, ConsecutiveEdgesAlwaysExist) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const Tournament t = random_tournament(n, rng);
    const auto path = hamiltonian_path(t);
    EXPECT_TRUE(is_permutation_of_n(path, n));
    EXPECT_TRUE(consecutive_edges_hold(t, path)) << "trial " << trial;
  }
}

TEST(LinearExtension, OnlyThePlantedOrderSatisfiesAllPairs) {
  const std::vector<std::size_t> planted{2, 0, 1};
  const Tournament t = transitive_with_order(planted);
  EXPECT_TRUE(is_linear_extension(t, planted));
  EXPECT_FALSE(is_linear_extension(t, {0, 1, 2}));
  EXPECT_FALSE(is_linear_extension(t, {1, 0, 2}));
}

TEST(BackwardEdges, CountAndWeightOnKnownCase) {
  Tournament t(3);
  t.set_probability(0, 1, 0.8);
  t.set_probability(1, 2, 0.7);
  t.set_probability(2, 0, 0.9);  // cycle
  const std::vector<std::size_t> order{0, 1, 2};
  EXPECT_EQ(backward_edge_count(t, order), 1u);  // 2 -> 0
  EXPECT_DOUBLE_EQ(backward_edge_weight(t, order), 0.9);
}

TEST(ExactMinFas, ZeroCostOnTransitiveTournament) {
  const std::vector<std::size_t> planted{1, 3, 0, 2};
  const Tournament t = transitive_with_order(planted);
  const FasOrdering fas = exact_min_fas(t);
  EXPECT_EQ(fas.removed_count, 0u);
  EXPECT_DOUBLE_EQ(fas.removed_weight, 0.0);
  EXPECT_EQ(fas.order, planted);
}

TEST(ExactMinFas, ThreeCycleSacrificesWeakestEdge) {
  Tournament t(3);
  t.set_probability(0, 1, 0.9);
  t.set_probability(1, 2, 0.8);
  t.set_probability(2, 0, 0.6);  // weakest edge of the cycle
  const FasOrdering fas = exact_min_fas(t);
  EXPECT_EQ(fas.removed_count, 1u);
  EXPECT_DOUBLE_EQ(fas.removed_weight, 0.6);
  EXPECT_EQ(fas.order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ExactMinFas, MatchesBruteForceOnRandomTournaments) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 7));
    const Tournament t = random_tournament(n, rng);

    // Brute force over all permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    double best = std::numeric_limits<double>::infinity();
    do {
      best = std::min(best, backward_edge_weight(t, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));

    const FasOrdering fas = exact_min_fas(t);
    EXPECT_NEAR(fas.removed_weight, best, 1e-9) << "trial " << trial;
  }
}

TEST(GreedyFas, ZeroCostOnTransitiveTournament) {
  const std::vector<std::size_t> planted{4, 2, 0, 3, 1};
  const Tournament t = transitive_with_order(planted);
  const FasOrdering fas = greedy_fas(t);
  EXPECT_EQ(fas.removed_count, 0u);
  EXPECT_EQ(fas.order, planted);
}

TEST(GreedyFas, NearOptimalOnRandomTournaments) {
  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 10));
    const Tournament t = random_tournament(n, rng);
    const FasOrdering exact = exact_min_fas(t);
    const FasOrdering greedy = greedy_fas(t);
    EXPECT_TRUE(is_permutation_of_n(greedy.order, n));
    // The heuristic can never beat the exact optimum...
    EXPECT_GE(greedy.removed_weight, exact.removed_weight - 1e-9);
    // ...and stays within a modest constant factor on small tournaments
    // (no worst-case guarantee exists for weighted ELS; 4x is a generous
    // empirical envelope that catches real regressions).
    EXPECT_LE(greedy.removed_weight, exact.removed_weight * 4.0 + 1e-9)
        << "trial " << trial;
  }
}

TEST(StochasticFas, ProducesValidPermutations) {
  Rng rng(17);
  const Tournament t = random_tournament(9, rng);
  Rng order_rng(18);
  for (int k = 0; k < 10; ++k) {
    const FasOrdering fas = stochastic_fas(t, order_rng);
    EXPECT_TRUE(is_permutation_of_n(fas.order, 9));
    EXPECT_EQ(fas.removed_count, backward_edge_count(t, fas.order));
  }
}

TEST(StochasticFas, CycleEdgesEachLoseSometimes) {
  // Symmetric 3-cycle: every rotation should appear across draws, so every
  // edge is sacrificed in some rounds — the long-run fairness idea.
  Tournament t(3);
  t.set_probability(0, 1, 0.7);
  t.set_probability(1, 2, 0.7);
  t.set_probability(2, 0, 0.7);

  Rng rng(19);
  std::map<std::size_t, int> first_counts;
  for (int k = 0; k < 3000; ++k) {
    const FasOrdering fas = stochastic_fas(t, rng);
    ++first_counts[fas.order.front()];
  }
  for (std::size_t node = 0; node < 3; ++node) {
    EXPECT_GT(first_counts[node], 500) << "node " << node;
  }
}

TEST(SampleStochasticOrder, RespectsStrongPreferences) {
  // With p(0,1) ~ 1, node 0 should precede node 1 almost always.
  Tournament t(2);
  t.set_probability(0, 1, 0.99);
  Rng rng(23);
  int zero_first = 0;
  for (int k = 0; k < 2000; ++k) {
    if (sample_stochastic_order(t, rng).front() == 0) ++zero_first;
  }
  EXPECT_GT(zero_first, 1900);
}

}  // namespace
}  // namespace tommy::graph
