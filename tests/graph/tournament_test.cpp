#include "graph/tournament.hpp"

#include <gtest/gtest.h>

namespace tommy::graph {
namespace {

Tournament linear_chain(std::size_t n) {
  // i -> j with p = 0.9 whenever i < j: the canonical transitive tournament.
  Tournament t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.set_probability(i, j, 0.9);
    }
  }
  return t;
}

Tournament three_cycle() {
  Tournament t(3);
  t.set_probability(0, 1, 0.8);
  t.set_probability(1, 2, 0.7);
  t.set_probability(2, 0, 0.6);  // closes the cycle
  return t;
}

TEST(Tournament, ProbabilitiesAreComplementary) {
  Tournament t(4);
  t.set_probability(1, 3, 0.73);
  EXPECT_DOUBLE_EQ(t.probability(1, 3), 0.73);
  EXPECT_DOUBLE_EQ(t.probability(3, 1), 0.27);
}

TEST(Tournament, DefaultIsIndifference) {
  const Tournament t(3);
  EXPECT_DOUBLE_EQ(t.probability(0, 1), 0.5);
  // Tie at exactly 0.5 breaks toward lower index.
  EXPECT_TRUE(t.edge(0, 1));
  EXPECT_FALSE(t.edge(1, 0));
}

TEST(Tournament, EdgeFollowsMajorityProbability) {
  Tournament t(2);
  t.set_probability(0, 1, 0.3);
  EXPECT_FALSE(t.edge(0, 1));
  EXPECT_TRUE(t.edge(1, 0));
  EXPECT_DOUBLE_EQ(t.edge_weight(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(t.edge_weight(1, 0), 0.7);
}

TEST(Tournament, OutDegreeCountsKeptEdges) {
  const Tournament t = linear_chain(5);
  EXPECT_EQ(t.out_degree(0), 4u);
  EXPECT_EQ(t.out_degree(2), 2u);
  EXPECT_EQ(t.out_degree(4), 0u);
}

TEST(Tournament, TransitiveChainDetected) {
  EXPECT_TRUE(linear_chain(2).is_transitive());
  EXPECT_TRUE(linear_chain(7).is_transitive());
  EXPECT_TRUE(linear_chain(1).is_transitive());
}

TEST(Tournament, CycleBreaksTransitivity) {
  const Tournament t = three_cycle();
  EXPECT_FALSE(t.is_transitive());
  const auto tri = t.find_triangle();
  ASSERT_EQ(tri.size(), 3u);
  // Returned triple is an actual directed 3-cycle.
  EXPECT_TRUE(t.edge(tri[0], tri[1]));
  EXPECT_TRUE(t.edge(tri[1], tri[2]));
  EXPECT_TRUE(t.edge(tri[2], tri[0]));
}

TEST(Tournament, TriangleAbsentInTransitive) {
  EXPECT_TRUE(linear_chain(6).find_triangle().empty());
}

TEST(Tournament, EmbeddedCycleInLargerTournament) {
  // 5 nodes, transitive except a 3-cycle among {1, 2, 3}.
  Tournament t(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) t.set_probability(i, j, 0.9);
  }
  t.set_probability(3, 1, 0.8);  // back edge closes 1 -> 2 -> 3 -> 1
  EXPECT_FALSE(t.is_transitive());
  EXPECT_EQ(t.find_triangle().size(), 3u);
}

TEST(Tournament, FromPairwiseQueriesEachPairOnce) {
  std::size_t calls = 0;
  const Tournament t = Tournament::from_pairwise(
      6, [&calls](std::size_t i, std::size_t j) {
        ++calls;
        return i < j ? 0.8 : 0.2;
      });
  EXPECT_EQ(calls, 15u);  // C(6,2)
  EXPECT_TRUE(t.is_transitive());
}

TEST(TournamentDeathTest, RejectsBadArguments) {
  Tournament t(3);
  EXPECT_DEATH(t.set_probability(0, 0, 0.7), "precondition");
  EXPECT_DEATH(t.set_probability(0, 3, 0.7), "precondition");
  EXPECT_DEATH(t.set_probability(0, 1, 1.5), "precondition");
  EXPECT_DEATH((void)t.probability(1, 1), "precondition");
}

}  // namespace
}  // namespace tommy::graph
