#include "metrics/batch_stats.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::metrics {

BatchGranularity BatchGranularity::from_batch_sizes(
    std::span<const std::size_t> sizes) {
  BatchGranularity out;
  out.batch_count = sizes.size();
  std::size_t singles = 0;
  for (std::size_t s : sizes) {
    TOMMY_EXPECTS(s > 0);
    out.message_count += s;
    out.largest_batch = std::max(out.largest_batch, s);
    if (s == 1) ++singles;
  }
  if (out.batch_count > 0) {
    out.mean_batch_size = static_cast<double>(out.message_count) /
                          static_cast<double>(out.batch_count);
  }
  if (out.message_count > 0) {
    out.singleton_fraction =
        static_cast<double>(singles) / static_cast<double>(out.message_count);
  }
  return out;
}

void ClientWinLedger::record(ClientId winner,
                             std::span<const ClientId> participants) {
  bool winner_participates = false;
  for (ClientId c : participants) {
    ++stats_[c].participations;
    if (c == winner) winner_participates = true;
  }
  TOMMY_EXPECTS(winner_participates);
  ++stats_[winner].wins;
}

std::uint64_t ClientWinLedger::wins(ClientId client) const {
  const auto it = stats_.find(client);
  return it == stats_.end() ? 0 : it->second.wins;
}

std::uint64_t ClientWinLedger::participations(ClientId client) const {
  const auto it = stats_.find(client);
  return it == stats_.end() ? 0 : it->second.participations;
}

double ClientWinLedger::win_rate(ClientId client) const {
  const auto it = stats_.find(client);
  if (it == stats_.end() || it->second.participations == 0) return 0.0;
  return static_cast<double>(it->second.wins) /
         static_cast<double>(it->second.participations);
}

double ClientWinLedger::disparity(std::uint64_t min_participations) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& [client, counts] : stats_) {
    if (counts.participations < min_participations) continue;
    const double rate = static_cast<double>(counts.wins) /
                        static_cast<double>(counts.participations);
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  if (hi == 0.0) return 1.0;
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

}  // namespace tommy::metrics
