#include "metrics/summary_stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/math.hpp"

namespace tommy::metrics {

SummaryStats SummaryStats::from_samples(std::span<const double> xs) {
  SummaryStats out;
  out.count = xs.size();
  if (xs.empty()) return out;

  out.mean = math::mean(xs);
  out.stddev = math::stddev(xs);
  const auto [min_it, max_it] = std::minmax_element(xs.begin(), xs.end());
  out.min = *min_it;
  out.max = *max_it;
  out.p50 = math::sample_quantile(xs, 0.50);
  out.p90 = math::sample_quantile(xs, 0.90);
  out.p99 = math::sample_quantile(xs, 0.99);
  return out;
}

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev
     << " min=" << min << " p50=" << p50 << " p90=" << p90 << " p99=" << p99
     << " max=" << max;
  return os.str();
}

}  // namespace tommy::metrics
