#include "metrics/ras.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tommy::metrics {

namespace {

/// Fenwick tree over rank indices supporting prefix counts.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t idx) {  // idx in [0, n)
    for (std::size_t i = idx + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
  }

  /// Count of inserted values with index <= idx.
  [[nodiscard]] std::uint64_t prefix(std::size_t idx) const {
    std::uint64_t sum = 0;
    for (std::size_t i = idx + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<std::uint64_t> tree_;
};

}  // namespace

double RasBreakdown::normalized() const {
  if (pairs == 0) return 0.0;
  return static_cast<double>(score) / static_cast<double>(pairs);
}

double RasBreakdown::kendall_tau_b() const {
  if (pairs == 0) return 0.0;
  // Ties exist only on the rank side (shared batches).
  const double p = static_cast<double>(pairs);
  const double tied = static_cast<double>(indifferent);
  const double denom = std::sqrt((p - tied) * p);
  if (denom == 0.0) return 0.0;
  return static_cast<double>(score) / denom;
}

RasBreakdown rank_agreement(std::span<const RankedMessage> messages) {
  RasBreakdown out;
  const std::size_t n = messages.size();
  if (n < 2) return out;
  out.pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;

  // Process messages in true-time order; for each one, classify the pairs
  // it forms with everything already processed by comparing ranks.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return messages[a].true_time < messages[b].true_time;
  });

  // Compress ranks to dense indices.
  std::vector<Rank> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = messages[i].rank;
  std::vector<Rank> sorted_ranks = ranks;
  std::sort(sorted_ranks.begin(), sorted_ranks.end());
  sorted_ranks.erase(std::unique(sorted_ranks.begin(), sorted_ranks.end()),
                     sorted_ranks.end());
  const auto dense = [&](Rank r) {
    return static_cast<std::size_t>(
        std::lower_bound(sorted_ranks.begin(), sorted_ranks.end(), r) -
        sorted_ranks.begin());
  };

  Fenwick below(sorted_ranks.size());
  std::uint64_t processed = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t idx = order[pos];
    if (pos > 0) {
      TOMMY_EXPECTS(messages[order[pos - 1]].true_time <
                    messages[idx].true_time);  // distinct true times
    }
    const std::size_t r = dense(ranks[idx]);
    // Earlier-true-time messages with strictly smaller rank: correct pairs.
    const std::uint64_t leq = below.prefix(r);
    const std::uint64_t lt = r == 0 ? 0 : below.prefix(r - 1);
    const std::uint64_t eq = leq - lt;
    out.correct += lt;
    out.indifferent += eq;
    out.incorrect += processed - leq;
    below.add(r);
    ++processed;
  }

  out.score = static_cast<std::int64_t>(out.correct) -
              static_cast<std::int64_t>(out.incorrect);
  TOMMY_ENSURES(out.correct + out.incorrect + out.indifferent == out.pairs);
  return out;
}

}  // namespace tommy::metrics
