// Batch-granularity metrics (§3.4): "maximizing fairness amounts to
// creating smaller batches". These quantify how far a sequencing is from
// the ideal of singleton batches, and the long-run per-client fairness of
// tie-breaking (§5's fair-total-order extension).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "metrics/summary_stats.hpp"

namespace tommy::metrics {

struct BatchGranularity {
  std::size_t batch_count{0};
  std::size_t message_count{0};
  std::size_t largest_batch{0};
  double mean_batch_size{0.0};
  /// Fraction of messages that are alone in their batch (fully ordered).
  double singleton_fraction{0.0};

  [[nodiscard]] static BatchGranularity from_batch_sizes(
      std::span<const std::size_t> sizes);
};

/// Long-run accounting of within-batch tie-break outcomes: how often each
/// client's message was placed first in its batch. A fair random
/// tie-breaker equalizes win rates over time.
class ClientWinLedger {
 public:
  /// Records that `winner` took the first slot of a batch whose
  /// participants are `participants` (each counted once per batch).
  void record(ClientId winner, std::span<const ClientId> participants);

  [[nodiscard]] std::uint64_t wins(ClientId client) const;
  [[nodiscard]] std::uint64_t participations(ClientId client) const;
  [[nodiscard]] double win_rate(ClientId client) const;

  /// Max/min win-rate ratio across clients with >= `min_participations`;
  /// 1.0 is perfectly fair, large values indicate systematic preference.
  [[nodiscard]] double disparity(std::uint64_t min_participations = 1) const;

  [[nodiscard]] std::size_t client_count() const { return stats_.size(); }

 private:
  struct Counts {
    std::uint64_t wins{0};
    std::uint64_t participations{0};
  };
  std::unordered_map<ClientId, Counts> stats_;
};

}  // namespace tommy::metrics
