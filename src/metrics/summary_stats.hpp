// Descriptive statistics over scalar samples (latencies, batch sizes...).
#pragma once

#include <span>
#include <string>

namespace tommy::metrics {

struct SummaryStats {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double p50{0.0};
  double p90{0.0};
  double p99{0.0};
  double max{0.0};

  [[nodiscard]] static SummaryStats from_samples(std::span<const double> xs);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace tommy::metrics
