// Rank Agreement Score (§4): for every ordered pair of messages (by true
// generation time), a sequencer scores +1 if it ranked them in the true
// order, −1 if it ranked them against the true order, and 0 if it declared
// them indifferent (same batch). Figure 5 plots the normalized sum.
//
// The implementation counts all three buckets in O(n log n) with a Fenwick
// tree over compressed ranks rather than the naive O(n²) pair loop, so the
// Fig. 5 sweep stays fast at thousands of messages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace tommy::metrics {

/// One message as the evaluator sees it: ground-truth generation time (the
/// omniscient observer of Definition 1) plus the rank a sequencer assigned.
struct RankedMessage {
  MessageId id;
  ClientId client;
  TimePoint true_time;
  Rank rank{0};
};

struct RasBreakdown {
  std::int64_t score{0};        // +1/−1/0 summed over all pairs
  std::uint64_t correct{0};     // pairs ranked in true order
  std::uint64_t incorrect{0};   // pairs ranked against true order
  std::uint64_t indifferent{0}; // pairs sharing a batch
  std::uint64_t pairs{0};       // n·(n−1)/2

  /// score / pairs, in [−1, 1]; 0 for fewer than two messages.
  [[nodiscard]] double normalized() const;

  /// Kendall tau-b between assigned ranks and true order, treating shared
  /// batches as rank ties (no ties on the truth side, per the paper's
  /// "no two events occur at the same instant").
  [[nodiscard]] double kendall_tau_b() const;
};

/// Computes the breakdown. True times must be distinct.
[[nodiscard]] RasBreakdown rank_agreement(std::span<const RankedMessage> messages);

}  // namespace tommy::metrics
