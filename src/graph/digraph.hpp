// Small weighted directed-graph type used for the pieces of §3.4 that are
// not tournament-specific: the condensation DAG of strongly connected
// components and generic topological sorting.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tommy::graph {

class Digraph {
 public:
  explicit Digraph(std::size_t n);

  [[nodiscard]] std::size_t size() const { return adj_.size(); }

  /// Adds edge u -> v with the given weight; parallel edges are allowed.
  void add_edge(std::size_t u, std::size_t v, double weight = 1.0);

  struct Edge {
    std::size_t to;
    double weight;
  };

  [[nodiscard]] const std::vector<Edge>& out_edges(std::size_t u) const;

  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Kahn's algorithm. Returns a topological order, or nullopt if the graph
  /// has a cycle. Ties (multiple zero-in-degree nodes) resolve lowest index
  /// first, making the output deterministic.
  [[nodiscard]] std::optional<std::vector<std::size_t>> topological_sort()
      const;

  /// True if the graph contains a directed cycle.
  [[nodiscard]] bool has_cycle() const;

 private:
  std::vector<std::vector<Edge>> adj_;
  std::size_t edge_count_{0};
};

/// Tarjan's strongly-connected components (iterative). Returns one vector
/// of vertex ids per component, in reverse topological order of the
/// condensation (i.e. a component appears before the components it can
/// reach... precisely: Tarjan emission order); use `condense` for the DAG.
struct SccResult {
  std::vector<std::vector<std::size_t>> components;
  std::vector<std::size_t> component_of;  // vertex -> component index
};

[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

/// Builds the condensation DAG: one node per SCC, edge between distinct
/// components if any member edge crosses them (weights summed).
[[nodiscard]] Digraph condense(const Digraph& g, const SccResult& scc);

}  // namespace tommy::graph
