// Cycle-breaking for intransitive tournaments (§3.4). Finding the minimum
// feedback arc set is NP-hard, so the library offers:
//   * an exact exponential DP usable up to ~14 nodes (test oracle and
//     small-batch fallback),
//   * the Eades–Lin–Smyth greedy heuristic generalized to probability
//     weights (fast, deterministic),
//   * a stochastic policy that samples orderings so that, over many
//     sequencing rounds, no message/client is systematically disfavoured —
//     the paper's "stochastic fairness" direction.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/tournament.hpp"

namespace tommy::graph {

struct FasOrdering {
  /// Linear order of all nodes; edges pointing backwards w.r.t. it are the
  /// (removed) feedback arcs.
  std::vector<std::size_t> order;
  /// Total probability weight of the removed (backward) edges.
  double removed_weight{0.0};
  /// Number of removed edges.
  std::size_t removed_count{0};
};

/// Exact minimum-weight feedback arc set via Held–Karp-style subset DP.
/// Cost is the summed probability weight of backward edges. O(2^n · n²);
/// requires n <= 20 (practically use <= 14).
[[nodiscard]] FasOrdering exact_min_fas(const Tournament& t);

/// Greedy Eades–Lin–Smyth sequence heuristic with probability-weighted
/// degrees. Deterministic; near-optimal on small cyclic tournaments.
[[nodiscard]] FasOrdering greedy_fas(const Tournament& t);

/// Stochastic ordering (see sample_stochastic_order) packaged as a FAS
/// policy: each call may break cycles differently, in proportion to the
/// pairwise probabilities.
[[nodiscard]] FasOrdering stochastic_fas(const Tournament& t, Rng& rng);

}  // namespace tommy::graph
