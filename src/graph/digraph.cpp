#include "graph/digraph.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "common/check.hpp"

namespace tommy::graph {

Digraph::Digraph(std::size_t n) : adj_(n) {}

void Digraph::add_edge(std::size_t u, std::size_t v, double weight) {
  TOMMY_EXPECTS(u < adj_.size() && v < adj_.size());
  adj_[u].push_back({v, weight});
  ++edge_count_;
}

const std::vector<Digraph::Edge>& Digraph::out_edges(std::size_t u) const {
  TOMMY_EXPECTS(u < adj_.size());
  return adj_[u];
}

std::optional<std::vector<std::size_t>> Digraph::topological_sort() const {
  const std::size_t n = adj_.size();
  std::vector<std::size_t> in_degree(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const Edge& e : adj_[u]) ++in_degree[e.to];
  }

  // Min-heap on index keeps the order deterministic.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>>
      ready;
  for (std::size_t u = 0; u < n; ++u) {
    if (in_degree[u] == 0) ready.push(u);
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const Edge& e : adj_[u]) {
      if (--in_degree[e.to] == 0) ready.push(e.to);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool Digraph::has_cycle() const { return !topological_sort().has_value(); }

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  SccResult result;
  result.component_of.assign(n, kUnvisited);
  std::size_t next_index = 0;

  // Iterative Tarjan: frame = (vertex, next-edge cursor).
  struct Frame {
    std::size_t v;
    std::size_t edge_cursor;
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;

    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.v;
      if (frame.edge_cursor == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }

      bool descended = false;
      const auto& edges = g.out_edges(v);
      while (frame.edge_cursor < edges.size()) {
        const std::size_t w = edges[frame.edge_cursor].to;
        ++frame.edge_cursor;
        if (index[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;

      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> component;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = result.components.size();
          component.push_back(w);
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        result.components.push_back(std::move(component));
      }

      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  return result;
}

Digraph condense(const Digraph& g, const SccResult& scc) {
  Digraph dag(scc.components.size());
  std::map<std::pair<std::size_t, std::size_t>, double> cross;
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (const Digraph::Edge& e : g.out_edges(u)) {
      const std::size_t cu = scc.component_of[u];
      const std::size_t cv = scc.component_of[e.to];
      if (cu != cv) cross[{cu, cv}] += e.weight;
    }
  }
  for (const auto& [key, weight] : cross) {
    dag.add_edge(key.first, key.second, weight);
  }
  return dag;
}

}  // namespace tommy::graph
