#include "graph/tournament.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tommy::graph {

Tournament::Tournament(std::size_t n) : n_(n), prob_(n * n, 0.5) {
  TOMMY_EXPECTS(n >= 1);
}

Tournament Tournament::from_pairwise(
    std::size_t n,
    const std::function<double(std::size_t, std::size_t)>&
        preceding_probability) {
  Tournament t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.set_probability(i, j, preceding_probability(i, j));
    }
  }
  return t;
}

void Tournament::set_probability(std::size_t i, std::size_t j, double p) {
  TOMMY_EXPECTS(i < n_ && j < n_ && i != j);
  TOMMY_EXPECTS(p >= 0.0 && p <= 1.0);
  prob_[i * n_ + j] = p;
  prob_[j * n_ + i] = 1.0 - p;
}

double Tournament::probability(std::size_t i, std::size_t j) const {
  TOMMY_EXPECTS(i < n_ && j < n_ && i != j);
  return prob_[i * n_ + j];
}

bool Tournament::edge(std::size_t i, std::size_t j) const {
  const double p = probability(i, j);
  if (p == 0.5) return i < j;  // deterministic tie-break
  return p > 0.5;
}

double Tournament::edge_weight(std::size_t i, std::size_t j) const {
  const double p = probability(i, j);
  return std::max(p, 1.0 - p);
}

std::size_t Tournament::out_degree(std::size_t i) const {
  TOMMY_EXPECTS(i < n_);
  std::size_t deg = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i && edge(i, j)) ++deg;
  }
  return deg;
}

bool Tournament::is_transitive() const {
  std::vector<std::size_t> scores(n_);
  for (std::size_t i = 0; i < n_; ++i) scores[i] = out_degree(i);
  std::sort(scores.begin(), scores.end());
  for (std::size_t i = 0; i < n_; ++i) {
    if (scores[i] != i) return false;
  }
  return true;
}

std::vector<std::size_t> Tournament::find_triangle() const {
  // For every edge (i, j), look for k with j -> k and k -> i.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j || !edge(i, j)) continue;
      for (std::size_t k = 0; k < n_; ++k) {
        if (k == i || k == j) continue;
        if (edge(j, k) && edge(k, i)) return {i, j, k};
      }
    }
  }
  return {};
}

}  // namespace tommy::graph
