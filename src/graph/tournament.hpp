// Probability tournament over messages (§3.4). Node i and node j are
// connected by the directed edge carrying the larger of P(i before j) and
// P(j before i); the paper's construction keeps exactly one edge per pair,
// so the kept-edge digraph is a tournament. We store the full probability
// matrix so batching can later read the confidence of any pair.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace tommy::graph {

class Tournament {
 public:
  /// n-node tournament with all pairs initialized to indifference (0.5).
  explicit Tournament(std::size_t n);

  /// Builds from a pairwise preceding-probability callback; `precedes(i, j)`
  /// must return P(i before j) for i != j. Only i < j pairs are queried;
  /// the reverse direction is derived as the complement.
  static Tournament from_pairwise(
      std::size_t n, const std::function<double(std::size_t, std::size_t)>&
                         preceding_probability);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Sets P(i before j) = p (and P(j before i) = 1 - p). p in [0, 1].
  void set_probability(std::size_t i, std::size_t j, double p);

  /// P(i before j). probability(i, j) + probability(j, i) == 1.
  [[nodiscard]] double probability(std::size_t i, std::size_t j) const;

  /// True iff the kept edge between i and j points i -> j, i.e.
  /// P(i before j) > 0.5. Ties (exactly 0.5) break toward the lower index
  /// so the kept-edge digraph is always a well-formed tournament.
  [[nodiscard]] bool edge(std::size_t i, std::size_t j) const;

  /// Weight of the kept edge between i and j: max(p_ij, 1 - p_ij).
  [[nodiscard]] double edge_weight(std::size_t i, std::size_t j) const;

  /// Out-degree of node i in the kept-edge digraph.
  [[nodiscard]] std::size_t out_degree(std::size_t i) const;

  /// A tournament is transitive iff its score (out-degree) sequence is a
  /// permutation of {0, 1, ..., n-1} (classic characterization); this is
  /// exactly the "transitive tournament" case of §3.4 where a unique
  /// Hamiltonian path / topological order exists.
  [[nodiscard]] bool is_transitive() const;

  /// Finds a directed 3-cycle (i -> j -> k -> i) if one exists. Every
  /// non-transitive tournament contains one. Returns empty vector if
  /// transitive.
  [[nodiscard]] std::vector<std::size_t> find_triangle() const;

 private:
  std::size_t n_;
  std::vector<double> prob_;  // row-major n*n, prob_[i*n + j] = P(i before j)
};

}  // namespace tommy::graph
