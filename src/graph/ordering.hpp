// Linear-order extraction from tournaments (§3.4). For a transitive
// tournament the Hamiltonian path is unique and equals the topological
// order; for cyclic tournaments a Hamiltonian path still always exists
// (every tournament has one) and serves as the starting point for the
// cycle-breaking policies in feedback_arc.hpp.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/tournament.hpp"

namespace tommy::graph {

/// Hamiltonian path by binary insertion: O(n log n) edge queries. For a
/// transitive tournament this returns its unique topological ordering.
[[nodiscard]] std::vector<std::size_t> hamiltonian_path(const Tournament& t);

/// True iff `order` is consistent with *every* kept edge (not just
/// consecutive ones): for all a before b in `order`, edge(a, b) holds.
/// For transitive tournaments exactly one order satisfies this.
[[nodiscard]] bool is_linear_extension(const Tournament& t,
                                       const std::vector<std::size_t>& order);

/// Number of kept edges that point backwards under `order` — the cost that
/// a feedback-arc-set policy tries to minimize.
[[nodiscard]] std::size_t backward_edge_count(
    const Tournament& t, const std::vector<std::size_t>& order);

/// Total probability weight of backward edges under `order`.
[[nodiscard]] double backward_edge_weight(const Tournament& t,
                                          const std::vector<std::size_t>& order);

/// Noisy ordering: inserts nodes in random order, each pairwise comparison
/// resolved by a Bernoulli draw with the preceding probability. Over many
/// draws, i precedes j roughly in proportion to P(i before j) — the
/// "stochastic fairness" direction the paper sketches for intransitive
/// relations.
[[nodiscard]] std::vector<std::size_t> sample_stochastic_order(
    const Tournament& t, Rng& rng);

}  // namespace tommy::graph
