#include "graph/transitivity.hpp"

#include <algorithm>

namespace tommy::graph {

namespace {

/// True iff the kept edges among {a, b, c} form a directed 3-cycle.
bool is_cyclic_triple(const Tournament& t, std::size_t a, std::size_t b,
                      std::size_t c) {
  // A 3-node tournament is cyclic iff every node has out-degree 1 within
  // the triple, i.e. it is NOT dominated: check both rotations.
  const bool ab = t.edge(a, b);
  const bool bc = t.edge(b, c);
  const bool ca = t.edge(c, a);
  if (ab && bc && ca) return true;
  return !ab && !bc && !ca;  // the reverse rotation a<-b<-c<-a
}

double min_edge_in_triple(const Tournament& t, std::size_t a, std::size_t b,
                          std::size_t c) {
  return std::min({t.edge_weight(a, b), t.edge_weight(b, c),
                   t.edge_weight(c, a)});
}

}  // namespace

TransitivityReport analyze_transitivity(const Tournament& t) {
  TransitivityReport report;
  const std::size_t n = t.size();

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      report.weakest_edge = std::min(report.weakest_edge, t.edge_weight(i, j));
      for (std::size_t k = j + 1; k < n; ++k) {
        ++report.triples;
        if (is_cyclic_triple(t, i, j, k)) {
          ++report.cyclic_triples;
          report.worst_cycle_confidence =
              std::max(report.worst_cycle_confidence,
                       min_edge_in_triple(t, i, j, k));
        }
      }
    }
  }
  if (n < 2) report.weakest_edge = 1.0;
  return report;
}

}  // namespace tommy::graph
