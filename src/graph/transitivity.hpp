// Characterization of the likely-happened-before relation (§5 "more
// research is needed ... studying the probability distributions of clock
// offsets to establish when —p→ can be safely treated as transitive").
// This report quantifies HOW intransitive a tournament is, rather than
// giving the boolean answer: which triples cycle, how confident the
// cycles' weakest edges are (a cycle of near-0.5 edges is harmless — its
// members end up in one batch anyway — while a confident cycle signals a
// miscalibrated model), and the margin by which the relation could be
// perturbed before ordering decisions change.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/tournament.hpp"

namespace tommy::graph {

struct TransitivityReport {
  /// Number of 3-subsets inspected: C(n, 3).
  std::size_t triples{0};
  /// 3-subsets whose kept edges form a directed cycle.
  std::size_t cyclic_triples{0};
  /// Over all cyclic triples: the maximum of (minimum edge confidence in
  /// the cycle). High values mean confident cycles — the dangerous kind.
  /// 0 when no cycle exists.
  double worst_cycle_confidence{0.0};
  /// Smallest kept-edge weight over the whole tournament: how close the
  /// least-decided pair is to a coin flip.
  double weakest_edge{1.0};

  [[nodiscard]] bool transitive() const { return cyclic_triples == 0; }
  [[nodiscard]] double cyclic_fraction() const {
    return triples == 0 ? 0.0
                        : static_cast<double>(cyclic_triples) /
                              static_cast<double>(triples);
  }
};

/// Inspects every 3-subset: O(n³). Intended for diagnostics and batch
/// sizes (hundreds of nodes), not for hot paths.
[[nodiscard]] TransitivityReport analyze_transitivity(const Tournament& t);

}  // namespace tommy::graph
