#include "graph/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace tommy::graph {

namespace {

// Inserts `node` into `path` at a position where all predecessors beat it
// and it beats all successors, found by binary search. Correct for any
// tournament: if edge(path[m], node) we can insert somewhere right of m,
// otherwise somewhere left of (or at) m.
void binary_insert(const Tournament& t, std::vector<std::size_t>& path,
                   std::size_t node,
                   const std::function<bool(std::size_t, std::size_t)>& wins) {
  std::size_t lo = 0;
  std::size_t hi = path.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (wins(path[mid], node)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  path.insert(path.begin() + static_cast<std::ptrdiff_t>(lo), node);
  (void)t;
}

}  // namespace

std::vector<std::size_t> hamiltonian_path(const Tournament& t) {
  std::vector<std::size_t> path;
  path.reserve(t.size());
  for (std::size_t v = 0; v < t.size(); ++v) {
    binary_insert(t, path, v,
                  [&t](std::size_t a, std::size_t b) { return t.edge(a, b); });
  }
  TOMMY_ENSURES(path.size() == t.size());
  return path;
}

bool is_linear_extension(const Tournament& t,
                         const std::vector<std::size_t>& order) {
  TOMMY_EXPECTS(order.size() == t.size());
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      if (!t.edge(order[a], order[b])) return false;
    }
  }
  return true;
}

std::size_t backward_edge_count(const Tournament& t,
                                const std::vector<std::size_t>& order) {
  TOMMY_EXPECTS(order.size() == t.size());
  std::size_t count = 0;
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      if (t.edge(order[b], order[a])) ++count;
    }
  }
  return count;
}

double backward_edge_weight(const Tournament& t,
                            const std::vector<std::size_t>& order) {
  TOMMY_EXPECTS(order.size() == t.size());
  double weight = 0.0;
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      if (t.edge(order[b], order[a])) {
        weight += t.edge_weight(order[b], order[a]);
      }
    }
  }
  return weight;
}

std::vector<std::size_t> sample_stochastic_order(const Tournament& t,
                                                 Rng& rng) {
  std::vector<std::size_t> nodes(t.size());
  std::iota(nodes.begin(), nodes.end(), std::size_t{0});
  rng.shuffle(nodes);

  std::vector<std::size_t> path;
  path.reserve(t.size());
  for (std::size_t v : nodes) {
    binary_insert(t, path, v, [&t, &rng](std::size_t a, std::size_t b) {
      return rng.bernoulli(t.probability(a, b));
    });
  }
  TOMMY_ENSURES(path.size() == t.size());
  return path;
}

}  // namespace tommy::graph
