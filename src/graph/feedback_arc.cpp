#include "graph/feedback_arc.hpp"

#include <algorithm>
#include <limits>
#include <list>

#include "common/check.hpp"
#include "graph/ordering.hpp"

namespace tommy::graph {

namespace {

FasOrdering finalize(const Tournament& t, std::vector<std::size_t> order) {
  FasOrdering out;
  out.removed_count = backward_edge_count(t, order);
  out.removed_weight = backward_edge_weight(t, order);
  out.order = std::move(order);
  return out;
}

}  // namespace

FasOrdering exact_min_fas(const Tournament& t) {
  const std::size_t n = t.size();
  TOMMY_EXPECTS(n <= 20);

  const std::size_t full = (std::size_t{1} << n) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // cost_in[v][mask]: weight of edges u -> v for u in mask (those edges
  // become backward if v is placed while mask is still unplaced).
  // Computed incrementally below instead of materialized (memory).
  std::vector<double> dp(full + 1, kInf);
  std::vector<std::size_t> parent(full + 1, n);
  dp[0] = 0.0;

  for (std::size_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (std::size_t{1} << v)) continue;
      // Placing v next: every kept edge u -> v from a still-unplaced u
      // (u not in mask, u != v) will end up backward.
      double added = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        if (u == v || (mask & (std::size_t{1} << u))) continue;
        if (t.edge(u, v)) added += t.edge_weight(u, v);
      }
      const std::size_t next = mask | (std::size_t{1} << v);
      if (dp[mask] + added < dp[next]) {
        dp[next] = dp[mask] + added;
        parent[next] = v;
      }
    }
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t mask = full;
  while (mask != 0) {
    const std::size_t v = parent[mask];
    TOMMY_ASSERT(v < n);
    order.push_back(v);
    mask &= ~(std::size_t{1} << v);
  }
  std::reverse(order.begin(), order.end());
  return finalize(t, std::move(order));
}

FasOrdering greedy_fas(const Tournament& t) {
  const std::size_t n = t.size();

  std::vector<bool> removed(n, false);
  std::size_t remaining = n;
  std::vector<std::size_t> head;   // grows from the front (sources)
  std::vector<std::size_t> tail;   // grows from the back (sinks), reversed

  const auto weighted_degrees = [&](std::size_t v) {
    double out_w = 0.0;
    double in_w = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v || removed[u]) continue;
      if (t.edge(v, u)) {
        out_w += t.edge_weight(v, u);
      } else {
        in_w += t.edge_weight(u, v);
      }
    }
    return std::pair{out_w, in_w};
  };

  while (remaining > 0) {
    // Drain sinks (no outgoing weight) then sources (no incoming weight).
    bool changed = true;
    while (changed && remaining > 0) {
      changed = false;
      for (std::size_t v = 0; v < n && remaining > 0; ++v) {
        if (removed[v]) continue;
        const auto [out_w, in_w] = weighted_degrees(v);
        if (out_w == 0.0 && remaining > 1) {
          tail.push_back(v);
          removed[v] = true;
          --remaining;
          changed = true;
        } else if (in_w == 0.0) {
          head.push_back(v);
          removed[v] = true;
          --remaining;
          changed = true;
        }
      }
    }
    if (remaining == 0) break;

    // Otherwise remove the vertex maximizing out-weight − in-weight.
    std::size_t best = n;
    double best_delta = -std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (removed[v]) continue;
      const auto [out_w, in_w] = weighted_degrees(v);
      const double delta = out_w - in_w;
      if (delta > best_delta) {
        best_delta = delta;
        best = v;
      }
    }
    TOMMY_ASSERT(best < n);
    head.push_back(best);
    removed[best] = true;
    --remaining;
  }

  std::vector<std::size_t> order = std::move(head);
  order.insert(order.end(), tail.rbegin(), tail.rend());
  TOMMY_ENSURES(order.size() == n);
  return finalize(t, std::move(order));
}

FasOrdering stochastic_fas(const Tournament& t, Rng& rng) {
  return finalize(t, sample_stochastic_order(t, rng));
}

}  // namespace tommy::graph
