// The downstream half of merge replication: a client that consumes the
// released global stream from a MergeNode downlink and survives the
// merge dying. Configured with an endpoint list (primary first, then
// standbys), it dials the first reachable endpoint, consumes OrderedBatch
// + MergeWatermark frames, and on stream death dials the next endpoint in
// the cycle and RESUMES FROM ITS WATERMARK: the attach replay delivers
// the standby's full released backlog, and every record whose
// (safe_time, node, rank) cursor is at or below the watermark held at
// attach is dropped as a replayed duplicate. Because all replicas release
// the identical, strictly-ascending cursor sequence (the holdback is
// deterministic), the spliced stream is gap-free and duplicate-free —
// bit-identical to what one immortal merge would have released.
//
// Protocol errors are terminal and typed: a record that lands between
// the attach watermark and the current cursor (kOrderViolation) can only
// mean a non-deterministic or misconfigured replica, and cutting over
// from corrupt data would launder it into the output stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/topology.hpp"
#include "net/acceptor.hpp"
#include "net/messages.hpp"

namespace tommy::dist {

/// Typed terminal errors at the subscriber.
enum class SubscriberError : std::uint8_t {
  kNone,
  /// A record arrived above the attach watermark but at or below the
  /// current cursor: replicas disagree on the release order.
  kOrderViolation,
  /// Framing failed (oversized) or a payload failed WireMessage decode.
  kMalformedFrame,
  /// A frame kind that does not belong on a downlink (anything other
  /// than OrderedBatch / MergeWatermark).
  kUnexpectedFrame,
};

[[nodiscard]] const char* to_string(SubscriberError error);

struct MergeSubscriberConfig {
  /// Downlink endpoints in preference order: [0] is the primary, the
  /// rest are hot standbys. Cutover cycles through the list, so a
  /// restarted primary is retried after the last standby.
  std::vector<NodeAddress> endpoints;
  /// Backoff budget for each individual dial attempt during cutover.
  net::RetryPolicy retry{};
  std::size_t max_frame_bytes{net::kDefaultMaxFrameBytes};
};

struct MergeSubscriberStats {
  bool connected{false};
  /// Index into config.endpoints of the current (or last) attachment.
  std::uint32_t endpoint{0};
  /// Successful re-attachments after the initial one.
  std::uint64_t cutovers{0};
  /// Replayed records dropped at the watermark across cutovers.
  std::uint64_t duplicates{0};
  /// MergeWatermark frames applied (replayed barriers included).
  std::uint64_t watermarks{0};
  /// Watermark frames carrying a cursor behind our own (replays).
  std::uint64_t stale_watermarks{0};
  /// Dial rounds that exhausted their retry budget.
  std::uint64_t failed_dials{0};
  SubscriberError error{SubscriberError::kNone};
};

class MergeSubscriber {
 public:
  explicit MergeSubscriber(MergeSubscriberConfig config);

  /// stop()s.
  ~MergeSubscriber();

  MergeSubscriber(const MergeSubscriber&) = delete;
  MergeSubscriber& operator=(const MergeSubscriber&) = delete;

  /// Spawns the consumer thread (dial, consume, cut over — forever
  /// until stop() or a typed protocol error). Call once.
  void start();

  /// Shuts the current stream down and joins the consumer. Idempotent.
  void stop();

  /// The consumed global stream so far (copy; grows monotonically —
  /// index i is release position i forever, across cutovers).
  [[nodiscard]] std::vector<net::OrderedBatch> released() const;
  [[nodiscard]] std::size_t released_count() const;

  /// Our watermark: released count + cursor of the last consumed record.
  [[nodiscard]] net::MergeWatermark watermark() const;

  [[nodiscard]] MergeSubscriberStats stats() const;

  /// Blocks until at least `n` records have been consumed, or
  /// `timeout_ms` elapsed. True if reached.
  [[nodiscard]] bool wait_for_released(std::size_t n, int timeout_ms);
  /// Blocks until at least `n` watermark frames have been applied (the
  /// attach barrier counts), or `timeout_ms` elapsed. True if reached.
  [[nodiscard]] bool wait_for_watermarks(std::uint64_t n, int timeout_ms);

 private:
  void run();
  /// Consumes one connection until EOF / transport error / typed
  /// protocol error / stop. Returns false on a terminal typed error.
  [[nodiscard]] bool consume(const std::shared_ptr<net::ByteStream>& stream);
  [[nodiscard]] bool handle_locked(net::WireMessage&& message);

  MergeSubscriberConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread consumer_;
  bool started_{false};
  bool stopping_{false};

  std::shared_ptr<net::ByteStream> stream_;
  std::vector<net::OrderedBatch> released_;
  /// Cursor of the last accepted record (valid iff !released_.empty()).
  net::MergeWatermark cursor_{};
  /// Cursor held when the current connection attached: everything at or
  /// below it is the replica's replayed prefix.
  net::MergeWatermark attach_cursor_{};
  MergeSubscriberStats stats_;
};

}  // namespace tommy::dist
