// Multi-node topology: the static description of a distributed
// fair-ordering deployment — N shard nodes (each one FairOrderingService
// shard behind a FrameServer) plus the client→node assignment — and the
// thin router tier that lets clients keep the single-endpoint handshake
// flow while the service fans out horizontally.
//
//   clients ──► RouterNode ──► shard node 0 ┐ OrderedBatch +
//      (one endpoint,          shard node 1 ├ SafeTimeAnnounce ──► merge
//       relayed raw)           shard node k ┘ uplinks              node
//
// The client→node assignment reuses the in-process KeyRouter machinery
// verbatim — by default a RangeRouter over the client span, which is
// exactly the router FairOrderingService builds when none is given. That
// identity is what makes the distributed deployment comparable to the
// single-process oracle: partition(i) here is the same client set that
// shard i owns inside a shard_count = N service over the same clients,
// so the per-node emission streams are bit-comparable shard for shard.
//
// RouterNode is deliberately stateless beyond the handshake sniff: it
// decodes the first frame of each inbound connection (the client's
// DistributionAnnouncement), routes on the announced client id, and
// splices bytes both ways (net::RelaySet). It holds no ordering state,
// so killing or restarting the router loses nothing but in-flight
// connections — clients reconnect and resend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/service.hpp"
#include "net/acceptor.hpp"

namespace tommy::dist {

/// One dialable listening endpoint. Now literally the shared net-layer
/// address type: a topology entry passes straight into net::listen /
/// net::dial without translation (field layout and empty() semantics are
/// unchanged — aggregate initializers at existing call sites still work).
using NodeAddress = net::Endpoint;

/// A shard node's two listening sockets: `ingest` accepts client (or
/// router-relayed) frame connections; `uplink` streams OrderedBatch +
/// SafeTimeAnnounce frames to merge subscribers.
struct NodeEndpoints {
  NodeAddress ingest{};
  NodeAddress uplink{};
};

/// The static deployment map: node endpoints, the full client set, and
/// the client→node assignment. Immutable after construction — topology
/// changes in this codebase are a restart, not a protocol.
class Topology {
 public:
  /// `clients` is the full expected client set (every node primes its
  /// engine over all of them; see ShardNode). Null `router` builds the
  /// same default the in-process service does: a RangeRouter over the
  /// clients' id span — keeping the distributed partition bit-identical
  /// to a shard_count = node-count oracle service.
  Topology(std::vector<NodeEndpoints> nodes, std::vector<ClientId> clients,
           std::shared_ptr<const core::KeyRouter> router = {});

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const std::vector<ClientId>& clients() const {
    return clients_;
  }
  [[nodiscard]] const NodeEndpoints& endpoints(std::uint32_t node) const;

  /// Owning node of `client` (the router is total: ids outside the
  /// expected set still map somewhere).
  [[nodiscard]] std::uint32_t node_for(ClientId client) const;

  /// The clients assigned to `node`, in the order they appear in
  /// clients() — the same order a FairOrderingService visits them when
  /// partitioning its expected set, so a node's expected list matches
  /// the oracle shard's exactly.
  [[nodiscard]] std::vector<ClientId> partition(std::uint32_t node) const;

  /// All partitions at once (index = node).
  [[nodiscard]] std::vector<std::vector<ClientId>> partitions() const;

  [[nodiscard]] const core::KeyRouter& router() const { return *router_; }

 private:
  std::vector<NodeEndpoints> nodes_;
  std::vector<ClientId> clients_;
  std::shared_ptr<const core::KeyRouter> router_;
};

struct RouterConfig {
  /// Backoff budget for dialing a shard node's ingest endpoint — a node
  /// mid-restart refuses transiently, and the relay retries under this
  /// before dropping the client.
  net::RetryPolicy retry{};
  std::size_t max_frame_bytes{net::kDefaultMaxFrameBytes};
  int backlog{128};
};

/// The thin router tier: one listening socket, one RelaySet. Every
/// accepted client connection is sniffed for its announcement, routed by
/// client id, and spliced to the owning shard node's ingest endpoint.
class RouterNode {
 public:
  explicit RouterNode(Topology topology, RouterConfig config = {});

  /// stop()s.
  ~RouterNode();

  RouterNode(const RouterNode&) = delete;
  RouterNode& operator=(const RouterNode&) = delete;

  /// Unified listen (deprecated per-transport spellings below).
  [[nodiscard]] bool listen(const net::Endpoint& endpoint) {
    return acceptor_.listen(endpoint);
  }
  [[nodiscard]] bool listen_unix(const std::string& path);
  [[nodiscard]] bool listen_tcp(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const { return acceptor_.port(); }
  [[nodiscard]] const std::string& unix_path() const {
    return acceptor_.unix_path();
  }
  [[nodiscard]] bool running() const { return acceptor_.running(); }

  /// Stops accepting, then tears every live relay down (clients see dead
  /// connections and reconnect elsewhere/later). Idempotent.
  void stop();

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] net::RelaySet& relays() { return relays_; }
  [[nodiscard]] const net::RelaySet& relays() const { return relays_; }

 private:
  [[nodiscard]] std::shared_ptr<net::ByteStream> dial(
      const net::DistributionAnnouncement& announcement);

  Topology topology_;
  RouterConfig config_;
  net::RelaySet relays_;
  net::StreamAcceptor acceptor_;
};

}  // namespace tommy::dist
