#include "dist/topology.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace tommy::dist {

Topology::Topology(std::vector<NodeEndpoints> nodes,
                   std::vector<ClientId> clients,
                   std::shared_ptr<const core::KeyRouter> router)
    : nodes_(std::move(nodes)),
      clients_(std::move(clients)),
      router_(std::move(router)) {
  TOMMY_EXPECTS(!nodes_.empty());
  if (!router_) {
    TOMMY_EXPECTS(!clients_.empty());
    ClientId lo = clients_.front();
    ClientId hi = clients_.front();
    for (ClientId c : clients_) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    router_ = std::make_shared<core::RangeRouter>(lo, hi);
  }
}

const NodeEndpoints& Topology::endpoints(std::uint32_t node) const {
  TOMMY_EXPECTS(node < nodes_.size());
  return nodes_[node];
}

std::uint32_t Topology::node_for(ClientId client) const {
  return router_->route(client, node_count());
}

std::vector<ClientId> Topology::partition(std::uint32_t node) const {
  TOMMY_EXPECTS(node < nodes_.size());
  std::vector<ClientId> owned;
  for (ClientId c : clients_) {
    if (node_for(c) == node) owned.push_back(c);
  }
  return owned;
}

std::vector<std::vector<ClientId>> Topology::partitions() const {
  std::vector<std::vector<ClientId>> parts(nodes_.size());
  for (ClientId c : clients_) {
    parts[node_for(c)].push_back(c);
  }
  return parts;
}

RouterNode::RouterNode(Topology topology, RouterConfig config)
    : topology_(std::move(topology)),
      config_(std::move(config)),
      relays_(
          [this](const net::DistributionAnnouncement& announcement) {
            return dial(announcement);
          },
          config_.max_frame_bytes),
      acceptor_(
          [this](std::shared_ptr<net::ByteStream> stream) {
            relays_.adopt(std::move(stream));
          },
          config_.backlog) {}

RouterNode::~RouterNode() { stop(); }

bool RouterNode::listen_unix(const std::string& path) {
  return acceptor_.listen_unix(path);
}

bool RouterNode::listen_tcp(std::uint16_t port) {
  return acceptor_.listen_tcp(port);
}

void RouterNode::stop() {
  acceptor_.stop();
  relays_.stop();
}

std::shared_ptr<net::ByteStream> RouterNode::dial(
    const net::DistributionAnnouncement& announcement) {
  const std::uint32_t node = topology_.node_for(announcement.client);
  const NodeAddress& address = topology_.endpoints(node).ingest;
  // One transport-agnostic dial path with the transient-failure retry
  // budget: a shard node mid-restart (socket file briefly gone, listener
  // mid-bind) refuses transiently, and the relay should outwait it
  // rather than fail the client's first frame.
  return net::dial(address, config_.retry);
}

}  // namespace tommy::dist
