#include "dist/shard_node.hpp"

#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "net/framing.hpp"

namespace tommy::dist {

namespace {

core::ServiceConfig service_config_for(const ShardNodeConfig& config) {
  core::ServiceConfig service;
  service.online = config.online;
  // One shard, sequential: the node IS the shard; cross-shard arbitration
  // lives at the merge tier.
  service.shard_count = 1;
  return service;
}

net::ServerConfig server_config_for(const ShardNodeConfig& config) {
  net::ServerConfig server;
  server.frontend = config.frontend;
  server.frontend.accept_new_clients = true;
  server.backlog = config.backlog;
  return server;
}

}  // namespace

ShardNode::ShardNode(core::ClientRegistry& registry,
                     std::vector<ClientId> expected, ShardNodeConfig config)
    : config_(std::move(config)),
      service_(registry, std::move(expected), service_config_for(config_)),
      server_(registry, service_, server_config_for(config_)),
      uplink_(
          [this](std::shared_ptr<net::ByteStream> stream) {
            subscribe(std::move(stream));
          },
          config_.backlog) {}

ShardNode::~ShardNode() { stop(); }

std::size_t ShardNode::pump(TimePoint now) {
  return pump_impl(now, /*flush_all=*/false);
}

std::size_t ShardNode::pump_flush(TimePoint now) {
  return pump_impl(now, /*flush_all=*/true);
}

TimePoint ShardNode::pump_now() const {
  if (config_.pump_clock) return config_.pump_clock();
  return TimePoint(std::chrono::duration<double>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count());
}

void ShardNode::start_pump() {
  TOMMY_EXPECTS(config_.pump_interval.count() > 0);
  std::lock_guard<std::mutex> lock(pump_mutex_);
  TOMMY_EXPECTS(!pump_running_);
  pump_running_ = true;
  pump_stopping_ = false;
  pump_thread_ = std::thread([this] { pump_loop(); });
}

void ShardNode::pump_loop() {
  std::unique_lock<std::mutex> lock(pump_mutex_);
  while (!pump_stopping_) {
    pump_cv_.wait_for(lock, config_.pump_interval,
                      [this] { return pump_stopping_; });
    if (pump_stopping_) return;
    lock.unlock();
    pump(pump_now());
    lock.lock();
  }
}

void ShardNode::stop_pump() {
  std::thread pump_thread;
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    if (!pump_running_) return;
    pump_stopping_ = true;
    pump_cv_.notify_all();
    pump_thread = std::move(pump_thread_);
  }
  if (pump_thread.joinable()) pump_thread.join();
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_running_ = false;
  }
  // The thread is gone, so this flush cannot race it — held batches and
  // one infinite-frontier announce drain to the uplink.
  if (config_.flush_on_stop) pump_flush(pump_now());
}

bool ShardNode::pump_running() const {
  std::lock_guard<std::mutex> lock(pump_mutex_);
  return pump_running_;
}

std::size_t ShardNode::pump_impl(TimePoint now, bool flush_all) {
  std::lock_guard<std::mutex> pump_lock(pump_call_mutex_);
  std::vector<core::EmissionRecord> records;
  auto collect = [&records](core::EmissionRecord&& record, std::uint32_t) {
    records.push_back(std::move(record));
  };
  core::CallbackSink<decltype(collect)> sink(collect);
  TimePoint next_safe = TimePoint::infinite_future();
  net::PumpOptions options;
  options.sink = &sink;
  options.flush = flush_all;
  options.next_safe_after = &next_safe;
  const std::size_t emitted = server_.frontend().pump(now, options);

  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(records.size() + 1);
  for (core::EmissionRecord& record : records) {
    net::OrderedBatch batch;
    batch.node = config_.node;
    batch.epoch = config_.epoch;
    batch.rank = record.batch.rank;
    batch.safe_time = record.safe_time;
    batch.emitted_at = record.emitted_at;
    batch.messages.reserve(record.batch.messages.size());
    for (const core::Message& m : record.batch.messages) {
      batch.messages.push_back(
          net::OrderedBatch::Entry{m.client, m.id, m.stamp, m.arrival});
    }
    frames.push_back(net::encode_frame(net::WireMessage(std::move(batch))));
  }
  frames.push_back(net::encode_frame(net::WireMessage(
      net::SafeTimeAnnounce{config_.node, config_.epoch, next_safe})));
  publish(std::move(frames));
  return emitted;
}

void ShardNode::publish(std::vector<std::vector<std::uint8_t>>&& frames) {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  for (std::vector<std::uint8_t>& frame : frames) {
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      if ((*it)->write_all(frame)) {
        ++it;
      } else {
        (*it)->shutdown();
        it = subscribers_.erase(it);
      }
    }
    retained_.push_back(std::move(frame));
    // Sliding-window retention: attached subscribers already consumed
    // the truncated frames, and later subscribers are refused (below) —
    // the FIFO-from-zero replay contract is never silently broken.
    if (config_.replay_retention_cap > 0
        && retained_.size() > config_.replay_retention_cap) {
      retained_.pop_front();
      ++truncated_;
    }
  }
  ++announces_;
}

void ShardNode::subscribe(std::shared_ptr<net::ByteStream> stream) {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  // A subscriber attaching after truncation cannot be given the frames
  // the rank dedup needs (FIFO replay from rank zero): refuse with a
  // typed frame instead of handing it a stream with a silent gap.
  if (truncated_ > 0) {
    const std::vector<std::uint8_t> refusal = net::encode_frame(
        net::WireMessage(net::ReplayTruncated{config_.node, config_.epoch,
                                              truncated_}));
    (void)stream->write_all(refusal);
    stream->shutdown();
    return;
  }
  // Replay the full retained backlog first, under the same lock a
  // concurrent pump would need — the subscriber's FIFO view starts at
  // frame 0 with no gap and no interleaving.
  for (const std::vector<std::uint8_t>& frame : retained_) {
    if (!stream->write_all(frame)) {
      stream->shutdown();
      return;
    }
  }
  subscribers_.push_back(std::move(stream));
}

void ShardNode::stop() {
  stop_pump();
  uplink_.stop();
  server_.stop();
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  for (const auto& stream : subscribers_) stream->shutdown();
  subscribers_.clear();
}

std::size_t ShardNode::subscriber_count() const {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  return subscribers_.size();
}

std::size_t ShardNode::frames_retained() const {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  return retained_.size();
}

std::uint64_t ShardNode::frames_truncated() const {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  return truncated_;
}

std::uint64_t ShardNode::announces_published() const {
  std::lock_guard<std::mutex> lock(uplink_mutex_);
  return announces_;
}

}  // namespace tommy::dist
