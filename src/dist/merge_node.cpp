#include "dist/merge_node.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <variant>

#include "common/check.hpp"
#include "net/framing.hpp"
#include "net/frontend.hpp"

namespace tommy::dist {

namespace {

/// Heap comparator for the holdback min-heap: "after" under the release
/// order (safe_time, node, rank), so std::push_heap/pop_heap — max-heap
/// primitives — keep the NEXT record to release at the root.
struct HoldbackAfter {
  bool operator()(const net::OrderedBatch& lhs,
                  const net::OrderedBatch& rhs) const {
    if (lhs.safe_time != rhs.safe_time) return lhs.safe_time > rhs.safe_time;
    if (lhs.node != rhs.node) return lhs.node > rhs.node;
    return lhs.rank > rhs.rank;
  }
};

}  // namespace

const char* to_string(MergeError error) {
  switch (error) {
    case MergeError::kNone:
      return "none";
    case MergeError::kRankGap:
      return "rank gap";
    case MergeError::kMalformedFrame:
      return "malformed frame";
    case MergeError::kUnexpectedFrame:
      return "unexpected frame";
    case MergeError::kStreamError:
      return "stream error";
    case MergeError::kReplayTruncated:
      return "replay truncated";
  }
  return "unknown";
}

const char* to_string(MergePeerState state) {
  switch (state) {
    case MergePeerState::kNeverHeard:
      return "never heard";
    case MergePeerState::kLive:
      return "live";
    case MergePeerState::kPeerStalled:
      return "stalled";
    case MergePeerState::kDisconnected:
      return "disconnected";
  }
  return "unknown";
}

MergeNode::MergeNode(std::uint32_t node_count, MergeConfig config)
    : config_(std::move(config)),
      peers_(node_count),
      downlink_(
          [this](std::shared_ptr<net::ByteStream> stream) {
            subscribe_downlink(std::move(stream));
          },
          config_.backlog) {
  TOMMY_EXPECTS(node_count > 0);
  if (config_.staleness_budget.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

MergeNode::~MergeNode() { stop(); }

bool MergeNode::connect(std::uint32_t node, const net::Endpoint& endpoint) {
  auto stream = net::dial(endpoint, config_.retry);
  if (stream == nullptr) return false;
  attach(node, std::move(stream));
  return true;
}

bool MergeNode::connect_unix(std::uint32_t node, const std::string& path) {
  return connect(node, net::Endpoint{.unix_path = path, .tcp_port = 0});
}

bool MergeNode::connect_tcp(std::uint32_t node, std::uint16_t port) {
  return connect(node, net::Endpoint{.unix_path = {}, .tcp_port = port});
}

void MergeNode::attach(std::uint32_t node,
                       std::shared_ptr<net::ByteStream> stream) {
  TOMMY_EXPECTS(node < peers_.size());
  std::thread old_reader;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Peer& peer = peers_[node];
    TOMMY_EXPECTS(!peer.connected);
    old_reader = std::move(peer.reader);
    if (peer.stream) peer.stream->shutdown();
  }
  if (old_reader.joinable()) old_reader.join();
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& peer = peers_[node];
  peer.stream = stream;
  peer.connected = true;
  peer.error = MergeError::kNone;
  // Unheard until the replayed announces land: the frontier pins the
  // gate at −infinity, never speculating past this peer.
  peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
  peer.reader = std::thread(
      [this, node, stream = std::move(stream)]() mutable {
        reader_loop(node, std::move(stream));
      });
}

void MergeNode::reader_loop(std::uint32_t node,
                            std::shared_ptr<net::ByteStream> stream) {
  net::FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<std::uint8_t> buffer(4096);
  for (;;) {
    const auto n = stream->read_some(buffer);
    if (!n.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      fail_locked(node, MergeError::kStreamError);
      cv_.notify_all();
      return;
    }
    if (*n == 0) {
      // Clean EOF (node stopped or is restarting): back to blocking
      // until a reconnect re-establishes the frontier.
      std::lock_guard<std::mutex> lock(mutex_);
      Peer& peer = peers_[node];
      peer.connected = false;
      peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
      cv_.notify_all();
      return;
    }
    decoder.append(std::span<const std::uint8_t>(buffer.data(), *n));
    std::lock_guard<std::mutex> lock(mutex_);
    while (auto payload = decoder.next()) {
      auto message = net::decode(*payload);
      if (!message.has_value()) {
        fail_locked(node, MergeError::kMalformedFrame);
        cv_.notify_all();
        return;
      }
      handle_locked(node, std::move(*message));
      if (peers_[node].error != MergeError::kNone) {
        cv_.notify_all();
        return;
      }
    }
    if (decoder.error() != net::FrameError::kNone) {
      fail_locked(node, MergeError::kMalformedFrame);
      cv_.notify_all();
      return;
    }
    cv_.notify_all();
  }
}

void MergeNode::handle_locked(std::uint32_t node, net::WireMessage&& message) {
  Peer& peer = peers_[node];
  // Any decodable frame is a liveness signal, whatever its fate below.
  peer.heard = true;
  peer.stalled = false;
  peer.last_heard = std::chrono::steady_clock::now();
  if (auto* batch = std::get_if<net::OrderedBatch>(&message)) {
    if (batch->epoch < peer.epoch) {
      ++peer.stale;
      return;
    }
    peer.epoch = batch->epoch;
    if (batch->rank < peer.accepted) {
      // Replayed prefix of a restarted incarnation — bit-identical to
      // what was already accepted (determinism), so dropping loses
      // nothing.
      ++peer.duplicates;
      return;
    }
    if (batch->rank > peer.accepted) {
      fail_locked(node, MergeError::kRankGap);
      return;
    }
    ++peer.accepted;
    holdback_.push_back(std::move(*batch));
    std::push_heap(holdback_.begin(), holdback_.end(), HoldbackAfter{});
    return;
  }
  if (auto* announce = std::get_if<net::SafeTimeAnnounce>(&message)) {
    if (announce->epoch < peer.epoch) {
      ++peer.stale;
      return;
    }
    peer.epoch = announce->epoch;
    peer.next_safe = announce->next_safe_time;
    ++peer.announces;
    return;
  }
  if (std::get_if<net::ReplayTruncated>(&message) != nullptr) {
    // The shard's retention cap dropped history this subscription
    // needed: a typed refusal, never a silent gap.
    fail_locked(node, MergeError::kReplayTruncated);
    return;
  }
  fail_locked(node, MergeError::kUnexpectedFrame);
}

void MergeNode::fail_locked(std::uint32_t node, MergeError error) {
  Peer& peer = peers_[node];
  if (peer.error == MergeError::kNone) peer.error = error;
  peer.connected = false;
  peer.stalled = false;
  peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
  if (peer.stream) peer.stream->shutdown();
}

TimePoint MergeNode::gate_locked() const {
  TimePoint gate = TimePoint::infinite_future();
  for (const Peer& peer : peers_) {
    gate = std::min(gate, peer.next_safe);
  }
  return gate;
}

std::size_t MergeNode::release_locked(TimePoint gate, bool release_all) {
  // The holdback is a min-heap on (safe_time, node, rank): pop while the
  // root clears the gate. Keys are unique ((node, rank) is — accepted
  // ranks are strictly increasing per peer), so the pop sequence is
  // exactly the (safe_time, node, rank)-sorted order the former
  // whole-holdback stable_sort produced, at O(released · log H) per round
  // instead of O(H log H).
  const std::size_t before = released_.size();
  std::size_t released = 0;
  while (released < holdback_.size()) {
    if (!release_all && !(holdback_.front().safe_time < gate)) break;
    std::pop_heap(holdback_.begin(),
                  holdback_.end() - static_cast<std::ptrdiff_t>(released),
                  HoldbackAfter{});
    ++released;
  }
  // pop_heap parks each popped minimum just past the shrinking heap end,
  // so the tail holds the release in reverse: drain it back-to-front.
  for (std::size_t k = 0; k < released; ++k) {
    released_.push_back(std::move(holdback_.back()));
    holdback_.pop_back();
  }
  if (released > 0) publish_released_locked(before);
  return released;
}

net::MergeWatermark MergeNode::watermark_locked() const {
  net::MergeWatermark watermark;
  watermark.released = released_.size();
  if (!released_.empty()) {
    const net::OrderedBatch& last = released_.back();
    watermark.node = last.node;
    watermark.rank = last.rank;
    watermark.safe_time = last.safe_time;
  }
  return watermark;
}

void MergeNode::publish_released_locked(std::size_t from) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(released_.size() - from + 1);
  for (std::size_t i = from; i < released_.size(); ++i) {
    frames.push_back(net::encode_frame(net::WireMessage(released_[i])));
  }
  // One watermark per release round: the barrier a downstream consumer
  // checkpoints on ("everything up to this cursor has been delivered").
  frames.push_back(
      net::encode_frame(net::WireMessage(watermark_locked())));
  for (std::vector<std::uint8_t>& frame : frames) {
    for (auto it = downlink_subscribers_.begin();
         it != downlink_subscribers_.end();) {
      if ((*it)->write_all(frame)) {
        ++it;
      } else {
        (*it)->shutdown();
        it = downlink_subscribers_.erase(it);
      }
    }
    downlink_retained_.push_back(std::move(frame));
  }
}

void MergeNode::subscribe_downlink(std::shared_ptr<net::ByteStream> stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Replay the full released backlog under the same lock a concurrent
  // release would need: the subscriber's FIFO view starts at release
  // position 0 with no gap and no interleaving.
  for (const std::vector<std::uint8_t>& frame : downlink_retained_) {
    if (!stream->write_all(frame)) {
      stream->shutdown();
      return;
    }
  }
  // A fresh watermark even when nothing has been released yet — the
  // attach barrier a consumer can synchronize on.
  if (!stream->write_all(
          net::encode_frame(net::WireMessage(watermark_locked())))) {
    stream->shutdown();
    return;
  }
  downlink_subscribers_.push_back(std::move(stream));
}

void MergeNode::watchdog_loop() {
  const auto interval = config_.watchdog_interval.count() > 0
                            ? config_.watchdog_interval
                            : std::max(config_.staleness_budget / 4,
                                       std::chrono::milliseconds(1));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, interval, [this] { return stopping_; });
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (Peer& peer : peers_) {
      if (peer.connected && peer.heard && !peer.stalled
          && now - peer.last_heard > config_.staleness_budget) {
        // Surface only: the peer keeps its last announced frontier and
        // the gate stays pinned there — stalling is never license to
        // speculate past an unheard frontier.
        peer.stalled = true;
      }
    }
  }
}

std::size_t MergeNode::release() {
  std::lock_guard<std::mutex> lock(mutex_);
  return release_locked(gate_locked(), /*release_all=*/false);
}

std::size_t MergeNode::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return release_locked(TimePoint::infinite_future(), /*release_all=*/true);
}

std::vector<net::OrderedBatch> MergeNode::released() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_;
}

std::size_t MergeNode::released_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_.size();
}

std::size_t MergeNode::held_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return holdback_.size();
}

TimePoint MergeNode::gate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gate_locked();
}

net::MergeWatermark MergeNode::watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watermark_locked();
}

std::size_t MergeNode::downlink_subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return downlink_subscribers_.size();
}

MergePeerStats MergeNode::peer(std::uint32_t node) const {
  TOMMY_EXPECTS(node < peers_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const Peer& peer = peers_[node];
  MergePeerStats stats;
  stats.connected = peer.connected;
  stats.epoch = peer.epoch;
  stats.accepted = peer.accepted;
  stats.duplicates = peer.duplicates;
  stats.stale = peer.stale;
  stats.announces = peer.announces;
  stats.next_safe = peer.next_safe;
  stats.error = peer.error;
  stats.stalled = peer.stalled;
  if (!peer.connected) {
    stats.state = MergePeerState::kDisconnected;
  } else if (!peer.heard) {
    stats.state = MergePeerState::kNeverHeard;
  } else if (peer.stalled) {
    stats.state = MergePeerState::kPeerStalled;
  } else {
    stats.state = MergePeerState::kLive;
  }
  if (peer.heard) {
    stats.since_heard_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - peer.last_heard)
            .count();
  }
  return stats;
}

bool MergeNode::wait_for_announces(std::uint32_t node, std::uint64_t n,
                                   int timeout_ms) {
  TOMMY_EXPECTS(node < peers_.size());
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return peers_[node].announces >= n; });
}

void MergeNode::stop() {
  downlink_.stop();
  std::thread watchdog;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
    for (Peer& peer : peers_) {
      if (peer.stream) peer.stream->shutdown();
      if (peer.reader.joinable()) readers.push_back(std::move(peer.reader));
    }
    for (const auto& stream : downlink_subscribers_) stream->shutdown();
    downlink_subscribers_.clear();
    watchdog = std::move(watchdog_);
  }
  if (watchdog.joinable()) watchdog.join();
  for (std::thread& reader : readers) reader.join();
}

}  // namespace tommy::dist
