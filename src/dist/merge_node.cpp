#include "dist/merge_node.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <variant>

#include "common/check.hpp"
#include "net/framing.hpp"
#include "net/frontend.hpp"

namespace tommy::dist {

const char* to_string(MergeError error) {
  switch (error) {
    case MergeError::kNone:
      return "none";
    case MergeError::kRankGap:
      return "rank gap";
    case MergeError::kMalformedFrame:
      return "malformed frame";
    case MergeError::kUnexpectedFrame:
      return "unexpected frame";
    case MergeError::kStreamError:
      return "stream error";
  }
  return "unknown";
}

MergeNode::MergeNode(std::uint32_t node_count, MergeConfig config)
    : config_(std::move(config)), peers_(node_count) {
  TOMMY_EXPECTS(node_count > 0);
}

MergeNode::~MergeNode() { stop(); }

bool MergeNode::connect_unix(std::uint32_t node, const std::string& path) {
  auto stream = net::connect_unix(path, config_.retry);
  if (stream == nullptr) return false;
  attach(node, std::move(stream));
  return true;
}

bool MergeNode::connect_tcp(std::uint32_t node, std::uint16_t port) {
  auto stream = net::connect_tcp(port, config_.retry);
  if (stream == nullptr) return false;
  attach(node, std::move(stream));
  return true;
}

void MergeNode::attach(std::uint32_t node,
                       std::shared_ptr<net::ByteStream> stream) {
  TOMMY_EXPECTS(node < peers_.size());
  std::thread old_reader;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Peer& peer = peers_[node];
    TOMMY_EXPECTS(!peer.connected);
    old_reader = std::move(peer.reader);
    if (peer.stream) peer.stream->shutdown();
  }
  if (old_reader.joinable()) old_reader.join();
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& peer = peers_[node];
  peer.stream = stream;
  peer.connected = true;
  peer.error = MergeError::kNone;
  // Unheard until the replayed announces land: the frontier pins the
  // gate at −infinity, never speculating past this peer.
  peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
  peer.reader = std::thread(
      [this, node, stream = std::move(stream)]() mutable {
        reader_loop(node, std::move(stream));
      });
}

void MergeNode::reader_loop(std::uint32_t node,
                            std::shared_ptr<net::ByteStream> stream) {
  net::FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<std::uint8_t> buffer(4096);
  for (;;) {
    const auto n = stream->read_some(buffer);
    if (!n.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      fail_locked(node, MergeError::kStreamError);
      cv_.notify_all();
      return;
    }
    if (*n == 0) {
      // Clean EOF (node stopped or is restarting): back to blocking
      // until a reconnect re-establishes the frontier.
      std::lock_guard<std::mutex> lock(mutex_);
      Peer& peer = peers_[node];
      peer.connected = false;
      peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
      cv_.notify_all();
      return;
    }
    decoder.append(std::span<const std::uint8_t>(buffer.data(), *n));
    std::lock_guard<std::mutex> lock(mutex_);
    while (auto payload = decoder.next()) {
      auto message = net::decode(*payload);
      if (!message.has_value()) {
        fail_locked(node, MergeError::kMalformedFrame);
        cv_.notify_all();
        return;
      }
      handle_locked(node, std::move(*message));
      if (peers_[node].error != MergeError::kNone) {
        cv_.notify_all();
        return;
      }
    }
    if (decoder.error() != net::FrameError::kNone) {
      fail_locked(node, MergeError::kMalformedFrame);
      cv_.notify_all();
      return;
    }
    cv_.notify_all();
  }
}

void MergeNode::handle_locked(std::uint32_t node, net::WireMessage&& message) {
  Peer& peer = peers_[node];
  if (auto* batch = std::get_if<net::OrderedBatch>(&message)) {
    if (batch->epoch < peer.epoch) {
      ++peer.stale;
      return;
    }
    peer.epoch = batch->epoch;
    if (batch->rank < peer.accepted) {
      // Replayed prefix of a restarted incarnation — bit-identical to
      // what was already accepted (determinism), so dropping loses
      // nothing.
      ++peer.duplicates;
      return;
    }
    if (batch->rank > peer.accepted) {
      fail_locked(node, MergeError::kRankGap);
      return;
    }
    ++peer.accepted;
    holdback_.push_back(std::move(*batch));
    return;
  }
  if (auto* announce = std::get_if<net::SafeTimeAnnounce>(&message)) {
    if (announce->epoch < peer.epoch) {
      ++peer.stale;
      return;
    }
    peer.epoch = announce->epoch;
    peer.next_safe = announce->next_safe_time;
    ++peer.announces;
    return;
  }
  fail_locked(node, MergeError::kUnexpectedFrame);
}

void MergeNode::fail_locked(std::uint32_t node, MergeError error) {
  Peer& peer = peers_[node];
  if (peer.error == MergeError::kNone) peer.error = error;
  peer.connected = false;
  peer.next_safe = TimePoint(-std::numeric_limits<double>::infinity());
  if (peer.stream) peer.stream->shutdown();
}

TimePoint MergeNode::gate_locked() const {
  TimePoint gate = TimePoint::infinite_future();
  for (const Peer& peer : peers_) {
    gate = std::min(gate, peer.next_safe);
  }
  return gate;
}

std::size_t MergeNode::release_locked(TimePoint gate, bool release_all) {
  std::stable_sort(holdback_.begin(), holdback_.end(),
                   [](const net::OrderedBatch& lhs,
                      const net::OrderedBatch& rhs) {
                     if (lhs.safe_time != rhs.safe_time) {
                       return lhs.safe_time < rhs.safe_time;
                     }
                     if (lhs.node != rhs.node) return lhs.node < rhs.node;
                     return lhs.rank < rhs.rank;
                   });
  std::size_t released = 0;
  for (; released < holdback_.size(); ++released) {
    if (!release_all && !(holdback_[released].safe_time < gate)) break;
    released_.push_back(std::move(holdback_[released]));
  }
  holdback_.erase(holdback_.begin(),
                  holdback_.begin() + static_cast<std::ptrdiff_t>(released));
  return released;
}

std::size_t MergeNode::release() {
  std::lock_guard<std::mutex> lock(mutex_);
  return release_locked(gate_locked(), /*release_all=*/false);
}

std::size_t MergeNode::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return release_locked(TimePoint::infinite_future(), /*release_all=*/true);
}

std::vector<net::OrderedBatch> MergeNode::released() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_;
}

std::size_t MergeNode::released_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_.size();
}

std::size_t MergeNode::held_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return holdback_.size();
}

TimePoint MergeNode::gate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gate_locked();
}

MergePeerStats MergeNode::peer(std::uint32_t node) const {
  TOMMY_EXPECTS(node < peers_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const Peer& peer = peers_[node];
  MergePeerStats stats;
  stats.connected = peer.connected;
  stats.epoch = peer.epoch;
  stats.accepted = peer.accepted;
  stats.duplicates = peer.duplicates;
  stats.stale = peer.stale;
  stats.announces = peer.announces;
  stats.next_safe = peer.next_safe;
  stats.error = peer.error;
  return stats;
}

bool MergeNode::wait_for_announces(std::uint32_t node, std::uint64_t n,
                                   int timeout_ms) {
  TOMMY_EXPECTS(node < peers_.size());
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return peers_[node].announces >= n; });
}

void MergeNode::stop() {
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Peer& peer : peers_) {
      if (peer.stream) peer.stream->shutdown();
      if (peer.reader.joinable()) readers.push_back(std::move(peer.reader));
    }
  }
  for (std::thread& reader : readers) reader.join();
}

}  // namespace tommy::dist
