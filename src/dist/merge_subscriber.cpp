#include "dist/merge_subscriber.hpp"

#include <chrono>
#include <span>
#include <tuple>
#include <utility>
#include <variant>

#include "common/check.hpp"
#include "net/framing.hpp"

namespace tommy::dist {

namespace {

/// The release cursor order: (safe_time, node, rank) — identical to the
/// merge's release comparator, so cursor comparisons ARE release-position
/// comparisons. Epoch is deliberately absent: replicas may hold
/// different-epoch copies of the same record after a shard restart, and
/// the record is bit-identical either way.
[[nodiscard]] bool cursor_le(const net::MergeWatermark& lhs,
                             const net::MergeWatermark& rhs) {
  return std::tie(lhs.safe_time, lhs.node, lhs.rank)
         <= std::tie(rhs.safe_time, rhs.node, rhs.rank);
}

[[nodiscard]] net::MergeWatermark cursor_of(const net::OrderedBatch& batch) {
  net::MergeWatermark cursor;
  cursor.node = batch.node;
  cursor.rank = batch.rank;
  cursor.safe_time = batch.safe_time;
  return cursor;
}

}  // namespace

const char* to_string(SubscriberError error) {
  switch (error) {
    case SubscriberError::kNone:
      return "none";
    case SubscriberError::kOrderViolation:
      return "order violation";
    case SubscriberError::kMalformedFrame:
      return "malformed frame";
    case SubscriberError::kUnexpectedFrame:
      return "unexpected frame";
  }
  return "unknown";
}

MergeSubscriber::MergeSubscriber(MergeSubscriberConfig config)
    : config_(std::move(config)) {
  TOMMY_EXPECTS(!config_.endpoints.empty());
}

MergeSubscriber::~MergeSubscriber() { stop(); }

void MergeSubscriber::start() {
  TOMMY_EXPECTS(!started_);
  started_ = true;
  consumer_ = std::thread([this] { run(); });
}

void MergeSubscriber::stop() {
  std::thread consumer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (stream_) stream_->shutdown();
    consumer = std::move(consumer_);
    cv_.notify_all();
  }
  if (consumer.joinable()) consumer.join();
}

void MergeSubscriber::run() {
  bool attached_once = false;
  std::size_t index = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    const NodeAddress& address =
        config_.endpoints[index % config_.endpoints.size()];
    auto stream = net::dial(address, config_.retry);
    if (stream == nullptr) {
      // This endpoint's budget ran dry (still down, or never came back).
      // Move on — the cycle retries it after the others.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed_dials;
      cv_.notify_all();
      if (stopping_) return;
      ++index;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        stream->shutdown();
        return;
      }
      stream_ = stream;
      stats_.connected = true;
      stats_.endpoint =
          static_cast<std::uint32_t>(index % config_.endpoints.size());
      if (attached_once) ++stats_.cutovers;
      attached_once = true;
      // Everything at or below this cursor is the replica's replayed
      // prefix — bit-identical to what we already consumed (the release
      // sequence is deterministic), so it drops as duplicate.
      attach_cursor_ = cursor_;
      cv_.notify_all();
    }
    const bool healthy = consume(stream);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.connected = false;
      stream_.reset();
      cv_.notify_all();
      if (!healthy || stopping_) return;
    }
    // Transport death (merge killed, downlink stopped): cut over to the
    // next endpoint in the cycle and resume from our watermark.
    ++index;
  }
}

bool MergeSubscriber::consume(const std::shared_ptr<net::ByteStream>& stream) {
  net::FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<std::uint8_t> buffer(4096);
  for (;;) {
    const auto n = stream->read_some(buffer);
    if (!n.has_value() || *n == 0) return true;
    decoder.append(std::span<const std::uint8_t>(buffer.data(), *n));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return true;
    while (auto payload = decoder.next()) {
      auto message = net::decode(*payload);
      if (!message.has_value()) {
        if (stats_.error == SubscriberError::kNone) {
          stats_.error = SubscriberError::kMalformedFrame;
        }
        stream->shutdown();
        cv_.notify_all();
        return false;
      }
      if (!handle_locked(std::move(*message))) {
        stream->shutdown();
        cv_.notify_all();
        return false;
      }
    }
    if (decoder.error() != net::FrameError::kNone) {
      if (stats_.error == SubscriberError::kNone) {
        stats_.error = SubscriberError::kMalformedFrame;
      }
      stream->shutdown();
      cv_.notify_all();
      return false;
    }
    cv_.notify_all();
  }
}

bool MergeSubscriber::handle_locked(net::WireMessage&& message) {
  if (auto* batch = std::get_if<net::OrderedBatch>(&message)) {
    const net::MergeWatermark cursor = cursor_of(*batch);
    if (attach_cursor_.released > 0 && cursor_le(cursor, attach_cursor_)) {
      // The replayed prefix at or below the attach watermark.
      ++stats_.duplicates;
      return true;
    }
    if (!released_.empty() && cursor_le(cursor, cursor_)) {
      // Above the attach watermark yet not above our cursor: this
      // replica's release order disagrees with what we already consumed.
      // Terminal — cutting over from corrupt data would launder it.
      stats_.error = SubscriberError::kOrderViolation;
      return false;
    }
    released_.push_back(std::move(*batch));
    cursor_ = cursor;
    cursor_.released = released_.size();
    return true;
  }
  if (auto* watermark = std::get_if<net::MergeWatermark>(&message)) {
    ++stats_.watermarks;
    if (watermark->released < released_.size()) {
      // A replayed barrier behind our cursor (normal during cutover).
      ++stats_.stale_watermarks;
    } else if (watermark->released > released_.size()) {
      // The replica claims more releases than this FIFO stream delivered
      // to us: records were lost ahead of their barrier.
      stats_.error = SubscriberError::kOrderViolation;
      return false;
    }
    return true;
  }
  stats_.error = SubscriberError::kUnexpectedFrame;
  return false;
}

std::vector<net::OrderedBatch> MergeSubscriber::released() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_;
}

std::size_t MergeSubscriber::released_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return released_.size();
}

net::MergeWatermark MergeSubscriber::watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  net::MergeWatermark watermark = cursor_;
  watermark.released = released_.size();
  return watermark;
}

MergeSubscriberStats MergeSubscriber::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool MergeSubscriber::wait_for_released(std::size_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return released_.size() >= n; });
}

bool MergeSubscriber::wait_for_watermarks(std::uint64_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return stats_.watermarks >= n; });
}

}  // namespace tommy::dist
