// One shard of the distributed fair-ordering deployment: a sequential
// FairOrderingService over this node's client partition, fronted by a
// FrameServer for ingest, plus an uplink tier that lifts the service's
// emissions and safe-time frontier onto the wire for the merge node.
//
//   clients ──► ingest (FrameServer) ──► FairOrderingService (1 shard)
//                                              │ pump(now)
//                                              ▼
//               uplink (StreamAcceptor) ◀── OrderedBatch* + one
//               subscribers, retained replay    SafeTimeAnnounce
//
// Determinism contract (what makes the topology provably equivalent to
// the single-process kGlobalMerge oracle):
//  * The node primes its engine over the FULL registry — identical
//    derived tables to the oracle's shared engine — while expecting only
//    its partition; emissions are then a pure function of (ingest set,
//    poll schedule) exactly as in-process.
//  * Every pump appends one SafeTimeAnnounce carrying the post-drain
//    next_safe_time read under the SAME lock acquisition as the poll
//    (FrameFrontend::pump_into's next_safe_after out-param) — the
//    frontier the merge gates on is never stale relative to the batches
//    that precede it on the FIFO uplink.
//  * OrderedBatch ranks are the service's own dense per-shard ranks, so
//    a restarted incarnation (epoch + 1) that replays the same ingest
//    re-emits bit-identical frames rank for rank — the merge drops the
//    replayed prefix as duplicates and resumes where the dead
//    incarnation stopped.
//
// The uplink retains every frame it ever broadcast (in order) and
// replays the backlog to each new subscriber, so a merge node that
// connects late — or reconnects after this node restarts — observes the
// same FIFO stream as one connected from the start. Retention is
// per-incarnation state: it dies with the process, which is exactly
// right, because a restarted node rebuilds the stream by replaying
// ingest, not by remembering frames. Retention can be CAPPED
// (replay_retention_cap): the backlog becomes a sliding window and a
// subscriber arriving after frames have been truncated is refused with a
// typed ReplayTruncated frame — never a silent gap, because a merge that
// missed the truncated prefix would violate the FIFO-from-zero contract
// the rank dedup depends on. Live subscribers are unaffected (they
// already consumed the truncated frames).
//
// Self-clocking: start_pump() spawns an internal pump thread driving
// pump(clock()) every pump_interval — the node keeps emitting and
// announcing (advancing the merge frontier) without an external driver.
// stop_pump() stops it cleanly and, by default, performs one final
// pump_flush so held batches drain on shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "net/acceptor.hpp"

namespace tommy::dist {

struct ShardNodeConfig {
  /// This node's index in the topology (the merge's peer slot, and the
  /// shard tag the oracle comparison keys on).
  std::uint32_t node{0};
  /// Incarnation counter: bump on every restart of the same node index.
  /// Stamped into every uplink frame; the merge uses it to tell a
  /// replayed prefix from the stream of a live incarnation.
  std::uint64_t epoch{0};
  /// Per-shard sequencer configuration (threshold, p_safe, preceding).
  core::OnlineConfig online{};
  /// Ingest front-end configuration (arrival_clock etc.).
  /// accept_new_clients is forced on: shard nodes answer the PR 6 join
  /// handshake with a HandshakeAck so perform_handshake completes — an
  /// expected client's identical re-announce is idempotent in the
  /// registry, so service state stays oracle-equivalent.
  net::FrontendConfig frontend{};
  /// listen(2) backlog for both sockets.
  int backlog{128};
  /// Cap on the retained uplink replay backlog, in frames (0 =
  /// unbounded). Past the cap the oldest frames are truncated and any
  /// LATER subscriber is refused with a typed ReplayTruncated frame.
  std::size_t replay_retention_cap{0};
  /// Cadence of the internal pump thread (start_pump). Zero means
  /// start_pump is a programming error — drive pump(now) externally.
  std::chrono::microseconds pump_interval{0};
  /// Clock the pump thread stamps polls with; defaults to wall-clock
  /// seconds (std::chrono::system_clock). Injectable for tests.
  std::function<TimePoint()> pump_clock{};
  /// stop_pump() ends with one pump_flush(clock()) so held batches and a
  /// final infinite-frontier announce drain to the uplink.
  bool flush_on_stop{true};
};

class ShardNode {
 public:
  /// `registry` must be the FULL deployment registry (all clients on all
  /// nodes — see the determinism contract above) and must outlive the
  /// node. `expected` is this node's partition (Topology::partition).
  ShardNode(core::ClientRegistry& registry, std::vector<ClientId> expected,
            ShardNodeConfig config = {});

  /// stop()s.
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Unified listen surface: one endpoint value per socket, straight
  /// from the topology (NodeEndpoints is the same net::Endpoint type).
  [[nodiscard]] bool listen_ingest(const net::Endpoint& endpoint) {
    return server_.listen(endpoint);
  }
  [[nodiscard]] bool listen_uplink(const net::Endpoint& endpoint) {
    return uplink_.listen(endpoint);
  }

  // Deprecated per-transport spellings (thin wrappers over the above).
  [[nodiscard]] bool listen_ingest_unix(const std::string& path) {
    return listen_ingest(net::Endpoint{.unix_path = path, .tcp_port = 0});
  }
  [[nodiscard]] bool listen_ingest_tcp(std::uint16_t port) {
    return listen_ingest(net::Endpoint{.unix_path = {}, .tcp_port = port});
  }
  [[nodiscard]] bool listen_uplink_unix(const std::string& path) {
    return listen_uplink(net::Endpoint{.unix_path = path, .tcp_port = 0});
  }
  [[nodiscard]] bool listen_uplink_tcp(std::uint16_t port) {
    return listen_uplink(net::Endpoint{.unix_path = {}, .tcp_port = port});
  }

  /// Polls the service at `now`, publishes each emitted batch as one
  /// OrderedBatch frame followed by one SafeTimeAnnounce carrying the
  /// post-drain frontier, and broadcasts to every uplink subscriber
  /// (dead subscribers are dropped). Returns the number of batches
  /// emitted. One pump at a time — same contract as the front-end's.
  std::size_t pump(TimePoint now);

  /// flush() counterpart (shutdown drain, gates ignored; the trailing
  /// announce carries an infinite frontier).
  std::size_t pump_flush(TimePoint now);

  /// Spawns the self-clocking pump thread: pump(clock()) every
  /// config.pump_interval until stop_pump(). Requires a nonzero
  /// interval. Call once (stop_pump first to restart).
  void start_pump();

  /// Stops the pump thread and joins it; if config.flush_on_stop, ends
  /// with one pump_flush(clock()) so the uplink drains. Idempotent.
  void stop_pump();

  [[nodiscard]] bool pump_running() const;

  /// Stops the pump thread, both acceptors, the ingest front-end, and
  /// every uplink subscriber stream. Idempotent.
  void stop();

  [[nodiscard]] std::uint32_t node() const { return config_.node; }
  [[nodiscard]] std::uint64_t epoch() const { return config_.epoch; }

  [[nodiscard]] net::FrameServer& server() { return server_; }
  [[nodiscard]] const net::FrameServer& server() const { return server_; }
  [[nodiscard]] core::FairOrderingService& service() { return service_; }
  [[nodiscard]] net::StreamAcceptor& uplink() { return uplink_; }

  /// Uplink subscribers currently attached (post-replay, writes still
  /// succeeding).
  [[nodiscard]] std::size_t subscriber_count() const;
  /// Frames currently retained for replay (== frames ever broadcast,
  /// until the retention cap starts truncating).
  [[nodiscard]] std::size_t frames_retained() const;
  /// Frames truncated from the replay backlog by the retention cap.
  [[nodiscard]] std::uint64_t frames_truncated() const;
  /// SafeTimeAnnounce frames ever published (one per pump).
  [[nodiscard]] std::uint64_t announces_published() const;

 private:
  std::size_t pump_impl(TimePoint now, bool flush_all);
  /// Appends `frames` to the retained backlog (truncating past the
  /// retention cap) and writes them to every subscriber, dropping
  /// subscribers whose writes fail.
  void publish(std::vector<std::vector<std::uint8_t>>&& frames);
  void subscribe(std::shared_ptr<net::ByteStream> stream);
  void pump_loop();
  [[nodiscard]] TimePoint pump_now() const;

  ShardNodeConfig config_;
  core::FairOrderingService service_;
  net::FrameServer server_;
  net::StreamAcceptor uplink_;

  /// Guards the retained backlog and subscriber set (accept thread vs
  /// pump thread).
  mutable std::mutex uplink_mutex_;
  std::deque<std::vector<std::uint8_t>> retained_;
  std::vector<std::shared_ptr<net::ByteStream>> subscribers_;
  std::uint64_t announces_{0};
  std::uint64_t truncated_{0};

  /// Serializes pump_impl callers (manual pump vs pump thread).
  std::mutex pump_call_mutex_;
  /// Guards the pump thread's lifecycle flags.
  mutable std::mutex pump_mutex_;
  std::condition_variable pump_cv_;
  std::thread pump_thread_;
  bool pump_running_{false};
  bool pump_stopping_{false};
};

}  // namespace tommy::dist
