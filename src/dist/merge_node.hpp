// The merge tier: subscribes to N shard-node uplinks as a frame client,
// runs the cross-node holdback, and releases the one global stream —
// records leaving in ascending (safe_time T_b, node, rank) order, a
// record released only once min(next_safe_time) over the peer frontiers
// has strictly passed its T_b. This is FairOrderingService::
// release_merged lifted across processes: the same comparator, the same
// strict gate, the same two caveats (rank-blocked batches, empty-shard
// stragglers) bounding the total-order claim.
//
// Frontier rule (liveness under faults): every configured peer always
// contributes to the gate. A peer contributes −infinity — blocking all
// release — until its connection is live AND it has announced at least
// once; its contribution reverts to −infinity the moment its connection
// dies. The merge never speculates past a silent peer: releasing less is
// only latency, releasing past an unheard frontier is a reorder. Blocked
// records drain as soon as the restarted node reconnects and its
// replayed announces re-establish (then advance) the frontier.
//
// Restart/resume: a shard node restarts as a new incarnation (epoch + 1)
// and, because emission is deterministic, re-emits the SAME OrderedBatch
// stream rank for rank. The merge therefore keys duplicate-drop on the
// per-node dense rank alone, monotone ACROSS epochs: ranks below the
// accepted count are the replayed prefix (dropped — already held or
// released, bit-identical by determinism), the rank equal to it resumes
// the stream, and a rank above it is a protocol violation (kRankGap —
// FIFO uplinks plus replay-from-zero make gaps impossible, so a gap
// means a non-deterministic or misconfigured node). Epochs are tracked
// to reject stale frames defensively and for observability.
// Replication (hot standby + cutover): because the holdback is
// deterministic, any number of MergeNodes subscribed to the same shard
// uplinks release IDENTICAL streams (late-subscriber replay delivers full
// history on attach). Each merge therefore also acts as a publisher: a
// *downlink* acceptor re-broadcasts every released OrderedBatch plus a
// MergeWatermark cursor — (released count, safe_time, node, rank of the
// last released record) — and replays its full released backlog to each
// new downlink subscriber. A downstream consumer (MergeSubscriber) that
// remembers its watermark can resume from any replica, dropping the
// replayed prefix at the watermark: gap-free and duplicate-free, because
// the release cursor sequence is strictly ascending and identical on
// every replica.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "net/acceptor.hpp"
#include "net/messages.hpp"

namespace tommy::dist {

/// Typed per-peer protocol errors at the merge.
enum class MergeError : std::uint8_t {
  kNone,
  /// An OrderedBatch skipped ahead of the next expected rank.
  kRankGap,
  /// Framing failed (oversized) or a payload failed WireMessage decode.
  kMalformedFrame,
  /// A frame kind that does not belong on an uplink (anything other than
  /// OrderedBatch / SafeTimeAnnounce / ReplayTruncated).
  kUnexpectedFrame,
  /// The underlying stream reported a transport error.
  kStreamError,
  /// The peer's retention cap truncated the replay this subscription
  /// needed (typed ReplayTruncated frame) — attaching would have
  /// silently skipped history.
  kReplayTruncated,
};

[[nodiscard]] const char* to_string(MergeError error);

struct MergeConfig {
  std::size_t max_frame_bytes{net::kDefaultMaxFrameBytes};
  /// Backoff budget for connect_unix / connect_tcp dials.
  net::RetryPolicy retry{};
  /// listen(2) backlog for the downlink socket.
  int backlog{128};
  /// Stall watchdog: a connected peer silent for longer than this is
  /// flagged `stalled` in its stats (observability ONLY — a stalled
  /// peer keeps its last announced frontier, the gate never speculates
  /// past it). Zero disables the watchdog thread.
  std::chrono::milliseconds staleness_budget{0};
  /// Watchdog poll cadence; zero derives staleness_budget / 4 (min 1ms).
  std::chrono::milliseconds watchdog_interval{0};
};

/// Typed liveness verdict for one peer slot. Observability ONLY in
/// every state: the release gate holds a disconnected/never-heard peer
/// at −infinity and a stalled peer at its last announced frontier — no
/// state is ever license to speculate past what the peer said.
enum class MergePeerState : std::uint8_t {
  /// Stream up, no frame decoded yet (gate at −infinity).
  kNeverHeard,
  /// Stream up, heard within the staleness budget.
  kLive,
  /// Stream up but silent past the staleness budget (watchdog verdict;
  /// gate pinned at the peer's last frontier until it speaks).
  kPeerStalled,
  /// Stream gone or never dialed (gate back at −infinity).
  kDisconnected,
};

[[nodiscard]] const char* to_string(MergePeerState state);

/// Point-in-time view of one peer slot.
struct MergePeerStats {
  bool connected{false};
  std::uint64_t epoch{0};
  /// Batches accepted into the holdback (== next expected rank).
  std::uint64_t accepted{0};
  /// Replayed-prefix batches dropped.
  std::uint64_t duplicates{0};
  /// Frames dropped for carrying an epoch below the adopted one.
  std::uint64_t stale{0};
  /// SafeTimeAnnounce frames applied.
  std::uint64_t announces{0};
  TimePoint next_safe{};
  MergeError error{MergeError::kNone};
  /// Typed liveness verdict (kPeerStalled == `stalled` below).
  MergePeerState state{MergePeerState::kDisconnected};
  /// Watchdog verdict: connected but silent past the staleness budget
  /// (the gate is pinned at this peer's last frontier and nothing will
  /// move until it speaks).
  bool stalled{false};
  /// Seconds since the last frame from this peer (+infinity if it has
  /// never been heard from).
  double since_heard_seconds{std::numeric_limits<double>::infinity()};
};

class MergeNode {
 public:
  explicit MergeNode(std::uint32_t node_count, MergeConfig config = {});

  /// stop()s.
  ~MergeNode();

  MergeNode(const MergeNode&) = delete;
  MergeNode& operator=(const MergeNode&) = delete;

  /// Dials peer `node`'s uplink under the config retry budget and
  /// attaches the stream. False if the dial failed. Reconnect after a
  /// node restart is the same call again — the peer slot must be
  /// disconnected (its old reader joined here).
  [[nodiscard]] bool connect(std::uint32_t node,
                             const net::Endpoint& endpoint);

  /// Deprecated per-transport spellings of connect().
  [[nodiscard]] bool connect_unix(std::uint32_t node,
                                  const std::string& path);
  [[nodiscard]] bool connect_tcp(std::uint32_t node, std::uint16_t port);

  /// Attaches an already-open uplink stream to peer slot `node` and
  /// spawns its reader. Precondition: the slot is not currently
  /// connected.
  void attach(std::uint32_t node, std::shared_ptr<net::ByteStream> stream);

  /// Downlink: the released stream re-published for downstream
  /// consumers (MergeSubscriber). Every new subscriber gets the full
  /// released backlog replayed, then a fresh MergeWatermark, then live
  /// releases as they happen — the same late-subscriber contract the
  /// shard uplinks give this node.
  [[nodiscard]] bool listen_downlink_unix(const std::string& path) {
    return downlink_.listen_unix(path);
  }
  [[nodiscard]] bool listen_downlink_tcp(std::uint16_t port) {
    return downlink_.listen_tcp(port);
  }
  [[nodiscard]] net::StreamAcceptor& downlink() { return downlink_; }
  [[nodiscard]] std::size_t downlink_subscriber_count() const;

  /// The release watermark: how many records have been released and the
  /// (safe_time, node, rank) cursor of the last one (released == 0 is
  /// the empty watermark).
  [[nodiscard]] net::MergeWatermark watermark() const;

  /// Releases every held record the gate allows (strictly below
  /// min(next_safe) over the peer frontiers), in (safe_time, node, rank)
  /// order, appending to the released log. Returns the number released.
  std::size_t release();

  /// Releases everything held regardless of the gate (shutdown drain —
  /// call once every uplink has delivered its final frames).
  std::size_t flush();

  /// The global output stream so far (copy; grows monotonically — index
  /// i is release position i forever).
  [[nodiscard]] std::vector<net::OrderedBatch> released() const;
  [[nodiscard]] std::size_t released_count() const;
  /// Records held back awaiting the gate.
  [[nodiscard]] std::size_t held_count() const;
  /// Current gate: min over peer frontiers (−infinity while any peer is
  /// down or unheard).
  [[nodiscard]] TimePoint gate() const;

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(peers_.size());
  }
  [[nodiscard]] MergePeerStats peer(std::uint32_t node) const;

  /// Blocks until peer `node` has applied at least `n` announces, or
  /// `timeout_ms` elapsed. True if reached. (FIFO uplinks mean an
  /// applied announce implies every batch published before it has been
  /// applied too — the soak's synchronization point.)
  [[nodiscard]] bool wait_for_announces(std::uint32_t node, std::uint64_t n,
                                        int timeout_ms);

  /// Shuts every peer stream down and joins every reader. Idempotent.
  void stop();

 private:
  struct Peer {
    std::shared_ptr<net::ByteStream> stream;
    std::thread reader;
    bool connected{false};
    std::uint64_t epoch{0};
    std::uint64_t accepted{0};
    std::uint64_t duplicates{0};
    std::uint64_t stale{0};
    std::uint64_t announces{0};
    TimePoint next_safe{-std::numeric_limits<double>::infinity()};
    MergeError error{MergeError::kNone};
    bool heard{false};
    bool stalled{false};
    std::chrono::steady_clock::time_point last_heard{};
  };

  void reader_loop(std::uint32_t node, std::shared_ptr<net::ByteStream> stream);
  /// Applies one decoded uplink frame (mutex_ held by caller).
  void handle_locked(std::uint32_t node, net::WireMessage&& message);
  void fail_locked(std::uint32_t node, MergeError error);
  [[nodiscard]] TimePoint gate_locked() const;
  std::size_t release_locked(TimePoint gate, bool release_all);
  [[nodiscard]] net::MergeWatermark watermark_locked() const;
  /// Broadcasts the tail of released_ starting at `from` plus one
  /// watermark frame to every downlink subscriber, retaining the frames
  /// for replay (mutex_ held by caller).
  void publish_released_locked(std::size_t from);
  void subscribe_downlink(std::shared_ptr<net::ByteStream> stream);
  void watchdog_loop();

  MergeConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Peer> peers_;
  /// Held-back records: a binary min-heap on (safe_time, node, rank)
  /// (std::push_heap/pop_heap with a greater-comparator), so a release
  /// round pops the released prefix in O(released · log H) instead of
  /// stable_sorting the entire holdback every round. (node, rank) is
  /// unique — each peer's accepted ranks are strictly increasing — so
  /// heap pop order is exactly the old full-sort order.
  std::vector<net::OrderedBatch> holdback_;
  std::vector<net::OrderedBatch> released_;

  net::StreamAcceptor downlink_;
  std::vector<std::shared_ptr<net::ByteStream>> downlink_subscribers_;
  /// Encoded released frames (+ their watermark barriers) in broadcast
  /// order — the replay backlog for late downlink subscribers.
  std::vector<std::vector<std::uint8_t>> downlink_retained_;

  std::thread watchdog_;
  bool stopping_{false};
};

}  // namespace tommy::dist
