// The merge tier: subscribes to N shard-node uplinks as a frame client,
// runs the cross-node holdback, and releases the one global stream —
// records leaving in ascending (safe_time T_b, node, rank) order, a
// record released only once min(next_safe_time) over the peer frontiers
// has strictly passed its T_b. This is FairOrderingService::
// release_merged lifted across processes: the same comparator, the same
// strict gate, the same two caveats (rank-blocked batches, empty-shard
// stragglers) bounding the total-order claim.
//
// Frontier rule (liveness under faults): every configured peer always
// contributes to the gate. A peer contributes −infinity — blocking all
// release — until its connection is live AND it has announced at least
// once; its contribution reverts to −infinity the moment its connection
// dies. The merge never speculates past a silent peer: releasing less is
// only latency, releasing past an unheard frontier is a reorder. Blocked
// records drain as soon as the restarted node reconnects and its
// replayed announces re-establish (then advance) the frontier.
//
// Restart/resume: a shard node restarts as a new incarnation (epoch + 1)
// and, because emission is deterministic, re-emits the SAME OrderedBatch
// stream rank for rank. The merge therefore keys duplicate-drop on the
// per-node dense rank alone, monotone ACROSS epochs: ranks below the
// accepted count are the replayed prefix (dropped — already held or
// released, bit-identical by determinism), the rank equal to it resumes
// the stream, and a rank above it is a protocol violation (kRankGap —
// FIFO uplinks plus replay-from-zero make gaps impossible, so a gap
// means a non-deterministic or misconfigured node). Epochs are tracked
// to reject stale frames defensively and for observability.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "net/acceptor.hpp"

namespace tommy::dist {

/// Typed per-peer protocol errors at the merge.
enum class MergeError : std::uint8_t {
  kNone,
  /// An OrderedBatch skipped ahead of the next expected rank.
  kRankGap,
  /// Framing failed (oversized) or a payload failed WireMessage decode.
  kMalformedFrame,
  /// A frame kind that does not belong on an uplink (anything other than
  /// OrderedBatch / SafeTimeAnnounce).
  kUnexpectedFrame,
  /// The underlying stream reported a transport error.
  kStreamError,
};

[[nodiscard]] const char* to_string(MergeError error);

struct MergeConfig {
  std::size_t max_frame_bytes{net::kDefaultMaxFrameBytes};
  /// Backoff budget for connect_unix / connect_tcp dials.
  net::RetryPolicy retry{};
};

/// Point-in-time view of one peer slot.
struct MergePeerStats {
  bool connected{false};
  std::uint64_t epoch{0};
  /// Batches accepted into the holdback (== next expected rank).
  std::uint64_t accepted{0};
  /// Replayed-prefix batches dropped.
  std::uint64_t duplicates{0};
  /// Frames dropped for carrying an epoch below the adopted one.
  std::uint64_t stale{0};
  /// SafeTimeAnnounce frames applied.
  std::uint64_t announces{0};
  TimePoint next_safe{};
  MergeError error{MergeError::kNone};
};

class MergeNode {
 public:
  explicit MergeNode(std::uint32_t node_count, MergeConfig config = {});

  /// stop()s.
  ~MergeNode();

  MergeNode(const MergeNode&) = delete;
  MergeNode& operator=(const MergeNode&) = delete;

  /// Dials peer `node`'s uplink under the config retry budget and
  /// attaches the stream. False if the dial failed. Reconnect after a
  /// node restart is the same call again — the peer slot must be
  /// disconnected (its old reader joined here).
  [[nodiscard]] bool connect_unix(std::uint32_t node,
                                  const std::string& path);
  [[nodiscard]] bool connect_tcp(std::uint32_t node, std::uint16_t port);

  /// Attaches an already-open uplink stream to peer slot `node` and
  /// spawns its reader. Precondition: the slot is not currently
  /// connected.
  void attach(std::uint32_t node, std::shared_ptr<net::ByteStream> stream);

  /// Releases every held record the gate allows (strictly below
  /// min(next_safe) over the peer frontiers), in (safe_time, node, rank)
  /// order, appending to the released log. Returns the number released.
  std::size_t release();

  /// Releases everything held regardless of the gate (shutdown drain —
  /// call once every uplink has delivered its final frames).
  std::size_t flush();

  /// The global output stream so far (copy; grows monotonically — index
  /// i is release position i forever).
  [[nodiscard]] std::vector<net::OrderedBatch> released() const;
  [[nodiscard]] std::size_t released_count() const;
  /// Records held back awaiting the gate.
  [[nodiscard]] std::size_t held_count() const;
  /// Current gate: min over peer frontiers (−infinity while any peer is
  /// down or unheard).
  [[nodiscard]] TimePoint gate() const;

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(peers_.size());
  }
  [[nodiscard]] MergePeerStats peer(std::uint32_t node) const;

  /// Blocks until peer `node` has applied at least `n` announces, or
  /// `timeout_ms` elapsed. True if reached. (FIFO uplinks mean an
  /// applied announce implies every batch published before it has been
  /// applied too — the soak's synchronization point.)
  [[nodiscard]] bool wait_for_announces(std::uint32_t node, std::uint64_t n,
                                        int timeout_ms);

  /// Shuts every peer stream down and joins every reader. Idempotent.
  void stop();

 private:
  struct Peer {
    std::shared_ptr<net::ByteStream> stream;
    std::thread reader;
    bool connected{false};
    std::uint64_t epoch{0};
    std::uint64_t accepted{0};
    std::uint64_t duplicates{0};
    std::uint64_t stale{0};
    std::uint64_t announces{0};
    TimePoint next_safe{-std::numeric_limits<double>::infinity()};
    MergeError error{MergeError::kNone};
  };

  void reader_loop(std::uint32_t node, std::shared_ptr<net::ByteStream> stream);
  /// Applies one decoded uplink frame (mutex_ held by caller).
  void handle_locked(std::uint32_t node, net::WireMessage&& message);
  void fail_locked(std::uint32_t node, MergeError error);
  [[nodiscard]] TimePoint gate_locked() const;
  std::size_t release_locked(TimePoint gate, bool release_all);

  MergeConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Peer> peers_;
  /// Held-back records, re-sorted by (safe_time, node, rank) at each
  /// release — exactly release_merged's holdback.
  std::vector<net::OrderedBatch> holdback_;
  std::vector<net::OrderedBatch> released_;
};

}  // namespace tommy::dist
