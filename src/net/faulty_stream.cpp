#include "net/faulty_stream.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace tommy::net {

FaultyByteStream::FaultyByteStream(std::shared_ptr<ByteStream> inner,
                                   FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  TOMMY_EXPECTS(inner_ != nullptr);
}

std::size_t FaultyByteStream::next_chunk(
    const std::vector<std::size_t>& chunks, bool cycle, std::size_t& cursor) {
  if (chunks.empty()) return FaultPlan::kNever;
  if (cursor >= chunks.size()) {
    if (!cycle) return FaultPlan::kNever;
    cursor = 0;
  }
  return std::max<std::size_t>(chunks[cursor++], 1);
}

void FaultyByteStream::on_cut() {
  if (plan_.shutdown_inner_on_cut) inner_->shutdown();
}

std::optional<std::size_t> FaultyByteStream::read_some(
    std::span<std::uint8_t> out) {
  std::size_t cap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.reads++;
    if (delivered_ >= plan_.cut_read_after) {
      // Past the cut: report it (again) without touching the inner
      // stream — its state after shutdown is not part of the plan.
      stats_.read_cut = true;
      if (plan_.cut_is_error) return std::nullopt;
      return 0;
    }
    if (plan_.retry_every_reads != 0
        && stats_.reads % plan_.retry_every_reads == 0) {
      // EAGAIN-style: a no-progress attempt the caller never observes
      // (the blocking contract requires progress), but which re-slices
      // the read exactly where a nonblocking retry loop would.
      stats_.injected_retries++;
      std::this_thread::yield();
    }
    cap = next_chunk(plan_.read_chunks, plan_.read_chunks_cycle,
                     read_cursor_);
    cap = std::min<std::size_t>(
        cap, static_cast<std::size_t>(plan_.cut_read_after - delivered_));
  }
  const std::size_t want = std::min(out.size(), cap);
  const auto n = inner_->read_some(out.first(want));
  std::lock_guard<std::mutex> lock(mutex_);
  if (!n) return n;
  delivered_ += *n;
  stats_.bytes_read += *n;
  if (*n > 0 && delivered_ >= plan_.cut_read_after) {
    // This read crossed (or landed exactly on) the cut boundary: the
    // caller still receives the prefix, every later read reports the
    // cut, and the inner stream is torn down so the peer notices.
    stats_.read_cut = true;
    on_cut();
  }
  return n;
}

bool FaultyByteStream::write_all(std::span<const std::uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.writes++;
  }
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t chunk;
    bool cut = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (written_ >= plan_.cut_write_after) {
        stats_.write_cut = true;
        return false;
      }
      chunk = next_chunk(plan_.write_chunks, plan_.write_chunks_cycle,
                         write_cursor_);
      chunk = std::min(chunk, bytes.size() - offset);
      const auto allowed =
          static_cast<std::size_t>(plan_.cut_write_after - written_);
      if (chunk >= allowed) {
        chunk = allowed;
        cut = true;  // this chunk reaches the cut: forward it, then fail
      }
    }
    const bool ok =
        chunk == 0 || inner_->write_all(bytes.subspan(offset, chunk));
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.inner_writes += chunk > 0 ? 1 : 0;
    if (!ok) return false;
    written_ += chunk;
    stats_.bytes_written += chunk;
    offset += chunk;
    if (cut) {
      stats_.write_cut = true;
      on_cut();
      return false;
    }
  }
  return true;
}

IoResult FaultyByteStream::try_read(std::span<std::uint8_t> out) {
  std::size_t cap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.reads++;
    if (delivered_ >= plan_.cut_read_after) {
      stats_.read_cut = true;
      return {plan_.cut_is_error ? IoStatus::kError : IoStatus::kEof, 0};
    }
    if (plan_.retry_every_reads != 0
        && stats_.reads % plan_.retry_every_reads == 0) {
      // Counted, then this very call proceeds (see the header: an
      // injected kWouldBlock would strand an edge-triggered caller).
      stats_.injected_retries++;
    }
    cap = next_chunk(plan_.read_chunks, plan_.read_chunks_cycle,
                     read_cursor_);
    cap = std::min<std::size_t>(
        cap, static_cast<std::size_t>(plan_.cut_read_after - delivered_));
  }
  const std::size_t want = std::min(out.size(), cap);
  const IoResult r = inner_->try_read(out.first(want));
  std::lock_guard<std::mutex> lock(mutex_);
  if (r.status != IoStatus::kOk) return r;
  delivered_ += r.bytes;
  stats_.bytes_read += r.bytes;
  if (r.bytes > 0 && delivered_ >= plan_.cut_read_after) {
    stats_.read_cut = true;
    on_cut();
  }
  return r;
}

IoResult FaultyByteStream::try_write(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return {IoStatus::kOk, 0};
  std::size_t chunk;
  bool cut = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.writes++;
    if (written_ >= plan_.cut_write_after) {
      stats_.write_cut = true;
      return {IoStatus::kError, 0};
    }
    chunk = next_chunk(plan_.write_chunks, plan_.write_chunks_cycle,
                       write_cursor_);
    chunk = std::min(chunk, bytes.size());
    const auto allowed =
        static_cast<std::size_t>(plan_.cut_write_after - written_);
    if (chunk >= allowed) {
      chunk = allowed;
      cut = true;  // the allowed prefix goes through; later writes fail
    }
  }
  const IoResult r = inner_->try_write(bytes.first(chunk));
  std::lock_guard<std::mutex> lock(mutex_);
  if (r.bytes > 0) stats_.inner_writes++;
  if (r.status != IoStatus::kOk) return r;
  written_ += r.bytes;
  stats_.bytes_written += r.bytes;
  if (cut && r.bytes == chunk) {
    // The cut boundary was reached: a torn frame from the peer's view.
    // This call still reports its partial progress; the NEXT write (the
    // caller loops on the remainder) observes the failure.
    stats_.write_cut = true;
    on_cut();
  }
  return r;
}

int FaultyByteStream::poll_fd() const { return inner_->poll_fd(); }

void FaultyByteStream::close_write() { inner_->close_write(); }

void FaultyByteStream::shutdown() { inner_->shutdown(); }

FaultStats FaultyByteStream::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<ByteStream> make_chunked_stream(
    std::shared_ptr<ByteStream> inner, std::size_t chunk) {
  FaultPlan plan;
  plan.read_chunks = {chunk};
  plan.read_chunks_cycle = true;
  return std::make_shared<FaultyByteStream>(std::move(inner), plan);
}

}  // namespace tommy::net
