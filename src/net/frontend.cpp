#include "net/frontend.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>

#include "common/check.hpp"

namespace tommy::net {

namespace {

/// Default arrival clock: monotonic wall-clock seconds since the first
/// call (one shared origin per process, so all connections agree).
TimePoint wall_clock_now() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return TimePoint(
      std::chrono::duration<double>(clock::now() - origin).count());
}

FrontendConfig normalized(FrontendConfig config) {
  if (!config.arrival_clock) {
    config.arrival_clock = [](const WireMessage&) { return wall_clock_now(); };
  }
  if (config.read_chunk_bytes == 0) config.read_chunk_bytes = 1;
  if (config.submit_batch_limit == 0) config.submit_batch_limit = 1;
  return config;
}

// ── In-process pipe ─────────────────────────────────────────────────────

/// One direction of the pipe: an unbounded byte queue with blocking
/// reads. `closed` means the writer half-closed (reads drain, then EOF)
/// or the stream was shut down (writes also fail).
struct PipeDir {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::uint8_t> bytes;
  bool closed{false};
};

class PipeEndpoint final : public ByteStream {
 public:
  PipeEndpoint(std::shared_ptr<PipeDir> in, std::shared_ptr<PipeDir> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::optional<std::size_t> read_some(std::span<std::uint8_t> out) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    in_->cv.wait(lock, [this] { return !in_->bytes.empty() || in_->closed; });
    if (in_->bytes.empty()) return 0;  // closed and drained: EOF
    const std::size_t n = std::min(out.size(), in_->bytes.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = in_->bytes.front();
      in_->bytes.pop_front();
    }
    return n;
  }

  bool write_all(std::span<const std::uint8_t> bytes) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) return false;
    out_->bytes.insert(out_->bytes.end(), bytes.begin(), bytes.end());
    out_->cv.notify_all();
    return true;
  }

  void close_write() override { close_dir(*out_); }

  void shutdown() override {
    close_dir(*in_);
    close_dir(*out_);
  }

 private:
  static void close_dir(PipeDir& dir) {
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.closed = true;
    dir.cv.notify_all();
  }

  std::shared_ptr<PipeDir> in_;
  std::shared_ptr<PipeDir> out_;
};

// ── POSIX fd stream ─────────────────────────────────────────────────────

class FdByteStream final : public ByteStream {
 public:
  explicit FdByteStream(int fd) : fd_(fd) { TOMMY_EXPECTS(fd >= 0); }

  ~FdByteStream() override { ::close(fd_); }

  std::optional<std::size_t> read_some(std::span<std::uint8_t> out) override {
    while (true) {
      const ssize_t n = ::read(fd_, out.data(), out.size());
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      return std::nullopt;
    }
  }

  bool write_all(std::span<const std::uint8_t> bytes) override {
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + written, bytes.size() - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void close_write() override { ::shutdown(fd_, SHUT_WR); }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

}  // namespace

std::pair<std::shared_ptr<ByteStream>, std::shared_ptr<ByteStream>>
make_pipe_pair() {
  auto a_to_b = std::make_shared<PipeDir>();
  auto b_to_a = std::make_shared<PipeDir>();
  return {std::make_shared<PipeEndpoint>(b_to_a, a_to_b),
          std::make_shared<PipeEndpoint>(a_to_b, b_to_a)};
}

std::pair<std::shared_ptr<ByteStream>, std::shared_ptr<ByteStream>>
make_socketpair_streams() {
  int fds[2];
  TOMMY_EXPECTS(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
  return {std::make_shared<FdByteStream>(fds[0]),
          std::make_shared<FdByteStream>(fds[1])};
}

std::shared_ptr<ByteStream> make_fd_stream(int fd) {
  return std::make_shared<FdByteStream>(fd);
}

const char* to_string(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "none";
    case WireError::kOversizedFrame:
      return "oversized frame";
    case WireError::kMalformedMessage:
      return "malformed message payload";
    case WireError::kHandshakeExpected:
      return "first frame must be a distribution announcement";
    case WireError::kUnknownClient:
      return "client not in the expected set";
    case WireError::kClientMismatch:
      return "frame names a different client than the handshake";
    case WireError::kRegistryFrozen:
      return "announcement would change a frozen registry";
    case WireError::kBatchFromClient:
      return "client sent a batch-emission frame";
    case WireError::kStreamError:
      return "byte stream transport error";
  }
  return "unknown";
}

// ── Connection ──────────────────────────────────────────────────────────

Connection::Connection(core::ClientRegistry& registry,
                       core::FairOrderingService& service,
                       FrontendConfig config, std::mutex* ingest_mutex)
    : registry_(registry),
      service_(service),
      config_(normalized(std::move(config))),
      ingest_mutex_(ingest_mutex),
      decoder_(config_.max_frame_bytes) {}

bool Connection::on_bytes(std::span<const std::uint8_t> bytes) {
  if (failed()) return false;
  decoder_.append(bytes);
  while (auto payload = decoder_.next()) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    auto message = decode(*payload);
    if (!message) return fail(WireError::kMalformedMessage);
    if (!dispatch(std::move(*message))) return false;
  }
  if (decoder_.error() != FrameError::kNone) {
    return fail(WireError::kOversizedFrame);
  }
  apply_pending();
  return true;
}

void Connection::mark_failed(WireError error) {
  WireError expected = WireError::kNone;
  error_.compare_exchange_strong(expected, error, std::memory_order_relaxed);
}

bool Connection::dispatch(WireMessage&& message) {
  if (const auto* announcement =
          std::get_if<DistributionAnnouncement>(&message)) {
    return handle_announcement(*announcement);
  }
  if (!handshaken()) return fail(WireError::kHandshakeExpected);

  if (const auto* msg = std::get_if<TimestampedMessage>(&message)) {
    if (msg->client != client_) return fail(WireError::kClientMismatch);
    pending_.push_back(core::Submission{msg->local_stamp, msg->id,
                                        config_.arrival_clock(message)});
    submits_in_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.size() >= config_.submit_batch_limit) apply_pending();
    return true;
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    if (heartbeat->client != client_) return fail(WireError::kClientMismatch);
    // Apply buffered submits first so the session sees per-connection
    // FIFO order.
    apply_pending();
    const TimePoint now = config_.arrival_clock(message);
    std::unique_lock<std::mutex> lock;
    if (ingest_mutex_ != nullptr) {
      lock = std::unique_lock<std::mutex>(*ingest_mutex_);
    }
    session_.heartbeat(heartbeat->local_stamp, now);
    heartbeats_in_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return fail(WireError::kBatchFromClient);
}

bool Connection::handle_announcement(
    const DistributionAnnouncement& announcement) {
  if (handshaken() && announcement.client != client_) {
    return fail(WireError::kClientMismatch);
  }
  if (!service_.expects_client(announcement.client)) {
    return fail(WireError::kUnknownClient);
  }
  // Order re-announce effects after everything already streamed.
  apply_pending();
  {
    std::unique_lock<std::mutex> lock;
    if (ingest_mutex_ != nullptr) {
      lock = std::unique_lock<std::mutex>(*ingest_mutex_);
    }
    if (service_.threaded()) {
      // The threaded service's engine is primed-and-immutable; only an
      // announcement that provably changes nothing may pass. A client
      // registered directly with a Distribution object has no wire form
      // to compare — the registry stays the source of truth and the
      // announcement is accepted as a liveness signal only.
      const std::vector<std::uint8_t>* stored =
          registry_.announced_summary(announcement.client);
      if (stored != nullptr && *stored != announcement.summary.serialize()) {
        return fail(WireError::kRegistryFrozen);
      }
    } else {
      // Idempotent: an identical re-send changes nothing and keeps the
      // generation stable.
      registry_.announce(announcement.client, announcement.summary);
    }
    if (!handshaken()) {
      core::OpenError open_error{};
      auto session =
          service_.try_open_session(announcement.client, &open_error);
      if (!session) {
        return fail(open_error == core::OpenError::kUnknownClient
                        ? WireError::kUnknownClient
                        : WireError::kRegistryFrozen);
      }
      session_ = *session;
      client_ = announcement.client;
      // Release pairs with handshaken()'s acquire: observers that see
      // true may read client_.
      handshaken_.store(true, std::memory_order_release);
    }
  }
  return true;
}

void Connection::apply_pending() {
  if (pending_.empty()) return;
  std::unique_lock<std::mutex> lock;
  if (ingest_mutex_ != nullptr) {
    lock = std::unique_lock<std::mutex>(*ingest_mutex_);
  }
  session_.submit_batch(std::span<const core::Submission>(pending_));
  pending_.clear();
}

bool Connection::fail(WireError error) {
  // The valid prefix still counts: every fully-decoded, in-protocol frame
  // before the poison byte has the same effect as if the stream had ended
  // cleanly there.
  apply_pending();
  mark_failed(error);
  return false;
}

// ── FrameFrontend ───────────────────────────────────────────────────────

FrameFrontend::FrameFrontend(core::ClientRegistry& registry,
                             core::FairOrderingService& service,
                             FrontendConfig config)
    : registry_(registry),
      service_(service),
      config_(normalized(std::move(config))) {}

FrameFrontend::~FrameFrontend() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conns.push_back(conn.get());
  }
  for (Conn* conn : conns) conn->stream->shutdown();
  for (Conn* conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

std::uint64_t FrameFrontend::add_connection(
    std::shared_ptr<ByteStream> stream) {
  TOMMY_EXPECTS(stream != nullptr);
  // Threaded services serialize nothing up front: each reader thread is
  // its session ring's single producer. Sequential services get all
  // ingest and polls serialized behind ingest_mutex_.
  std::mutex* ingest_mutex = service_.threaded() ? nullptr : &ingest_mutex_;
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto id = static_cast<std::uint64_t>(conns_.size());
  conns_.push_back(std::make_unique<Conn>(std::move(stream), registry_,
                                          service_, config_, ingest_mutex));
  Conn& conn = *conns_.back();
  conn.reader = std::thread([this, &conn] { reader_loop(conn); });
  return id;
}

void FrameFrontend::reader_loop(Conn& conn) {
  std::vector<std::uint8_t> buffer(config_.read_chunk_bytes);
  bool protocol_ok = true;
  while (true) {
    const auto n = conn.stream->read_some(buffer);
    if (!n) {
      conn.machine.mark_failed(WireError::kStreamError);
      protocol_ok = false;
      break;
    }
    if (*n == 0) break;  // EOF: peer finished cleanly
    if (!conn.machine.on_bytes({buffer.data(), *n})) {
      protocol_ok = false;
      break;
    }
  }
  // On failure, tear the transport down so the peer is not left writing
  // into a connection nobody reads.
  if (!protocol_ok) conn.stream->shutdown();
  conn.done.store(true, std::memory_order_release);
}

std::size_t FrameFrontend::drain(TimePoint now, bool flush_all) {
  auto broadcast = [this](core::EmissionRecord&& record, std::uint32_t) {
    BatchEmission wire;
    wire.rank = record.batch.rank;
    wire.messages.reserve(record.batch.messages.size());
    for (const core::Message& m : record.batch.messages) {
      wire.messages.push_back(m.id);
    }
    const auto frame = encode_frame(WireMessage(std::move(wire)));
    // Snapshot, then write holding only the per-connection mutex: a peer
    // that stopped reading can stall ITS write (until someone shuts its
    // stream down), but must not wedge conns_mutex_ — add_connection,
    // the accessors and the destructor's shutdown path all need it.
    // conns_ is append-only with stable addresses, so the snapshot stays
    // valid for the front-end's lifetime.
    std::vector<Conn*> targets;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      targets.reserve(conns_.size());
      for (auto& conn : conns_) targets.push_back(conn.get());
    }
    for (Conn* conn : targets) {
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      if (!conn->write_ok) continue;
      if (!conn->stream->write_all(frame)) conn->write_ok = false;
    }
  };
  std::unique_lock<std::mutex> lock;
  if (!service_.threaded()) lock = std::unique_lock<std::mutex>(ingest_mutex_);
  return flush_all ? service_.flush(now, broadcast)
                   : service_.poll(now, broadcast);
}

std::size_t FrameFrontend::pump(TimePoint now) {
  return drain(now, /*flush_all=*/false);
}

std::size_t FrameFrontend::pump_flush(TimePoint now) {
  return drain(now, /*flush_all=*/true);
}

void FrameFrontend::join_readers() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) conns.push_back(conn.get());
  }
  for (Conn* conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

std::size_t FrameFrontend::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.size();
}

bool FrameFrontend::connection_done(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  TOMMY_EXPECTS(id < conns_.size());
  return conns_[id]->done.load(std::memory_order_acquire);
}

WireError FrameFrontend::connection_error(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  TOMMY_EXPECTS(id < conns_.size());
  return conns_[id]->machine.error();
}

const Connection& FrameFrontend::connection(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  TOMMY_EXPECTS(id < conns_.size());
  return conns_[id]->machine;
}

}  // namespace tommy::net
