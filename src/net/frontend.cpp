#include "net/frontend.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "net/event_loop.hpp"

namespace tommy::net {

/// Default arrival clock: monotonic wall-clock seconds since the first
/// call (one shared origin per process, so all connections agree).
/// External linkage on purpose — poller_frontend.cpp stamps
/// last_activity on the same timeline.
TimePoint wall_clock_now() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return TimePoint(
      std::chrono::duration<double>(clock::now() - origin).count());
}

namespace {

FrontendConfig normalized(FrontendConfig config) {
  if (!config.arrival_clock) {
    config.arrival_clock = [](const WireMessage&) { return wall_clock_now(); };
  }
  if (config.read_chunk_bytes == 0) config.read_chunk_bytes = 1;
  if (config.submit_batch_limit == 0) config.submit_batch_limit = 1;
  return config;
}

/// Bounded ingest-lock acquisition for the nonblocking drive path. A
/// plain try_lock punishes transient contention the same as a genuine
/// stall: with M pollers flushing small batches into one sequential
/// service, a microsecond collision would park the connection until the
/// ~1ms retry tick and collapse throughput (measured 20x at C=100,
/// pollers=4). A few yields absorb another poller's batch flush; a lock
/// held for real (a pump mid-drain, a stalled sink) still falls through
/// to the stall path, so drive() stays bounded — microseconds, never the
/// holder's tenure.
std::unique_lock<std::mutex> lock_ingest_bounded(std::mutex& mutex) {
  std::unique_lock<std::mutex> lock(mutex, std::try_to_lock);
  for (int spin = 0; !lock.owns_lock() && spin < 64; ++spin) {
    std::this_thread::yield();
    (void)lock.try_lock();
  }
  return lock;
}

// ── In-process pipe ─────────────────────────────────────────────────────

/// One direction of the pipe: an unbounded byte queue with blocking
/// reads. `closed` means the writer half-closed (reads drain, then EOF)
/// or the stream was shut down (writes also fail).
struct PipeDir {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::uint8_t> bytes;
  bool closed{false};
};

class PipeEndpoint final : public ByteStream {
 public:
  PipeEndpoint(std::shared_ptr<PipeDir> in, std::shared_ptr<PipeDir> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::optional<std::size_t> read_some(std::span<std::uint8_t> out) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    in_->cv.wait(lock, [this] { return !in_->bytes.empty() || in_->closed; });
    if (in_->bytes.empty()) return 0;  // closed and drained: EOF
    return take_locked(out);
  }

  IoResult try_read(std::span<std::uint8_t> out) override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    if (in_->bytes.empty()) {
      return IoResult{in_->closed ? IoStatus::kEof : IoStatus::kWouldBlock, 0};
    }
    return IoResult{IoStatus::kOk, take_locked(out)};
  }

  IoResult try_write(std::span<const std::uint8_t> bytes) override {
    // The pipe's buffer is unbounded, so the blocking write never
    // blocks either — one implementation serves both contracts.
    return write_all(bytes) ? IoResult{IoStatus::kOk, bytes.size()}
                            : IoResult{IoStatus::kError, 0};
  }

  bool write_all(std::span<const std::uint8_t> bytes) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) return false;
    out_->bytes.insert(out_->bytes.end(), bytes.begin(), bytes.end());
    out_->cv.notify_all();
    return true;
  }

  void close_write() override { close_dir(*out_); }

  void shutdown() override {
    close_dir(*in_);
    close_dir(*out_);
  }

 private:
  static void close_dir(PipeDir& dir) {
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.closed = true;
    dir.cv.notify_all();
  }

  /// in_->mutex held.
  std::size_t take_locked(std::span<std::uint8_t> out) {
    const std::size_t n = std::min(out.size(), in_->bytes.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = in_->bytes.front();
      in_->bytes.pop_front();
    }
    return n;
  }

  std::shared_ptr<PipeDir> in_;
  std::shared_ptr<PipeDir> out_;
};

// ── POSIX fd stream ─────────────────────────────────────────────────────

class FdByteStream final : public ByteStream {
 public:
  explicit FdByteStream(int fd) : fd_(fd) {
    TOMMY_EXPECTS(fd >= 0);
    // The fd is ALWAYS nonblocking: the try_* contract needs it, and the
    // blocking contract is emulated with poll(2) below — one fd mode
    // serves both, so the same stream can be handed to either transport.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }

  ~FdByteStream() override { ::close(fd_); }

  std::optional<std::size_t> read_some(std::span<std::uint8_t> out) override {
    while (true) {
      const ssize_t n = ::read(fd_, out.data(), out.size());
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_ready(POLLIN)) return std::nullopt;
        continue;
      }
      return std::nullopt;
    }
  }

  bool write_all(std::span<const std::uint8_t> bytes) override {
    std::size_t written = 0;
    while (written < bytes.size()) {
      // send + MSG_NOSIGNAL, not write: a peer that vanished mid-stream
      // (a stopped server, a killed client) must surface as a failed
      // write, not a process-killing SIGPIPE.
      const ssize_t n = ::send(fd_, bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!wait_ready(POLLOUT)) return false;
        continue;
      }
      return false;
    }
    return true;
  }

  IoResult try_read(std::span<std::uint8_t> out) override {
    while (true) {
      const ssize_t n = ::read(fd_, out.data(), out.size());
      if (n > 0) return IoResult{IoStatus::kOk, static_cast<std::size_t>(n)};
      if (n == 0) return IoResult{IoStatus::kEof, 0};
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{IoStatus::kWouldBlock, 0};
      }
      return IoResult{IoStatus::kError, 0};
    }
  }

  IoResult try_write(std::span<const std::uint8_t> bytes) override {
    if (bytes.empty()) return IoResult{IoStatus::kOk, 0};
    while (true) {
      const ssize_t n =
          ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n > 0) return IoResult{IoStatus::kOk, static_cast<std::size_t>(n)};
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return IoResult{IoStatus::kWouldBlock, 0};
      }
      return IoResult{IoStatus::kError, 0};
    }
  }

  int poll_fd() const override { return fd_; }

  void close_write() override { ::shutdown(fd_, SHUT_WR); }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  /// Blocks until the fd is ready for `events` (POLLIN/POLLOUT). False
  /// on a poll error; hangup/err revents fall through to the read/write
  /// retry, which surfaces the definitive EOF/error.
  bool wait_ready(short events) {
    ::pollfd pfd{fd_, events, 0};
    while (true) {
      const int r = ::poll(&pfd, 1, -1);
      if (r > 0) return true;
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
  }

  int fd_;
};

}  // namespace

std::pair<std::shared_ptr<ByteStream>, std::shared_ptr<ByteStream>>
make_pipe_pair() {
  auto a_to_b = std::make_shared<PipeDir>();
  auto b_to_a = std::make_shared<PipeDir>();
  return {std::make_shared<PipeEndpoint>(b_to_a, a_to_b),
          std::make_shared<PipeEndpoint>(a_to_b, b_to_a)};
}

std::pair<std::shared_ptr<ByteStream>, std::shared_ptr<ByteStream>>
make_socketpair_streams() {
  int fds[2];
  TOMMY_EXPECTS(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
  return {std::make_shared<FdByteStream>(fds[0]),
          std::make_shared<FdByteStream>(fds[1])};
}

std::shared_ptr<ByteStream> make_fd_stream(int fd) {
  return std::make_shared<FdByteStream>(fd);
}

const char* to_string(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "none";
    case WireError::kOversizedFrame:
      return "oversized frame";
    case WireError::kMalformedMessage:
      return "malformed message payload";
    case WireError::kHandshakeExpected:
      return "first frame must be a distribution announcement";
    case WireError::kUnknownClient:
      return "client not in the expected set";
    case WireError::kClientMismatch:
      return "frame names a different client than the handshake";
    case WireError::kRegistryFrozen:
      return "announcement would change a frozen registry";
    case WireError::kBatchFromClient:
      return "client sent a batch-emission frame";
    case WireError::kStreamError:
      return "byte stream transport error";
  }
  return "unknown";
}

// ── Connection ──────────────────────────────────────────────────────────

Connection::Connection(core::ClientRegistry& registry,
                       core::FairOrderingService& service,
                       FrontendConfig config, std::mutex* ingest_mutex)
    : registry_(registry),
      service_(service),
      config_(normalized(std::move(config))),
      ingest_mutex_(ingest_mutex),
      decoder_(config_.max_frame_bytes) {}

bool Connection::on_bytes(std::span<const std::uint8_t> bytes) {
  if (failed()) return false;
  decoder_.append(bytes);
  while (auto payload = decoder_.next()) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    auto message = decode(*payload);
    if (!message) return fail(WireError::kMalformedMessage);
    if (!dispatch(std::move(*message))) return false;
  }
  if (decoder_.error() != FrameError::kNone) {
    return fail(WireError::kOversizedFrame);
  }
  apply_pending();
  return true;
}

void Connection::mark_failed(WireError error) {
  WireError expected = WireError::kNone;
  error_.compare_exchange_strong(expected, error, std::memory_order_relaxed);
}

bool Connection::dispatch(WireMessage&& message) {
  if (const auto* announcement =
          std::get_if<DistributionAnnouncement>(&message)) {
    return handle_announcement(*announcement);
  }
  if (!handshaken()) return fail(WireError::kHandshakeExpected);

  if (const auto* msg = std::get_if<TimestampedMessage>(&message)) {
    if (msg->client != client_) return fail(WireError::kClientMismatch);
    pending_.push_back(core::Submission{msg->local_stamp, msg->id,
                                        config_.arrival_clock(message)});
    submits_in_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.size() >= config_.submit_batch_limit) apply_pending();
    return true;
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    if (heartbeat->client != client_) return fail(WireError::kClientMismatch);
    // Apply buffered submits first so the session sees per-connection
    // FIFO order.
    apply_pending();
    const TimePoint now = config_.arrival_clock(message);
    std::unique_lock<std::mutex> lock;
    if (ingest_mutex_ != nullptr) {
      lock = std::unique_lock<std::mutex>(*ingest_mutex_);
    }
    session_.heartbeat(heartbeat->local_stamp, now);
    heartbeats_in_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return fail(WireError::kBatchFromClient);
}

bool Connection::handle_announcement(
    const DistributionAnnouncement& announcement) {
  if (handshaken() && announcement.client != client_) {
    return fail(WireError::kClientMismatch);
  }
  const bool known = service_.expects_client(announcement.client);
  if (!known && !config_.accept_new_clients) {
    return fail(WireError::kUnknownClient);
  }
  // Order re-announce effects after everything already streamed.
  apply_pending();
  {
    std::unique_lock<std::mutex> lock;
    if (ingest_mutex_ != nullptr) {
      lock = std::unique_lock<std::mutex>(*ingest_mutex_);
    }
    // Idempotent: an identical re-send changes nothing and keeps the
    // generation stable. A changed summary bumps it — and no longer
    // freezes a threaded service: the epoch-swap machinery below primes
    // a fresh engine off-thread and installs it at a quiesce point while
    // in-flight sessions keep running against the old epoch.
    registry_.announce(announcement.client, announcement.summary);
    if (!known) service_.expect_client(announcement.client);
    if (service_.reconfig_pending()) {
      // Prime off-thread, install opportunistically. Threaded installs
      // quiesce the workers internally; sequential installs are already
      // serialized by ingest_mutex_. A not-yet-staged prime just returns
      // false here — a later announce retry (or pump) installs it.
      service_.request_reconfig();
      service_.try_install_reconfig();
    }
    if (!handshaken()) {
      core::OpenError open_error{};
      auto session =
          service_.try_open_session(announcement.client, &open_error);
      if (session) {
        session_ = *session;
        client_ = announcement.client;
        // Release pairs with handshaken()'s acquire: observers that see
        // true may read client_.
        handshaken_.store(true, std::memory_order_release);
        if (reconfig_waiting_ || config_.accept_new_clients) {
          // Close the join loop: every join-flow handshake gets an ack
          // (perform_handshake blocks on it), whether or not the peer
          // was first told ReconfigPending. Legacy servers
          // (accept_new_clients off) stay silent.
          reconfig_waiting_ = false;
          queue_outbound(HandshakeAck{service_.primed_generation()});
        }
      } else if (open_error == core::OpenError::kRegistryChanged) {
        // Queued to join, epoch not installed yet: tell the peer to
        // retry its announce instead of poisoning the stream.
        reconfig_waiting_ = true;
        queue_outbound(ReconfigPending{registry_.generation()});
      } else {
        return fail(WireError::kUnknownClient);
      }
    }
  }
  return true;
}

void Connection::queue_outbound(const WireMessage& message) {
  outbound_.push_back(encode_frame(message));
}

void Connection::on_peer_eof() {
  if (!handshaken() || failed()) return;
  // FIFO: everything the peer streamed lands before its departure does.
  apply_pending();
  std::unique_lock<std::mutex> lock;
  if (ingest_mutex_ != nullptr) {
    lock = std::unique_lock<std::mutex>(*ingest_mutex_);
  }
  service_.close_session(session_);
}

void Connection::apply_pending() {
  if (pending_.empty()) return;
  std::unique_lock<std::mutex> lock;
  if (ingest_mutex_ != nullptr) {
    lock = std::unique_lock<std::mutex>(*ingest_mutex_);
  }
  session_.submit_batch(std::span<const core::Submission>(pending_));
  pending_.clear();
}

bool Connection::try_apply_pending() {
  if (pending_.empty()) return true;
  if (ingest_mutex_ != nullptr) {
    // Sequential service: the only obstacle is the ingest lock (its
    // buffers are unbounded). Still contended after the bounded spin
    // means a pump holds it for real — back off, retry on the next tick.
    std::unique_lock<std::mutex> lock = lock_ingest_bounded(*ingest_mutex_);
    if (!lock.owns_lock()) return false;
    session_.submit_batch(std::span<const core::Submission>(pending_));
    pending_.clear();
    return true;
  }
  // Threaded service: push the prefix the session ring accepts; a full
  // ring is THE backpressure signal (the caller stops reading and the
  // socket fills).
  const std::size_t accepted =
      session_.try_submit_batch(std::span<const core::Submission>(pending_));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(accepted));
  return pending_.empty();
}

Connection::TryOutcome Connection::try_dispatch(const WireMessage& message) {
  if (const auto* announcement =
          std::get_if<DistributionAnnouncement>(&message)) {
    // The handshake path keeps the blocking serialization (registry and
    // epoch machinery): it is rare, bounded, and not worth a lock-free
    // variant.
    return handle_announcement(*announcement) ? TryOutcome::kOk
                                              : TryOutcome::kFail;
  }
  if (!handshaken()) {
    fail(WireError::kHandshakeExpected);
    return TryOutcome::kFail;
  }
  if (const auto* msg = std::get_if<TimestampedMessage>(&message)) {
    if (msg->client != client_) {
      fail(WireError::kClientMismatch);
      return TryOutcome::kFail;
    }
    pending_.push_back(core::Submission{msg->local_stamp, msg->id,
                                        config_.arrival_clock(message)});
    submits_in_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.size() >= config_.submit_batch_limit
        && !try_apply_pending()) {
      // The frame's effect is retained in pending_ (bounded at the
      // batch limit) — consumed, but the flush must be retried.
      return TryOutcome::kConsumedStall;
    }
    return TryOutcome::kOk;
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    if (heartbeat->client != client_) {
      fail(WireError::kClientMismatch);
      return TryOutcome::kFail;
    }
    const TimePoint now = config_.arrival_clock(message);
    if (ingest_mutex_ != nullptr) {
      std::unique_lock<std::mutex> lock = lock_ingest_bounded(*ingest_mutex_);
      if (!lock.owns_lock()) return TryOutcome::kRetryStall;
      if (!pending_.empty()) {
        // FIFO: buffered submits land before the heartbeat, under the
        // same lock acquisition.
        session_.submit_batch(std::span<const core::Submission>(pending_));
        pending_.clear();
      }
      session_.heartbeat(heartbeat->local_stamp, now);
    } else {
      if (!try_apply_pending()) return TryOutcome::kRetryStall;
      if (!session_.try_heartbeat(heartbeat->local_stamp, now)) {
        return TryOutcome::kRetryStall;
      }
    }
    heartbeats_in_.fetch_add(1, std::memory_order_relaxed);
    return TryOutcome::kOk;
  }
  fail(WireError::kBatchFromClient);
  return TryOutcome::kFail;
}

Connection::DriveStatus Connection::drive(
    std::span<const std::uint8_t> bytes) {
  if (failed()) return DriveStatus::kFailed;
  decoder_.append(bytes);
  return drive();
}

Connection::DriveStatus Connection::drive() {
  if (failed()) return DriveStatus::kFailed;
  // The stashed frame goes first: per-connection FIFO order.
  if (stash_.has_value()) {
    const TryOutcome outcome = try_dispatch(*stash_);
    if (outcome == TryOutcome::kRetryStall) return DriveStatus::kStalled;
    if (outcome == TryOutcome::kFail) return DriveStatus::kFailed;
    stash_.reset();
    if (outcome == TryOutcome::kConsumedStall) return DriveStatus::kStalled;
  }
  // A stalled batch flush gates the decode loop: without this, every
  // retry would admit one more frame from the buffered chunk past the
  // batch limit — pending_ is the ingest backpressure bound and must
  // stay at it while the service is unavailable.
  if (pending_.size() >= config_.submit_batch_limit
      && !try_apply_pending()) {
    return DriveStatus::kStalled;
  }
  while (auto payload = decoder_.next()) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    auto message = decode(*payload);
    if (!message) {
      fail(WireError::kMalformedMessage);
      return DriveStatus::kFailed;
    }
    const TryOutcome outcome = try_dispatch(*message);
    if (outcome == TryOutcome::kRetryStall) {
      stash_ = std::move(*message);
      return DriveStatus::kStalled;
    }
    if (outcome == TryOutcome::kFail) return DriveStatus::kFailed;
    if (outcome == TryOutcome::kConsumedStall) return DriveStatus::kStalled;
  }
  if (decoder_.error() != FrameError::kNone) {
    fail(WireError::kOversizedFrame);
    return DriveStatus::kFailed;
  }
  // End of buffered frames: flush the batch remainder, exactly where
  // on_bytes applies its trailing apply_pending.
  return try_apply_pending() ? DriveStatus::kReady : DriveStatus::kStalled;
}

bool Connection::fail(WireError error) {
  // The valid prefix still counts: every fully-decoded, in-protocol frame
  // before the poison byte has the same effect as if the stream had ended
  // cleanly there.
  apply_pending();
  mark_failed(error);
  return false;
}

// ── FrameFrontend ───────────────────────────────────────────────────────

FrameFrontend::FrameFrontend(core::ClientRegistry& registry,
                             core::FairOrderingService& service,
                             FrontendConfig config)
    : registry_(registry),
      service_(service),
      config_(normalized(std::move(config))) {}

FrameFrontend::~FrameFrontend() { stop(); }

std::uint64_t FrameFrontend::add_connection(
    std::shared_ptr<ByteStream> stream) {
  TOMMY_EXPECTS(stream != nullptr);
  reap();
  // Threaded services serialize nothing up front: each reader (thread or
  // poller callback) is its session ring's single producer. Sequential
  // services get all ingest and polls serialized behind ingest_mutex_.
  std::mutex* ingest_mutex = service_.threaded() ? nullptr : &ingest_mutex_;
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::uint64_t id;
  if (free_ids_.empty()) {
    id = next_id_++;
  } else {
    // Smallest recycled id first keeps the live id space dense.
    auto smallest = std::min_element(free_ids_.begin(), free_ids_.end());
    id = *smallest;
    *smallest = free_ids_.back();
    free_ids_.pop_back();
  }
  auto conn = std::make_shared<Conn>(std::move(stream), registry_, service_,
                                     config_, ingest_mutex);
  conns_.emplace(id, conn);
  retired_.accepted++;  // folded into totals() as "ever adopted"
  if (config_.transport == TransportMode::kEventLoop) {
    // Registers with a poller thread (conns_mutex_ held: poller threads
    // never take it, so there is no lock cycle, and a concurrent stop()
    // cannot unlink the connection before it is armed).
    attach_to_loop(conn);
  } else {
    Conn& ref = *conn;
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
  }
  return id;
}

void FrameFrontend::reader_loop(Conn& conn) {
  std::vector<std::uint8_t> buffer(config_.read_chunk_bytes);
  bool protocol_ok = true;
  while (true) {
    const auto n = conn.stream->read_some(buffer);
    if (!n) {
      conn.machine.mark_failed(WireError::kStreamError);
      protocol_ok = false;
      break;
    }
    if (*n == 0) {  // EOF: peer finished cleanly
      conn.clean_eof.store(true, std::memory_order_relaxed);
      if (config_.retire_on_eof) conn.machine.on_peer_eof();
      break;
    }
    conn.bytes_in.fetch_add(*n, std::memory_order_relaxed);
    conn.last_activity.store(wall_clock_now().seconds(),
                             std::memory_order_relaxed);
    const bool ok = conn.machine.on_bytes({buffer.data(), *n});
    // Reconfig responses the machine queued while dispatching (a failed
    // machine queues nothing further, but what it queued still goes out).
    flush_outbound(conn);
    if (!ok) {
      protocol_ok = false;
      break;
    }
  }
  // On failure, tear the transport down so the peer is not left writing
  // into a connection nobody reads.
  if (!protocol_ok) conn.stream->shutdown();
  conn.done.store(true, std::memory_order_release);
}

void FrameFrontend::flush_outbound(Conn& conn) {
  for (const auto& frame : conn.machine.take_outbound()) {
    std::lock_guard<std::mutex> write_lock(conn.write_mutex);
    if (!conn.write_ok.load(std::memory_order_relaxed)) return;
    if (conn.stream->write_all(frame)) {
      conn.frames_out.fetch_add(1, std::memory_order_relaxed);
      conn.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
      conn.last_activity.store(wall_clock_now().seconds(),
                               std::memory_order_relaxed);
    } else {
      conn.write_ok.store(false, std::memory_order_release);
    }
  }
}

bool FrameFrontend::reapable(const Conn& conn) const {
  if (!conn.done.load(std::memory_order_acquire)) return false;
  if (conn.machine.failed()) return true;
  if (config_.eof_policy == EofPolicy::kRemove) return true;
  // kLinger: keep serving broadcasts until a write fails.
  return !conn.write_ok.load(std::memory_order_acquire);
}

FrontendTotals FrameFrontend::counters_of(const Conn& conn) {
  FrontendTotals t;
  t.frames_in = conn.machine.frames_in();
  t.submits_in = conn.machine.submits_in();
  t.heartbeats_in = conn.machine.heartbeats_in();
  t.frames_out = conn.frames_out.load(std::memory_order_relaxed);
  t.frames_dropped = conn.frames_dropped.load(std::memory_order_relaxed);
  t.bytes_in = conn.bytes_in.load(std::memory_order_relaxed);
  t.bytes_out = conn.bytes_out.load(std::memory_order_relaxed);
  return t;
}

FrameFrontend::Retiring FrameFrontend::unlink_locked(
    std::shared_ptr<Conn> conn) {
  // Fold a snapshot the instant the connection leaves the table, so a
  // concurrent totals() never sees the counters dip while the reader is
  // being joined; retire() adds the residual later.
  Retiring retiring;
  retiring.snapshot = counters_of(*conn);
  retiring.conn = std::move(conn);
  retired_.removed++;
  retired_.frames_in += retiring.snapshot.frames_in;
  retired_.submits_in += retiring.snapshot.submits_in;
  retired_.heartbeats_in += retiring.snapshot.heartbeats_in;
  retired_.frames_out += retiring.snapshot.frames_out;
  retired_.frames_dropped += retiring.snapshot.frames_dropped;
  retired_.bytes_in += retiring.snapshot.bytes_in;
  retired_.bytes_out += retiring.snapshot.bytes_out;
  return retiring;
}

void FrameFrontend::retire(std::vector<Retiring>&& removed) {
  // Event-mode connections leave their poller first: remove_sync
  // barriers on the dispatch lock, so after it returns no callback
  // touches the connection. (retire() only ever runs on external
  // threads — reap/close/stop — never on a poller thread, which would
  // deadlock that barrier.)
  for (const auto& r : removed) {
    if (r.conn->in_loop) {
      event_loop_->remove_sync(r.conn->loop_key);
      r.conn->in_loop = false;
    }
  }
  for (const auto& r : removed) r.conn->stream->shutdown();
  for (const auto& r : removed) {
    std::lock_guard<std::mutex> join_lock(r.conn->join_mutex);
    if (r.conn->reader.joinable()) r.conn->reader.join();
  }
  if (removed.empty()) return;
  for (const auto& r : removed) {
    // Serialize against an in-flight broadcast: its counter increments
    // happen under write_mutex, and the stream is already shut down, so
    // after this lock the counters are final. Fold only what the
    // snapshot missed.
    std::lock_guard<std::mutex> write_lock(r.conn->write_mutex);
    const FrontendTotals final_counts = counters_of(*r.conn);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    retired_.frames_in += final_counts.frames_in - r.snapshot.frames_in;
    retired_.submits_in += final_counts.submits_in - r.snapshot.submits_in;
    retired_.heartbeats_in +=
        final_counts.heartbeats_in - r.snapshot.heartbeats_in;
    retired_.frames_out += final_counts.frames_out - r.snapshot.frames_out;
    retired_.frames_dropped +=
        final_counts.frames_dropped - r.snapshot.frames_dropped;
    retired_.bytes_in += final_counts.bytes_in - r.snapshot.bytes_in;
    retired_.bytes_out += final_counts.bytes_out - r.snapshot.bytes_out;
  }
}

std::size_t FrameFrontend::remove_if_locked(bool force) {
  // Phase 1 (under conns_mutex_): pull removable entries out of the
  // table, recycle their ids, and fold counter snapshots into retired_.
  // Phase 2 (lock dropped): shut streams down and join readers — joins
  // must never run under the table lock (the dying reader might be
  // blocked in a broadcast writer's shadow, and accessors need the lock
  // to stay responsive).
  std::vector<Retiring> removed;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (force || reapable(*it->second)) {
        free_ids_.push_back(it->first);
        removed.push_back(unlink_locked(std::move(it->second)));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const std::size_t count = removed.size();
  retire(std::move(removed));
  return count;
}

std::size_t FrameFrontend::reap() { return remove_if_locked(/*force=*/false); }

bool FrameFrontend::close_connection(std::uint64_t id) {
  std::vector<Retiring> removed;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return false;  // a concurrent reap won
    free_ids_.push_back(id);
    removed.push_back(unlink_locked(std::move(it->second)));
    conns_.erase(it);
  }
  retire(std::move(removed));
  return true;
}

void FrameFrontend::stop() { remove_if_locked(/*force=*/true); }

std::size_t FrameFrontend::drain(TimePoint now, bool flush_all,
                                 TimePoint* next_safe_after) {
  // Dead peers leave before the broadcast: a removed connection must
  // neither receive frames nor stall a write.
  reap();
  auto broadcast = [this](core::EmissionRecord&& record, std::uint32_t) {
    BatchEmission wire;
    wire.rank = record.batch.rank;
    wire.messages.reserve(record.batch.messages.size());
    for (const core::Message& m : record.batch.messages) {
      wire.messages.push_back(m.id);
    }
    const auto frame = encode_frame(WireMessage(std::move(wire)));
    // Snapshot, then write holding only the per-connection mutex: a peer
    // that stopped reading can stall ITS write (until someone shuts its
    // stream down), but must not wedge conns_mutex_ — add_connection,
    // the accessors and the teardown path all need it. The shared_ptr
    // snapshot keeps each Conn alive even if a concurrent reap drops it
    // from the table mid-broadcast.
    std::vector<std::shared_ptr<Conn>> targets;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      targets.reserve(conns_.size());
      for (auto& [id, conn] : conns_) targets.push_back(conn);
    }
    for (const auto& conn : targets) {
      if (config_.transport == TransportMode::kEventLoop) {
        // Bounded egress: what cannot be written now queues (up to the
        // cap, then the egress policy applies) and drains on the next
        // writability edge — a slow subscriber never stalls the pump.
        queue_egress(*conn, frame);
        continue;
      }
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      if (!conn->write_ok.load(std::memory_order_relaxed)) continue;
      if (conn->stream->write_all(frame)) {
        conn->frames_out.fetch_add(1, std::memory_order_relaxed);
        conn->bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
        conn->last_activity.store(wall_clock_now().seconds(),
                                  std::memory_order_relaxed);
      } else {
        conn->write_ok.store(false, std::memory_order_release);
      }
    }
  };
  core::CallbackSink<decltype(broadcast)> sink(broadcast);
  return drain_locked(now, flush_all, sink, next_safe_after);
}

std::size_t FrameFrontend::drain_locked(TimePoint now, bool flush_all,
                                        core::EmissionSink& sink,
                                        TimePoint* next_safe_after) {
  std::unique_lock<std::mutex> lock;
  if (!service_.threaded()) lock = std::unique_lock<std::mutex>(ingest_mutex_);
  // Liveness for reconfigs nobody retries (a handshaken client's mutated
  // re-announce): each pump gives a staged epoch a chance to install.
  if (service_.reconfig_pending()) {
    service_.request_reconfig();
    service_.try_install_reconfig();
  }
  const std::size_t emitted =
      flush_all ? service_.flush(now, sink) : service_.poll(now, sink);
  if (next_safe_after != nullptr) *next_safe_after = service_.next_safe_time();
  return emitted;
}

std::size_t FrameFrontend::pump(TimePoint now, const PumpOptions& options) {
  if (options.sink == nullptr) {
    return drain(now, options.flush, options.next_safe_after);
  }
  return drain_locked(now, options.flush, *options.sink,
                      options.next_safe_after);
}

void FrameFrontend::reconfigure() {
  // Readers block on the ingest lock for the duration of the swap in
  // sequential mode — exactly the serialization the sequential service
  // requires. The primer thread never touches this lock, so the
  // blocking join inside service_.reconfigure() cannot deadlock.
  std::unique_lock<std::mutex> lock;
  if (!service_.threaded()) lock = std::unique_lock<std::mutex>(ingest_mutex_);
  service_.reconfigure();
}

void FrameFrontend::join_readers() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    // join_mutex: a concurrent reap may be joining this same reader.
    std::lock_guard<std::mutex> join_lock(conn->join_mutex);
    if (conn->reader.joinable()) conn->reader.join();
  }
  // Event-mode "join": wait until the poller marked each connection
  // done (EOF reached AND every retained frame applied — finish_eof
  // orders the done store after the last service call, exactly the
  // all-applied guarantee the thread join gives).
  if (config_.transport == TransportMode::kEventLoop) {
    for (const auto& conn : conns) {
      while (!conn->done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
}

std::size_t FrameFrontend::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::size_t live = 0;
  for (const auto& [id, conn] : conns_) {
    if (!reapable(*conn)) ++live;
  }
  return live;
}

std::size_t FrameFrontend::tracked_connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.size();
}

bool FrameFrontend::has_connection(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.contains(id);
}

namespace {

template <typename Map>
auto& conn_at(const Map& conns, std::uint64_t id) {
  auto it = conns.find(id);
  TOMMY_EXPECTS(it != conns.end());
  return *it->second;
}

}  // namespace

bool FrameFrontend::connection_done(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conn_at(conns_, id).done.load(std::memory_order_acquire);
}

WireError FrameFrontend::connection_error(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conn_at(conns_, id).machine.error();
}

ConnectionStats FrameFrontend::connection_stats(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const Conn& conn = conn_at(conns_, id);
  ConnectionStats stats;
  stats.frames_in = conn.machine.frames_in();
  stats.submits_in = conn.machine.submits_in();
  stats.heartbeats_in = conn.machine.heartbeats_in();
  stats.frames_out = conn.frames_out.load(std::memory_order_relaxed);
  stats.frames_dropped = conn.frames_dropped.load(std::memory_order_relaxed);
  stats.bytes_in = conn.bytes_in.load(std::memory_order_relaxed);
  stats.bytes_out = conn.bytes_out.load(std::memory_order_relaxed);
  stats.last_activity = conn.last_activity.load(std::memory_order_relaxed);
  stats.done = conn.done.load(std::memory_order_acquire);
  stats.clean_eof = conn.clean_eof.load(std::memory_order_relaxed);
  stats.error = conn.machine.error();
  return stats;
}

FrontendTotals FrameFrontend::totals() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  FrontendTotals totals = retired_;
  for (const auto& [id, conn] : conns_) {
    totals.frames_in += conn->machine.frames_in();
    totals.submits_in += conn->machine.submits_in();
    totals.heartbeats_in += conn->machine.heartbeats_in();
    totals.frames_out += conn->frames_out.load(std::memory_order_relaxed);
    totals.frames_dropped +=
        conn->frames_dropped.load(std::memory_order_relaxed);
    totals.bytes_in += conn->bytes_in.load(std::memory_order_relaxed);
    totals.bytes_out += conn->bytes_out.load(std::memory_order_relaxed);
  }
  return totals;
}

const Connection& FrameFrontend::connection(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conn_at(conns_, id).machine;
}

RelaySet::RelaySet(DialFn dial, std::size_t max_frame_bytes)
    : dial_(std::move(dial)), max_frame_bytes_(max_frame_bytes) {
  TOMMY_EXPECTS(dial_ != nullptr);
}

RelaySet::~RelaySet() { stop(); }

void RelaySet::adopt(std::shared_ptr<ByteStream> downstream) {
  std::vector<std::shared_ptr<Relay>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      downstream->shutdown();
      return;
    }
    for (auto it = relays_.begin(); it != relays_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = relays_.erase(it);
      } else {
        ++it;
      }
    }
    auto relay = std::make_shared<Relay>();
    relay->down = std::move(downstream);
    relays_.push_back(relay);
    ++adopted_;
    relay->forward = std::thread([this, relay] { forward_loop(*relay); });
  }
  // Joins happen outside the lock; a done relay's thread is already past
  // its last instruction, so these joins return immediately.
  for (auto& relay : finished) {
    if (relay->forward.joinable()) relay->forward.join();
  }
}

void RelaySet::stop() {
  std::vector<std::shared_ptr<Relay>> relays;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    relays.swap(relays_);
  }
  for (auto& relay : relays) {
    relay->down->shutdown();
    std::shared_ptr<ByteStream> up;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      up = relay->up;
    }
    if (up != nullptr) up->shutdown();
  }
  for (auto& relay : relays) {
    if (relay->forward.joinable()) relay->forward.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = false;
}

std::size_t RelaySet::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& relay : relays_) {
    if (!relay->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

std::uint64_t RelaySet::adopted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return adopted_;
}

void RelaySet::forward_loop(Relay& relay) {
  std::vector<std::uint8_t> buffer(4096);
  // Every raw byte read before the upstream exists — the handshake frame
  // plus anything the client coalesced behind it. Replayed verbatim once
  // the dial lands, so the upstream sees exactly the byte stream the
  // client wrote.
  std::vector<std::uint8_t> preamble;
  FrameDecoder decoder(max_frame_bytes_);
  std::optional<DistributionAnnouncement> announcement;
  while (!announcement) {
    const auto n = relay.down->read_some(buffer);
    if (!n.has_value() || *n == 0) {
      handshake_failures_.fetch_add(1, std::memory_order_relaxed);
      relay.down->shutdown();
      relay.done.store(true, std::memory_order_release);
      return;
    }
    preamble.insert(preamble.end(), buffer.begin(),
                    buffer.begin() + static_cast<std::ptrdiff_t>(*n));
    decoder.append(std::span<const std::uint8_t>(buffer.data(), *n));
    if (auto payload = decoder.next()) {
      auto message = decode(*payload);
      if (!message.has_value()
          || !std::holds_alternative<DistributionAnnouncement>(*message)) {
        handshake_failures_.fetch_add(1, std::memory_order_relaxed);
        relay.down->shutdown();
        relay.done.store(true, std::memory_order_release);
        return;
      }
      announcement = std::get<DistributionAnnouncement>(std::move(*message));
    } else if (decoder.error() != FrameError::kNone) {
      handshake_failures_.fetch_add(1, std::memory_order_relaxed);
      relay.down->shutdown();
      relay.done.store(true, std::memory_order_release);
      return;
    }
  }

  std::shared_ptr<ByteStream> up = dial_(*announcement);
  if (up == nullptr) {
    dial_failures_.fetch_add(1, std::memory_order_relaxed);
    relay.down->shutdown();
    relay.done.store(true, std::memory_order_release);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    relay.up = up;
    if (stopping_) {
      up->shutdown();
      relay.down->shutdown();
      relay.done.store(true, std::memory_order_release);
      return;
    }
  }

  bool ok = up->write_all(preamble);
  std::thread backward;
  if (ok) {
    backward = std::thread([&relay, up] {
      std::vector<std::uint8_t> back(4096);
      for (;;) {
        const auto n = up->read_some(back);
        if (!n.has_value()) {
          // Upstream transport error (node killed): tear the downstream
          // down so the client reconnects through the router.
          relay.down->shutdown();
          return;
        }
        if (*n == 0) {
          // Clean upstream EOF: propagate the half-close; the client
          // reads what was sent, then EOF.
          relay.down->close_write();
          return;
        }
        if (!relay.down->write_all(
                std::span<const std::uint8_t>(back.data(), *n))) {
          up->shutdown();
          return;
        }
      }
    });
  }
  while (ok) {
    const auto n = relay.down->read_some(buffer);
    if (!n.has_value()) {
      ok = false;
      break;
    }
    if (*n == 0) {
      // Client half-closed (close_write after its last frame): propagate
      // so the upstream node sees the same clean EOF.
      up->close_write();
      break;
    }
    if (!up->write_all(std::span<const std::uint8_t>(buffer.data(), *n))) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    relay.down->shutdown();
    up->shutdown();
  }
  if (backward.joinable()) backward.join();
  relay.done.store(true, std::memory_order_release);
}

}  // namespace tommy::net
