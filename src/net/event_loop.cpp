#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>

#include "common/check.hpp"

namespace tommy::net {

namespace {

/// Reserved tag for the wake eventfd (registration keys are a counter,
/// so the sentinel never collides in practice).
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};

class EpollPoller final : public Poller {
 public:
  EpollPoller() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    TOMMY_EXPECTS(epoll_fd_ >= 0);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    TOMMY_EXPECTS(wake_fd_ >= 0);
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    TOMMY_EXPECTS(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  }

  ~EpollPoller() override {
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  bool add(int fd, std::uint64_t tag) override {
    ::epoll_event ev{};
    // Edge-triggered, armed once: readable and writable edges both flow
    // through the same registration, so the hot path never touches
    // epoll_ctl again. EPOLLRDHUP surfaces peer half-close as an edge.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = tag;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void remove(int fd) override {
    ::epoll_event ev{};  // ignored since 2.6.9, required to be non-null
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }

  std::size_t wait(std::span<PollEvent> out, int timeout_ms) override {
    std::array<::epoll_event, 64> events;
    const int cap = static_cast<int>(
        std::min(out.size(), events.size()));
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events.data(), cap, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return 0;
    std::size_t filled = 0;
    for (int i = 0; i < n; ++i) {
      const ::epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kWakeTag) {
        std::uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      PollEvent& slot = out[filled++];
      slot.tag = ev.data.u64;
      // Error/hangup flags surface as readability: the read path drains
      // whatever is buffered and then observes EOF or the error itself.
      slot.readable =
          (ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0;
      slot.writable = (ev.events & EPOLLOUT) != 0;
      slot.hangup = (ev.events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0;
    }
    return filled;
  }

  void wake() override {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
  }

 private:
  int epoll_fd_{-1};
  int wake_fd_{-1};
};

}  // namespace

std::unique_ptr<Poller> make_epoll_poller() {
  return std::make_unique<EpollPoller>();
}

EventLoop::EventLoop(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->poller = make_epoll_poller();
    workers_.push_back(std::move(worker));
  }
  // Spawn after the vector is final: run() captures a stable Worker&.
  for (auto& worker : workers_) {
    Worker& ref = *worker;
    ref.thread = std::thread([this, &ref] { run(ref); });
  }
}

EventLoop::~EventLoop() {
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_release);
    worker->poller->wake();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::uint64_t EventLoop::allocate_key() {
  return next_key_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::attach(std::uint64_t key, int fd, Handler handler) {
  Worker& worker = *workers_[key % workers_.size()];
  auto entry = std::make_shared<Entry>();
  entry->fd = fd;
  entry->handler = std::move(handler);
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.handlers.emplace(key, std::move(entry));
  }
  // Register AFTER the handler is findable: the very first edge may
  // fire before attach() returns.
  TOMMY_EXPECTS(worker.poller->add(fd, key));
}

std::uint64_t EventLoop::add(int fd, Handler handler) {
  const std::uint64_t key = allocate_key();
  attach(key, fd, std::move(handler));
  return key;
}

void EventLoop::remove_sync(std::uint64_t key) {
  Worker& worker = *workers_[key % workers_.size()];
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    auto it = worker.handlers.find(key);
    if (it == worker.handlers.end()) return;
    fd = it->second->fd;
    worker.handlers.erase(it);
    std::erase(worker.ticks, key);
  }
  worker.poller->remove(fd);
  // Completion barrier: an in-flight callback batch may have looked the
  // handler up before the erase; once we hold the dispatch lock, that
  // batch has finished and no future batch can find the key.
  { std::lock_guard<std::mutex> barrier(worker.dispatch_mutex); }
}

void EventLoop::request_tick(std::uint64_t key) {
  Worker& worker = *workers_[key % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.handlers.contains(key)) return;
    if (std::find(worker.ticks.begin(), worker.ticks.end(), key)
        != worker.ticks.end()) {
      return;  // coalesce
    }
    worker.ticks.push_back(key);
  }
  worker.poller->wake();
}

void EventLoop::run(Worker& worker) {
  std::array<PollEvent, 64> events;
  std::vector<std::uint64_t> due;
  while (!worker.stop.load(std::memory_order_acquire)) {
    due.clear();
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      due.swap(worker.ticks);
    }
    // Pending ticks bound the wait at the retry cadence; otherwise sleep
    // until an edge or a wake.
    const int timeout_ms = due.empty() ? -1 : 1;
    const std::size_t n = worker.poller->wait(events, timeout_ms);
    if (worker.stop.load(std::memory_order_acquire)) break;
    std::lock_guard<std::mutex> dispatch(worker.dispatch_mutex);
    for (std::size_t i = 0; i < n; ++i) {
      const PollEvent& ev = events[i];
      std::shared_ptr<Entry> entry;
      {
        std::lock_guard<std::mutex> lock(worker.mutex);
        auto it = worker.handlers.find(ev.tag);
        if (it != worker.handlers.end()) entry = it->second;
      }
      if (entry && entry->handler.on_event) {
        entry->handler.on_event(ev.readable, ev.writable, ev.hangup);
      }
    }
    for (const std::uint64_t key : due) {
      std::shared_ptr<Entry> entry;
      {
        std::lock_guard<std::mutex> lock(worker.mutex);
        auto it = worker.handlers.find(key);
        if (it != worker.handlers.end()) entry = it->second;
      }
      if (entry && entry->handler.on_tick) entry->handler.on_tick();
    }
  }
}

}  // namespace tommy::net
