// Network links. A Link delivers payloads after a randomly sampled
// one-way delay (so later sends can arrive before earlier ones — the
// network asynchrony of §3.5/Q2). An OrderedChannel layers per-sender FIFO
// delivery on top, modelling a TCP connection: sampled delays still vary,
// but delivery order matches send order.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/simulation.hpp"
#include "stats/distribution.hpp"

namespace tommy::net {

/// One-way delay model shared by Link and OrderedChannel: a base
/// propagation delay plus a random sample from `jitter` (clamped at zero so
/// total delay never undercuts the base).
class DelayModel {
 public:
  DelayModel(Duration base, stats::DistributionPtr jitter, Rng rng);

  /// Base-only model (deterministic).
  static DelayModel fixed(Duration base);

  [[nodiscard]] Duration sample();
  [[nodiscard]] Duration base() const { return base_; }

 private:
  Duration base_;
  stats::DistributionPtr jitter_;  // may be null => no jitter
  Rng rng_;
};

/// Unordered datagram-style link.
class Link {
 public:
  Link(Simulation& sim, DelayModel delay);

  /// Samples a delay and schedules `deliver` at now() + delay.
  void send(std::function<void()> deliver);

  [[nodiscard]] std::size_t sent_count() const { return sent_; }

 private:
  Simulation& sim_;
  DelayModel delay_;
  std::size_t sent_{0};
};

/// FIFO (per-channel) delivery: a message is delivered at
/// max(now + sampled delay, previous delivery time), like bytes on a TCP
/// stream. §3.5's completeness rule (Q2) relies on this property.
class OrderedChannel {
 public:
  OrderedChannel(Simulation& sim, DelayModel delay);

  void send(std::function<void()> deliver);

  [[nodiscard]] std::size_t sent_count() const { return sent_; }
  [[nodiscard]] TimePoint last_delivery_time() const { return last_delivery_; }

 private:
  Simulation& sim_;
  DelayModel delay_;
  TimePoint last_delivery_{TimePoint::epoch()};
  std::size_t sent_{0};
};

}  // namespace tommy::net
