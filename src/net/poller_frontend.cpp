// FrameFrontend's event-driven transport (TransportMode::kEventLoop):
// the poller-thread half of the front-end. frontend.cpp holds the
// transport-independent machinery and the thread-per-connection reader;
// this TU holds what runs on (or talks to) the EventLoop.
//
// Per-connection flow, all on the connection's one poller thread:
//
//   readable edge ──► drain_readable: try_read until kWouldBlock,
//        │            each chunk through Connection::drive (nonblocking)
//        │                 │ kStalled (ring full / ingest lock busy)
//        │                 ▼
//        │            paused = true, request_tick ──► on_loop_tick:
//        │            drive() retry; kReady resumes the read drain
//        │            (backpressure: while paused the socket is NOT
//        │            read, its kernel buffers fill, TCP flow control
//        │            reaches the client)
//        ▼
//   writable edge ──► flush_egress: bounded per-connection queue the
//                     broadcast pump fills; overflow applies the
//                     configured EgressPolicy (disconnect or drop).
#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "net/event_loop.hpp"
#include "net/frontend.hpp"

namespace tommy::net {

// Defined in frontend.cpp — one shared clock origin per process, so
// last_activity stamps agree across both transports.
TimePoint wall_clock_now();

void FrameFrontend::attach_to_loop(const std::shared_ptr<Conn>& conn) {
  // conns_mutex_ held by add_connection: guards event_loop_ creation and
  // publishes loop_key/in_loop before any other thread can see the conn.
  const int fd = conn->stream->poll_fd();
  if (fd < 0) {
    // Not event-loop capable (an in-process pipe): fail it typed rather
    // than crash — the caller observes a done, failed connection.
    conn->machine.mark_failed(WireError::kStreamError);
    conn->done.store(true, std::memory_order_release);
    return;
  }
  if (!event_loop_) {
    event_loop_ = std::make_unique<EventLoop>(
        std::max<std::size_t>(1, config_.poller_threads));
  }
  conn->read_buffer.resize(config_.read_chunk_bytes);
  conn->loop_key = event_loop_->allocate_key();
  conn->in_loop = true;
  EventLoop::Handler handler;
  // The handler owns a shared_ptr: the Conn outlives its registration,
  // and remove_sync (in retire) drops this reference.
  handler.on_event = [this, conn](bool readable, bool writable,
                                  bool hangup) {
    on_loop_event(conn, readable, writable, hangup);
  };
  handler.on_tick = [this, conn] { on_loop_tick(conn); };
  event_loop_->attach(conn->loop_key, fd, std::move(handler));
}

void FrameFrontend::on_loop_event(const std::shared_ptr<Conn>& conn,
                                  bool readable, bool writable,
                                  bool hangup) {
  if (conn->done.load(std::memory_order_acquire)) return;
  if (writable) {
    std::lock_guard<std::mutex> write_lock(conn->write_mutex);
    if (conn->write_ok.load(std::memory_order_relaxed)) {
      flush_egress_locked(*conn);
    }
  }
  // While paused (service stalled) the socket is deliberately not read
  // — the pending tick owns resumption, and edge-triggered epoll will
  // not repeat this edge, which is exactly right: the bytes stay in the
  // kernel buffer until the stall clears.
  if ((readable || hangup) && !conn->paused && !conn->eof_seen) {
    drain_readable(*conn);
  }
}

void FrameFrontend::on_loop_tick(const std::shared_ptr<Conn>& conn) {
  if (conn->done.load(std::memory_order_acquire)) return;
  if (!conn->paused) return;  // stale tick (stall already resolved)
  const Connection::DriveStatus status = conn->machine.drive();
  for (const auto& frame : conn->machine.take_outbound()) {
    queue_egress(*conn, frame);
  }
  if (status == Connection::DriveStatus::kFailed) {
    fail_loop_conn(*conn);
    return;
  }
  if (status == Connection::DriveStatus::kStalled) {
    event_loop_->request_tick(conn->loop_key);
    return;
  }
  conn->paused = false;
  if (conn->eof_seen) {
    // kReady means drained: the deferred EOF can now complete.
    finish_eof(*conn);
    return;
  }
  // Catch up on whatever arrived while paused (no new edge will fire
  // for bytes that were already buffered).
  drain_readable(*conn);
}

void FrameFrontend::drain_readable(Conn& conn) {
  while (true) {
    const IoResult r = conn.stream->try_read(conn.read_buffer);
    if (r.status == IoStatus::kWouldBlock) return;
    if (r.status == IoStatus::kError) {
      // Same shape as the reader thread's transport-error exit. Nothing
      // is retained here: reads only resume after a drive() returned
      // kReady, so stash/pending are empty when an error surfaces.
      conn.machine.mark_failed(WireError::kStreamError);
      fail_loop_conn(conn);
      return;
    }
    if (r.status == IoStatus::kEof) {
      conn.eof_seen = true;
      if (conn.machine.drained()) {
        finish_eof(conn);
      } else {
        // Retained frames still need the service: finish the EOF once
        // the stall clears.
        conn.paused = true;
        event_loop_->request_tick(conn.loop_key);
      }
      return;
    }
    conn.bytes_in.fetch_add(r.bytes, std::memory_order_relaxed);
    conn.last_activity.store(wall_clock_now().seconds(),
                             std::memory_order_relaxed);
    const Connection::DriveStatus status =
        conn.machine.drive({conn.read_buffer.data(), r.bytes});
    for (const auto& frame : conn.machine.take_outbound()) {
      queue_egress(conn, frame);
    }
    if (status == Connection::DriveStatus::kFailed) {
      fail_loop_conn(conn);
      return;
    }
    if (status == Connection::DriveStatus::kStalled) {
      conn.paused = true;
      event_loop_->request_tick(conn.loop_key);
      return;
    }
  }
}

void FrameFrontend::finish_eof(Conn& conn) {
  conn.clean_eof.store(true, std::memory_order_relaxed);
  if (config_.retire_on_eof) conn.machine.on_peer_eof();
  // Release pairs with join_readers' acquire: everything the peer
  // streamed has been applied once done reads true.
  conn.done.store(true, std::memory_order_release);
}

void FrameFrontend::fail_loop_conn(Conn& conn) {
  // Tear the transport down so the peer is not left writing into a
  // connection nobody reads — the reader-thread exit does the same.
  conn.stream->shutdown();
  conn.done.store(true, std::memory_order_release);
}

void FrameFrontend::queue_egress(Conn& conn,
                                 std::span<const std::uint8_t> frame) {
  std::lock_guard<std::mutex> write_lock(conn.write_mutex);
  if (!conn.write_ok.load(std::memory_order_relaxed)) return;
  // Oldest bytes first: drain what a previous edge left queued before
  // attempting this frame, so the wire order matches the emit order.
  flush_egress_locked(conn);
  if (!conn.write_ok.load(std::memory_order_relaxed)) return;
  std::size_t off = 0;
  if (conn.egress.empty()) {
    // Fast path: common case is an empty queue and a writable socket.
    while (off < frame.size()) {
      const IoResult r = conn.stream->try_write(frame.subspan(off));
      if (r.status == IoStatus::kOk) {
        off += r.bytes;
        conn.bytes_out.fetch_add(r.bytes, std::memory_order_relaxed);
        conn.last_activity.store(wall_clock_now().seconds(),
                                 std::memory_order_relaxed);
        continue;
      }
      if (r.status != IoStatus::kWouldBlock) {
        conn.write_ok.store(false, std::memory_order_release);
        return;
      }
      break;
    }
    if (off == frame.size()) {
      conn.frames_out.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::size_t remaining = frame.size() - off;
  if (off == 0
      && conn.egress_bytes + remaining > config_.egress_buffer_bytes) {
    // Policy decisions happen only at frame boundaries: a partially
    // written frame MUST queue its remainder (dropping it would corrupt
    // the stream), so the queue can overshoot the cap by at most one
    // frame.
    if (config_.egress_policy == EgressPolicy::kDrop) {
      conn.frames_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // kDisconnect: the slow subscriber is torn down (write_ok gates
    // reapable; the shutdown also unsticks its peer).
    conn.write_ok.store(false, std::memory_order_release);
    conn.stream->shutdown();
    return;
  }
  conn.egress.emplace_back(
      frame.begin() + static_cast<std::ptrdiff_t>(off), frame.end());
  conn.egress_bytes += remaining;
}

void FrameFrontend::flush_egress_locked(Conn& conn) {
  while (!conn.egress.empty()) {
    const std::vector<std::uint8_t>& head = conn.egress.front();
    const IoResult r = conn.stream->try_write(
        std::span<const std::uint8_t>(head).subspan(conn.egress_offset));
    if (r.status == IoStatus::kOk) {
      conn.egress_offset += r.bytes;
      conn.egress_bytes -= r.bytes;
      conn.bytes_out.fetch_add(r.bytes, std::memory_order_relaxed);
      conn.last_activity.store(wall_clock_now().seconds(),
                               std::memory_order_relaxed);
      if (conn.egress_offset == head.size()) {
        conn.egress.pop_front();
        conn.egress_offset = 0;
        conn.frames_out.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) return;
    conn.write_ok.store(false, std::memory_order_release);
    return;
  }
}

}  // namespace tommy::net
