// The event-driven transport core: a readiness Poller abstraction
// (epoll today; the interface is shaped so an io_uring implementation
// can slot in behind the same calls) and an EventLoop running M poller
// threads that multiplex many fds onto few threads.
//
//   fd ──add──► EventLoop ──round-robin──► worker thread w/ own Poller
//                              │ readiness edge / requested tick
//                              ▼
//                    Handler::on_event / on_tick   (one thread per fd:
//                    a connection's callbacks never run concurrently)
//
// Threading contract:
//  * add() assigns the fd to one worker (round-robin) and returns a key.
//    All of that fd's callbacks run on that worker's thread, serialized
//    — per-connection state needs no locking against itself.
//  * Registration is edge-triggered (EPOLLIN|EPOLLOUT|EPOLLRDHUP|
//    EPOLLET), armed ONCE at add: no epoll_ctl churn on the hot path.
//    Handlers must drain to kWouldBlock on every readable edge, and
//    writability edges fire only on full→writable transitions.
//  * request_tick(key) schedules an on_tick callback ~one tick period
//    (1ms) later on the owning worker — the retry mechanism for
//    backpressure stalls, where no fd edge will arrive (the fd IS
//    readable; the service is what's full).
//  * remove_sync(key) unregisters and then barriers on the worker's
//    dispatch lock: when it returns, no callback for the key is running
//    or will run. It must NEVER be called from a loop thread (it would
//    deadlock on its own dispatch lock) — reap/close/stop all run on
//    external threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

namespace tommy::net {

/// One readiness notification out of Poller::wait.
struct PollEvent {
  std::uint64_t tag{0};
  bool readable{false};
  bool writable{false};
  /// Peer hung up or the fd errored — the read path will observe
  /// EOF/error once drained.
  bool hangup{false};
};

/// Minimal readiness-notification interface. One waiter thread at a
/// time; add/remove/wake may be called from any thread.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` edge-triggered for read+write readiness under `tag`.
  [[nodiscard]] virtual bool add(int fd, std::uint64_t tag) = 0;
  /// Unregisters `fd`. Events already harvested may still surface.
  virtual void remove(int fd) = 0;
  /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills `out`
  /// and returns the count. Returns 0 on timeout or spurious wake.
  [[nodiscard]] virtual std::size_t wait(std::span<PollEvent> out,
                                         int timeout_ms) = 0;
  /// Unblocks a concurrent wait() (self-pipe/eventfd).
  virtual void wake() = 0;
};

/// The Linux implementation: epoll + eventfd wake.
[[nodiscard]] std::unique_ptr<Poller> make_epoll_poller();

class EventLoop {
 public:
  struct Handler {
    /// Readiness callback (owning worker thread).
    std::function<void(bool readable, bool writable, bool hangup)> on_event;
    /// Deferred-retry callback (owning worker thread; see request_tick).
    std::function<void()> on_tick;
  };

  /// Spawns `threads` poller threads (min 1).
  explicit EventLoop(std::size_t threads);

  /// Stops and joins every poller thread. Registered handlers are
  /// dropped without further callbacks.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Reserves a registration key (round-robin worker assignment is a
  /// pure function of the key). Splitting allocation from attach lets
  /// the caller publish the key into handler-visible state BEFORE the
  /// first callback can fire.
  [[nodiscard]] std::uint64_t allocate_key();

  /// Registers `fd` under a key from allocate_key(). The handler may
  /// fire immediately (on the owning worker thread).
  void attach(std::uint64_t key, int fd, Handler handler);

  /// allocate_key() + attach() in one call, for callers whose handlers
  /// don't need the key. Returns the key.
  [[nodiscard]] std::uint64_t add(int fd, Handler handler);

  /// Unregisters `key` and waits until no callback for it is running.
  /// MUST NOT be called from a loop thread (see file header).
  void remove_sync(std::uint64_t key);

  /// Schedules one on_tick for `key` on its owning worker, ~1ms out.
  /// Coalesced: multiple requests before the tick fires yield one call.
  void request_tick(std::uint64_t key);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Entry {
    int fd{-1};
    Handler handler;
  };

  struct Worker {
    std::unique_ptr<Poller> poller;
    std::thread thread;
    /// Guards handlers + ticks (registration vs dispatch vs tick
    /// requests). Leaf lock: never held across a callback.
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> handlers;
    std::vector<std::uint64_t> ticks;
    /// Held for the duration of each callback batch; remove_sync
    /// acquires it as a completion barrier.
    std::mutex dispatch_mutex;
    std::atomic<bool> stop{false};
  };

  void run(Worker& worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_key_{0};
};

}  // namespace tommy::net
