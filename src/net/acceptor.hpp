// The listening half of the wire front-end, in two layers:
//
//  * `StreamAcceptor` is the transport-level acceptor: it owns a TCP or
//    Unix-domain listening socket, runs an accept loop on its own thread,
//    wraps every accepted fd via make_fd_stream, and hands the stream to
//    a caller-supplied callback. It knows nothing about frames or
//    services — the dist layer reuses it verbatim for shard-node uplinks
//    and the key router.
//  * `FrameServer` composes a StreamAcceptor with an embedded
//    FrameFrontend: every accepted stream becomes a protocol connection
//    (reader thread, handshake, session) — the real server remote client
//    processes connect to.
//
//   listen fd ──► accept thread ──► make_fd_stream ──► on_stream(...)
//                                                       (FrameServer:
//                                                        add_connection)
//
// Lifecycle: the accept loop multiplexes the listening socket against an
// internal wake pipe with poll(2), so stop() never races a blocking
// accept — it writes the wake byte, joins the accept thread, closes the
// listening socket (and unlinks a Unix socket path). stop() is
// idempotent and runs from the destructor. FrameServer::stop()
// additionally stops the front-end (shutting every connection stream
// down and joining every reader).
//
// Connection lifetime is the front-end's EofPolicy (ServerConfig defaults
// it to kRemove: a peer that stops sending is reaped, its id recycled);
// pump(now) broadcasts emissions and reaps dead connections first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/endpoint.hpp"
#include "net/frontend.hpp"

namespace tommy::net {

/// Transport-level acceptor: one listening socket, one accept thread,
/// every accepted fd delivered to `on_stream` as a ByteStream (from the
/// accept thread — the callback must not block indefinitely). One
/// listening socket per instance: call exactly one of listen_tcp /
/// listen_unix, once.
class StreamAcceptor {
 public:
  using OnStream = std::function<void(std::shared_ptr<ByteStream>)>;

  explicit StreamAcceptor(OnStream on_stream, int backlog = 128);

  /// stop()s.
  ~StreamAcceptor();

  StreamAcceptor(const StreamAcceptor&) = delete;
  StreamAcceptor& operator=(const StreamAcceptor&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the outcome from
  /// port()), listens, and starts the accept thread. False on bind /
  /// listen failure (errno preserved).
  [[nodiscard]] bool listen_tcp(std::uint16_t port);

  /// Binds a Unix-domain stream socket at `path` (unlinking a stale
  /// socket file first), listens, and starts the accept thread.
  [[nodiscard]] bool listen_unix(const std::string& path);

  /// Unified entry point: listen_unix when the endpoint names a Unix
  /// path, else listen_tcp. Same one-listen-per-acceptor rule.
  [[nodiscard]] bool listen(const Endpoint& endpoint) {
    return endpoint.is_unix() ? listen_unix(endpoint.unix_path)
                              : listen_tcp(endpoint.tcp_port);
  }

  /// Bound TCP port (valid after a successful listen_tcp).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Bound Unix socket path (valid after a successful listen_unix).
  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }

  /// Accepting connections (between a successful listen_* and stop()).
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Stops accepting: joins the accept thread, closes the listening
  /// socket, unlinks a Unix path. Streams already handed to the callback
  /// are untouched (their owner tears them down). Idempotent.
  void stop();

  /// Blocks until at least `n` connections have been accepted over the
  /// acceptor's lifetime, or `timeout_ms` elapsed. True if reached.
  [[nodiscard]] bool wait_for_accepted(std::uint64_t n, int timeout_ms);

  /// Connections ever accepted.
  [[nodiscard]] std::uint64_t accepted_total() const {
    return accepted_.load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] bool start(int listen_fd);
  void accept_loop();

  OnStream on_stream_;
  int backlog_;

  int listen_fd_{-1};
  int wake_fds_[2]{-1, -1};  // self-pipe: [read, write]
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::uint16_t port_{0};
  std::string unix_path_{};

  std::mutex accepted_mutex_;
  std::condition_variable accepted_cv_;
};

struct ServerConfig {
  FrontendConfig frontend{};
  /// listen(2) backlog.
  int backlog{128};
  /// Applied over frontend.eof_policy: servers default to removal (a
  /// disconnected peer is gone), where the bare front-end defaults to
  /// linger (in-process subscriber semantics).
  EofPolicy eof_policy{EofPolicy::kRemove};
};

/// A listening fair-ordering server over a FrameFrontend. One listening
/// socket per instance — call exactly one of listen_tcp / listen_unix,
/// once. The registry/service must outlive the server.
class FrameServer {
 public:
  FrameServer(core::ClientRegistry& registry,
              core::FairOrderingService& service, ServerConfig config = {});

  /// stop()s.
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the outcome from
  /// port()), listens, and starts the accept thread. False on bind /
  /// listen failure (errno preserved).
  [[nodiscard]] bool listen_tcp(std::uint16_t port);

  /// Binds a Unix-domain stream socket at `path` (unlinking a stale
  /// socket file first), listens, and starts the accept thread.
  [[nodiscard]] bool listen_unix(const std::string& path);

  /// Unified entry point: listen_unix when the endpoint names a Unix
  /// path, else listen_tcp.
  [[nodiscard]] bool listen(const Endpoint& endpoint) {
    return acceptor_.listen(endpoint);
  }

  /// Bound TCP port (valid after a successful listen_tcp).
  [[nodiscard]] std::uint16_t port() const { return acceptor_.port(); }
  /// Bound Unix socket path (valid after a successful listen_unix).
  [[nodiscard]] const std::string& unix_path() const {
    return acceptor_.unix_path();
  }

  /// Accepting connections (between a successful listen_* and stop()).
  [[nodiscard]] bool running() const { return acceptor_.running(); }

  /// Stops accepting (joins the accept thread, closes the listening
  /// socket, unlinks a Unix path) and stops the front-end (shuts every
  /// connection down, joins every reader). Idempotent.
  void stop();

  /// Blocks until at least `n` connections have been accepted over the
  /// server's lifetime, or `timeout_ms` elapsed. True if reached.
  [[nodiscard]] bool wait_for_accepted(std::uint64_t n, int timeout_ms) {
    return acceptor_.wait_for_accepted(n, timeout_ms);
  }

  /// Connections ever accepted.
  [[nodiscard]] std::uint64_t accepted_total() const {
    return acceptor_.accepted_total();
  }

  /// Broadcast-pump forwarders (reap + poll/flush + broadcast).
  std::size_t pump(TimePoint now) { return frontend_.pump(now); }
  std::size_t pump_flush(TimePoint now) { return frontend_.pump_flush(now); }

  [[nodiscard]] FrameFrontend& frontend() { return frontend_; }
  [[nodiscard]] const FrameFrontend& frontend() const { return frontend_; }

 private:
  FrameFrontend frontend_;
  StreamAcceptor acceptor_;
};

/// Bounded retry-with-backoff budget for client-side connects and the
/// join handshake. Attempt k (0-based) sleeps
///   min(base_delay · multiplier^k, max_delay)
/// before attempt k+1. `sleep` is injectable so tests drive the schedule
/// deterministically (record the delays instead of sleeping); null means
/// std::this_thread::sleep_for.
struct RetryPolicy {
  int attempts{500};
  std::chrono::microseconds base_delay{2000};
  double multiplier{1.0};
  std::chrono::microseconds max_delay{50000};
  std::function<void(std::chrono::microseconds)> sleep{};

  /// The delay between attempt `attempt` and the next one.
  [[nodiscard]] std::chrono::microseconds delay_for(int attempt) const;
  /// delay_for, through `sleep` (or the default sleeper).
  void wait(int attempt) const;
};

/// Dials `endpoint` once: a Unix-domain connect when it names a path,
/// else a TCP connect to 127.0.0.1:port (numeric loopback only — this is
/// a test/bench/replay client, not a resolver). The connected socket is
/// uniformly conditioned regardless of transport: TCP_NODELAY applied
/// here (a no-op on Unix sockets), O_NONBLOCK applied by make_fd_stream
/// (FdByteStream emulates the blocking contract over poll, so one fd
/// mode serves both read styles). nullptr on failure, errno preserved.
[[nodiscard]] std::shared_ptr<ByteStream> dial(const Endpoint& endpoint);

/// dial with a retry budget for TRANSIENT failures only — the
/// multi-process startup race: a server mid-bind (or draining an accept
/// burst) refuses with ECONNREFUSED/ECONNRESET/ETIMEDOUT (plus ENOENT
/// for a Unix socket file not yet on disk), and the client backs off
/// under `policy` instead of failing its first attempt. Non-transient
/// failures (EACCES, ENETUNREACH, bad fd limits) return nullptr
/// immediately with errno preserved — retrying cannot fix them.
[[nodiscard]] std::shared_ptr<ByteStream> dial(const Endpoint& endpoint,
                                               const RetryPolicy& policy);

// ── Deprecated dial spellings ───────────────────────────────────────────
// Thin wrappers over dial(); kept so existing call sites keep compiling.
// New code should construct an Endpoint and call dial directly.

/// Deprecated: dial(Endpoint{.tcp_port = port}).
[[nodiscard]] std::shared_ptr<ByteStream> connect_tcp(std::uint16_t port);

/// Deprecated: dial(Endpoint{.unix_path = path}).
[[nodiscard]] std::shared_ptr<ByteStream> connect_unix(
    const std::string& path);

/// Deprecated: dial(Endpoint{.tcp_port = port}, policy).
[[nodiscard]] std::shared_ptr<ByteStream> connect_tcp(
    std::uint16_t port, const RetryPolicy& policy);

/// Deprecated: dial(Endpoint{.unix_path = path}, policy).
[[nodiscard]] std::shared_ptr<ByteStream> connect_unix(
    const std::string& path, const RetryPolicy& policy);

/// Deprecated: dial(Endpoint{unix_path, tcp_port}, policy) — the Unix
/// path wins when nonempty, exactly as Endpoint specifies.
[[nodiscard]] std::shared_ptr<ByteStream> connect_retry(
    const std::string& unix_path, std::uint16_t tcp_port,
    const RetryPolicy& policy);

/// Deprecated back-compat overload: flat ~2 ms between `attempts` tries.
[[nodiscard]] std::shared_ptr<ByteStream> connect_retry(
    const std::string& unix_path, std::uint16_t tcp_port,
    int attempts = 500);

/// Outcome of the client-side join handshake (perform_handshake).
enum class HandshakeResult : std::uint8_t {
  /// HandshakeAck received: the session is live on the server.
  kAccepted,
  /// The retry budget ran out while the join was still ReconfigPending.
  kPending,
  /// EOF, transport error, or an undecodable frame mid-handshake.
  kStreamClosed,
};

/// Client side of the join flow (a server whose FrontendConfig has
/// accept_new_clients): writes `announcement`, reads the server's
/// response, and re-announces on ReconfigPending under `policy`'s backoff
/// schedule until a HandshakeAck lands. BatchEmission broadcasts that
/// interleave are skipped. Blocking; drive it from the thread that owns
/// the stream's read side.
[[nodiscard]] HandshakeResult perform_handshake(
    ByteStream& stream, const DistributionAnnouncement& announcement,
    const RetryPolicy& policy = {});

}  // namespace tommy::net
