// Deterministic transport-fault injection: FaultyByteStream wraps any
// ByteStream and mangles its delivery WITHOUT changing the bytes — short
// reads on an explicit chunk schedule, writes split into many small
// transport writes, EAGAIN-style zero-progress retry attempts, and hard
// cuts (mid-frame disconnects) at chosen byte offsets in either
// direction. The soak tests build their messy-network evidence on this
// decorator, so it is itself under test (tests/net/faulty_stream_test.cpp
// proves every schedule honours its plan byte-for-byte before anything
// else relies on it).
//
// All fault schedules are explicit data (FaultPlan) — no hidden RNG — so
// a failing soak run is reproducible from the plan alone.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/frontend.hpp"

namespace tommy::net {

/// A deterministic schedule of transport faults. Defaults are all "no
/// fault": a default FaultPlan makes FaultyByteStream a transparent
/// pass-through.
struct FaultPlan {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  /// Per-read caps on how many bytes one read_some may return, consumed
  /// in order; after the schedule is exhausted, `read_chunks_cycle`
  /// repeats it from the start, otherwise reads are uncapped. A cap of 0
  /// is meaningless (read_some must make progress) and is treated as 1.
  std::vector<std::size_t> read_chunks{};
  bool read_chunks_cycle{false};

  /// Write splitting: each write_all is forwarded as a run of inner
  /// write_all calls of at most these sizes (same consume/cycle rules).
  /// Splitting changes packetization, never content — the peer's decoder
  /// must not care.
  std::vector<std::size_t> write_chunks{};
  bool write_chunks_cycle{false};

  /// Hard cut after exactly this many bytes have been delivered to the
  /// reader: the read that would cross the boundary is truncated to it,
  /// and every later read reports the cut (error, or clean EOF when
  /// `cut_is_error` is false).
  std::size_t cut_read_after{kNever};

  /// Hard cut after exactly this many bytes have been written through:
  /// the crossing write forwards the allowed prefix — a torn frame on
  /// the peer's wire — then fails; every later write fails immediately.
  std::size_t cut_write_after{kNever};

  /// Whether a read-side cut surfaces as a transport error (nullopt) or
  /// a clean EOF (0). Write-side cuts always surface as write failure.
  bool cut_is_error{true};

  /// When a cut fires, also shutdown() the inner stream so the real peer
  /// observes the disconnect (mid-frame from its perspective).
  bool shutdown_inner_on_cut{true};

  /// Every Nth read first performs an EAGAIN-style no-progress attempt
  /// (recorded in stats, then retried internally) — the decorator stays
  /// within ByteStream's blocking contract while exercising the retry
  /// cadence a nonblocking transport would produce. 0 = never.
  std::size_t retry_every_reads{0};
};

/// Counters a test can assert the plan actually fired.
struct FaultStats {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  std::uint64_t inner_writes{0};
  std::uint64_t bytes_read{0};
  std::uint64_t bytes_written{0};
  std::uint64_t injected_retries{0};
  bool read_cut{false};
  bool write_cut{false};
};

/// ByteStream decorator applying a FaultPlan to an inner stream. Like
/// every ByteStream it supports one concurrent reader plus one concurrent
/// writer; read-side and write-side fault state are independent.
class FaultyByteStream final : public ByteStream {
 public:
  FaultyByteStream(std::shared_ptr<ByteStream> inner, FaultPlan plan);

  [[nodiscard]] std::optional<std::size_t> read_some(
      std::span<std::uint8_t> out) override;
  [[nodiscard]] bool write_all(std::span<const std::uint8_t> bytes) override;

  // Nonblocking contract: the same plan drives try_read/try_write, so the
  // event-driven front-end soaks under identical fault schedules. An
  // injected retry is counted and then the read PROCEEDS in the same call
  // — returning kWouldBlock here would strand an edge-triggered caller
  // (no new readiness edge ever arrives for bytes already buffered).
  // Cuts surface as kError (or kEof when !cut_is_error) exactly like the
  // blocking surface.
  [[nodiscard]] IoResult try_read(std::span<std::uint8_t> out) override;
  [[nodiscard]] IoResult try_write(
      std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] int poll_fd() const override;

  void close_write() override;
  void shutdown() override;

  [[nodiscard]] FaultStats stats() const;

 private:
  [[nodiscard]] std::size_t next_chunk(const std::vector<std::size_t>& chunks,
                                       bool cycle, std::size_t& cursor);
  void on_cut();

  std::shared_ptr<ByteStream> inner_;
  FaultPlan plan_;

  mutable std::mutex mutex_;  // guards cursors + stats (cheap; fault path)
  std::size_t read_cursor_{0};
  std::size_t write_cursor_{0};
  std::uint64_t delivered_{0};
  std::uint64_t written_{0};
  FaultStats stats_;
};

/// Convenience: wrap `inner` so every read returns at most `chunk` bytes
/// (the classic short-read torture).
[[nodiscard]] std::shared_ptr<ByteStream> make_chunked_stream(
    std::shared_ptr<ByteStream> inner, std::size_t chunk);

}  // namespace tommy::net
