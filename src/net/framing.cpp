#include "net/framing.hpp"

namespace tommy::net {

namespace {

constexpr std::size_t kLengthPrefixBytes = 4;

/// Compaction threshold: once this much dead prefix accumulates (and it
/// dominates the live bytes), slide the live suffix down so the buffer
/// does not grow without bound on a long-lived connection.
constexpr std::size_t kCompactThreshold = 4096;

}  // namespace

const char* to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kOversized:
      return "oversized frame";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<std::uint8_t> encode_frame(const WireMessage& message) {
  return encode_frame(std::span<const std::uint8_t>(encode(message)));
}

void FrameDecoder::append(std::span<const std::uint8_t> bytes) {
  if (error_ != FrameError::kNone) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (error_ != FrameError::kNone) return std::nullopt;
  if (buffered_bytes() < kLengthPrefixBytes) return std::nullopt;

  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer_[pos_ + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (length > max_frame_bytes_) {
    error_ = FrameError::kOversized;
    buffer_.clear();
    pos_ = 0;
    return std::nullopt;
  }
  if (buffered_bytes() < kLengthPrefixBytes + length) return std::nullopt;

  const auto begin = buffer_.begin()
                     + static_cast<std::ptrdiff_t>(pos_ + kLengthPrefixBytes);
  std::vector<std::uint8_t> payload(begin,
                                    begin + static_cast<std::ptrdiff_t>(length));
  pos_ += kLengthPrefixBytes + length;

  if (pos_ >= kCompactThreshold && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return payload;
}

}  // namespace tommy::net
