// Discrete-event simulation engine. All network and clock behaviour in the
// repo runs on this: events are closures scheduled at absolute simulated
// times and executed in time order (FIFO among equal times, so runs are
// fully deterministic given the RNG seeds).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace tommy::net {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Starts at the epoch (0).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t`; `t` must not be in the past.
  void schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after a non-negative delay from now().
  void schedule_after(Duration d, std::function<void()> fn);

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(TimePoint t);

  /// Executes exactly one event if available; returns false if none.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t processed() const { return processed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t sequence;  // FIFO tie-break for equal times
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_{TimePoint::epoch()};
  std::uint64_t next_sequence_{0};
  std::size_t processed_{0};
};

}  // namespace tommy::net
