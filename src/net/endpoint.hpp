// The one address type every listen/dial surface in the repo shares: a
// Unix-domain socket path (preferred when nonempty) or a loopback TCP
// port. Historically each layer grew its own pair of *_unix/*_tcp entry
// points plus its own address struct (dist::NodeAddress); unifying on
// Endpoint means a topology file, a CLI flag, and a test helper all pass
// the same value straight through to net::listen/net::dial.
//
//   Endpoint{.unix_path = "/tmp/x.sock"}  →  Unix-domain stream socket
//   Endpoint{.tcp_port = 9000}            →  127.0.0.1:9000
//
// When both fields are set the Unix path wins (matching the long-standing
// connect_retry convention). An empty() endpoint is "not configured".
#pragma once

#include <cstdint>
#include <string>

namespace tommy::net {

struct Endpoint {
  std::string unix_path{};
  std::uint16_t tcp_port{0};

  [[nodiscard]] bool empty() const {
    return unix_path.empty() && tcp_port == 0;
  }

  /// True when this endpoint names a Unix-domain socket (which takes
  /// precedence over tcp_port when both are set).
  [[nodiscard]] bool is_unix() const { return !unix_path.empty(); }
};

}  // namespace tommy::net
