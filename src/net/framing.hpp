// Length-prefixed framing over a byte stream: every protocol message
// travels as [u32 length][payload], where the payload is one encoded
// WireMessage (net/messages.hpp). The decoder is incremental — it accepts
// bytes in whatever chunks the transport delivers (partial frames,
// several frames coalesced into one read, single-byte trickles) and
// yields complete payloads as they materialize, so a reader thread can
// hand it raw recv() buffers directly.
//
// Malformedness is typed, not crashy: a length prefix above the
// configured cap poisons the decoder (`error()`), because after a bogus
// length there is no way to resynchronize on a byte stream. Payloads
// that frame correctly but fail WireMessage decode are the next layer's
// problem (net/frontend.hpp reports them as kMalformedMessage).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/messages.hpp"

namespace tommy::net {

/// Default cap on one frame's payload size. Generous — the largest
/// legitimate frame is a histogram DistributionAnnouncement, well under a
/// megabyte — while still bounding what a broken or hostile peer can make
/// the decoder buffer.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameError : std::uint8_t {
  kNone,
  /// Length prefix exceeded the decoder's cap. Unrecoverable on a byte
  /// stream (no resync point); the decoder stays poisoned.
  kOversized,
};

[[nodiscard]] const char* to_string(FrameError error);

/// Wraps `payload` in a length-prefixed frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const std::uint8_t> payload);

/// Encodes `message` and wraps it in one frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const WireMessage& message);

/// Incremental frame decoder; see the file header. Typical use:
///
///   decoder.append(chunk);
///   while (auto payload = decoder.next()) handle(*payload);
///   if (decoder.error() != FrameError::kNone) die(decoder.error());
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `bytes` (any chunking). No-op once poisoned.
  void append(std::span<const std::uint8_t> bytes);

  /// Returns the next complete frame payload, or nullopt when more bytes
  /// are needed — or when the decoder hit an error (check `error()`).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] FrameError error() const { return error_; }

  /// Bytes buffered but not yet returned (a partial trailing frame, or
  /// frames not yet pulled via next()).
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - pos_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_{0};  // consumed prefix of buffer_
  FrameError error_{FrameError::kNone};
};

}  // namespace tommy::net
