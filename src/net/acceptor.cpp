#include "net/acceptor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <variant>

#include "common/check.hpp"

namespace tommy::net {

namespace {

/// Retries close on EINTR (Linux semantics: the fd is gone either way,
/// but keep the intent explicit).
void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void set_nodelay(int fd) {
  int one = 1;
  // Best-effort: fails (harmlessly) on non-TCP sockets.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Connect errnos a retry can actually outwait: the server racing its
/// bind/listen (ECONNREFUSED, and ENOENT for a Unix socket file not yet
/// on disk), a backlog overflow dropping the attempt (ECONNRESET /
/// ETIMEDOUT / EAGAIN), or a signal. Anything else — EACCES, address
/// errors, fd exhaustion on OUR side — will fail identically on every
/// attempt and surfaces immediately.
bool connect_errno_transient(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == ECONNRESET
         || err == ETIMEDOUT || err == EAGAIN || err == EINTR
         || err == ECONNABORTED;
}

template <typename ConnectOnce>
std::shared_ptr<ByteStream> connect_with_retry(ConnectOnce&& connect_once,
                                               const RetryPolicy& policy) {
  for (int attempt = 0;; ++attempt) {
    auto stream = connect_once();
    if (stream != nullptr) return stream;
    if (!connect_errno_transient(errno) || attempt + 1 >= policy.attempts) {
      return nullptr;
    }
    const int saved = errno;
    policy.wait(attempt);
    errno = saved;
  }
}

}  // namespace

// ── StreamAcceptor ──────────────────────────────────────────────────────

StreamAcceptor::StreamAcceptor(OnStream on_stream, int backlog)
    : on_stream_(std::move(on_stream)), backlog_(backlog) {
  TOMMY_EXPECTS(on_stream_ != nullptr);
}

StreamAcceptor::~StreamAcceptor() { stop(); }

bool StreamAcceptor::listen_tcp(std::uint16_t port) {
  TOMMY_EXPECTS(listen_fd_ < 0);  // one listen_* per acceptor, once
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0
      || ::listen(fd, backlog_) != 0) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return false;
  }
  // Ephemeral port: read back what the kernel assigned.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return start(fd);
}

bool StreamAcceptor::listen_unix(const std::string& path) {
  TOMMY_EXPECTS(listen_fd_ < 0);
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  (void)::unlink(path.c_str());  // stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0
      || ::listen(fd, backlog_) != 0) {
    const int saved = errno;
    close_fd(fd);
    errno = saved;
    return false;
  }
  unix_path_ = path;
  return start(fd);
}

bool StreamAcceptor::start(int listen_fd) {
  // Nonblocking listen fd: a connection poll() reported can be gone by
  // the time accept() runs (peer RST in the backlog); a blocking accept
  // would then wedge the loop past stop()'s wake byte. Accepted fds do
  // NOT inherit the flag (readers rely on blocking reads).
  const int flags = ::fcntl(listen_fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const int saved = errno;
    close_fd(listen_fd);
    if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
    errno = saved;
    return false;
  }
  if (::pipe(wake_fds_) != 0) {
    const int saved = errno;
    close_fd(listen_fd);
    if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
    errno = saved;
    return false;
  }
  listen_fd_ = listen_fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StreamAcceptor::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, /*timeout=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll on a listening socket failing is unrecoverable
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays in the backlog, so
        // level-triggered poll() would re-fire instantly — back off
        // briefly to let reader teardown free descriptors instead of
        // spinning a core.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // A connection that died in the backlog, a signal, a nonblocking
      // no-op: none of these should kill the server.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN
          || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    set_nodelay(fd);
    on_stream_(make_fd_stream(fd));
    {
      std::lock_guard<std::mutex> lock(accepted_mutex_);
      accepted_.fetch_add(1, std::memory_order_release);
    }
    accepted_cv_.notify_all();
  }
  running_.store(false, std::memory_order_release);
}

void StreamAcceptor::stop() {
  if (accept_thread_.joinable()) {
    running_.store(false, std::memory_order_release);
    const std::uint8_t byte = 0;
    // A full pipe still wakes the poller (POLLIN already set); ignore.
    (void)!::write(wake_fds_[1], &byte, 1);
    accept_thread_.join();
  }
  close_fd(listen_fd_);
  listen_fd_ = -1;
  close_fd(wake_fds_[0]);
  close_fd(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  if (!unix_path_.empty()) (void)::unlink(unix_path_.c_str());
}

bool StreamAcceptor::wait_for_accepted(std::uint64_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(accepted_mutex_);
  return accepted_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [this, n] { return accepted_.load(std::memory_order_acquire) >= n; });
}

// ── FrameServer ─────────────────────────────────────────────────────────

FrameServer::FrameServer(core::ClientRegistry& registry,
                         core::FairOrderingService& service,
                         ServerConfig config)
    : frontend_(registry, service,
                [&config] {
                  FrontendConfig frontend = config.frontend;
                  frontend.eof_policy = config.eof_policy;
                  return frontend;
                }()),
      acceptor_(
          [this](std::shared_ptr<ByteStream> stream) {
            frontend_.add_connection(std::move(stream));
          },
          config.backlog) {}

FrameServer::~FrameServer() { stop(); }

bool FrameServer::listen_tcp(std::uint16_t port) {
  return acceptor_.listen_tcp(port);
}

bool FrameServer::listen_unix(const std::string& path) {
  return acceptor_.listen_unix(path);
}

void FrameServer::stop() {
  acceptor_.stop();
  // Connections last: a reader mid-dispatch finishes its current frame,
  // then sees its shutdown stream and exits; stop() joins them all.
  frontend_.stop();
}

// ── Client-side dial ────────────────────────────────────────────────────

std::shared_ptr<ByteStream> dial(const Endpoint& endpoint) {
  int fd;
  if (endpoint.is_unix()) {
    sockaddr_un addr{};
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      errno = ENAMETOOLONG;
      return nullptr;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint.unix_path.c_str(),
                endpoint.unix_path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int saved = errno;
      close_fd(fd);
      errno = saved;
      return nullptr;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoint.tcp_port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int saved = errno;
      close_fd(fd);
      errno = saved;
      return nullptr;
    }
  }
  // Uniform socket conditioning for BOTH transports (historically only
  // the TCP dial and the accept path disabled Nagle): a no-op on Unix
  // sockets, latency-critical on TCP.
  set_nodelay(fd);
  return make_fd_stream(fd);
}

std::shared_ptr<ByteStream> dial(const Endpoint& endpoint,
                                 const RetryPolicy& policy) {
  return connect_with_retry([&endpoint] { return dial(endpoint); }, policy);
}

std::shared_ptr<ByteStream> connect_tcp(std::uint16_t port) {
  return dial(Endpoint{.unix_path = {}, .tcp_port = port});
}

std::shared_ptr<ByteStream> connect_unix(const std::string& path) {
  return dial(Endpoint{.unix_path = path, .tcp_port = 0});
}

std::shared_ptr<ByteStream> connect_tcp(std::uint16_t port,
                                        const RetryPolicy& policy) {
  return dial(Endpoint{.unix_path = {}, .tcp_port = port}, policy);
}

std::shared_ptr<ByteStream> connect_unix(const std::string& path,
                                         const RetryPolicy& policy) {
  return dial(Endpoint{.unix_path = path, .tcp_port = 0}, policy);
}

std::chrono::microseconds RetryPolicy::delay_for(int attempt) const {
  double scaled = static_cast<double>(base_delay.count());
  for (int i = 0; i < attempt; ++i) {
    scaled *= multiplier;
    if (scaled >= static_cast<double>(max_delay.count())) {
      return max_delay;
    }
  }
  const auto micros = static_cast<std::int64_t>(scaled);
  return std::min(std::chrono::microseconds(micros), max_delay);
}

void RetryPolicy::wait(int attempt) const {
  const auto delay = delay_for(attempt);
  if (sleep) {
    sleep(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

std::shared_ptr<ByteStream> connect_retry(const std::string& unix_path,
                                          std::uint16_t tcp_port,
                                          const RetryPolicy& policy) {
  return dial(Endpoint{.unix_path = unix_path, .tcp_port = tcp_port},
              policy);
}

std::shared_ptr<ByteStream> connect_retry(const std::string& unix_path,
                                          std::uint16_t tcp_port,
                                          int attempts) {
  RetryPolicy policy;
  policy.attempts = attempts;
  return connect_retry(unix_path, tcp_port, policy);
}

HandshakeResult perform_handshake(ByteStream& stream,
                                  const DistributionAnnouncement& announcement,
                                  const RetryPolicy& policy) {
  const auto frame = encode_frame(WireMessage(announcement));
  FrameDecoder decoder(kDefaultMaxFrameBytes);
  std::vector<std::uint8_t> buffer(4096);
  if (!stream.write_all(frame)) return HandshakeResult::kStreamClosed;
  for (int attempt = 0;; ++attempt) {
    // Read until the server answers this announce (skipping broadcast
    // BatchEmission frames that interleave).
    for (;;) {
      if (auto payload = decoder.next()) {
        auto message = decode(*payload);
        if (!message) return HandshakeResult::kStreamClosed;
        if (std::holds_alternative<HandshakeAck>(*message)) {
          return HandshakeResult::kAccepted;
        }
        if (std::holds_alternative<ReconfigPending>(*message)) break;
        continue;  // a broadcast; keep reading
      }
      if (decoder.error() != FrameError::kNone) {
        return HandshakeResult::kStreamClosed;
      }
      const auto n = stream.read_some(buffer);
      if (!n || *n == 0) return HandshakeResult::kStreamClosed;
      decoder.append({buffer.data(), *n});
    }
    // ReconfigPending: back off, then re-announce.
    if (attempt + 1 >= policy.attempts) return HandshakeResult::kPending;
    policy.wait(attempt);
    if (!stream.write_all(frame)) return HandshakeResult::kStreamClosed;
  }
}

}  // namespace tommy::net
