// Byte-level wire helpers: little-endian primitive encoding with bounds
// checking on the read side. Kept deliberately simple (no varints, no
// schema evolution) — the format is internal to one deployment.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace tommy::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void raw(const std::vector<std::uint8_t>& data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > bytes_.size()) return std::nullopt;
    return bytes_[pos_++];
  }

  [[nodiscard]] std::optional<std::uint32_t> u32() {
    if (pos_ + 4 > bytes_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::optional<std::uint64_t> u64() {
    if (pos_ + 8 > bytes_.size()) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::optional<double> f64() {
    const auto bits = u64();
    if (!bits) return std::nullopt;
    double v;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> raw(
      std::size_t count) {
    if (pos_ + count > bytes_.size()) return std::nullopt;
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_{0};
};

}  // namespace tommy::net
