#include "net/messages.hpp"

#include "common/check.hpp"
#include "net/wire.hpp"

namespace tommy::net {

namespace {

constexpr std::uint8_t kTagDistribution = 1;
constexpr std::uint8_t kTagTimestamped = 2;
constexpr std::uint8_t kTagHeartbeat = 3;
constexpr std::uint8_t kTagBatch = 4;
constexpr std::uint8_t kTagReconfigPending = 5;
constexpr std::uint8_t kTagHandshakeAck = 6;
constexpr std::uint8_t kTagSafeTimeAnnounce = 7;
constexpr std::uint8_t kTagOrderedBatch = 8;
constexpr std::uint8_t kTagMergeWatermark = 9;
constexpr std::uint8_t kTagReplayTruncated = 10;

}  // namespace

std::vector<std::uint8_t> encode(const WireMessage& message) {
  ByteWriter w;
  if (const auto* d = std::get_if<DistributionAnnouncement>(&message)) {
    w.u8(kTagDistribution);
    w.u32(d->client.value());
    const auto payload = d->summary.serialize();
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.raw(payload);
  } else if (const auto* m = std::get_if<TimestampedMessage>(&message)) {
    w.u8(kTagTimestamped);
    w.u32(m->client.value());
    w.u64(m->id.value());
    w.f64(m->local_stamp.seconds());
  } else if (const auto* h = std::get_if<Heartbeat>(&message)) {
    w.u8(kTagHeartbeat);
    w.u32(h->client.value());
    w.f64(h->local_stamp.seconds());
  } else if (const auto* b = std::get_if<BatchEmission>(&message)) {
    w.u8(kTagBatch);
    w.u64(b->rank);
    w.u32(static_cast<std::uint32_t>(b->messages.size()));
    for (MessageId id : b->messages) w.u64(id.value());
  } else if (const auto* p = std::get_if<ReconfigPending>(&message)) {
    w.u8(kTagReconfigPending);
    w.u64(p->generation);
  } else if (const auto* a = std::get_if<HandshakeAck>(&message)) {
    w.u8(kTagHandshakeAck);
    w.u64(a->generation);
  } else if (const auto* s = std::get_if<SafeTimeAnnounce>(&message)) {
    w.u8(kTagSafeTimeAnnounce);
    w.u32(s->node);
    w.u64(s->epoch);
    w.f64(s->next_safe_time.seconds());
  } else if (const auto* o = std::get_if<OrderedBatch>(&message)) {
    w.u8(kTagOrderedBatch);
    w.u32(o->node);
    w.u64(o->epoch);
    w.u64(o->rank);
    w.f64(o->safe_time.seconds());
    w.f64(o->emitted_at.seconds());
    w.u32(static_cast<std::uint32_t>(o->messages.size()));
    for (const OrderedBatch::Entry& e : o->messages) {
      w.u32(e.client.value());
      w.u64(e.id.value());
      w.f64(e.stamp.seconds());
      w.f64(e.arrival.seconds());
    }
  } else if (const auto* wm = std::get_if<MergeWatermark>(&message)) {
    w.u8(kTagMergeWatermark);
    w.u64(wm->released);
    w.u32(wm->node);
    w.u64(wm->rank);
    w.f64(wm->safe_time.seconds());
  } else if (const auto* t = std::get_if<ReplayTruncated>(&message)) {
    w.u8(kTagReplayTruncated);
    w.u32(t->node);
    w.u64(t->epoch);
    w.u64(t->truncated);
  } else {
    TOMMY_ASSERT(false);
  }
  return w.take();
}

std::optional<WireMessage> decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const auto tag = r.u8();
  if (!tag) return std::nullopt;

  switch (*tag) {
    case kTagDistribution: {
      const auto client = r.u32();
      const auto len = r.u32();
      if (!client || !len) return std::nullopt;
      const auto payload = r.raw(*len);
      if (!payload || !r.exhausted()) return std::nullopt;
      auto summary = stats::DistributionSummary::deserialize(*payload);
      if (!summary) return std::nullopt;
      return DistributionAnnouncement{ClientId(*client), std::move(*summary)};
    }
    case kTagTimestamped: {
      const auto client = r.u32();
      const auto id = r.u64();
      const auto stamp = r.f64();
      if (!client || !id || !stamp || !r.exhausted()) return std::nullopt;
      return TimestampedMessage{ClientId(*client), MessageId(*id),
                                TimePoint(*stamp)};
    }
    case kTagHeartbeat: {
      const auto client = r.u32();
      const auto stamp = r.f64();
      if (!client || !stamp || !r.exhausted()) return std::nullopt;
      return Heartbeat{ClientId(*client), TimePoint(*stamp)};
    }
    case kTagBatch: {
      const auto rank = r.u64();
      const auto count = r.u32();
      if (!rank.has_value() || !count) return std::nullopt;
      BatchEmission batch;
      batch.rank = *rank;
      batch.messages.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto id = r.u64();
        if (!id) return std::nullopt;
        batch.messages.emplace_back(*id);
      }
      if (!r.exhausted()) return std::nullopt;
      return batch;
    }
    case kTagReconfigPending: {
      const auto generation = r.u64();
      if (!generation || !r.exhausted()) return std::nullopt;
      return ReconfigPending{*generation};
    }
    case kTagHandshakeAck: {
      const auto generation = r.u64();
      if (!generation || !r.exhausted()) return std::nullopt;
      return HandshakeAck{*generation};
    }
    case kTagSafeTimeAnnounce: {
      const auto node = r.u32();
      const auto epoch = r.u64();
      const auto next_safe = r.f64();
      if (!node || !epoch || !next_safe || !r.exhausted()) {
        return std::nullopt;
      }
      return SafeTimeAnnounce{*node, *epoch, TimePoint(*next_safe)};
    }
    case kTagOrderedBatch: {
      const auto node = r.u32();
      const auto epoch = r.u64();
      const auto rank = r.u64();
      const auto safe_time = r.f64();
      const auto emitted_at = r.f64();
      const auto count = r.u32();
      if (!node || !epoch || !rank.has_value() || !safe_time || !emitted_at
          || !count) {
        return std::nullopt;
      }
      OrderedBatch batch;
      batch.node = *node;
      batch.epoch = *epoch;
      batch.rank = *rank;
      batch.safe_time = TimePoint(*safe_time);
      batch.emitted_at = TimePoint(*emitted_at);
      batch.messages.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto client = r.u32();
        const auto id = r.u64();
        const auto stamp = r.f64();
        const auto arrival = r.f64();
        if (!client || !id || !stamp || !arrival) return std::nullopt;
        batch.messages.push_back(OrderedBatch::Entry{
            ClientId(*client), MessageId(*id), TimePoint(*stamp),
            TimePoint(*arrival)});
      }
      if (!r.exhausted()) return std::nullopt;
      return batch;
    }
    case kTagMergeWatermark: {
      const auto released = r.u64();
      const auto node = r.u32();
      const auto rank = r.u64();
      const auto safe_time = r.f64();
      if (!released.has_value() || !node.has_value() || !rank.has_value()
          || !safe_time || !r.exhausted()) {
        return std::nullopt;
      }
      return MergeWatermark{*released, *node, *rank, TimePoint(*safe_time)};
    }
    case kTagReplayTruncated: {
      const auto node = r.u32();
      const auto epoch = r.u64();
      const auto truncated = r.u64();
      if (!node.has_value() || !epoch || !truncated.has_value()
          || !r.exhausted()) {
        return std::nullopt;
      }
      return ReplayTruncated{*node, *epoch, *truncated};
    }
    default:
      return std::nullopt;
  }
}

}  // namespace tommy::net
