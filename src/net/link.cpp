#include "net/link.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::net {

DelayModel::DelayModel(Duration base, stats::DistributionPtr jitter, Rng rng)
    : base_(base), jitter_(std::move(jitter)), rng_(rng) {
  TOMMY_EXPECTS(base >= Duration::zero());
}

DelayModel DelayModel::fixed(Duration base) {
  return DelayModel(base, nullptr, Rng(0));
}

Duration DelayModel::sample() {
  if (jitter_ == nullptr) return base_;
  const double extra = std::max(0.0, jitter_->sample(rng_));
  return base_ + Duration(extra);
}

Link::Link(Simulation& sim, DelayModel delay)
    : sim_(sim), delay_(std::move(delay)) {}

void Link::send(std::function<void()> deliver) {
  ++sent_;
  sim_.schedule_after(delay_.sample(), std::move(deliver));
}

OrderedChannel::OrderedChannel(Simulation& sim, DelayModel delay)
    : sim_(sim), delay_(std::move(delay)) {}

void OrderedChannel::send(std::function<void()> deliver) {
  ++sent_;
  const TimePoint unordered = sim_.now() + delay_.sample();
  const TimePoint when = std::max(unordered, last_delivery_);
  last_delivery_ = when;
  sim_.schedule_at(when, std::move(deliver));
}

}  // namespace tommy::net
