// The wire front-end: turns the byte streams of Figure 1's deployment —
// clients sending distribution announcements, timestamped messages and
// heartbeats over the network — into FairOrderingService session calls,
// and streams emitted batches back as frames. This is the layer that
// makes the ordering core externally drivable; everything below it
// (framing, messages) is bytes, everything above it (service, shards,
// engine) is in-process calls.
//
// Layering (docs/architecture.md "Wire front-end"):
//
//   ByteStream ──► reader thread ──► FrameDecoder ──► Connection
//        ▲                                               │ session
//        │            encoded BatchEmission frames       ▼
//   peer ◀──────────── pump(now) broadcast ◀──── FairOrderingService
//
//  * `ByteStream` abstracts the byte source/sink: an in-process pipe for
//    tests and simulations (deterministic, no sockets) and a POSIX
//    fd-backed implementation for socketpairs/TCP (the example).
//  * `Connection` is the per-peer protocol state machine, thread-free and
//    testable in isolation: it runs the handshake (first frame must be a
//    DistributionAnnouncement; the client must be expected, the registry
//    is updated or verified) and then feeds decoded TimestampedMessage /
//    Heartbeat frames into the service session, batching runs of submits
//    through the relaxed batch path. Every protocol violation is a typed
//    WireError, never a crash.
//  * `FrameFrontend` owns one reader thread per connection (the thread is
//    the session's single SPSC producer in threaded mode — exactly the
//    shape the ROADMAP called for) plus the outbound writer path:
//    `pump(now)` polls the service and broadcasts each emitted batch as
//    one BatchEmission frame to every live connection.
//
// Arrival stamping: wire messages carry the client's local stamp but not
// the sequencer-clock arrival (`now`) the online machinery needs; the
// front-end stamps each inbound message via `FrontendConfig::
// arrival_clock`. Production uses the default (monotonic wall clock);
// tests and simulations install a deterministic function of the message
// so a frame-driven run is bit-identical to a direct-drive run.
//
// Concurrency: with a threaded service, readers are lock-free producers
// onto their session rings and need no front-end serialization. With a
// sequential service, the front-end serializes all ingest and polls
// behind one mutex (the readers still take the blocking reads off the
// caller's thread; they just apply one at a time).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/service.hpp"
#include "net/framing.hpp"
#include "net/messages.hpp"

namespace tommy::net {

class EventLoop;

/// Outcome of one nonblocking I/O attempt (try_read / try_write).
enum class IoStatus : std::uint8_t {
  /// Progress was made; IoResult::bytes says how much.
  kOk,
  /// No progress possible right now — retry when the fd signals
  /// readiness again (edge-triggered pollers re-arm on this).
  kWouldBlock,
  /// Clean EOF: the peer closed its write side (reads only).
  kEof,
  /// Transport error; the stream is dead in this direction.
  kError,
};

struct IoResult {
  IoStatus status{IoStatus::kError};
  std::size_t bytes{0};
};

/// Byte source/sink a connection reads from and writes to.
/// Implementations must allow one concurrent reader plus one concurrent
/// writer (full-duplex); they need not support multiple readers.
///
/// Two contracts share this interface:
///  * the blocking contract (read_some / write_all) — what the
///    thread-per-connection reader model and all client-side helpers
///    drive;
///  * the nonblocking readiness contract (try_read / try_write +
///    poll_fd) — what the event-driven front-end drives. try_* never
///    block: they do at most one kernel I/O and report kWouldBlock when
///    the fd has nothing to give/take. poll_fd() exposes the fd a
///    Poller can wait on; streams with no fd (in-process pipes) return
///    -1 and are not event-loop capable.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Blocks until at least one byte is available, then reads up to
  /// out.size() of them. Returns the count (> 0), 0 on clean EOF (peer
  /// closed its write side), or nullopt on a transport error.
  [[nodiscard]] virtual std::optional<std::size_t> read_some(
      std::span<std::uint8_t> out) = 0;

  /// Writes all of `bytes` (blocking). False on a transport error or a
  /// peer that went away.
  [[nodiscard]] virtual bool write_all(std::span<const std::uint8_t> bytes)
      = 0;

  /// Nonblocking read: at most one kernel read. kOk means bytes > 0 were
  /// placed in `out`; kWouldBlock means nothing available now. Streams
  /// that only implement the blocking contract return kError (they must
  /// not be handed to an event loop).
  [[nodiscard]] virtual IoResult try_read(std::span<std::uint8_t> out) {
    (void)out;
    return IoResult{IoStatus::kError, 0};
  }

  /// Nonblocking write: at most one kernel write; partial writes are
  /// normal (bytes says how much left the buffer). kWouldBlock means the
  /// socket send buffer is full — retry on the next writability edge.
  [[nodiscard]] virtual IoResult try_write(
      std::span<const std::uint8_t> bytes) {
    (void)bytes;
    return IoResult{IoStatus::kError, 0};
  }

  /// The pollable fd behind this stream, or -1 when there is none (the
  /// stream then only supports the blocking contract).
  [[nodiscard]] virtual int poll_fd() const { return -1; }

  /// Half-close: ends this endpoint's outbound direction. The peer's
  /// reads drain what was written, then see EOF; this endpoint can still
  /// read.
  virtual void close_write() = 0;

  /// Full shutdown: unblocks any pending read/write on BOTH endpoints
  /// (pending and future reads drain buffered bytes, then EOF; writes
  /// fail). Used to tear a connection down from another thread.
  virtual void shutdown() = 0;
};

/// In-process full-duplex pipe (unbounded buffers, condition-variable
/// blocking): two ByteStream endpoints for tests and simulations. Bytes
/// written on one end come out of the other exactly as written, in
/// whatever chunk sizes the reader asks for — so a test controls
/// fragmentation and coalescing precisely by how it writes.
[[nodiscard]] std::pair<std::shared_ptr<ByteStream>,
                        std::shared_ptr<ByteStream>>
make_pipe_pair();

/// POSIX fd-backed pair over socketpair(AF_UNIX, SOCK_STREAM) — the real
/// kernel transport for the end-to-end example (and any future TCP
/// acceptor: FdByteStream works on any stream socket fd).
[[nodiscard]] std::pair<std::shared_ptr<ByteStream>,
                        std::shared_ptr<ByteStream>>
make_socketpair_streams();

/// Takes ownership of an open stream-socket fd and exposes it as a
/// ByteStream.
[[nodiscard]] std::shared_ptr<ByteStream> make_fd_stream(int fd);

/// Typed per-connection protocol errors. Once a connection fails, further
/// bytes are ignored (a byte stream has no resync point).
enum class WireError : std::uint8_t {
  kNone,
  /// Framing: length prefix exceeded FrontendConfig::max_frame_bytes.
  kOversizedFrame,
  /// A complete frame's payload failed WireMessage decode.
  kMalformedMessage,
  /// First frame was not a DistributionAnnouncement.
  kHandshakeExpected,
  /// Announced client is not in the service's expected set.
  kUnknownClient,
  /// A frame named a different client than the handshake bound.
  kClientMismatch,
  /// Historical: an announcement that would change a threaded service's
  /// primed registry used to poison the connection. Live reconfiguration
  /// made that path an epoch swap instead, so this is no longer produced
  /// by the handshake; it remains for callers that stored it.
  kRegistryFrozen,
  /// Client sent a sequencer→client frame (BatchEmission, ReconfigPending
  /// or HandshakeAck).
  kBatchFromClient,
  /// The underlying ByteStream reported a transport error.
  kStreamError,
};

[[nodiscard]] const char* to_string(WireError error);

/// What a clean read-side EOF means for a connection's lifetime.
enum class EofPolicy : std::uint8_t {
  /// Subscriber semantics (the historical default): a peer that
  /// half-closes its write side stays registered and keeps receiving
  /// broadcast frames until a write to it fails or it is removed
  /// explicitly. In-process demos and the broadcast tests rely on this.
  kLinger,
  /// Server semantics: a peer that stops sending is gone — the
  /// connection becomes reapable as soon as its reader exits, and the
  /// next reap point (pump, add_connection, or an explicit reap()) tears
  /// the stream down and recycles the id. FrameServer defaults to this.
  kRemove,
};

/// How a FrameFrontend drives its adopted streams.
enum class TransportMode : std::uint8_t {
  /// The historical model: one blocking reader thread per connection.
  /// Compatibility mode — works on any ByteStream (including in-process
  /// pipes) and stays the default.
  kThreadPerConnection,
  /// Event-driven model: M poller threads multiplex every connection
  /// through an epoll-backed EventLoop, driving the nonblocking
  /// readiness contract (try_read / try_write + poll_fd). Streams
  /// handed to this mode must expose a pollable fd.
  kEventLoop,
};

/// What the event-driven front-end does to a slow subscriber whose
/// bounded egress queue overflows.
enum class EgressPolicy : std::uint8_t {
  /// Tear the connection down (write_ok drops; the next reap removes
  /// it). A subscriber that cannot keep up is disconnected rather than
  /// silently missing frames.
  kDisconnect,
  /// Drop the overflowing frame, count it (ConnectionStats::
  /// frames_dropped), and keep the connection. For telemetry-grade
  /// subscribers where staleness beats disconnection.
  kDrop,
};

struct FrontendConfig {
  /// Stamps each inbound message with its sequencer-clock arrival (the
  /// `now` of the session call). Default (null): monotonic wall clock,
  /// seconds since process start. Tests/simulations install a
  /// deterministic function of the message (e.g. stamp + modeled delay)
  /// so frame-driven runs replay bit-identically.
  std::function<TimePoint(const WireMessage&)> arrival_clock{};
  /// Frame payload cap (oversized frames poison the connection).
  std::size_t max_frame_bytes{kDefaultMaxFrameBytes};
  /// Reader-thread read chunk size.
  std::size_t read_chunk_bytes{4096};
  /// Submissions buffered per connection before a forced apply (runs of
  /// decoded submits apply through the relaxed batch path in chunks of at
  /// most this).
  std::size_t submit_batch_limit{512};
  /// Connection lifetime after a clean read-side EOF (see EofPolicy).
  /// Failed connections (protocol or transport errors) are always
  /// reapable regardless of this policy, as are connections whose
  /// broadcast writes failed.
  EofPolicy eof_policy{EofPolicy::kLinger};
  /// Handshake announcements from clients the service does not yet expect
  /// are queued as joins (expect_client + request_reconfig) and answered
  /// with a ReconfigPending frame instead of poisoning the connection
  /// with kUnknownClient; the peer retries its announce until the epoch
  /// installs and a HandshakeAck arrives. Off by default — legacy streams
  /// keep the strict expected-set handshake.
  bool accept_new_clients{false};
  /// A clean read-side EOF on a handshaken connection retires the client
  /// from its shard's completeness gate (FairOrderingService::
  /// close_session): the gate stops waiting for a departed peer instead
  /// of stalling until the silence timeout. Off by default — lingering
  /// subscribers and reconnecting soak clients must keep gating.
  bool retire_on_eof{false};
  /// Reader model (see TransportMode). kEventLoop requires fd-backed
  /// streams.
  TransportMode transport{TransportMode::kThreadPerConnection};
  /// Poller threads the kEventLoop transport runs (connections are
  /// sharded across them round-robin; each connection's callbacks stay
  /// on one thread). Ignored by kThreadPerConnection.
  std::size_t poller_threads{2};
  /// Bound on a connection's queued outbound bytes (kEventLoop only):
  /// broadcasts that cannot be written immediately queue up to this many
  /// bytes before egress_policy applies.
  std::size_t egress_buffer_bytes{256 * 1024};
  /// What happens when egress_buffer_bytes is exceeded (kEventLoop only).
  EgressPolicy egress_policy{EgressPolicy::kDisconnect};
};

/// Options for the unified FrameFrontend::pump(now, options) entry point
/// (the five historical pump*/pump*_into overloads forward here).
struct PumpOptions {
  /// Where emissions go. Null: broadcast — every emitted batch is
  /// encoded once and written to every live connection (dead peers are
  /// reaped first). Non-null: the caller consumes emissions in-process;
  /// no broadcast, no reap.
  core::EmissionSink* sink{nullptr};
  /// True runs the service's flush (shutdown drain, gates ignored)
  /// instead of poll.
  bool flush{false};
  /// When non-null, receives the service's next_safe_time AFTER the
  /// drain, read under the SAME sequential-mode ingest lock acquisition
  /// as the poll itself (what a shard node's SafeTimeAnnounce must
  /// carry).
  TimePoint* next_safe_after{nullptr};
};

/// Point-in-time counters for one connection (connection_stats()).
/// Counter updates are relaxed atomics: each value is exact once the
/// connection's reader has exited, monotonic while it runs.
struct ConnectionStats {
  std::uint64_t frames_in{0};
  std::uint64_t submits_in{0};
  std::uint64_t heartbeats_in{0};
  /// Outbound BatchEmission frames this connection was actually sent.
  std::uint64_t frames_out{0};
  /// Outbound frames dropped by EgressPolicy::kDrop (kEventLoop only).
  std::uint64_t frames_dropped{0};
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};
  /// Seconds (monotonic, process origin) of the last successful read or
  /// broadcast write; 0 until the first I/O.
  double last_activity{0.0};
  /// Reader thread exited (EOF, transport error, or protocol failure).
  bool done{false};
  /// Reader saw a clean EOF (peer half-closed) rather than an error.
  bool clean_eof{false};
  WireError error{WireError::kNone};
};

/// Lifetime-aggregate counters across all connections a front-end ever
/// adopted — removed connections fold their final counters in here, so
/// totals survive reaping (what a server's metrics endpoint wants).
struct FrontendTotals {
  std::uint64_t accepted{0};
  std::uint64_t removed{0};
  std::uint64_t frames_in{0};
  std::uint64_t submits_in{0};
  std::uint64_t heartbeats_in{0};
  std::uint64_t frames_out{0};
  std::uint64_t frames_dropped{0};
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};
};

/// Per-peer protocol state machine: incremental frame decode, handshake,
/// dispatch into a service session. Thread-free — feed it bytes in any
/// chunking via on_bytes() and it applies complete frames as they
/// materialize; FrameFrontend wraps it with a reader thread. The error
/// state and counters are atomics so another thread may observe them
/// while bytes flow.
class Connection {
 public:
  /// `ingest_mutex` serializes session calls and registry updates against
  /// other connections and polls; pass nullptr when the service is
  /// threaded (sessions are their own single-producer lanes) or when only
  /// one thread drives everything.
  Connection(core::ClientRegistry& registry,
             core::FairOrderingService& service, FrontendConfig config,
             std::mutex* ingest_mutex = nullptr);

  /// Feeds raw stream bytes; decodes and applies every frame that
  /// completes. Returns false once the connection is failed (the caller
  /// should stop feeding and tear the stream down).
  bool on_bytes(std::span<const std::uint8_t> bytes);

  /// Outcome of one nonblocking drive step (the event-loop ingest path).
  enum class DriveStatus : std::uint8_t {
    /// Everything decoded so far has been applied (or enqueued, in
    /// threaded mode) — keep reading.
    kReady,
    /// The service could not absorb more right now (session ring full,
    /// or the sequential ingest lock contended): STOP READING this
    /// stream and retry drive() shortly. This is the backpressure
    /// signal — an unread socket fills its kernel buffers and TCP flow
    /// control reaches the client.
    kStalled,
    /// The connection failed (protocol or decode error) — tear it down.
    kFailed,
  };

  /// Nonblocking on_bytes: appends `bytes`, then dispatches complete
  /// frames without ever blocking on the service (bounded-time lock
  /// attempts aside — the handshake path still serializes, it is rare
  /// and short). Frames the service cannot absorb are retained
  /// internally and retried by the no-argument overload.
  [[nodiscard]] DriveStatus drive(std::span<const std::uint8_t> bytes);
  /// Retry after kStalled: makes whatever progress the service now
  /// allows on the retained frame/batch backlog, then resumes decoding.
  [[nodiscard]] DriveStatus drive();
  /// True when nothing is retained (no stashed frame, no pending batch)
  /// — the point at which a clean EOF may complete.
  [[nodiscard]] bool drained() const {
    return !stash_.has_value() && pending_.empty();
  }

  /// External failure injection (the reader thread reports transport
  /// errors here). No-op if already failed.
  void mark_failed(WireError error);

  [[nodiscard]] bool failed() const {
    return error_.load(std::memory_order_relaxed) != WireError::kNone;
  }
  [[nodiscard]] WireError error() const {
    return error_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool handshaken() const {
    return handshaken_.load(std::memory_order_acquire);
  }
  /// Valid once handshaken() is true (the acquire load above orders the
  /// read, from any thread).
  [[nodiscard]] ClientId client() const { return client_; }

  [[nodiscard]] std::uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t submits_in() const {
    return submits_in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t heartbeats_in() const {
    return heartbeats_in_.load(std::memory_order_relaxed);
  }

  /// Frames the machine wants written to the peer (ReconfigPending /
  /// HandshakeAck, already frame-encoded), in order. Owned by the reader
  /// thread: only it dispatches frames and only it may drain this.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> take_outbound() {
    return std::exchange(outbound_, {});
  }
  /// True while the peer has been told ReconfigPending and the machine is
  /// waiting for its retry announce. Reader-thread state.
  [[nodiscard]] bool reconfig_waiting() const { return reconfig_waiting_; }

  /// Clean-EOF hook (FrontendConfig::retire_on_eof): retires the
  /// handshaken client from its shard's completeness gate, after applying
  /// everything the peer streamed. Called by the reader thread only.
  void on_peer_eof();

 private:
  /// Outcome of one nonblocking dispatch attempt.
  enum class TryOutcome : std::uint8_t {
    kOk,
    /// The frame's effect is retained in pending_ (a submit that could
    /// not flush) — do not re-dispatch the frame, retry the flush.
    kConsumedStall,
    /// The frame could not take effect at all — stash and re-dispatch
    /// it on the next drive().
    kRetryStall,
    kFail,
  };

  bool dispatch(WireMessage&& message);
  /// Nonblocking dispatch: never blocks on the session ring or the
  /// sequential ingest lock (the handshake path excepted — rare,
  /// bounded).
  TryOutcome try_dispatch(const WireMessage& message);
  /// Nonblocking apply_pending: applies whatever prefix the service
  /// accepts; true when pending_ fully drained.
  bool try_apply_pending();
  bool handle_announcement(const DistributionAnnouncement& announcement);
  void queue_outbound(const WireMessage& message);
  /// Applies buffered submissions through the relaxed batch path.
  void apply_pending();
  /// Applies the valid prefix, then poisons the connection.
  bool fail(WireError error);

  core::ClientRegistry& registry_;
  core::FairOrderingService& service_;
  FrontendConfig config_;
  std::mutex* ingest_mutex_;

  FrameDecoder decoder_;
  core::FairOrderingService::Session session_;
  ClientId client_{};
  std::vector<core::Submission> pending_;
  /// A decoded frame that could not take effect (kRetryStall): retried
  /// before any further decoding so per-connection FIFO order holds.
  /// Driver-thread state, like pending_.
  std::optional<WireMessage> stash_;
  /// Encoded frames awaiting the reader thread's write-back
  /// (take_outbound); reader-thread-only, no lock.
  std::vector<std::vector<std::uint8_t>> outbound_;
  bool reconfig_waiting_{false};

  std::atomic<WireError> error_{WireError::kNone};
  std::atomic<bool> handshaken_{false};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> submits_in_{0};
  std::atomic<std::uint64_t> heartbeats_in_{0};
};

/// Socket-facing adapter over a FairOrderingService: one reader thread
/// per adopted ByteStream feeding that connection's session, plus the
/// outbound broadcast of emitted batches. See the file header.
class FrameFrontend {
 public:
  /// `registry` must be the registry `service` was built on (handshake
  /// announcements go to it); both must outlive the front-end.
  FrameFrontend(core::ClientRegistry& registry,
                core::FairOrderingService& service,
                FrontendConfig config = {});

  /// Shuts every stream down and joins the readers.
  ~FrameFrontend();

  FrameFrontend(const FrameFrontend&) = delete;
  FrameFrontend& operator=(const FrameFrontend&) = delete;

  /// Adopts `stream` and starts driving it: kThreadPerConnection spawns
  /// its reader thread; kEventLoop registers its fd with a poller thread
  /// (the stream must expose poll_fd() >= 0). Returns the connection
  /// id used by the introspection accessors. Ids of removed connections
  /// are recycled (smallest free id first), so a long-lived server's id
  /// space stays as dense as its live connection set. Opportunistically
  /// reaps dead connections first.
  ///
  /// Id lifetime is POSIX-fd-like: an id is valid until its connection
  /// is removed, after which it may name a DIFFERENT later connection.
  /// Callers that cache ids across reap points (pump/add_connection, or
  /// any thread calling reap()) must tolerate close_connection(id)
  /// returning false and must not assume a cached id still names the
  /// same peer; the per-id accessors are for ids the caller knows are
  /// live (they fail their precondition on removed ids). Aggregate
  /// surfaces (totals(), connection_count()) are always race-free.
  std::uint64_t add_connection(std::shared_ptr<ByteStream> stream);

  /// THE drain entry point: polls (or, with options.flush, flushes) the
  /// service at `now` under the sequential-mode ingest lock, with the
  /// staged-epoch install nudge. Null options.sink broadcasts every
  /// emitted batch as an encoded BatchEmission frame to every connection
  /// whose writes still succeed (reaping dead peers first, so a removed
  /// peer never receives or stalls a broadcast); a non-null sink
  /// consumes emissions in-process instead (no broadcast, no reap) —
  /// race-free against live readers, which a direct service_.poll() is
  /// NOT for sequential services. options.next_safe_after, when set,
  /// receives the post-drain frontier read under the SAME lock
  /// acquisition as the poll (no ingest can interleave — what a shard
  /// node's SafeTimeAnnounce must carry). Returns the number of batches
  /// emitted. One pump/flush at a time (callers serialize; the
  /// service's own poll contract).
  std::size_t pump(TimePoint now, const PumpOptions& options);

  /// Broadcast poll: pump(now, {}). (Historical name, kept stable.)
  std::size_t pump(TimePoint now) { return pump(now, PumpOptions{}); }

  /// Broadcast flush: pump(now, {.flush = true}).
  std::size_t pump_flush(TimePoint now) {
    PumpOptions options;
    options.flush = true;
    return pump(now, options);
  }

  /// Deprecated spelling of pump(now, {.sink = &sink}); prefer the
  /// PumpOptions entry point.
  std::size_t pump_into(TimePoint now, core::EmissionSink& sink) {
    PumpOptions options;
    options.sink = &sink;
    return pump(now, options);
  }
  template <typename F>
    requires(!std::is_base_of_v<core::EmissionSink,
                                std::remove_reference_t<F>>)
  std::size_t pump_into(TimePoint now, F&& fn) {
    core::CallbackSink<F> sink(fn);
    return pump_into(now, static_cast<core::EmissionSink&>(sink));
  }

  /// Deprecated spelling of pump(now, {.sink = &sink, .flush = true}).
  std::size_t pump_flush_into(TimePoint now, core::EmissionSink& sink) {
    PumpOptions options;
    options.sink = &sink;
    options.flush = true;
    return pump(now, options);
  }
  template <typename F>
    requires(!std::is_base_of_v<core::EmissionSink,
                                std::remove_reference_t<F>>)
  std::size_t pump_flush_into(TimePoint now, F&& fn) {
    core::CallbackSink<F> sink(fn);
    return pump_flush_into(now, static_cast<core::EmissionSink&>(sink));
  }

  /// Deprecated next_safe_after spellings (see PumpOptions).
  std::size_t pump_into(TimePoint now, core::EmissionSink& sink,
                        TimePoint* next_safe_after) {
    PumpOptions options;
    options.sink = &sink;
    options.next_safe_after = next_safe_after;
    return pump(now, options);
  }
  std::size_t pump_flush_into(TimePoint now, core::EmissionSink& sink,
                              TimePoint* next_safe_after) {
    PumpOptions options;
    options.sink = &sink;
    options.flush = true;
    options.next_safe_after = next_safe_after;
    return pump(now, options);
  }

  /// Drives any pending reconfiguration to completion (blocking —
  /// joins the primer) under the same serialization as the wire
  /// handlers. The safe way to force an epoch swap from outside while
  /// reader threads are live; a direct service_.reconfigure() is only
  /// safe against a threaded service.
  void reconfigure();

  /// Removes every dead connection: reader exited AND (it failed, its
  /// broadcast writes failed, or the EOF policy is kRemove). The stream
  /// is shut down, the reader joined, the final counters folded into
  /// totals(), and the id recycled. Returns the number removed. Runs
  /// automatically at add_connection and pump; callers that neither add
  /// nor pump can call it directly.
  std::size_t reap();

  /// Forcibly removes one connection: shuts the stream down (unblocking
  /// its reader), joins the reader, folds its counters into totals(),
  /// and recycles the id. False if the id is not registered — under
  /// EofPolicy::kRemove a concurrent reap may win the race for any id
  /// the caller just looked up, so a missing id is an outcome, not an
  /// error.
  bool close_connection(std::uint64_t id);

  /// Shuts every stream down, joins every reader, and removes every
  /// connection regardless of policy. The front-end is reusable
  /// afterwards (a fresh add_connection starts from a clean table). The
  /// destructor runs this.
  void stop();

  /// Joins every reader thread without removing anything. Callers
  /// arrange EOF first (peers close_write / streams shut down), otherwise
  /// this blocks; after it returns, everything the peers sent has been
  /// applied to the service (threaded mode: enqueued — a subsequent
  /// poll/quiesce drains it).
  void join_readers();

  /// Live connections: registered, and not merely awaiting reap. (A
  /// lingering half-closed subscriber under EofPolicy::kLinger counts —
  /// it is still being served broadcasts.)
  [[nodiscard]] std::size_t connection_count() const;
  /// Registered connections including dead ones not yet reaped — the
  /// number actually held in the table (the churn regression bound).
  [[nodiscard]] std::size_t tracked_connection_count() const;
  [[nodiscard]] bool has_connection(std::uint64_t id) const;
  /// Reader-thread exit flag (EOF, error, or protocol failure).
  [[nodiscard]] bool connection_done(std::uint64_t id) const;
  [[nodiscard]] WireError connection_error(std::uint64_t id) const;
  /// Point-in-time counters for a registered connection.
  [[nodiscard]] ConnectionStats connection_stats(std::uint64_t id) const;
  /// Lifetime aggregates (live + removed connections).
  [[nodiscard]] FrontendTotals totals() const;
  /// The state machine itself (counters any time; client() once
  /// handshaken).
  [[nodiscard]] const Connection& connection(std::uint64_t id) const;

 private:
  struct Conn {
    std::shared_ptr<ByteStream> stream;
    Connection machine;
    /// Serializes joins of `reader`: retire() (reap/close/stop paths)
    /// and join_readers() can race on the same connection, and two
    /// threads joining one std::thread is UB. Leaf lock — never held
    /// while taking conns_mutex_ or write_mutex.
    std::mutex join_mutex;
    std::thread reader;
    std::atomic<bool> done{false};
    std::atomic<bool> clean_eof{false};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> frames_dropped{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<double> last_activity{0.0};
    std::mutex write_mutex;
    /// Atomic, not mutex-guarded: reapable() and connection_count() read
    /// it while holding conns_mutex_, and must never wait on a broadcast
    /// stalled in write_all (which holds write_mutex). Writes happen
    /// under write_mutex; the atomic store just publishes them.
    std::atomic<bool> write_ok{true};

    // ── kEventLoop state ──────────────────────────────────────────────
    /// EventLoop registration key; meaningful only when in_loop.
    std::uint64_t loop_key{0};
    bool in_loop{false};
    /// Read scratch, owned by the connection's poller thread.
    std::vector<std::uint8_t> read_buffer;
    /// Poller-thread-only flags: reads are paused awaiting a drive()
    /// retry tick; the peer's EOF arrived but retained frames are still
    /// draining.
    bool paused{false};
    bool eof_seen{false};
    /// Bounded egress queue (under write_mutex): frames the broadcast
    /// could not write immediately, flushed on writability edges.
    /// egress_offset is how much of the head frame already left.
    std::deque<std::vector<std::uint8_t>> egress;
    std::size_t egress_bytes{0};
    std::size_t egress_offset{0};

    Conn(std::shared_ptr<ByteStream> s, core::ClientRegistry& registry,
         core::FairOrderingService& service, FrontendConfig config,
         std::mutex* ingest_mutex)
        : stream(std::move(s)),
          machine(registry, service, std::move(config), ingest_mutex) {}
  };

  /// A connection pulled out of the table but not yet fully torn down.
  /// `snapshot` is what was already folded into retired_ at unlink time
  /// — retire() adds only the residual the reader produced while dying,
  /// so totals() never dips below its last observed value.
  struct Retiring {
    std::shared_ptr<Conn> conn;
    FrontendTotals snapshot;
  };

  void reader_loop(Conn& conn);
  /// Writes the machine's queued ReconfigPending/HandshakeAck frames to
  /// the peer (reader thread; shares write_mutex with broadcasts).
  void flush_outbound(Conn& conn);
  std::size_t drain(TimePoint now, bool flush_all,
                    TimePoint* next_safe_after = nullptr);
  /// The locked core shared by pump/pump_flush (broadcast sink) and
  /// pump_into/pump_flush_into (caller sink): sequential-mode ingest
  /// lock, staged-epoch install nudge, then one service drain. When
  /// `next_safe_after` is non-null the post-drain next_safe_time is
  /// read before the lock drops.
  std::size_t drain_locked(TimePoint now, bool flush_all,
                           core::EmissionSink& sink,
                           TimePoint* next_safe_after = nullptr);

  // ── kEventLoop machinery (poller_frontend.cpp) ─────────────────────
  /// Lazily creates the shared EventLoop and registers `conn`'s fd with
  /// a poller thread (round-robin). Fails the connection if the stream
  /// has no pollable fd.
  void attach_to_loop(const std::shared_ptr<Conn>& conn);
  /// Readiness callback (poller thread): drains readable bytes through
  /// the nonblocking drive, flushes egress on writability, handles
  /// hangup.
  void on_loop_event(const std::shared_ptr<Conn>& conn, bool readable,
                     bool writable, bool hangup);
  /// Stall-retry tick (poller thread): re-drives a paused connection.
  void on_loop_tick(const std::shared_ptr<Conn>& conn);
  /// Reads until kWouldBlock/stall/EOF (poller thread).
  void drain_readable(Conn& conn);
  /// Finishes a clean EOF once retained frames drained (poller thread).
  void finish_eof(Conn& conn);
  /// Queues one encoded frame onto `conn`'s bounded egress (applying
  /// the egress policy at the cap) and opportunistically flushes.
  /// Caller holds nothing; takes write_mutex.
  void queue_egress(Conn& conn, std::span<const std::uint8_t> frame);
  /// Writes queued egress until kWouldBlock or empty. write_mutex held
  /// by the caller.
  void flush_egress_locked(Conn& conn);
  /// Event-mode counterpart of the reader-thread shutdown: marks done
  /// and tears the transport down.
  void fail_loop_conn(Conn& conn);
  /// True once `conn` can be removed (reader exited and nothing is left
  /// to serve it). Lock-free on the connection itself — callers hold
  /// conns_mutex_, and this must never wait on a stalled broadcast.
  [[nodiscard]] bool reapable(const Conn& conn) const;
  /// Point-in-time counter sums of one connection.
  [[nodiscard]] static FrontendTotals counters_of(const Conn& conn);
  /// Accounts a connection leaving the table (conns_mutex_ held): folds
  /// a counter snapshot into retired_ and bumps the removed count.
  [[nodiscard]] Retiring unlink_locked(std::shared_ptr<Conn> conn);
  /// Tears down + joins a batch of unlinked connections (outside
  /// conns_mutex_ — joins must not hold the table lock) and folds the
  /// counter residuals.
  void retire(std::vector<Retiring>&& removed);
  std::size_t remove_if_locked(bool force);

  core::ClientRegistry& registry_;
  core::FairOrderingService& service_;
  FrontendConfig config_;

  /// Serializes sequential-mode ingest/polls (unused when threaded).
  std::mutex ingest_mutex_;
  mutable std::mutex conns_mutex_;
  /// Registered connections by id. shared_ptr: broadcast and reap hold
  /// references while not holding conns_mutex_.
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  /// Recycled ids, served smallest-first on add_connection.
  std::vector<std::uint64_t> free_ids_;
  std::uint64_t next_id_{0};
  /// Counters of removed connections (guarded by conns_mutex_); totals()
  /// adds the live table on top.
  FrontendTotals retired_;
  /// kEventLoop transport: the M poller threads (created lazily on the
  /// first event-mode add_connection, shared by every connection, kept
  /// across stop() so the front-end stays reusable). Guarded by
  /// conns_mutex_ for creation; the pointer is stable afterwards.
  std::unique_ptr<EventLoop> event_loop_;
};

/// Client-side multi-upstream connection set — the router tier's working
/// half. A RelaySet adopts downstream byte streams (accepted by a
/// StreamAcceptor), sniffs each one's handshake (the first complete
/// frame must be a DistributionAnnouncement, exactly the Connection
/// contract), asks a caller-supplied dial function for the matching
/// upstream — that closure owns the routing decision AND the connect
/// RetryPolicy, so a node mid-restart is re-dialed with backoff — and
/// then splices the two streams raw in both directions (no re-framing:
/// the relay adds no protocol state beyond the sniffed handshake, so
/// clients keep the PR 6 handshake flow unchanged end to end).
///
/// Fault model: if the upstream dies (node kill), the downstream is torn
/// down too — the client observes a dead connection, reconnects through
/// the router, and replays, which re-routes it to the restarted node.
/// Holding client traffic at the relay would turn the router into a
/// stateful buffer; dropping keeps it thin and pushes recovery onto the
/// retry machinery the clients already have.
class RelaySet {
 public:
  /// Picks and dials the upstream for a downstream that announced
  /// `announcement`. nullptr rejects the downstream (it is dropped).
  /// Called on the relay's own thread; bounded connect retries belong
  /// inside the closure.
  using DialFn = std::function<std::shared_ptr<ByteStream>(
      const DistributionAnnouncement& announcement)>;

  explicit RelaySet(DialFn dial,
                    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// stop()s.
  ~RelaySet();

  RelaySet(const RelaySet&) = delete;
  RelaySet& operator=(const RelaySet&) = delete;

  /// Adopts a downstream stream and spawns its relay (handshake sniff,
  /// dial, bidirectional splice). Opportunistically reaps finished
  /// relays first.
  void adopt(std::shared_ptr<ByteStream> downstream);

  /// Shuts every relay's streams down and joins every relay thread.
  /// Reusable afterwards. The destructor runs this.
  void stop();

  /// Relays whose threads are still running.
  [[nodiscard]] std::size_t active_count() const;
  /// Downstreams ever adopted.
  [[nodiscard]] std::uint64_t adopted_total() const;
  /// Downstreams dropped because the dial function returned nullptr.
  [[nodiscard]] std::uint64_t dial_failures() const {
    return dial_failures_.load(std::memory_order_relaxed);
  }
  /// Downstreams dropped before a complete, well-formed announcement
  /// (EOF mid-handshake, a malformed frame, or a non-announcement first
  /// frame).
  [[nodiscard]] std::uint64_t handshake_failures() const {
    return handshake_failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Relay {
    std::shared_ptr<ByteStream> down;
    /// Set (under the set's mutex) once the dial succeeds; stop() shuts
    /// it down alongside `down`.
    std::shared_ptr<ByteStream> up;
    std::thread forward;
    std::atomic<bool> done{false};
  };

  void forward_loop(Relay& relay);

  DialFn dial_;
  std::size_t max_frame_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Relay>> relays_;
  std::uint64_t adopted_{0};
  bool stopping_{false};
  std::atomic<std::uint64_t> dial_failures_{0};
  std::atomic<std::uint64_t> handshake_failures_{0};
};

}  // namespace tommy::net
