#include "net/simulation.hpp"

#include <utility>

#include "common/check.hpp"

namespace tommy::net {

void Simulation::schedule_at(TimePoint t, std::function<void()> fn) {
  TOMMY_EXPECTS(t >= now_);
  TOMMY_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

void Simulation::schedule_after(Duration d, std::function<void()> fn) {
  TOMMY_EXPECTS(d >= Duration::zero());
  schedule_at(now_ + d, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  ++processed_;
  event.fn();
  return true;
}

std::size_t Simulation::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Simulation::run_until(TimePoint t) {
  TOMMY_EXPECTS(t >= now_);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= t) {
    step();
    ++count;
  }
  now_ = t;
  return count;
}

}  // namespace tommy::net
