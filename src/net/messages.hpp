// The protocol messages of Figure 1: clients send their learned offset
// distribution once, then a stream of timestamped messages and heartbeats;
// the sequencer emits ordered batches upstream. Codec functions give each
// a compact binary wire form (round-trip tested in tests/net).
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "stats/summary.hpp"

namespace tommy::net {

/// Client -> sequencer: "my clock offset w.r.t. you is distributed as ...".
struct DistributionAnnouncement {
  ClientId client;
  stats::DistributionSummary summary;

  friend bool operator==(const DistributionAnnouncement&,
                         const DistributionAnnouncement&) = default;
};

/// Client -> sequencer: an application message stamped with the client's
/// local clock (T_i in the paper).
struct TimestampedMessage {
  ClientId client;
  MessageId id;
  TimePoint local_stamp;

  friend bool operator==(const TimestampedMessage&,
                         const TimestampedMessage&) = default;
};

/// Client -> sequencer: liveness + completeness signal carrying the
/// client's current local clock (Q2 of §3.5: the sequencer may conclude
/// everything stamped <= t has arrived once every client's high-water mark
/// exceeds t).
struct Heartbeat {
  ClientId client;
  TimePoint local_stamp;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Sequencer -> upstream application: one emitted batch. All contained
/// messages share `rank`; ranks are dense from 0.
struct BatchEmission {
  Rank rank{0};
  std::vector<MessageId> messages;

  friend bool operator==(const BatchEmission&, const BatchEmission&) = default;
};

/// Sequencer -> client: the handshake announce was accepted as a join,
/// but the epoch that includes the client has not been installed yet.
/// `generation` is the registry generation the pending reconfig targets;
/// the client re-sends its announcement (bounded retry) until the install
/// lands and a HandshakeAck arrives. Sent only on connections in the
/// reconfig flow — legacy streams never see this frame.
struct ReconfigPending {
  std::uint64_t generation{0};

  friend bool operator==(const ReconfigPending&,
                         const ReconfigPending&) = default;
};

/// Sequencer -> client: the handshake (or join retry) completed against
/// the epoch primed at `generation`; the session is live. Sent only on
/// connections that previously received ReconfigPending.
struct HandshakeAck {
  std::uint64_t generation{0};

  friend bool operator==(const HandshakeAck&, const HandshakeAck&) = default;
};

/// Shard node -> merge tier: safe-time gossip. The node promises (to the
/// same probabilistic degree the in-process kGlobalMerge holdback
/// promises — see DrainPolicy::kGlobalMerge's caveats) that its next
/// emitted batch will carry safe_time >= next_safe_time; the merge node
/// gates its cross-node release on min(next_safe_time) over peers.
/// `epoch` is the node's incarnation number: a restarted node announces
/// with a higher epoch, telling the merge to reset its per-node rank
/// expectations (the restart/resume protocol in docs/architecture.md).
struct SafeTimeAnnounce {
  std::uint32_t node{0};
  std::uint64_t epoch{0};
  TimePoint next_safe_time{};

  friend bool operator==(const SafeTimeAnnounce&,
                         const SafeTimeAnnounce&) = default;
};

/// Shard node -> merge tier: one emitted batch with full ordering
/// metadata. Unlike BatchEmission (sequencer -> subscriber, ids only),
/// the merge tier re-orders across nodes and re-emits, so each record
/// carries everything an EmissionRecord holds: the gating safe time T_b,
/// the emission instant, and per-message client/stamp/arrival — enough
/// for the released global stream to be bit-comparable to a
/// single-process kGlobalMerge drain. `rank` is dense from 0 per
/// (node, epoch); the merge detects drops as rank gaps and replayed
/// frames (a node re-serving its retained stream to a reconnecting
/// subscriber) as already-accepted ranks.
struct OrderedBatch {
  struct Entry {
    ClientId client;
    MessageId id;
    TimePoint stamp;
    TimePoint arrival;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  std::uint32_t node{0};
  std::uint64_t epoch{0};
  Rank rank{0};
  TimePoint safe_time{};
  TimePoint emitted_at{};
  std::vector<Entry> messages;

  friend bool operator==(const OrderedBatch&, const OrderedBatch&) = default;
};

/// Merge tier -> downstream subscribers: the release watermark — how many
/// records the merge has released so far and the (safe_time, node, rank)
/// cursor of the last one. Because the cross-node holdback is
/// deterministic, every replica releasing from the same uplinks walks the
/// SAME ascending cursor sequence; a downstream consumer that remembers
/// its watermark can therefore resume from any replica, dropping replayed
/// records with cursor <= watermark — gap-free and duplicate-free.
/// `released == 0` is the empty watermark (nothing released yet; the
/// cursor fields are meaningless and encoded as zeros).
struct MergeWatermark {
  std::uint64_t released{0};
  std::uint32_t node{0};
  Rank rank{0};
  TimePoint safe_time{};

  friend bool operator==(const MergeWatermark&,
                         const MergeWatermark&) = default;
};

/// Shard node -> uplink subscriber: the replay a new subscriber needs has
/// been truncated (the node's retention cap dropped `truncated` frames),
/// so attaching now would silently skip history. The node sends this one
/// frame and closes instead — the subscriber surfaces a typed error
/// rather than merging a gapped stream.
struct ReplayTruncated {
  std::uint32_t node{0};
  std::uint64_t epoch{0};
  std::uint64_t truncated{0};

  friend bool operator==(const ReplayTruncated&,
                         const ReplayTruncated&) = default;
};

using WireMessage = std::variant<DistributionAnnouncement, TimestampedMessage,
                                 Heartbeat, BatchEmission, ReconfigPending,
                                 HandshakeAck, SafeTimeAnnounce, OrderedBatch,
                                 MergeWatermark, ReplayTruncated>;

/// Serializes any protocol message (1-byte tag + payload).
[[nodiscard]] std::vector<std::uint8_t> encode(const WireMessage& message);

/// Parses bytes from encode(); nullopt on malformed or truncated input.
[[nodiscard]] std::optional<WireMessage> decode(
    const std::vector<std::uint8_t>& bytes);

}  // namespace tommy::net
