#include "sim/offline_runner.hpp"

#include <unordered_map>

#include "common/check.hpp"

namespace tommy::sim {

std::vector<ObservedMessage> materialize_messages(
    const Population& population, const std::vector<GenEvent>& events,
    const MaterializeConfig& config, Rng& rng) {
  // Per-client RNG streams keep draws decorrelated and runs reproducible
  // regardless of event interleaving.
  std::unordered_map<ClientId, Rng> client_rngs;
  for (const ClientSpec& c : population.clients()) {
    client_rngs.emplace(c.id, rng.split());
  }
  Rng net_rng = rng.split();

  std::vector<ObservedMessage> out;
  out.reserve(events.size());
  std::uint64_t next_id = 0;
  for (const GenEvent& event : events) {
    const stats::Distribution& f_theta = population.offset_of(event.client);
    Rng& crng = client_rngs.at(event.client);
    const double theta = f_theta.sample(crng);

    ObservedMessage om;
    om.true_time = event.true_time;
    om.theta = theta;
    om.message.id = MessageId(next_id++);
    om.message.client = event.client;
    // Local stamp: T = t_true − θ, so the sequencer-side model
    // T* = T + θ recovers the true time exactly.
    om.message.stamp = event.true_time - Duration(theta);
    om.message.arrival =
        config.mean_net_delay > Duration::zero()
            ? event.true_time +
                  Duration(net_rng.exponential(config.mean_net_delay.seconds()))
            : event.true_time;
    out.push_back(std::move(om));
  }
  return out;
}

std::vector<metrics::RankedMessage> rank_against_truth(
    const core::SequencerResult& result,
    const std::vector<ObservedMessage>& observed) {
  std::unordered_map<MessageId, const ObservedMessage*> truth;
  truth.reserve(observed.size());
  for (const ObservedMessage& om : observed) {
    truth.emplace(om.message.id, &om);
  }

  std::vector<metrics::RankedMessage> ranked;
  ranked.reserve(observed.size());
  for (const core::Batch& batch : result.batches) {
    for (const core::Message& m : batch.messages) {
      const auto it = truth.find(m.id);
      TOMMY_EXPECTS(it != truth.end());
      ranked.push_back(metrics::RankedMessage{
          m.id, m.client, it->second->true_time, batch.rank});
    }
  }
  TOMMY_ENSURES(ranked.size() == observed.size());
  return ranked;
}

SequencerScore score_sequencer(core::Sequencer& sequencer,
                               const std::vector<ObservedMessage>& observed) {
  std::vector<core::Message> input;
  input.reserve(observed.size());
  for (const ObservedMessage& om : observed) input.push_back(om.message);

  const core::SequencerResult result = sequencer.sequence(std::move(input));
  const auto ranked = rank_against_truth(result, observed);

  SequencerScore score;
  score.sequencer = sequencer.name();
  score.ras = metrics::rank_agreement(ranked);
  const auto sizes = result.batch_sizes();
  score.batches = metrics::BatchGranularity::from_batch_sizes(sizes);
  return score;
}

}  // namespace tommy::sim
