// Offline experiment runner — the §4 evaluation loop:
//   1. a workload decides when each client generates a message (ground
//      truth, the omniscient observer of Definition 1);
//   2. at generation the client draws θ ~ f_θ and stamps T = t_true − θ
//      (so T* = T + θ = t_true exactly, matching the paper's model);
//   3. messages (optionally) receive network arrival times for FIFO;
//   4. each sequencer orders the full set; RAS compares its ranks with
//      ground truth.
#pragma once

#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/sequencer.hpp"
#include "metrics/batch_stats.hpp"
#include "metrics/ras.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"

namespace tommy::sim {

/// A generated message together with its ground truth.
struct ObservedMessage {
  core::Message message;
  TimePoint true_time;
  double theta;  // the offset actually drawn (evaluation only)
};

struct MaterializeConfig {
  /// Mean one-way network delay for arrival stamps (exponential); zero
  /// disables network delay (arrival == true time).
  Duration mean_net_delay{Duration::zero()};
};

/// Turns workload events into stamped messages using the population's
/// offset distributions.
[[nodiscard]] std::vector<ObservedMessage> materialize_messages(
    const Population& population, const std::vector<GenEvent>& events,
    const MaterializeConfig& config, Rng& rng);

/// Evaluation view: the messages a sequencer ranked, joined with truth.
[[nodiscard]] std::vector<metrics::RankedMessage> rank_against_truth(
    const core::SequencerResult& result,
    const std::vector<ObservedMessage>& observed);

struct SequencerScore {
  std::string sequencer;
  metrics::RasBreakdown ras;
  metrics::BatchGranularity batches;
};

/// Runs one sequencer over the observed messages and scores it.
[[nodiscard]] SequencerScore score_sequencer(
    core::Sequencer& sequencer, const std::vector<ObservedMessage>& observed);

}  // namespace tommy::sim
