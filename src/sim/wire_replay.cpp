#include "sim/wire_replay.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/check.hpp"
#include "net/acceptor.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"

namespace tommy::sim {

namespace {

constexpr char kMagic[4] = {'T', 'M', 'W', 'R'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::uint32_t WireTrace::connection_count() const {
  // 64-bit accumulate: connection == UINT32_MAX must not wrap to 0.
  std::uint64_t count = 0;
  for (const WireTraceEvent& event : events) {
    count = std::max<std::uint64_t>(count,
                                    std::uint64_t{event.connection} + 1);
  }
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, ~std::uint32_t{0}));
}

std::uint64_t WireTrace::total_bytes() const {
  std::uint64_t bytes = 0;
  for (const WireTraceEvent& event : events) bytes += event.bytes.size();
  return bytes;
}

bool WireTrace::save(const std::string& path) const {
  net::ByteWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kVersion);
  w.u64(events.size());
  for (const WireTraceEvent& event : events) {
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u32(event.connection);
    w.f64(event.at);
    if (event.kind == WireTraceEvent::Kind::kSend) {
      w.u32(static_cast<std::uint32_t>(event.bytes.size()));
      w.raw(event.bytes);
    }
  }
  const auto bytes = w.take();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  return std::fclose(file) == 0 && ok;
}

const char* to_string(TraceError error) {
  switch (error) {
    case TraceError::kNone:
      return "none";
    case TraceError::kIoError:
      return "I/O error";
    case TraceError::kBadMagic:
      return "bad magic";
    case TraceError::kBadVersion:
      return "unsupported version";
    case TraceError::kTruncated:
      return "truncated";
    case TraceError::kBadEventKind:
      return "unknown event kind";
    case TraceError::kConnectionOutOfRange:
      return "connection index out of range";
    case TraceError::kTrailingGarbage:
      return "trailing garbage";
  }
  return "unknown";
}

std::optional<WireTrace> WireTrace::load(const std::string& path) {
  TraceError error = TraceError::kNone;
  return load(path, &error);
}

std::optional<WireTrace> WireTrace::load(const std::string& path,
                                         TraceError* error) {
  TOMMY_EXPECTS(error != nullptr);
  const auto fail = [error](TraceError reason) -> std::optional<WireTrace> {
    *error = reason;
    return std::nullopt;
  };
  *error = TraceError::kNone;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return fail(TraceError::kIoError);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[4096];
  while (true) {
    const std::size_t n = std::fread(buffer, 1, sizeof(buffer), file);
    bytes.insert(bytes.end(), buffer, buffer + n);
    if (n < sizeof(buffer)) break;
  }
  const bool read_ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!read_ok) return fail(TraceError::kIoError);

  net::ByteReader r(bytes);
  for (char c : kMagic) {
    const auto got = r.u8();
    if (!got) return fail(TraceError::kTruncated);
    if (*got != static_cast<std::uint8_t>(c)) {
      return fail(TraceError::kBadMagic);
    }
  }
  const auto version = r.u32();
  if (!version) return fail(TraceError::kTruncated);
  if (*version != kVersion) return fail(TraceError::kBadVersion);
  const auto count = r.u64();
  if (!count) return fail(TraceError::kTruncated);

  WireTrace trace;
  trace.events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(*count, 1u << 20)));
  for (std::uint64_t i = 0; i < *count; ++i) {
    WireTraceEvent event;
    const auto kind = r.u8();
    const auto connection = r.u32();
    const auto at = r.f64();
    if (!kind || !connection || !at) return fail(TraceError::kTruncated);
    if (*connection >= kMaxTraceConnections) {
      return fail(TraceError::kConnectionOutOfRange);
    }
    if (*kind < static_cast<std::uint8_t>(WireTraceEvent::Kind::kConnect)
        || *kind > static_cast<std::uint8_t>(
               WireTraceEvent::Kind::kDisconnect)) {
      return fail(TraceError::kBadEventKind);
    }
    event.kind = static_cast<WireTraceEvent::Kind>(*kind);
    event.connection = *connection;
    event.at = *at;
    if (event.kind == WireTraceEvent::Kind::kSend) {
      const auto len = r.u32();
      if (!len) return fail(TraceError::kTruncated);
      auto payload = r.raw(*len);
      if (!payload) return fail(TraceError::kTruncated);
      event.bytes = std::move(*payload);
    }
    trace.events.push_back(std::move(event));
  }
  if (!r.exhausted()) return fail(TraceError::kTrailingGarbage);
  return trace;
}

void WireTraceRecorder::connect(std::uint32_t connection, double at) {
  trace_.events.push_back(
      WireTraceEvent{WireTraceEvent::Kind::kConnect, connection, at, {}});
}

void WireTraceRecorder::send(std::uint32_t connection, double at,
                             std::vector<std::uint8_t> frame) {
  trace_.events.push_back(WireTraceEvent{WireTraceEvent::Kind::kSend,
                                         connection, at, std::move(frame)});
}

void WireTraceRecorder::send(std::uint32_t connection, double at,
                             const net::WireMessage& message) {
  send(connection, at, net::encode_frame(message));
}

void WireTraceRecorder::disconnect(std::uint32_t connection, double at) {
  trace_.events.push_back(
      WireTraceEvent{WireTraceEvent::Kind::kDisconnect, connection, at, {}});
}

std::optional<ReplayStats> replay(const WireTrace& trace,
                                  const ReplayTarget& target,
                                  ReplayOptions options) {
  TOMMY_EXPECTS(target.unix_path.empty() != (target.tcp_port == 0));
  TOMMY_EXPECTS(options.speed >= 0.0);
  // One thread per logical connection; recorder-built traces that defeat
  // the load-time bound are a programming error here.
  TOMMY_EXPECTS(trace.connection_count() <= kMaxTraceConnections);

  // Split the flat trace into per-connection event sequences; each
  // replays on its own thread (a logical connection is serial; distinct
  // connections are concurrent, exactly like real client processes).
  std::vector<std::vector<const WireTraceEvent*>> per_conn(
      trace.connection_count());
  for (const WireTraceEvent& event : trace.events) {
    per_conn[event.connection].push_back(&event);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_origin =
      trace.events.empty() ? 0.0 : trace.events.front().at;

  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> bytes{0};

  std::vector<std::thread> threads;
  threads.reserve(per_conn.size());
  for (const auto& events : per_conn) {
    if (events.empty()) continue;  // sparse index: nothing to replay
    threads.emplace_back([&, events_ptr = &events] {
      std::shared_ptr<net::ByteStream> stream;
      for (const WireTraceEvent* event : *events_ptr) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (options.speed > 0.0) {
          const double wall_offset =
              (event->at - trace_origin) / options.speed;
          std::this_thread::sleep_until(
              wall_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(wall_offset)));
        }
        switch (event->kind) {
          case WireTraceEvent::Kind::kConnect:
            if (stream != nullptr) stream->close_write();
            stream = [&] {
              net::RetryPolicy policy;
              policy.attempts = options.connect_retries;
              return net::dial(target, policy);
            }();
            if (stream == nullptr) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            connections.fetch_add(1, std::memory_order_relaxed);
            break;
          case WireTraceEvent::Kind::kSend:
            if (stream == nullptr
                || !stream->write_all(std::span<const std::uint8_t>(
                       event->bytes))) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            frames.fetch_add(1, std::memory_order_relaxed);
            bytes.fetch_add(event->bytes.size(), std::memory_order_relaxed);
            break;
          case WireTraceEvent::Kind::kDisconnect:
            if (stream != nullptr) {
              stream->close_write();
              stream.reset();
            }
            break;
        }
      }
      if (stream != nullptr) stream->close_write();
    });
  }
  for (std::thread& thread : threads) thread.join();

  if (failed.load(std::memory_order_relaxed)) return std::nullopt;
  ReplayStats stats;
  stats.connections = connections.load(std::memory_order_relaxed);
  stats.frames = frames.load(std::memory_order_relaxed);
  stats.bytes = bytes.load(std::memory_order_relaxed);
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now()
                                    - wall_start)
          .count();
  return stats;
}

}  // namespace tommy::sim
