// The Figure 5 experiment, packaged so the bench prints it and the
// integration tests assert its shape: 500 clients with seeded Gaussian
// offset distributions, a Poisson message workload with a configurable
// inter-message gap, offline sequencing, normalized RAS per sequencer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tommy::sim {

struct Fig5Config {
  std::size_t clients{500};
  std::size_t messages{2000};
  /// x-axis: clock deviation scale, microseconds.
  double deviation_scale_us{0.0};
  /// marker size: mean inter-message gap, microseconds.
  double gap_us{1.0};
  /// §3.4 threshold (paper uses 0.75).
  double threshold{0.75};
  std::uint64_t seed{1};
};

struct Fig5Point {
  Fig5Config config;
  double tommy_ras{0.0};
  double truetime_ras{0.0};
  double wfo_ras{0.0};
  double fifo_ras{0.0};
  double tommy_batches{0.0};
  double truetime_batches{0.0};
};

/// Runs one sweep point (all four sequencers on identical messages).
[[nodiscard]] Fig5Point run_fig5_point(const Fig5Config& config);

/// CSV header/row helpers shared by the bench binary.
[[nodiscard]] std::string fig5_csv_header();
[[nodiscard]] std::string fig5_csv_row(const Fig5Point& point);

}  // namespace tommy::sim
