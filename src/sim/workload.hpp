// Workload generators: when (in true/omniscient time) each client
// generates a message. The auction-app burst workload models the paper's
// motivating scenario — "millions of events by hundreds of clients
// generated within a very small window of time upon some sensitive event".
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace tommy::sim {

/// One ground-truth generation event.
struct GenEvent {
  ClientId client;
  TimePoint true_time;
};

/// `count` events spread across `clients` with exponential inter-arrival
/// gaps of mean `mean_gap` (global arrival process; clients drawn
/// uniformly). This is the Fig. 5 workload — `mean_gap` is the
/// "inter-messages gap" the marker size encodes.
[[nodiscard]] std::vector<GenEvent> poisson_workload(
    const std::vector<ClientId>& clients, std::size_t count,
    Duration mean_gap, Rng& rng);

/// Evenly spaced events with deterministic gap (round-robin clients) —
/// the cleanest setting for threshold/latency ablations.
[[nodiscard]] std::vector<GenEvent> uniform_workload(
    const std::vector<ClientId>& clients, std::size_t count, Duration gap);

/// Auction-app bursts: `burst_count` market events spaced `burst_spacing`
/// apart; on each, every client responds once after a reaction delay
/// ~ U(reaction_min, reaction_max). Events within a burst are tightly
/// packed (fairness-critical), bursts are far apart.
[[nodiscard]] std::vector<GenEvent> burst_workload(
    const std::vector<ClientId>& clients, std::size_t burst_count,
    Duration burst_spacing, Duration reaction_min, Duration reaction_max,
    Rng& rng);

/// Sorts by true time (all generators return sorted output already; use
/// after merging workloads).
void sort_events(std::vector<GenEvent>& events);

}  // namespace tommy::sim
