#include "sim/fig5.hpp"

#include <sstream>

#include "core/baselines.hpp"
#include "core/tommy_sequencer.hpp"
#include "sim/offline_runner.hpp"

namespace tommy::sim {

Fig5Point run_fig5_point(const Fig5Config& config) {
  Rng rng(config.seed);

  const double scale_s = config.deviation_scale_us * 1e-6;
  Population population =
      gaussian_population(config.clients, scale_s, rng);

  const std::vector<GenEvent> events =
      poisson_workload(population.ids(), config.messages,
                       Duration::from_micros(config.gap_us), rng);

  // §4: the sequencer receives all messages before ordering; network
  // arrival does not matter for Tommy/TrueTime/WFO. FIFO gets arrival
  // stamps with a small exponential delay so reordering can happen.
  MaterializeConfig mat;
  mat.mean_net_delay = Duration::from_micros(20.0);
  const std::vector<ObservedMessage> observed =
      materialize_messages(population, events, mat, rng);

  core::ClientRegistry registry;
  population.seed_registry(registry);

  core::TommyConfig tommy_config;
  tommy_config.threshold = config.threshold;
  core::TommySequencer tommy(registry, tommy_config);
  core::TrueTimeSequencer truetime(registry);
  core::WfoSequencer wfo;
  core::FifoSequencer fifo;

  Fig5Point point;
  point.config = config;

  const SequencerScore tommy_score = score_sequencer(tommy, observed);
  point.tommy_ras = tommy_score.ras.normalized();
  point.tommy_batches = static_cast<double>(tommy_score.batches.batch_count);

  const SequencerScore tt_score = score_sequencer(truetime, observed);
  point.truetime_ras = tt_score.ras.normalized();
  point.truetime_batches = static_cast<double>(tt_score.batches.batch_count);

  point.wfo_ras = score_sequencer(wfo, observed).ras.normalized();
  point.fifo_ras = score_sequencer(fifo, observed).ras.normalized();
  return point;
}

std::string fig5_csv_header() {
  return "deviation_us,gap_us,clients,messages,tommy_ras,truetime_ras,"
         "wfo_ras,fifo_ras,tommy_batches,truetime_batches";
}

std::string fig5_csv_row(const Fig5Point& p) {
  std::ostringstream os;
  os << p.config.deviation_scale_us << "," << p.config.gap_us << ","
     << p.config.clients << "," << p.config.messages << "," << p.tommy_ras
     << "," << p.truetime_ras << "," << p.wfo_ras << "," << p.fifo_ras << ","
     << p.tommy_batches << "," << p.truetime_batches;
  return os.str();
}

}  // namespace tommy::sim
