#include "sim/population.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/analytic.hpp"
#include "stats/gaussian.hpp"
#include "stats/mixture.hpp"

namespace tommy::sim {

Population::Population(std::vector<ClientSpec> clients)
    : clients_(std::move(clients)) {
  TOMMY_EXPECTS(!clients_.empty());
  for (const ClientSpec& c : clients_) {
    TOMMY_EXPECTS(c.offset != nullptr);
  }
}

const stats::Distribution& Population::offset_of(ClientId id) const {
  const auto it = std::find_if(
      clients_.begin(), clients_.end(),
      [id](const ClientSpec& c) { return c.id == id; });
  TOMMY_EXPECTS(it != clients_.end());
  return *it->offset;
}

std::vector<ClientId> Population::ids() const {
  std::vector<ClientId> out;
  out.reserve(clients_.size());
  for (const ClientSpec& c : clients_) out.push_back(c.id);
  return out;
}

void Population::seed_registry(core::ClientRegistry& registry) const {
  for (const ClientSpec& c : clients_) {
    registry.announce(c.id, c.offset->clone());
  }
}

Population gaussian_population(std::size_t n, double deviation_scale,
                               Rng& rng) {
  TOMMY_EXPECTS(n >= 1);
  TOMMY_EXPECTS(deviation_scale >= 0.0);
  // A zero scale would make sigma degenerate; model "perfect" clocks with
  // a vanishingly small spread instead.
  const double scale = std::max(deviation_scale, 1e-12);

  std::vector<ClientSpec> clients;
  clients.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double mu = rng.uniform(-scale, scale);
    const double sigma = rng.uniform(0.5 * scale, 1.5 * scale);
    clients.push_back(ClientSpec{
        ClientId(static_cast<std::uint32_t>(k)),
        std::make_unique<stats::Gaussian>(mu, sigma)});
  }
  return Population(std::move(clients));
}

Population gumbel_population(std::size_t n, double deviation_scale, Rng& rng) {
  TOMMY_EXPECTS(n >= 1);
  TOMMY_EXPECTS(deviation_scale > 0.0);
  std::vector<ClientSpec> clients;
  clients.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double location = rng.uniform(-deviation_scale, deviation_scale);
    const double scale = rng.uniform(0.3 * deviation_scale, deviation_scale);
    clients.push_back(ClientSpec{
        ClientId(static_cast<std::uint32_t>(k)),
        std::make_unique<stats::Gumbel>(location, scale)});
  }
  return Population(std::move(clients));
}

Population bimodal_population(std::size_t n, double deviation_scale,
                              Rng& rng) {
  TOMMY_EXPECTS(n >= 1);
  TOMMY_EXPECTS(deviation_scale > 0.0);
  std::vector<ClientSpec> clients;
  clients.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double center = rng.uniform(-deviation_scale, deviation_scale);
    const double separation = rng.uniform(1.0, 3.0) * deviation_scale;
    const double sigma = rng.uniform(0.3, 0.8) * deviation_scale;
    const double w = rng.uniform(0.3, 0.7);
    auto mixture = std::make_unique<stats::Mixture>(stats::Mixture::of(
        w, std::make_unique<stats::Gaussian>(center - separation / 2, sigma),
        1.0 - w,
        std::make_unique<stats::Gaussian>(center + separation / 2, sigma)));
    clients.push_back(ClientSpec{ClientId(static_cast<std::uint32_t>(k)),
                                 std::move(mixture)});
  }
  return Population(std::move(clients));
}

}  // namespace tommy::sim
