// Client populations: who the clients are and how their clocks err. The
// Fig. 5 configuration ("500 clients, each assigned a Gaussian clock
// offsets distribution N(μ, σ²)") is gaussian_population with the
// deviation scale swept along the x-axis; the heterogeneous populations
// exercise the numeric (§3.3 arbitrary-distribution) path.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/client_registry.hpp"
#include "stats/distribution.hpp"

namespace tommy::sim {

struct ClientSpec {
  ClientId id;
  stats::DistributionPtr offset;  // f_θ, in seconds
};

class Population {
 public:
  explicit Population(std::vector<ClientSpec> clients);

  [[nodiscard]] std::size_t size() const { return clients_.size(); }
  [[nodiscard]] const std::vector<ClientSpec>& clients() const {
    return clients_;
  }
  [[nodiscard]] const stats::Distribution& offset_of(ClientId id) const;
  [[nodiscard]] std::vector<ClientId> ids() const;

  /// Seeds a registry with the *true* distributions (the paper's §4 setup:
  /// "We seed the clients with clock offsets distributions", making
  /// results an upper bound w.r.t. learning error).
  void seed_registry(core::ClientRegistry& registry) const;

 private:
  std::vector<ClientSpec> clients_;
};

/// Fig. 5 population: per-client Gaussian offsets with heterogeneous
/// parameters derived from one deviation scale (seconds):
///   μ_i ~ U(−scale, +scale),  σ_i ~ U(0.5·scale, 1.5·scale).
/// scale == 0 is replaced by a negligible epsilon sigma (perfect clocks).
[[nodiscard]] Population gaussian_population(std::size_t n,
                                             double deviation_scale,
                                             Rng& rng);

/// Long-tailed/skewed population (§3.3's motivation): each client gets a
/// Gumbel offset with location ~ U(−scale, scale) and scale-parameter
/// ~ U(0.3·scale, scale).
[[nodiscard]] Population gumbel_population(std::size_t n,
                                           double deviation_scale, Rng& rng);

/// Bimodal population: mixture of two Gaussians per client (a sync daemon
/// flipping between two network paths). Exercises Mixture + numeric path.
[[nodiscard]] Population bimodal_population(std::size_t n,
                                            double deviation_scale, Rng& rng);

}  // namespace tommy::sim
