// End-to-end online sequencing run (§3.5) on the discrete-event network:
// clients stamp messages with their noisy clocks and send them (plus
// periodic heartbeats) over per-client FIFO channels with random delay;
// the sequencing front-end is a FairOrderingService — each client holds a
// per-connection Session, batches are consumed through the emission sink,
// and the client set can be partitioned across shards. The runner scores
// fairness (RAS over emitted ranks), emission latency, and violation
// counts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/service.hpp"
#include "metrics/ras.hpp"
#include "metrics/summary_stats.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"

namespace tommy::sim {

struct OnlineRunConfig {
  core::OnlineConfig sequencer{};
  /// Shards in the FairOrderingService front-end (range-partitioned by
  /// client id unless `router` overrides). 1 reproduces the bare-
  /// sequencer behaviour exactly.
  std::uint32_t shard_count{1};
  /// Optional router override for the service partition.
  std::shared_ptr<const core::KeyRouter> router{};
  /// Run the service's threaded execution engine (one worker per shard,
  /// SPSC ingest rings). Emissions are bit-identical to the sequential
  /// engine — the discrete-event loop is still the single producer — so
  /// this exercises the threaded plumbing under simulation workloads.
  bool worker_threads{false};
  /// Emission drain policy for multi-shard runs (kGlobalMerge gives one
  /// total stream gated on min next_safe_time across shards).
  core::DrainPolicy drain_policy{core::DrainPolicy::kShardLocal};
  /// Per-client heartbeat period (local clock stamps, FIFO channel).
  Duration heartbeat_interval{Duration::from_millis(1)};
  /// How often the sequencer re-evaluates emission conditions.
  Duration poll_interval{Duration::from_micros(100)};
  /// Channel base propagation delay.
  Duration net_base_delay{Duration::from_micros(50)};
  /// Mean of the exponential jitter on top of the base delay.
  Duration net_jitter_mean{Duration::from_micros(20)};
  /// Extra simulated time after the last generation event, letting
  /// in-flight traffic land and final batches emit.
  Duration drain{Duration::from_millis(50)};
};

struct OnlineRunResult {
  /// Every emitted batch, in emission order (shards visited in index
  /// order within one poll). With one shard this is exactly the bare
  /// sequencer's rank order.
  std::vector<core::EmissionRecord> emissions;
  /// Emitting shard of each record, parallel to `emissions`.
  std::vector<std::uint32_t> emission_shards;
  metrics::RasBreakdown ras;                 // over emitted messages
  metrics::SummaryStats emission_latency;    // emitted_at − true_time (s)
  std::size_t fairness_violations{0};
  std::size_t emitted_messages{0};
  std::size_t unemitted_messages{0};  // still buffered at the end
};

/// Runs the full scenario. The registry given to the service is seeded
/// with the population's true distributions (§4 upper-bound setup). RAS
/// is scored over the global emission order (per-shard ranks are dense
/// but shard-local; the emission sequence is the service's merged output
/// order, which for shard_count == 1 coincides with the rank order).
[[nodiscard]] OnlineRunResult run_online(const Population& population,
                                         const std::vector<GenEvent>& events,
                                         const OnlineRunConfig& config,
                                         Rng& rng);

}  // namespace tommy::sim
