#include "sim/workload.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tommy::sim {

std::vector<GenEvent> poisson_workload(const std::vector<ClientId>& clients,
                                       std::size_t count, Duration mean_gap,
                                       Rng& rng) {
  TOMMY_EXPECTS(!clients.empty());
  TOMMY_EXPECTS(mean_gap > Duration::zero());

  std::vector<GenEvent> events;
  events.reserve(count);
  TimePoint t = TimePoint::epoch();
  for (std::size_t k = 0; k < count; ++k) {
    t += Duration(rng.exponential(mean_gap.seconds()));
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clients.size()) - 1));
    events.push_back(GenEvent{clients[pick], t});
  }
  return events;
}

std::vector<GenEvent> uniform_workload(const std::vector<ClientId>& clients,
                                       std::size_t count, Duration gap) {
  TOMMY_EXPECTS(!clients.empty());
  TOMMY_EXPECTS(gap > Duration::zero());

  std::vector<GenEvent> events;
  events.reserve(count);
  TimePoint t = TimePoint::epoch();
  for (std::size_t k = 0; k < count; ++k) {
    t += gap;
    events.push_back(GenEvent{clients[k % clients.size()], t});
  }
  return events;
}

std::vector<GenEvent> burst_workload(const std::vector<ClientId>& clients,
                                     std::size_t burst_count,
                                     Duration burst_spacing,
                                     Duration reaction_min,
                                     Duration reaction_max, Rng& rng) {
  TOMMY_EXPECTS(!clients.empty());
  TOMMY_EXPECTS(burst_spacing > Duration::zero());
  TOMMY_EXPECTS(Duration::zero() <= reaction_min &&
                reaction_min < reaction_max);

  std::vector<GenEvent> events;
  events.reserve(burst_count * clients.size());
  for (std::size_t b = 0; b < burst_count; ++b) {
    // The market event is broadcast at the burst instant; every client
    // reacts once with an independent reaction delay.
    const TimePoint burst_at =
        TimePoint::epoch() + burst_spacing * static_cast<double>(b + 1);
    for (ClientId c : clients) {
      const Duration reaction =
          Duration(rng.uniform(reaction_min.seconds(), reaction_max.seconds()));
      events.push_back(GenEvent{c, burst_at + reaction});
    }
  }
  sort_events(events);
  return events;
}

void sort_events(std::vector<GenEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const GenEvent& a, const GenEvent& b) {
              if (a.true_time != b.true_time) return a.true_time < b.true_time;
              return a.client < b.client;
            });
}

}  // namespace tommy::sim
