// Wire-trace record & replay: capture a client-side workload — which
// logical connection opened when, which frames it wrote, when it
// disconnected — as a flat event trace, persist it to a file, and replay
// it against a live FrameServer at a configurable speed (0 = as fast as
// the transport takes bytes, 1 = trace time, k = k× trace time).
//
// The trace records BYTES, not session calls: a replayed run exercises
// the full server path (accept → read → decode → handshake → session)
// with exactly the frames of the recorded run. Because the front-end's
// deterministic arrival clock stamps arrivals as a pure function of each
// message, a replay's emission stream is bit-identical to the recorded
// run's at ANY speed — which is what makes traces useful as portable
// regression workloads and load generators (the round-trip test pins
// this).
//
// File format (little-endian, net/wire.hpp primitives):
//
//   "TMWR" u32-version(1) u64-event-count
//   per event: u8 kind (1=connect, 2=send, 3=disconnect)
//              u32 connection   (logical index; reconnects reuse it)
//              f64 at           (seconds on the trace clock)
//              u32 byte-count   (kSend only)  bytes
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "net/messages.hpp"

namespace tommy::sim {

/// Cap on logical connection indexes: replay spawns one thread per
/// populated logical connection, so a trace naming absurd indexes is
/// rejected at load (corrupt or hostile file) and asserted against in
/// replay(). 4096 concurrent client stand-ins is already well past any
/// workload the bench scripts generate.
inline constexpr std::uint32_t kMaxTraceConnections = 4096;

struct WireTraceEvent {
  enum class Kind : std::uint8_t {
    kConnect = 1,
    kSend = 2,
    kDisconnect = 3,
  };

  Kind kind{Kind::kConnect};
  /// Logical connection index. A kConnect after a kDisconnect on the
  /// same index models a reconnect.
  std::uint32_t connection{0};
  /// Seconds on the trace clock (non-decreasing per connection).
  double at{0.0};
  /// kSend: the raw frame bytes written to the stream.
  std::vector<std::uint8_t> bytes{};

  friend bool operator==(const WireTraceEvent&, const WireTraceEvent&)
      = default;
};

/// Why a trace file failed to load. A bare nullopt told callers nothing
/// — in particular, a trace whose event kind byte is from a NEWER format
/// (or plain corrupt) looked identical to a missing file; with the typed
/// error a tool can say "this trace was written by a newer recorder"
/// instead of silently dropping the workload.
enum class TraceError : std::uint8_t {
  kNone,
  /// open(2)/read failure.
  kIoError,
  /// The file does not start with "TMWR".
  kBadMagic,
  /// Magic matched but the version is not the one this reader speaks.
  kBadVersion,
  /// The file ended mid-header or mid-event.
  kTruncated,
  /// An event kind byte outside the known range (a newer or corrupt
  /// trace; there is no resync point after one).
  kBadEventKind,
  /// An event named a connection index ≥ kMaxTraceConnections.
  kConnectionOutOfRange,
  /// Bytes remained after the declared event count.
  kTrailingGarbage,
};

[[nodiscard]] const char* to_string(TraceError error);

struct WireTrace {
  std::vector<WireTraceEvent> events;

  /// Highest connection index + 1 (0 for an empty trace).
  [[nodiscard]] std::uint32_t connection_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Writes the trace to `path` (atomically enough for tests: truncate +
  /// write). False on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Parses a trace file; nullopt on I/O failure or a malformed file
  /// (bad magic/version, truncation).
  [[nodiscard]] static std::optional<WireTrace> load(const std::string& path);
  /// load with the failure reason reported through `error` (kNone on
  /// success; `error` must be non-null).
  [[nodiscard]] static std::optional<WireTrace> load(const std::string& path,
                                                     TraceError* error);

  friend bool operator==(const WireTrace&, const WireTrace&) = default;
};

/// Append-style trace builder keeping per-connection time monotonic.
class WireTraceRecorder {
 public:
  /// Opens (or reopens) logical connection `connection` at trace time
  /// `at`.
  void connect(std::uint32_t connection, double at);
  /// Records one frame of raw bytes written on `connection`.
  void send(std::uint32_t connection, double at,
            std::vector<std::uint8_t> frame);
  /// Records one encoded protocol message as a frame.
  void send(std::uint32_t connection, double at,
            const net::WireMessage& message);
  void disconnect(std::uint32_t connection, double at);

  [[nodiscard]] const WireTrace& trace() const { return trace_; }
  [[nodiscard]] WireTrace take() { return std::move(trace_); }

 private:
  WireTrace trace_;
};

/// Where replay connects (the shared net-layer endpoint type; set
/// exactly one of unix_path / tcp_port).
using ReplayTarget = net::Endpoint;

struct ReplayOptions {
  /// Trace seconds elapsing per wall second: 1 = real time, 2 = twice as
  /// fast (a 10 s trace replays in 5 s), 0 = no pacing at all (as fast
  /// as the transport accepts bytes).
  double speed{0.0};
  /// Per-connection connect retry budget (a server mid-accept-burst can
  /// transiently refuse).
  int connect_retries{50};
};

struct ReplayStats {
  std::uint64_t connections{0};
  std::uint64_t frames{0};
  std::uint64_t bytes{0};
  double wall_seconds{0.0};

  friend bool operator==(const ReplayStats&, const ReplayStats&) = default;
};

/// Replays `trace` against a live server: one thread per logical
/// connection, events in trace order, sleeps scaled by options.speed.
/// nullopt if any connection could not be established or any write
/// failed (a replay is a correctness tool; partial delivery is failure).
[[nodiscard]] std::optional<ReplayStats> replay(const WireTrace& trace,
                                                const ReplayTarget& target,
                                                ReplayOptions options = {});

}  // namespace tommy::sim
