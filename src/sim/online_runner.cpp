#include "sim/online_runner.hpp"

#include <memory>
#include <unordered_map>

#include "clock/local_clock.hpp"
#include "clock/offset_process.hpp"
#include "common/check.hpp"
#include "net/link.hpp"
#include "net/simulation.hpp"
#include "stats/analytic.hpp"

namespace tommy::sim {

namespace {

struct ClientEndpoint {
  std::unique_ptr<clock::LocalClock> local_clock;
  std::unique_ptr<net::OrderedChannel> channel;
};

net::DelayModel make_delay(const OnlineRunConfig& config, Rng& rng) {
  stats::DistributionPtr jitter;
  if (config.net_jitter_mean > Duration::zero()) {
    jitter = std::make_unique<stats::ShiftedExponential>(
        0.0, config.net_jitter_mean.seconds());
  }
  return net::DelayModel(config.net_base_delay, std::move(jitter),
                         rng.split());
}

}  // namespace

OnlineRunResult run_online(const Population& population,
                           const std::vector<GenEvent>& events,
                           const OnlineRunConfig& config, Rng& rng) {
  TOMMY_EXPECTS(!events.empty());

  net::Simulation sim;

  core::ClientRegistry registry;
  population.seed_registry(registry);
  core::OnlineSequencer sequencer(registry, population.ids(),
                                  config.sequencer);

  // Wire one clock + FIFO channel per client.
  std::unordered_map<ClientId, ClientEndpoint> endpoints;
  for (const ClientSpec& spec : population.clients()) {
    ClientEndpoint ep;
    ep.local_clock = std::make_unique<clock::LocalClock>(
        sim, std::make_unique<clock::IidOffset>(spec.offset->clone(),
                                                rng.split()));
    ep.channel =
        std::make_unique<net::OrderedChannel>(sim, make_delay(config, rng));
    endpoints.emplace(spec.id, std::move(ep));
  }

  // Ground truth per message id, recorded at generation time.
  std::unordered_map<MessageId, TimePoint> truth;
  std::uint64_t next_id = 0;

  const TimePoint horizon =
      events.back().true_time + config.drain;

  // Schedule generation events.
  for (const GenEvent& event : events) {
    const MessageId id{next_id++};
    truth.emplace(id, event.true_time);
    sim.schedule_at(event.true_time, [&, id, event] {
      ClientEndpoint& ep = endpoints.at(event.client);
      core::Message m;
      m.id = id;
      m.client = event.client;
      m.stamp = ep.local_clock->read();  // T = t_true − θ
      ep.channel->send([&, m]() mutable {
        m.arrival = sim.now();
        sequencer.on_message(m);
      });
    });
  }

  // Schedule heartbeats per client across the whole horizon.
  for (const ClientSpec& spec : population.clients()) {
    const ClientId client = spec.id;
    for (TimePoint t = TimePoint::epoch() + config.heartbeat_interval;
         t <= horizon; t += config.heartbeat_interval) {
      sim.schedule_at(t, [&, client] {
        ClientEndpoint& ep = endpoints.at(client);
        const TimePoint stamp = ep.local_clock->read();
        ep.channel->send([&, client, stamp] {
          sequencer.on_heartbeat(client, stamp, sim.now());
        });
      });
    }
  }

  // Poll loop.
  OnlineRunResult result;
  for (TimePoint t = TimePoint::epoch() + config.poll_interval; t <= horizon;
       t += config.poll_interval) {
    sim.schedule_at(t, [&] {
      auto emissions = sequencer.poll(sim.now());
      for (auto& e : emissions) result.emissions.push_back(std::move(e));
    });
  }

  sim.run();
  // Final drain poll after all traffic has landed.
  for (auto& e : sequencer.poll(sim.now())) {
    result.emissions.push_back(std::move(e));
  }

  // Score.
  std::vector<metrics::RankedMessage> ranked;
  std::vector<double> latencies;
  for (const core::EmissionRecord& record : result.emissions) {
    for (const core::Message& m : record.batch.messages) {
      const TimePoint true_time = truth.at(m.id);
      ranked.push_back(metrics::RankedMessage{m.id, m.client, true_time,
                                              record.batch.rank});
      latencies.push_back((record.emitted_at - true_time).seconds());
    }
  }
  result.emitted_messages = ranked.size();
  result.unemitted_messages = sequencer.pending_count();
  result.ras = metrics::rank_agreement(ranked);
  result.emission_latency = metrics::SummaryStats::from_samples(latencies);
  result.fairness_violations = sequencer.fairness_violations();
  return result;
}

}  // namespace tommy::sim
