#include "sim/online_runner.hpp"

#include <memory>
#include <unordered_map>

#include "clock/local_clock.hpp"
#include "clock/offset_process.hpp"
#include "common/check.hpp"
#include "net/link.hpp"
#include "net/simulation.hpp"
#include "stats/analytic.hpp"

namespace tommy::sim {

namespace {

struct ClientEndpoint {
  std::unique_ptr<clock::LocalClock> local_clock;
  std::unique_ptr<net::OrderedChannel> channel;
  core::FairOrderingService::Session session;  // per-connection handle
};

net::DelayModel make_delay(const OnlineRunConfig& config, Rng& rng) {
  stats::DistributionPtr jitter;
  if (config.net_jitter_mean > Duration::zero()) {
    jitter = std::make_unique<stats::ShiftedExponential>(
        0.0, config.net_jitter_mean.seconds());
  }
  return net::DelayModel(config.net_base_delay, std::move(jitter),
                         rng.split());
}

}  // namespace

OnlineRunResult run_online(const Population& population,
                           const std::vector<GenEvent>& events,
                           const OnlineRunConfig& config, Rng& rng) {
  TOMMY_EXPECTS(!events.empty());

  net::Simulation sim;

  core::ClientRegistry registry;
  population.seed_registry(registry);
  core::ServiceConfig service_config;
  service_config.with_online(config.sequencer)
      .with_shards(config.shard_count)
      .with_router(config.router)
      .with_worker_threads(config.worker_threads)
      .with_drain_policy(config.drain_policy);
  core::FairOrderingService service(registry, population.ids(),
                                    service_config);

  // Wire one clock + FIFO channel + ingest session per client.
  std::unordered_map<ClientId, ClientEndpoint> endpoints;
  for (const ClientSpec& spec : population.clients()) {
    ClientEndpoint ep;
    ep.local_clock = std::make_unique<clock::LocalClock>(
        sim, std::make_unique<clock::IidOffset>(spec.offset->clone(),
                                                rng.split()));
    ep.channel =
        std::make_unique<net::OrderedChannel>(sim, make_delay(config, rng));
    ep.session = service.open_session(spec.id);
    endpoints.emplace(spec.id, std::move(ep));
  }

  // Ground truth per message id, recorded at generation time.
  std::unordered_map<MessageId, TimePoint> truth;
  std::uint64_t next_id = 0;

  const TimePoint horizon =
      events.back().true_time + config.drain;

  // Schedule generation events.
  for (const GenEvent& event : events) {
    const MessageId id{next_id++};
    truth.emplace(id, event.true_time);
    sim.schedule_at(event.true_time, [&, id, event] {
      ClientEndpoint& ep = endpoints.at(event.client);
      const TimePoint stamp = ep.local_clock->read();  // T = t_true − θ
      ep.channel->send([&ep, &sim, id, stamp] {
        ep.session.submit(stamp, id, sim.now());
      });
    });
  }

  // Schedule heartbeats per client across the whole horizon.
  for (const ClientSpec& spec : population.clients()) {
    const ClientId client = spec.id;
    for (TimePoint t = TimePoint::epoch() + config.heartbeat_interval;
         t <= horizon; t += config.heartbeat_interval) {
      sim.schedule_at(t, [&, client] {
        ClientEndpoint& ep = endpoints.at(client);
        const TimePoint stamp = ep.local_clock->read();
        ep.channel->send([&ep, &sim, stamp] {
          ep.session.heartbeat(stamp, sim.now());
        });
      });
    }
  }

  // Poll loop, consuming batches through the emission sink.
  OnlineRunResult result;
  auto collect = [&result](core::EmissionRecord&& record,
                           std::uint32_t shard) {
    result.emissions.push_back(std::move(record));
    result.emission_shards.push_back(shard);
  };
  for (TimePoint t = TimePoint::epoch() + config.poll_interval; t <= horizon;
       t += config.poll_interval) {
    sim.schedule_at(t, [&] { service.poll(sim.now(), collect); });
  }

  sim.run();
  // Final drain poll after all traffic has landed.
  service.poll(sim.now(), collect);

  // Score. Ranks are assigned from the global emission sequence (equal to
  // the per-shard rank for a 1-shard service).
  std::vector<metrics::RankedMessage> ranked;
  std::vector<double> latencies;
  for (std::size_t r = 0; r < result.emissions.size(); ++r) {
    const core::EmissionRecord& record = result.emissions[r];
    for (const core::Message& m : record.batch.messages) {
      const TimePoint true_time = truth.at(m.id);
      ranked.push_back(metrics::RankedMessage{m.id, m.client, true_time,
                                              static_cast<Rank>(r)});
      latencies.push_back((record.emitted_at - true_time).seconds());
    }
  }
  result.emitted_messages = ranked.size();
  // Buffered in shards, plus (kGlobalMerge) messages inside batches the
  // merge is still withholding at the horizon.
  result.unemitted_messages =
      service.pending_count() + service.held_back_count();
  result.ras = metrics::rank_agreement(ranked);
  result.emission_latency = metrics::SummaryStats::from_samples(latencies);
  result.fairness_violations = service.fairness_violations();
  return result;
}

}  // namespace tommy::sim
