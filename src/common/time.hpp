// Strongly-typed simulation time. A TimePoint is an absolute instant on
// some clock (simulated wall clock, a client's local clock, or the
// sequencer's clock); a Duration is a signed span between instants.
//
// Representation is double seconds: simulation horizons are a few seconds,
// where an IEEE double resolves far below one nanosecond, and the
// statistical model (densities, quantiles, convolutions) is inherently
// continuous.
#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <ostream>

namespace tommy {

class Duration;

/// Signed time span in seconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr double millis() const { return seconds_ * 1e3; }
  [[nodiscard]] constexpr double micros() const { return seconds_ * 1e6; }
  [[nodiscard]] constexpr double nanos() const { return seconds_ * 1e9; }

  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration(s);
  }
  [[nodiscard]] static constexpr Duration from_millis(double ms) {
    return Duration(ms * 1e-3);
  }
  [[nodiscard]] static constexpr Duration from_micros(double us) {
    return Duration(us * 1e-6);
  }
  [[nodiscard]] static constexpr Duration from_nanos(double ns) {
    return Duration(ns * 1e-9);
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0.0); }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr bool is_finite() const {
    return std::isfinite(seconds_);
  }

  constexpr Duration operator-() const { return Duration(-seconds_); }
  constexpr Duration& operator+=(Duration d) {
    seconds_ += d.seconds_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    seconds_ -= d.seconds_;
    return *this;
  }
  constexpr Duration& operator*=(double k) {
    seconds_ *= k;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.seconds_ + b.seconds_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.seconds_ - b.seconds_);
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(a.seconds_ * k);
  }
  friend constexpr Duration operator*(double k, Duration a) {
    return Duration(a.seconds_ * k);
  }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration(a.seconds_ / k);
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return a.seconds_ / b.seconds_;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.seconds_ << "s";
  }

 private:
  double seconds_{0.0};
};

/// Absolute instant: seconds since the simulation epoch of its clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }

  [[nodiscard]] static constexpr TimePoint from_seconds(double s) {
    return TimePoint(s);
  }
  [[nodiscard]] static constexpr TimePoint from_micros(double us) {
    return TimePoint(us * 1e-6);
  }
  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint(0.0); }
  [[nodiscard]] static constexpr TimePoint infinite_future() {
    return TimePoint(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr bool is_finite() const {
    return std::isfinite(seconds_);
  }

  constexpr TimePoint& operator+=(Duration d) {
    seconds_ += d.seconds();
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.seconds_ + d.seconds());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.seconds_ - d.seconds());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration(a.seconds_ - b.seconds_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << t.seconds_ << "s";
  }

 private:
  double seconds_{0.0};
};

namespace literals {

constexpr Duration operator""_s(long double v) {
  return Duration(static_cast<double>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration(static_cast<double>(v));
}
constexpr Duration operator""_ms(long double v) {
  return Duration::from_millis(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::from_millis(static_cast<double>(v));
}
constexpr Duration operator""_us(long double v) {
  return Duration::from_micros(static_cast<double>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::from_micros(static_cast<double>(v));
}
constexpr Duration operator""_ns(long double v) {
  return Duration::from_nanos(static_cast<double>(v));
}
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::from_nanos(static_cast<double>(v));
}

}  // namespace literals

}  // namespace tommy
