#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace tommy {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++ step (Blackman & Vigna).
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 uniform mantissa bits in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TOMMY_EXPECTS(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TOMMY_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 is bounded away from 0 so log(u1) is finite.
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  TOMMY_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  TOMMY_EXPECTS(mean > 0.0);
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace tommy
