// Bounded single-producer/single-consumer ring buffer — the ingest lane
// between a FairOrderingService session (producer: the caller's thread)
// and its shard's worker thread (consumer).
//
// Classic Lamport queue with two refinements that matter at ingest rates:
//
//  * head and tail live on their own cache lines, so the producer's tail
//    stores never invalidate the consumer's head line and vice versa
//    (no false sharing on the index pair);
//  * each side keeps a *cached* copy of the opposite index and only
//    re-reads the shared atomic when the cached value makes the ring look
//    full (producer) or empty (consumer). In steady state a push is one
//    relaxed load, one store, one release store — no cross-core traffic
//    beyond the slot itself.
//
// Memory ordering: the producer publishes a slot with a release store of
// tail_; the consumer's acquire load of tail_ therefore observes the
// fully-constructed element (and everything the producer did before the
// push — the service's poll/flush commands rely on exactly this
// happens-before edge). Symmetrically head_ is released by the consumer
// and acquired by the producer so slots are reused only after the value
// was moved out.
//
// Contract: exactly one thread calls try_push, exactly one thread calls
// try_pop, for the lifetime of the ring. size()/empty() are approximate
// when called from any other thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace tommy {

/// Destructive-interference granularity for the index padding. A fixed 64
/// (true for every mainstream x86/ARM core) instead of
/// std::hardware_destructive_interference_size, whose value shifts with
/// -mtune and triggers -Winterference-size ABI warnings in headers.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (index masking instead of
  /// modulo); the ring holds exactly that many elements.
  explicit SpscRing(std::size_t capacity) {
    TOMMY_EXPECTS(capacity > 0);
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (value untouched).
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {  // looks full: refresh the cache
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty (out untouched).
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {  // looks empty: refresh the cache
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Pops up to `max` elements into `out` (appending). Returns the count.
  /// Consumer side; one acquire of tail_ amortized over the whole run.
  std::size_t pop_bulk(std::vector<T>& out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t available = cached_tail_ - head;
    if (available == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      available = cached_tail_ - head;
      if (available == 0) return 0;
    }
    const std::size_t n = available < max ? available : max;
    for (std::size_t k = 0; k < n; ++k) {
      out.push_back(std::move(slots_[(head + k) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate unless called from the consumer thread.
  [[nodiscard]] std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::size_t mask_{0};
  std::vector<T> slots_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer
  alignas(kCacheLineSize) std::size_t cached_tail_{0};        // consumer's
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer
  alignas(kCacheLineSize) std::size_t cached_head_{0};        // producer's
};

}  // namespace tommy
