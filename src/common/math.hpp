// Numeric helpers shared across the statistics and core libraries:
// the standard normal CDF and its inverse, plus small utilities used by
// grid-based density code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tommy::math {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double x);

/// Standard normal CDF Φ(x), computed from std::erfc for accuracy in both
/// tails.
[[nodiscard]] double normal_cdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1); Acklam's rational
/// approximation refined by one Halley step (relative error < 1e-12).
[[nodiscard]] double normal_quantile(double p);

/// Clamps p into [0, 1]; used to tidy tiny numeric excursions produced by
/// quadrature before probabilities leave a module boundary.
[[nodiscard]] double clamp_probability(double p);

/// Linear interpolation between (x0, y0) and (x1, y1) evaluated at x.
[[nodiscard]] double lerp(double x0, double y0, double x1, double y1,
                          double x);

/// Trapezoidal integral of uniformly spaced samples `y` with spacing `dx`.
[[nodiscard]] double trapezoid(std::span<const double> y, double dx);

/// In-place cumulative trapezoid: out[k] = ∫ up to sample k. out[0] == 0.
[[nodiscard]] std::vector<double> cumulative_trapezoid(
    std::span<const double> y, double dx);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 1e-12);

/// Sample mean. Requires non-empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for singleton input.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation (sqrt of `variance`).
[[nodiscard]] double stddev(std::span<const double> xs);

/// p-quantile of a sample by linear interpolation on the sorted copy;
/// p in [0, 1]. Requires non-empty input.
[[nodiscard]] double sample_quantile(std::span<const double> xs, double p);

}  // namespace tommy::math
