// Deterministic random number generation.
//
// All randomness in the library flows through explicitly-seeded Rng
// instances (no global RNG state; Core Guidelines I.2/I.3). The generator
// is xoshiro256++ seeded via splitmix64 — fast, high quality, and with a
// `split()` operation so independent components (clients, links, workloads)
// each get their own decorrelated stream from one experiment seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tommy {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE'5EED'1234ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derives an independent generator; deterministic given this state.
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_{0.0};
  bool has_spare_normal_{false};
};

}  // namespace tommy
