#include "common/log.hpp"

#include <cstdio>

namespace tommy::log {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < g_level.load()) return;
  std::fprintf(stderr, "[tommy %s] %s\n", level_name(lvl), message.c_str());
}

}  // namespace tommy::log
