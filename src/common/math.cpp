#include "common/math.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace tommy::math {

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) {
  // Φ(x) = erfc(-x / √2) / 2; erfc keeps relative accuracy in the lower
  // tail where 1 - erf would cancel.
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) {
  TOMMY_EXPECTS(p > 0.0 && p < 1.0);

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step drives relative error below 1e-12.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double clamp_probability(double p) { return std::clamp(p, 0.0, 1.0); }

double lerp(double x0, double y0, double x1, double y1, double x) {
  if (x1 == x0) return 0.5 * (y0 + y1);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double trapezoid(std::span<const double> y, double dx) {
  if (y.size() < 2) return 0.0;
  double interior = 0.0;
  for (std::size_t i = 1; i + 1 < y.size(); ++i) interior += y[i];
  return dx * (0.5 * (y.front() + y.back()) + interior);
}

std::vector<double> cumulative_trapezoid(std::span<const double> y,
                                         double dx) {
  std::vector<double> out(y.size(), 0.0);
  for (std::size_t i = 1; i < y.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * dx * (y[i - 1] + y[i]);
  }
  return out;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

double mean(std::span<const double> xs) {
  TOMMY_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  TOMMY_EXPECTS(!xs.empty());
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double sample_quantile(std::span<const double> xs, double p) {
  TOMMY_EXPECTS(!xs.empty());
  TOMMY_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace tommy::math
