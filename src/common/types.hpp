// Strong identifier types (I.4: make interfaces precisely and strongly
// typed). ClientId, MessageId and Rank are distinct vocabulary types so a
// rank can never silently be passed where a client id is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace tommy {

/// CRTP-free tagged integer. Each Tag instantiation is an unrelated type.
template <typename Tag, typename Rep = std::uint64_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

struct ClientIdTag {};
struct MessageIdTag {};
struct BatchIdTag {};

/// Identifies a client (message producer) within one deployment.
using ClientId = TaggedId<ClientIdTag, std::uint32_t>;
/// Identifies a single message; unique across all clients in a run.
using MessageId = TaggedId<MessageIdTag, std::uint64_t>;
/// Identifies an emitted batch; batches are densely ranked from 0.
using BatchId = TaggedId<BatchIdTag, std::uint64_t>;

/// Rank assigned by a sequencer. Lower rank == processed sooner. Messages
/// sharing a rank are "indifferent" (same batch, unordered w.r.t. each
/// other).
using Rank = std::uint64_t;

}  // namespace tommy

namespace std {

template <typename Tag, typename Rep>
struct hash<tommy::TaggedId<Tag, Rep>> {
  size_t operator()(tommy::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
