// Contract checking macros in the spirit of the Core Guidelines'
// Expects()/Ensures() (I.6, I.8). Violations indicate programmer error and
// terminate with a diagnostic; they are not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tommy::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[tommy] %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace tommy::detail

#define TOMMY_EXPECTS(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tommy::detail::contract_failure("precondition", #cond, __FILE__, \
                                        __LINE__);                       \
  } while (false)

#define TOMMY_ENSURES(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::tommy::detail::contract_failure("postcondition", #cond, __FILE__, \
                                        __LINE__);                        \
  } while (false)

#define TOMMY_ASSERT(cond)                                             \
  do {                                                                 \
    if (!(cond))                                                       \
      ::tommy::detail::contract_failure("invariant", #cond, __FILE__, \
                                        __LINE__);                     \
  } while (false)
