#pragma once
// HDR-style log-linear latency histogram: fixed-size, allocation-free
// after construction, O(1) record, percentile by cumulative walk.
//
// Buckets: values below 2^kSubBits ns are exact (one bucket per ns);
// above that, each power-of-two octave splits into 2^kSubBits linear
// sub-buckets, so the relative quantization error is bounded by
// 2^-kSubBits (~1.6% at kSubBits=6) across the whole range, 1 ns up to
// ~2^63 ns. That is the property that makes p99/p999 comparable across
// runs: the error does not grow with the magnitude of the tail.
//
// This is the measurement side of the bounded-hot-path claim: the
// regression benches record one sample per buffer insert while a closed
// completeness gate holds hundreds of thousands of messages back, and
// gate on the p99/p999 of this histogram rather than on means, which
// the old quadratic collapse barely moved until the backlog was deep.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "common/check.hpp"

namespace tommy {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  // Octaves kSubBits..63 each contribute kSub buckets, plus the exact
  // low range [0, kSub).
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  void record_ns(std::uint64_t ns) {
    ++counts_[index_of(ns)];
    ++count_;
    max_ns_ = std::max(max_ns_, ns);
  }

  /// Records a latency given in seconds (negative clamps to zero).
  void record(double seconds) {
    const double ns = seconds * 1e9;
    record_ns(ns <= 0.0 ? 0 : static_cast<std::uint64_t>(ns));
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const { return max_ns_; }

  /// Smallest recorded-value estimate v such that at least p of all
  /// samples are <= v. p in [0, 1]; returns nanoseconds. The estimate is
  /// the midpoint of the bucket holding the target rank (exact below
  /// kSub ns). Zero samples → 0.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const {
    TOMMY_EXPECTS(p >= 0.0 && p <= 1.0);
    if (count_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        std::max(1.0, p * static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return midpoint_of(i);
    }
    return midpoint_of(kBuckets - 1);
  }

  [[nodiscard]] double percentile_seconds(double p) const {
    return static_cast<double>(percentile_ns(p)) * 1e-9;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }

  void reset() {
    counts_.fill(0);
    count_ = 0;
    max_ns_ = 0;
  }

 private:
  static std::size_t index_of(std::uint64_t ns) {
    if (ns < kSub) return static_cast<std::size_t>(ns);
    const unsigned h = 63 - static_cast<unsigned>(std::countl_zero(ns));
    const unsigned shift = h - kSubBits;
    // (ns >> shift) is in [kSub, 2*kSub); octave h lands contiguously
    // after the exact range without colliding with it.
    return static_cast<std::size_t>(shift) * kSub +
           static_cast<std::size_t>(ns >> shift);
  }

  static std::uint64_t midpoint_of(std::size_t index) {
    if (index < 2 * kSub) return index;  // exact range + first octave
    const std::uint64_t shift = index / kSub - 1;
    const std::uint64_t mantissa = kSub + index % kSub;
    const std::uint64_t lo = mantissa << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return lo + width / 2;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_{0};
  std::uint64_t max_ns_{0};
};

}  // namespace tommy
