// Minimal leveled logging to stderr. Intentionally tiny: the library's
// normal operation is silent; logging exists for example binaries and for
// debugging simulations. Level is per-process, set explicitly (no env
// magic, no global mutable state beyond one atomic).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace tommy::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is emitted.
void set_level(Level level);

/// Currently configured minimum level.
[[nodiscard]] Level level();

/// Emits one line at `level` if it passes the filter.
void write(Level level, const std::string& message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace tommy::log

#define TOMMY_LOG_DEBUG ::tommy::log::detail::LineBuilder(::tommy::log::Level::kDebug)
#define TOMMY_LOG_INFO ::tommy::log::detail::LineBuilder(::tommy::log::Level::kInfo)
#define TOMMY_LOG_WARN ::tommy::log::detail::LineBuilder(::tommy::log::Level::kWarn)
#define TOMMY_LOG_ERROR ::tommy::log::detail::LineBuilder(::tommy::log::Level::kError)
