#include "core/batching.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tommy::core {

namespace {

/// Valid boundary positions (in 1..n−1) under the closure rule: position e
/// is a boundary candidate iff no pair (i < e <= j) is uncertain (fails
/// the confidence predicate). Computed with a difference array over
/// "blocking" intervals.
std::vector<bool> closure_boundaries(const std::vector<Message>& ordered,
                                     const PairConfidenceFn& confident) {
  const std::size_t n = ordered.size();
  std::vector<int> cover(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!confident(ordered[i], ordered[j])) {
        // This uncertain pair blocks every boundary e with i < e <= j.
        ++cover[i + 1];
        --cover[j + 1];
      }
    }
  }
  std::vector<bool> valid(n, false);
  int depth = 0;
  for (std::size_t e = 1; e < n; ++e) {
    depth += cover[e];
    valid[e] = depth == 0;
  }
  return valid;
}

std::vector<Batch> cut_at(std::vector<Message> ordered,
                          const std::vector<bool>& boundary_at) {
  std::vector<Batch> batches;
  Batch current;
  current.rank = 0;
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    if (k > 0 && boundary_at[k]) {
      batches.push_back(std::move(current));
      current = Batch{};
      current.rank = batches.size();
    }
    current.messages.push_back(std::move(ordered[k]));
  }
  batches.push_back(std::move(current));
  return batches;
}

}  // namespace

std::vector<Batch> batch_by_confidence(std::vector<Message> ordered,
                                       const PairConfidenceFn& confident,
                                       BatchRule rule) {
  if (ordered.empty()) return {};

  const std::size_t n = ordered.size();
  std::vector<bool> boundary(n, false);
  if (rule == BatchRule::kAdjacent) {
    for (std::size_t k = 1; k < n; ++k) {
      boundary[k] = confident(ordered[k - 1], ordered[k]);
    }
  } else {
    boundary = closure_boundaries(ordered, confident);
  }
  return cut_at(std::move(ordered), boundary);
}

std::vector<Batch> batch_by_threshold(std::vector<Message> ordered,
                                      const PairProbabilityFn& probability,
                                      double threshold, BatchRule rule) {
  TOMMY_EXPECTS(threshold > 0.5 && threshold < 1.0);
  return batch_by_confidence(
      std::move(ordered),
      [&probability, threshold](const Message& a, const Message& b) {
        return probability(a, b) > threshold;
      },
      rule);
}

std::vector<Batch> batch_groups_by_confidence(
    std::vector<std::vector<Message>> ordered_groups,
    const PairConfidenceFn& confident) {
  std::vector<Batch> batches;
  Batch current;
  current.rank = 0;
  bool have_any = false;

  for (auto& group : ordered_groups) {
    TOMMY_EXPECTS(!group.empty());
    if (have_any && confident(current.messages.back(), group.front())) {
      batches.push_back(std::move(current));
      current = Batch{};
      current.rank = batches.size();
    }
    for (Message& m : group) current.messages.push_back(std::move(m));
    have_any = true;
  }
  if (have_any) batches.push_back(std::move(current));
  return batches;
}

std::vector<Batch> batch_groups_by_threshold(
    std::vector<std::vector<Message>> ordered_groups,
    const PairProbabilityFn& probability, double threshold) {
  TOMMY_EXPECTS(threshold > 0.5 && threshold < 1.0);
  return batch_groups_by_confidence(
      std::move(ordered_groups),
      [&probability, threshold](const Message& a, const Message& b) {
        return probability(a, b) > threshold;
      });
}

double min_cross_batch_probability(const std::vector<Batch>& batches,
                                   const PairProbabilityFn& probability) {
  double lowest = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < batches.size(); ++a) {
    for (std::size_t b = a + 1; b < batches.size(); ++b) {
      for (const Message& u : batches[a].messages) {
        for (const Message& v : batches[b].messages) {
          lowest = std::min(lowest, probability(u, v));
        }
      }
    }
  }
  return lowest;
}

}  // namespace tommy::core
